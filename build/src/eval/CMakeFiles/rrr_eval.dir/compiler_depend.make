# Empty compiler generated dependencies file for rrr_eval.
# This may be replaced when dependencies are built.
