file(REMOVE_RECURSE
  "CMakeFiles/rrr_eval.dir/ground_truth.cpp.o"
  "CMakeFiles/rrr_eval.dir/ground_truth.cpp.o.d"
  "CMakeFiles/rrr_eval.dir/metrics.cpp.o"
  "CMakeFiles/rrr_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/rrr_eval.dir/report.cpp.o"
  "CMakeFiles/rrr_eval.dir/report.cpp.o.d"
  "CMakeFiles/rrr_eval.dir/world.cpp.o"
  "CMakeFiles/rrr_eval.dir/world.cpp.o.d"
  "librrr_eval.a"
  "librrr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
