file(REMOVE_RECURSE
  "librrr_eval.a"
)
