# Empty compiler generated dependencies file for rrr_signals.
# This may be replaced when dependencies are built.
