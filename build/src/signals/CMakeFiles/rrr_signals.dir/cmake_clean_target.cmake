file(REMOVE_RECURSE
  "librrr_signals.a"
)
