file(REMOVE_RECURSE
  "CMakeFiles/rrr_signals.dir/aspath_monitor.cpp.o"
  "CMakeFiles/rrr_signals.dir/aspath_monitor.cpp.o.d"
  "CMakeFiles/rrr_signals.dir/asreldb.cpp.o"
  "CMakeFiles/rrr_signals.dir/asreldb.cpp.o.d"
  "CMakeFiles/rrr_signals.dir/border_monitor.cpp.o"
  "CMakeFiles/rrr_signals.dir/border_monitor.cpp.o.d"
  "CMakeFiles/rrr_signals.dir/burst_monitor.cpp.o"
  "CMakeFiles/rrr_signals.dir/burst_monitor.cpp.o.d"
  "CMakeFiles/rrr_signals.dir/calibration.cpp.o"
  "CMakeFiles/rrr_signals.dir/calibration.cpp.o.d"
  "CMakeFiles/rrr_signals.dir/community_monitor.cpp.o"
  "CMakeFiles/rrr_signals.dir/community_monitor.cpp.o.d"
  "CMakeFiles/rrr_signals.dir/engine.cpp.o"
  "CMakeFiles/rrr_signals.dir/engine.cpp.o.d"
  "CMakeFiles/rrr_signals.dir/ixp_monitor.cpp.o"
  "CMakeFiles/rrr_signals.dir/ixp_monitor.cpp.o.d"
  "CMakeFiles/rrr_signals.dir/monitor.cpp.o"
  "CMakeFiles/rrr_signals.dir/monitor.cpp.o.d"
  "CMakeFiles/rrr_signals.dir/subpath_monitor.cpp.o"
  "CMakeFiles/rrr_signals.dir/subpath_monitor.cpp.o.d"
  "librrr_signals.a"
  "librrr_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
