
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signals/aspath_monitor.cpp" "src/signals/CMakeFiles/rrr_signals.dir/aspath_monitor.cpp.o" "gcc" "src/signals/CMakeFiles/rrr_signals.dir/aspath_monitor.cpp.o.d"
  "/root/repo/src/signals/asreldb.cpp" "src/signals/CMakeFiles/rrr_signals.dir/asreldb.cpp.o" "gcc" "src/signals/CMakeFiles/rrr_signals.dir/asreldb.cpp.o.d"
  "/root/repo/src/signals/border_monitor.cpp" "src/signals/CMakeFiles/rrr_signals.dir/border_monitor.cpp.o" "gcc" "src/signals/CMakeFiles/rrr_signals.dir/border_monitor.cpp.o.d"
  "/root/repo/src/signals/burst_monitor.cpp" "src/signals/CMakeFiles/rrr_signals.dir/burst_monitor.cpp.o" "gcc" "src/signals/CMakeFiles/rrr_signals.dir/burst_monitor.cpp.o.d"
  "/root/repo/src/signals/calibration.cpp" "src/signals/CMakeFiles/rrr_signals.dir/calibration.cpp.o" "gcc" "src/signals/CMakeFiles/rrr_signals.dir/calibration.cpp.o.d"
  "/root/repo/src/signals/community_monitor.cpp" "src/signals/CMakeFiles/rrr_signals.dir/community_monitor.cpp.o" "gcc" "src/signals/CMakeFiles/rrr_signals.dir/community_monitor.cpp.o.d"
  "/root/repo/src/signals/engine.cpp" "src/signals/CMakeFiles/rrr_signals.dir/engine.cpp.o" "gcc" "src/signals/CMakeFiles/rrr_signals.dir/engine.cpp.o.d"
  "/root/repo/src/signals/ixp_monitor.cpp" "src/signals/CMakeFiles/rrr_signals.dir/ixp_monitor.cpp.o" "gcc" "src/signals/CMakeFiles/rrr_signals.dir/ixp_monitor.cpp.o.d"
  "/root/repo/src/signals/monitor.cpp" "src/signals/CMakeFiles/rrr_signals.dir/monitor.cpp.o" "gcc" "src/signals/CMakeFiles/rrr_signals.dir/monitor.cpp.o.d"
  "/root/repo/src/signals/subpath_monitor.cpp" "src/signals/CMakeFiles/rrr_signals.dir/subpath_monitor.cpp.o" "gcc" "src/signals/CMakeFiles/rrr_signals.dir/subpath_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/rrr_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/tracemap/CMakeFiles/rrr_tracemap.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/rrr_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/traceroute/CMakeFiles/rrr_traceroute.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rrr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/rrr_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/rrr_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
