# CMake generated Testfile for 
# Source directory: /root/repo/src/signals
# Build directory: /root/repo/build/src/signals
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
