file(REMOVE_RECURSE
  "CMakeFiles/rrr_netbase.dir/asn.cpp.o"
  "CMakeFiles/rrr_netbase.dir/asn.cpp.o.d"
  "CMakeFiles/rrr_netbase.dir/community.cpp.o"
  "CMakeFiles/rrr_netbase.dir/community.cpp.o.d"
  "CMakeFiles/rrr_netbase.dir/geo.cpp.o"
  "CMakeFiles/rrr_netbase.dir/geo.cpp.o.d"
  "CMakeFiles/rrr_netbase.dir/ipv4.cpp.o"
  "CMakeFiles/rrr_netbase.dir/ipv4.cpp.o.d"
  "CMakeFiles/rrr_netbase.dir/prefix.cpp.o"
  "CMakeFiles/rrr_netbase.dir/prefix.cpp.o.d"
  "CMakeFiles/rrr_netbase.dir/time.cpp.o"
  "CMakeFiles/rrr_netbase.dir/time.cpp.o.d"
  "librrr_netbase.a"
  "librrr_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
