# Empty dependencies file for rrr_netbase.
# This may be replaced when dependencies are built.
