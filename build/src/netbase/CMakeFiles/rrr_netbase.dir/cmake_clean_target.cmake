file(REMOVE_RECURSE
  "librrr_netbase.a"
)
