file(REMOVE_RECURSE
  "librrr_detect.a"
)
