file(REMOVE_RECURSE
  "CMakeFiles/rrr_detect.dir/detector.cpp.o"
  "CMakeFiles/rrr_detect.dir/detector.cpp.o.d"
  "CMakeFiles/rrr_detect.dir/series.cpp.o"
  "CMakeFiles/rrr_detect.dir/series.cpp.o.d"
  "librrr_detect.a"
  "librrr_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
