# Empty compiler generated dependencies file for rrr_detect.
# This may be replaced when dependencies are built.
