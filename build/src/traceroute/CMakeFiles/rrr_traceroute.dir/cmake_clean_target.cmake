file(REMOVE_RECURSE
  "librrr_traceroute.a"
)
