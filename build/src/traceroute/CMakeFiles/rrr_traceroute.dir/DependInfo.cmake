
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traceroute/corpus.cpp" "src/traceroute/CMakeFiles/rrr_traceroute.dir/corpus.cpp.o" "gcc" "src/traceroute/CMakeFiles/rrr_traceroute.dir/corpus.cpp.o.d"
  "/root/repo/src/traceroute/platform.cpp" "src/traceroute/CMakeFiles/rrr_traceroute.dir/platform.cpp.o" "gcc" "src/traceroute/CMakeFiles/rrr_traceroute.dir/platform.cpp.o.d"
  "/root/repo/src/traceroute/prober.cpp" "src/traceroute/CMakeFiles/rrr_traceroute.dir/prober.cpp.o" "gcc" "src/traceroute/CMakeFiles/rrr_traceroute.dir/prober.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/rrr_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rrr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/rrr_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
