file(REMOVE_RECURSE
  "CMakeFiles/rrr_traceroute.dir/corpus.cpp.o"
  "CMakeFiles/rrr_traceroute.dir/corpus.cpp.o.d"
  "CMakeFiles/rrr_traceroute.dir/platform.cpp.o"
  "CMakeFiles/rrr_traceroute.dir/platform.cpp.o.d"
  "CMakeFiles/rrr_traceroute.dir/prober.cpp.o"
  "CMakeFiles/rrr_traceroute.dir/prober.cpp.o.d"
  "librrr_traceroute.a"
  "librrr_traceroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_traceroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
