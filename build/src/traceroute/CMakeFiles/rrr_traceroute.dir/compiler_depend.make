# Empty compiler generated dependencies file for rrr_traceroute.
# This may be replaced when dependencies are built.
