file(REMOVE_RECURSE
  "CMakeFiles/rrr_baselines.dir/iplane.cpp.o"
  "CMakeFiles/rrr_baselines.dir/iplane.cpp.o.d"
  "CMakeFiles/rrr_baselines.dir/strategies.cpp.o"
  "CMakeFiles/rrr_baselines.dir/strategies.cpp.o.d"
  "librrr_baselines.a"
  "librrr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
