# Empty compiler generated dependencies file for rrr_baselines.
# This may be replaced when dependencies are built.
