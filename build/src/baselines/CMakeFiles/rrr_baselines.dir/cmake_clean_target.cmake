file(REMOVE_RECURSE
  "librrr_baselines.a"
)
