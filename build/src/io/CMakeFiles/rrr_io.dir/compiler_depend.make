# Empty compiler generated dependencies file for rrr_io.
# This may be replaced when dependencies are built.
