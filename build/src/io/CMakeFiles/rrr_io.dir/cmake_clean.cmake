file(REMOVE_RECURSE
  "CMakeFiles/rrr_io.dir/serialize.cpp.o"
  "CMakeFiles/rrr_io.dir/serialize.cpp.o.d"
  "librrr_io.a"
  "librrr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
