file(REMOVE_RECURSE
  "librrr_io.a"
)
