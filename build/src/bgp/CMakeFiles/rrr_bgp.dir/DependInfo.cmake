
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/feed.cpp" "src/bgp/CMakeFiles/rrr_bgp.dir/feed.cpp.o" "gcc" "src/bgp/CMakeFiles/rrr_bgp.dir/feed.cpp.o.d"
  "/root/repo/src/bgp/record.cpp" "src/bgp/CMakeFiles/rrr_bgp.dir/record.cpp.o" "gcc" "src/bgp/CMakeFiles/rrr_bgp.dir/record.cpp.o.d"
  "/root/repo/src/bgp/stream.cpp" "src/bgp/CMakeFiles/rrr_bgp.dir/stream.cpp.o" "gcc" "src/bgp/CMakeFiles/rrr_bgp.dir/stream.cpp.o.d"
  "/root/repo/src/bgp/table_view.cpp" "src/bgp/CMakeFiles/rrr_bgp.dir/table_view.cpp.o" "gcc" "src/bgp/CMakeFiles/rrr_bgp.dir/table_view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/rrr_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rrr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/rrr_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
