file(REMOVE_RECURSE
  "CMakeFiles/rrr_bgp.dir/feed.cpp.o"
  "CMakeFiles/rrr_bgp.dir/feed.cpp.o.d"
  "CMakeFiles/rrr_bgp.dir/record.cpp.o"
  "CMakeFiles/rrr_bgp.dir/record.cpp.o.d"
  "CMakeFiles/rrr_bgp.dir/stream.cpp.o"
  "CMakeFiles/rrr_bgp.dir/stream.cpp.o.d"
  "CMakeFiles/rrr_bgp.dir/table_view.cpp.o"
  "CMakeFiles/rrr_bgp.dir/table_view.cpp.o.d"
  "librrr_bgp.a"
  "librrr_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
