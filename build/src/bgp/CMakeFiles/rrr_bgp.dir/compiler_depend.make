# Empty compiler generated dependencies file for rrr_bgp.
# This may be replaced when dependencies are built.
