# Empty compiler generated dependencies file for rrr_topology.
# This may be replaced when dependencies are built.
