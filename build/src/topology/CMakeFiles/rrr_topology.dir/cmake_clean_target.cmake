file(REMOVE_RECURSE
  "librrr_topology.a"
)
