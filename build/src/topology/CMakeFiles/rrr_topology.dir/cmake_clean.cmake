file(REMOVE_RECURSE
  "CMakeFiles/rrr_topology.dir/builder.cpp.o"
  "CMakeFiles/rrr_topology.dir/builder.cpp.o.d"
  "CMakeFiles/rrr_topology.dir/city.cpp.o"
  "CMakeFiles/rrr_topology.dir/city.cpp.o.d"
  "CMakeFiles/rrr_topology.dir/topology.cpp.o"
  "CMakeFiles/rrr_topology.dir/topology.cpp.o.d"
  "librrr_topology.a"
  "librrr_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
