
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/control_plane.cpp" "src/routing/CMakeFiles/rrr_routing.dir/control_plane.cpp.o" "gcc" "src/routing/CMakeFiles/rrr_routing.dir/control_plane.cpp.o.d"
  "/root/repo/src/routing/events.cpp" "src/routing/CMakeFiles/rrr_routing.dir/events.cpp.o" "gcc" "src/routing/CMakeFiles/rrr_routing.dir/events.cpp.o.d"
  "/root/repo/src/routing/forwarding.cpp" "src/routing/CMakeFiles/rrr_routing.dir/forwarding.cpp.o" "gcc" "src/routing/CMakeFiles/rrr_routing.dir/forwarding.cpp.o.d"
  "/root/repo/src/routing/routes.cpp" "src/routing/CMakeFiles/rrr_routing.dir/routes.cpp.o" "gcc" "src/routing/CMakeFiles/rrr_routing.dir/routes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/rrr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/rrr_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
