file(REMOVE_RECURSE
  "CMakeFiles/rrr_routing.dir/control_plane.cpp.o"
  "CMakeFiles/rrr_routing.dir/control_plane.cpp.o.d"
  "CMakeFiles/rrr_routing.dir/events.cpp.o"
  "CMakeFiles/rrr_routing.dir/events.cpp.o.d"
  "CMakeFiles/rrr_routing.dir/forwarding.cpp.o"
  "CMakeFiles/rrr_routing.dir/forwarding.cpp.o.d"
  "CMakeFiles/rrr_routing.dir/routes.cpp.o"
  "CMakeFiles/rrr_routing.dir/routes.cpp.o.d"
  "librrr_routing.a"
  "librrr_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
