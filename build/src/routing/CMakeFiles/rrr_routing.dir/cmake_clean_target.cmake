file(REMOVE_RECURSE
  "librrr_routing.a"
)
