# Empty dependencies file for rrr_routing.
# This may be replaced when dependencies are built.
