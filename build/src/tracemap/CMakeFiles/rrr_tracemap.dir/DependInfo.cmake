
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracemap/alias.cpp" "src/tracemap/CMakeFiles/rrr_tracemap.dir/alias.cpp.o" "gcc" "src/tracemap/CMakeFiles/rrr_tracemap.dir/alias.cpp.o.d"
  "/root/repo/src/tracemap/geolocate.cpp" "src/tracemap/CMakeFiles/rrr_tracemap.dir/geolocate.cpp.o" "gcc" "src/tracemap/CMakeFiles/rrr_tracemap.dir/geolocate.cpp.o.d"
  "/root/repo/src/tracemap/ip2as.cpp" "src/tracemap/CMakeFiles/rrr_tracemap.dir/ip2as.cpp.o" "gcc" "src/tracemap/CMakeFiles/rrr_tracemap.dir/ip2as.cpp.o.d"
  "/root/repo/src/tracemap/patch.cpp" "src/tracemap/CMakeFiles/rrr_tracemap.dir/patch.cpp.o" "gcc" "src/tracemap/CMakeFiles/rrr_tracemap.dir/patch.cpp.o.d"
  "/root/repo/src/tracemap/pipeline.cpp" "src/tracemap/CMakeFiles/rrr_tracemap.dir/pipeline.cpp.o" "gcc" "src/tracemap/CMakeFiles/rrr_tracemap.dir/pipeline.cpp.o.d"
  "/root/repo/src/tracemap/processed.cpp" "src/tracemap/CMakeFiles/rrr_tracemap.dir/processed.cpp.o" "gcc" "src/tracemap/CMakeFiles/rrr_tracemap.dir/processed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traceroute/CMakeFiles/rrr_traceroute.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rrr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/rrr_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/rrr_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
