file(REMOVE_RECURSE
  "CMakeFiles/rrr_tracemap.dir/alias.cpp.o"
  "CMakeFiles/rrr_tracemap.dir/alias.cpp.o.d"
  "CMakeFiles/rrr_tracemap.dir/geolocate.cpp.o"
  "CMakeFiles/rrr_tracemap.dir/geolocate.cpp.o.d"
  "CMakeFiles/rrr_tracemap.dir/ip2as.cpp.o"
  "CMakeFiles/rrr_tracemap.dir/ip2as.cpp.o.d"
  "CMakeFiles/rrr_tracemap.dir/patch.cpp.o"
  "CMakeFiles/rrr_tracemap.dir/patch.cpp.o.d"
  "CMakeFiles/rrr_tracemap.dir/pipeline.cpp.o"
  "CMakeFiles/rrr_tracemap.dir/pipeline.cpp.o.d"
  "CMakeFiles/rrr_tracemap.dir/processed.cpp.o"
  "CMakeFiles/rrr_tracemap.dir/processed.cpp.o.d"
  "librrr_tracemap.a"
  "librrr_tracemap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrr_tracemap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
