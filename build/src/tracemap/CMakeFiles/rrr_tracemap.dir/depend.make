# Empty dependencies file for rrr_tracemap.
# This may be replaced when dependencies are built.
