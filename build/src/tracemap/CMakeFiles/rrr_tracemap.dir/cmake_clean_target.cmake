file(REMOVE_RECURSE
  "librrr_tracemap.a"
)
