# CMake generated Testfile for 
# Source directory: /root/repo/src/tracemap
# Build directory: /root/repo/build/src/tracemap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
