# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("netbase")
subdirs("topology")
subdirs("routing")
subdirs("bgp")
subdirs("traceroute")
subdirs("tracemap")
subdirs("detect")
subdirs("signals")
subdirs("baselines")
subdirs("eval")
subdirs("io")
