# Empty compiler generated dependencies file for fig14_15_border_overlap.
# This may be replaced when dependencies are built.
