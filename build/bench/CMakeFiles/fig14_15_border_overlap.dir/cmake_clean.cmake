file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_border_overlap.dir/fig14_15_border_overlap.cpp.o"
  "CMakeFiles/fig14_15_border_overlap.dir/fig14_15_border_overlap.cpp.o.d"
  "fig14_15_border_overlap"
  "fig14_15_border_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_border_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
