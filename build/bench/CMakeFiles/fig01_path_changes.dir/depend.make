# Empty dependencies file for fig01_path_changes.
# This may be replaced when dependencies are built.
