file(REMOVE_RECURSE
  "CMakeFiles/fig01_path_changes.dir/fig01_path_changes.cpp.o"
  "CMakeFiles/fig01_path_changes.dir/fig01_path_changes.cpp.o.d"
  "fig01_path_changes"
  "fig01_path_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_path_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
