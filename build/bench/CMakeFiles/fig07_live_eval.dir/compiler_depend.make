# Empty compiler generated dependencies file for fig07_live_eval.
# This may be replaced when dependencies are built.
