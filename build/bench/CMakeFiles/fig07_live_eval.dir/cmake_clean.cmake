file(REMOVE_RECURSE
  "CMakeFiles/fig07_live_eval.dir/fig07_live_eval.cpp.o"
  "CMakeFiles/fig07_live_eval.dir/fig07_live_eval.cpp.o.d"
  "fig07_live_eval"
  "fig07_live_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_live_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
