file(REMOVE_RECURSE
  "CMakeFiles/fig16_iplane.dir/fig16_iplane.cpp.o"
  "CMakeFiles/fig16_iplane.dir/fig16_iplane.cpp.o.d"
  "fig16_iplane"
  "fig16_iplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_iplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
