# Empty compiler generated dependencies file for fig16_iplane.
# This may be replaced when dependencies are built.
