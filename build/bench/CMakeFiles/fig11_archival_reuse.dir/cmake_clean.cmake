file(REMOVE_RECURSE
  "CMakeFiles/fig11_archival_reuse.dir/fig11_archival_reuse.cpp.o"
  "CMakeFiles/fig11_archival_reuse.dir/fig11_archival_reuse.cpp.o.d"
  "fig11_archival_reuse"
  "fig11_archival_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_archival_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
