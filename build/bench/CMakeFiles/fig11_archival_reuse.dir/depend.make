# Empty dependencies file for fig11_archival_reuse.
# This may be replaced when dependencies are built.
