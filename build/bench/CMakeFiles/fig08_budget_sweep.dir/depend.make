# Empty dependencies file for fig08_budget_sweep.
# This may be replaced when dependencies are built.
