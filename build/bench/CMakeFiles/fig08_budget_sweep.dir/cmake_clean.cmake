file(REMOVE_RECURSE
  "CMakeFiles/fig08_budget_sweep.dir/fig08_budget_sweep.cpp.o"
  "CMakeFiles/fig08_budget_sweep.dir/fig08_budget_sweep.cpp.o.d"
  "fig08_budget_sweep"
  "fig08_budget_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_budget_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
