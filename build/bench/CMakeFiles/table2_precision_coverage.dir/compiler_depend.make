# Empty compiler generated dependencies file for table2_precision_coverage.
# This may be replaced when dependencies are built.
