# Empty dependencies file for fig13_community_pruning.
# This may be replaced when dependencies are built.
