file(REMOVE_RECURSE
  "CMakeFiles/fig13_community_pruning.dir/fig13_community_pruning.cpp.o"
  "CMakeFiles/fig13_community_pruning.dir/fig13_community_pruning.cpp.o.d"
  "fig13_community_pruning"
  "fig13_community_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_community_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
