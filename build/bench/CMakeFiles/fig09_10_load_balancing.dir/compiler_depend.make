# Empty compiler generated dependencies file for fig09_10_load_balancing.
# This may be replaced when dependencies are built.
