file(REMOVE_RECURSE
  "CMakeFiles/fig09_10_load_balancing.dir/fig09_10_load_balancing.cpp.o"
  "CMakeFiles/fig09_10_load_balancing.dir/fig09_10_load_balancing.cpp.o.d"
  "fig09_10_load_balancing"
  "fig09_10_load_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
