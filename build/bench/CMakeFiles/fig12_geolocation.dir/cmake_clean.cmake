file(REMOVE_RECURSE
  "CMakeFiles/fig12_geolocation.dir/fig12_geolocation.cpp.o"
  "CMakeFiles/fig12_geolocation.dir/fig12_geolocation.cpp.o.d"
  "fig12_geolocation"
  "fig12_geolocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_geolocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
