file(REMOVE_RECURSE
  "CMakeFiles/fig06_precision_coverage_time.dir/fig06_precision_coverage_time.cpp.o"
  "CMakeFiles/fig06_precision_coverage_time.dir/fig06_precision_coverage_time.cpp.o.d"
  "fig06_precision_coverage_time"
  "fig06_precision_coverage_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_precision_coverage_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
