# Empty compiler generated dependencies file for fig06_precision_coverage_time.
# This may be replaced when dependencies are built.
