# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/detect_test[1]_include.cmake")
include("/root/repo/build/tests/engine_integration_test[1]_include.cmake")
include("/root/repo/build/tests/netbase_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/bgp_test[1]_include.cmake")
include("/root/repo/build/tests/traceroute_test[1]_include.cmake")
include("/root/repo/build/tests/tracemap_test[1]_include.cmake")
include("/root/repo/build/tests/signals_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/bgp_monitors_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/engine_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/world_test[1]_include.cmake")
include("/root/repo/build/tests/forwarding_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
