file(REMOVE_RECURSE
  "CMakeFiles/tracemap_test.dir/tracemap_test.cpp.o"
  "CMakeFiles/tracemap_test.dir/tracemap_test.cpp.o.d"
  "tracemap_test"
  "tracemap_test.pdb"
  "tracemap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
