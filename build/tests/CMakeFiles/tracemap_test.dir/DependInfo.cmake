
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tracemap_test.cpp" "tests/CMakeFiles/tracemap_test.dir/tracemap_test.cpp.o" "gcc" "tests/CMakeFiles/tracemap_test.dir/tracemap_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/rrr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rrr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/signals/CMakeFiles/rrr_signals.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rrr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tracemap/CMakeFiles/rrr_tracemap.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/rrr_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/rrr_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/traceroute/CMakeFiles/rrr_traceroute.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/rrr_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rrr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/rrr_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
