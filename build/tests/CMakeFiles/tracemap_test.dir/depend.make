# Empty dependencies file for tracemap_test.
# This may be replaced when dependencies are built.
