file(REMOVE_RECURSE
  "CMakeFiles/bgp_monitors_test.dir/bgp_monitors_test.cpp.o"
  "CMakeFiles/bgp_monitors_test.dir/bgp_monitors_test.cpp.o.d"
  "bgp_monitors_test"
  "bgp_monitors_test.pdb"
  "bgp_monitors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_monitors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
