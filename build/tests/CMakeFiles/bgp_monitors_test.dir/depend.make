# Empty dependencies file for bgp_monitors_test.
# This may be replaced when dependencies are built.
