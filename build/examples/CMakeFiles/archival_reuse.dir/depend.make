# Empty dependencies file for archival_reuse.
# This may be replaced when dependencies are built.
