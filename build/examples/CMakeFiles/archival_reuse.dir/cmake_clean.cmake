file(REMOVE_RECURSE
  "CMakeFiles/archival_reuse.dir/archival_reuse.cpp.o"
  "CMakeFiles/archival_reuse.dir/archival_reuse.cpp.o.d"
  "archival_reuse"
  "archival_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archival_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
