file(REMOVE_RECURSE
  "CMakeFiles/corpus_maintenance.dir/corpus_maintenance.cpp.o"
  "CMakeFiles/corpus_maintenance.dir/corpus_maintenance.cpp.o.d"
  "corpus_maintenance"
  "corpus_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
