# Empty dependencies file for corpus_maintenance.
# This may be replaced when dependencies are built.
