// Shared helpers for the experiment harnesses in bench/: flag parsing and
// standard world configurations.
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "eval/report.h"
#include "eval/world.h"

namespace rrr::bench {

// Minimal flag parser: --name value or --name=value; bools as --name.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  long long get_int(const std::string& name, long long fallback) const {
    std::string value;
    return find(name, value) ? std::atoll(value.c_str()) : fallback;
  }
  double get_double(const std::string& name, double fallback) const {
    std::string value;
    return find(name, value) ? std::atof(value.c_str()) : fallback;
  }
  bool get_bool(const std::string& name) const {
    std::string value;
    return find(name, value);
  }

 private:
  bool find(const std::string& name, std::string& value) const {
    std::string flag = "--" + name;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == flag) {
        value = i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0
                    ? args_[i + 1]
                    : "";
        return true;
      }
      if (args_[i].rfind(flag + "=", 0) == 0) {
        value = args_[i].substr(flag.size() + 1);
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> args_;
};

// The standard retrospective-evaluation world (§5.1), scaled down from the
// paper's 223k pairs to laptop size; flags override.
inline eval::WorldParams retrospective_params(const Flags& flags) {
  eval::WorldParams params;
  params.days = static_cast<int>(flags.get_int("days", 18));
  params.corpus_pair_target =
      static_cast<int>(flags.get_int("pairs", 1200));
  params.corpus_dest_count = static_cast<int>(flags.get_int("dests", 36));
  params.public_traces_per_window =
      static_cast<int>(flags.get_int("public-rate", 800));
  params.platform.num_probes =
      static_cast<int>(flags.get_int("probes", 700));
  params.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  params.topology.num_transit = 48;
  params.topology.num_stub = 200;
  return params;
}

}  // namespace rrr::bench
