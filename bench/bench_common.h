// Shared helpers for the experiment harnesses in bench/: flag parsing,
// standard world configurations, and the fan-out runner that spreads
// independent World instances (seed replicates, parameter points) over a
// thread pool.
#pragma once

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "eval/report.h"
#include "eval/supervisor.h"
#include "eval/world.h"
#include "serve/service.h"
#include "netbase/rng.h"
#include "obs/export.h"
#include "obs/http_export.h"
#include "obs/trace.h"
#include "runtime/parallel.h"

namespace rrr::bench {

// Minimal flag parser: --name value or --name=value; bools as --name.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  long long get_int(const std::string& name, long long fallback) const {
    std::string value;
    return find(name, value) ? std::atoll(value.c_str()) : fallback;
  }
  double get_double(const std::string& name, double fallback) const {
    std::string value;
    return find(name, value) ? std::atof(value.c_str()) : fallback;
  }
  bool get_bool(const std::string& name) const {
    std::string value;
    return find(name, value);
  }
  std::string get_str(const std::string& name,
                      const std::string& fallback) const {
    std::string value;
    return find(name, value) ? value : fallback;
  }

 private:
  bool find(const std::string& name, std::string& value) const {
    std::string flag = "--" + name;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == flag) {
        value = i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0
                    ? args_[i + 1]
                    : "";
        return true;
      }
      if (args_[i].rfind(flag + "=", 0) == 0) {
        value = args_[i].substr(flag.size() + 1);
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> args_;
};

// Telemetry knobs shared by every harness: `--stats-json <path>` turns the
// engine's telemetry on and writes the collected stats there; the RRR_STATS
// environment variable force-enables collection without a file.
inline bool stats_enabled(const Flags& flags) {
  return flags.get_bool("stats-json") || obs::env_enabled();
}
inline std::string stats_json_path(const Flags& flags) {
  return flags.get_str("stats-json", "");
}

// Flight-recorder knobs shared by every harness (DESIGN.md §13):
// `--trace-out <path>` turns the trace recorder on and writes the Chrome
// trace-event JSON there after the run; the RRR_TRACE environment variable
// force-enables recording without a file (the trace is still reachable via
// --serve-obs). `--watchdog` arms the slow-window watchdog.
inline bool trace_enabled(const Flags& flags) {
  return flags.get_bool("trace-out") || obs::trace_env_enabled();
}
inline std::string trace_out_path(const Flags& flags) {
  return flags.get_str("trace-out", "");
}

// One run's collected telemetry, ready for the shared JSON writer.
struct RunStats {
  std::string label;
  std::string stats;     // cumulative snapshot (JSON metric array)
  std::string semantic;  // semantic-domain-only snapshot (JSON metric array)
  std::string windows;   // sparse per-window series (JSON array)
  std::string trace;     // flight-recorder export (Chrome trace JSON)
};

// Process memory footprint from /proc/self/status, in kB: current resident
// set (VmRSS) and lifetime peak (VmHWM). Zero when the field is missing
// (non-Linux). Captured into the stats envelope so memory regressions show
// up in the same artifact the CI perf step already uploads.
struct MemoryUsage {
  long long rss_kb = 0;
  long long peak_rss_kb = 0;
};

inline MemoryUsage read_memory_usage() {
  MemoryUsage usage;
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      usage.rss_kb = std::atoll(line.c_str() + 6);
    } else if (line.rfind("VmHWM:", 0) == 0) {
      usage.peak_rss_kb = std::atoll(line.c_str() + 6);
    }
  }
  return usage;
}

// Snapshot a world's telemetry under `label`; empty JSON when telemetry is
// off (the writer still emits the run, keeping run indices aligned).
inline RunStats capture_stats(const std::string& label,
                              const eval::World& world) {
  return RunStats{label, world.stats_json(), world.semantic_stats_json(),
                  world.stats_series_json(), world.trace_json()};
}

// Writes the primary run's flight-recorder export to --trace-out. Fan-out
// harnesses pass replicate 0's trace; the other replicates record too (the
// knob is per-world) but only the primary is written, keeping one file per
// invocation.
inline void maybe_write_trace(const Flags& flags, const std::string& trace,
                              std::ostream& log) {
  std::string path = trace_out_path(flags);
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    log << "trace-out: cannot open " << path << "\n";
    return;
  }
  out << trace << "\n";
  log << "trace-out: wrote " << trace.size() << " bytes to " << path << "\n";
}

// The one stats file writer every harness shares: a versioned envelope of
// per-run objects, each holding the final cumulative snapshot and the
// per-window series.
inline void write_stats_json(const std::string& path,
                             const std::vector<RunStats>& runs,
                             std::ostream& log) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    log << "stats-json: cannot open " << path << "\n";
    return;
  }
  MemoryUsage memory = read_memory_usage();
  out << "{\"schema\":\"rrr-stats-v1\",\"memory\":{\"rss_kb\":"
      << memory.rss_kb << ",\"peak_rss_kb\":" << memory.peak_rss_kb
      << "},\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"label\":\"" << obs::json_escape(runs[i].label)
        << "\",\"stats\":" << (runs[i].stats.empty() ? "[]" : runs[i].stats)
        << ",\"semantic\":"
        << (runs[i].semantic.empty() ? "[]" : runs[i].semantic)
        << ",\"windows\":"
        << (runs[i].windows.empty() ? "[]" : runs[i].windows) << "}";
  }
  out << "]}\n";
  log << "stats-json: wrote " << runs.size() << " run(s) to " << path
      << "\n";
}

// Fault-injection knobs shared by every harness. `--fault-plan <spec>`
// takes a full plan spec (fault::FaultPlan::parse syntax, e.g.
// "collector_blackout=0.3,blackout_start=96,blackout_windows=24"); the
// RRR_FAULT_PLAN environment variable supplies the same spec when the flag
// is absent. Individual `--fault-*` flags then override single fields, and
// `--feed-health` turns on the engine's quarantine tracker.
inline void apply_fault_flags(const Flags& flags, eval::WorldParams& params) {
  std::string spec = flags.get_str("fault-plan", "");
  if (spec.empty()) {
    const char* env = std::getenv("RRR_FAULT_PLAN");
    if (env != nullptr) spec = env;
  }
  if (!spec.empty()) {
    std::optional<fault::FaultPlan> parsed = fault::FaultPlan::parse(spec);
    if (parsed) {
      params.fault_plan = *parsed;
    } else {
      std::cerr << "fault-plan: cannot parse \"" << spec << "\" — ignored\n";
    }
  }
  fault::FaultPlan& plan = params.fault_plan;
  plan.collector_blackout_fraction = flags.get_double(
      "fault-collector-blackout", plan.collector_blackout_fraction);
  plan.vp_blackout_fraction =
      flags.get_double("fault-vp-blackout", plan.vp_blackout_fraction);
  plan.blackout_start_window = flags.get_int("fault-blackout-start",
                                             plan.blackout_start_window);
  plan.blackout_windows =
      flags.get_int("fault-blackout-windows", plan.blackout_windows);
  if (flags.get_bool("fault-reset-replay")) plan.session_reset_replay = true;
  plan.drop_rate = flags.get_double("fault-drop", plan.drop_rate);
  plan.trace_drop_rate =
      flags.get_double("fault-trace-drop", plan.trace_drop_rate);
  plan.duplicate_rate = flags.get_double("fault-dup", plan.duplicate_rate);
  plan.duplicate_burst_max =
      flags.get_int("fault-dup-burst", plan.duplicate_burst_max);
  plan.reorder_rate = flags.get_double("fault-reorder", plan.reorder_rate);
  plan.reorder_max_seconds =
      flags.get_int("fault-reorder-max", plan.reorder_max_seconds);
  plan.corrupt_rate = flags.get_double("fault-corrupt", plan.corrupt_rate);
  plan.seed = static_cast<std::uint64_t>(
      flags.get_int("fault-seed", static_cast<long long>(plan.seed)));
  if (flags.get_bool("feed-health")) params.feed_health.enabled = true;
}

// Checkpoint/resume knobs shared by every harness (DESIGN.md §11):
// `--checkpoint-dir <dir>` turns on periodic snapshots plus the
// exogenous-op WAL, `--checkpoint-every N` sets the snapshot cadence in
// windows, `--resume <dir>` fast-forwards the world from that directory
// before the run starts, and `--resume-window K` picks the boundary to
// resume at (default: the furthest state the directory reconstructs).
inline void apply_checkpoint_flags(const Flags& flags,
                                   eval::WorldParams& params) {
  params.checkpoint_dir = flags.get_str("checkpoint-dir", "");
  params.checkpoint_every =
      static_cast<int>(flags.get_int("checkpoint-every", 1));
  params.resume_from = flags.get_str("resume", "");
  params.resume_window = flags.get_int("resume-window", -1);
}

// Crash-fault tolerance knobs (DESIGN.md §14): `--io-fault-plan <spec>`
// injects storage faults into every store IO (fault::IoFaultPlan::parse
// syntax, e.g. "torn=0.05,enospc=0.02,seed=7"; RRR_IO_FAULT_PLAN supplies
// the spec when the flag is absent), `--io-retry <spec>` configures the
// transient-error retry policy (store::RetryPolicy::parse, e.g.
// "attempts=4,base_us=100"), and `--supervise` runs under the
// self-healing recovery supervisor (eval/supervisor.h).
inline void apply_io_fault_flags(const Flags& flags,
                                 eval::WorldParams& params) {
  std::string spec = flags.get_str("io-fault-plan", "");
  if (spec.empty()) {
    const char* env = std::getenv("RRR_IO_FAULT_PLAN");
    if (env != nullptr) spec = env;
  }
  if (!spec.empty()) {
    std::optional<fault::IoFaultPlan> parsed = fault::IoFaultPlan::parse(spec);
    if (parsed) {
      params.io_fault_plan = *parsed;
    } else {
      std::cerr << "io-fault-plan: cannot parse \"" << spec
                << "\" — ignored\n";
    }
  }
  std::string retry = flags.get_str("io-retry", "");
  if (!retry.empty()) {
    std::optional<store::RetryPolicy> parsed = store::RetryPolicy::parse(retry);
    if (parsed) {
      params.io_retry = *parsed;
    } else {
      std::cerr << "io-retry: cannot parse \"" << retry << "\" — ignored\n";
    }
  }
  if (flags.get_bool("supervise")) params.supervise = true;
}

// The standard retrospective-evaluation world (§5.1), scaled down from the
// paper's 223k pairs to laptop size; flags override.
inline eval::WorldParams retrospective_params(const Flags& flags) {
  eval::WorldParams params;
  params.days = static_cast<int>(flags.get_int("days", 18));
  params.corpus_pair_target =
      static_cast<int>(flags.get_int("pairs", 1200));
  params.corpus_dest_count = static_cast<int>(flags.get_int("dests", 36));
  params.public_traces_per_window =
      static_cast<int>(flags.get_int("public-rate", 800));
  params.platform.num_probes =
      static_cast<int>(flags.get_int("probes", 700));
  params.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  params.topology.num_transit = 48;
  params.topology.num_stub = 200;
  params.engine_threads = static_cast<int>(flags.get_int("engine-threads", 1));
  params.engine_shards = static_cast<int>(flags.get_int("engine-shards", 1));
  // --pipeline 0 recovers the serial absorb schedule (DESIGN.md §10).
  params.pipeline_absorb = flags.get_int("pipeline", 1) != 0;
  // A live /metrics endpoint is useless without a registry behind it, so
  // --serve-obs (and --serve, which exposes the same fixed routes next to
  // the /v1 family) implies telemetry even when --stats-json is absent.
  params.telemetry = stats_enabled(flags) ||
                     flags.get_int("serve-obs", -1) >= 0 ||
                     flags.get_int("serve", -1) >= 0;
  params.trace = trace_enabled(flags);
  if (flags.get_bool("watchdog")) params.watchdog.enabled = true;
  apply_fault_flags(flags, params);
  apply_checkpoint_flags(flags, params);
  apply_io_fault_flags(flags, params);
  return params;
}

// Live introspection endpoint for a running bench: `--serve-obs PORT`
// starts the loopback HTTP server (obs/http_export.h) for the process
// lifetime; `--serve-obs-linger N` keeps it up N extra seconds after the
// run so a scraper polling mid-run always gets one last look. The handlers
// read whichever World is currently attached — harnesses attach the
// primary replicate for the duration of its run (WorldLease below), and
// routes answer with empty-but-valid documents while no world is attached
// (before the first window, between replicates, during the linger).
//
// `--serve PORT` additionally enables the staleness query service
// (serve/service.h): the same server answers the /v1 route family from the
// snapshot the attached world publishes at each window boundary, and
// `--serve-linger N` keeps it up after the run the same way. With both
// port flags given, one server binds the --serve-obs port and answers
// everything.
class ScopedObsServer {
 public:
  ScopedObsServer(const Flags& flags, std::ostream& log) : log_(&log) {
    long long obs_port = flags.get_int("serve-obs", -1);
    long long serve_port = flags.get_int("serve", -1);
    if (obs_port < 0 && serve_port < 0) return;
    linger_seconds_ = static_cast<int>(
        std::max(flags.get_int("serve-obs-linger", 0),
                 flags.get_int("serve-linger", 0)));
    if (serve_port >= 0) {
      service_ = std::make_unique<serve::StalenessService>();
    }
    obs::HttpHandlers handlers;
    if (service_ != nullptr) {
      // The service is built before the server thread starts and outlives
      // it (declaration order below), so no lock: handle() reads the
      // atomically published snapshot.
      handlers.api = [this](const std::string& target) {
        return service_->handle(target);
      };
    }
    handlers.metrics_text = [this] {
      std::lock_guard<std::mutex> lock(mu_);
      return world_ != nullptr ? world_->stats_prometheus() : std::string();
    };
    handlers.stats_json = [this] {
      std::lock_guard<std::mutex> lock(mu_);
      return world_ != nullptr ? world_->stats_json() : std::string("[]");
    };
    handlers.trace_json = [this] {
      std::lock_guard<std::mutex> lock(mu_);
      return world_ != nullptr
                 ? world_->trace_json()
                 : std::string(
                       "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    };
    const long long port = obs_port >= 0 ? obs_port : serve_port;
    try {
      server_ = std::make_unique<obs::HttpServer>(static_cast<int>(port),
                                                  std::move(handlers));
      log << "serve-obs: listening on 127.0.0.1:" << server_->port()
          << (service_ != nullptr ? " (/v1 staleness API enabled)" : "")
          << "\n";
    } catch (const std::exception& error) {
      log << "serve-obs: " << error.what() << " — endpoint disabled\n";
      service_.reset();
    }
  }

  ~ScopedObsServer() {
    if (server_ != nullptr && linger_seconds_ > 0) {
      *log_ << "serve-obs: lingering " << linger_seconds_ << " s ("
            << server_->requests_served() << " request(s) served)\n";
      std::this_thread::sleep_for(std::chrono::seconds(linger_seconds_));
    }
  }

  ScopedObsServer(const ScopedObsServer&) = delete;
  ScopedObsServer& operator=(const ScopedObsServer&) = delete;

  bool active() const { return server_ != nullptr; }
  int port() const { return server_ != nullptr ? server_->port() : -1; }
  // Null unless --serve was given (and the server bound).
  serve::StalenessService* serving() { return service_.get(); }

  void attach(const eval::World* world) {
    std::lock_guard<std::mutex> lock(mu_);
    world_ = world;
  }
  void detach(const eval::World* world) {
    std::lock_guard<std::mutex> lock(mu_);
    if (world_ == world) world_ = nullptr;
  }

 private:
  mutable std::mutex mu_;
  const eval::World* world_ = nullptr;  // guarded by mu_
  // Declared before server_: the server thread calls into the service, so
  // the service must outlive it (members destroy in reverse order).
  std::unique_ptr<serve::StalenessService> service_;
  std::unique_ptr<obs::HttpServer> server_;
  int linger_seconds_ = 0;
  std::ostream* log_;
};

// RAII attach/detach of one World to the obs server: the primary replicate
// constructs a lease around its World for the scope of its run, so the
// endpoint never serves a pointer to a destroyed world. When the server
// carries the staleness query service (--serve), the lease also wires the
// world's window boundary to it, and unwires on release — queries after
// the lease keep answering from the last published snapshot, which owns
// every byte it needs (see serve/snapshot.h).
class WorldLease {
 public:
  WorldLease(ScopedObsServer& server, eval::World* world)
      : server_(&server), world_(world) {
    server_->attach(world_);
    if (server_->serving() != nullptr) {
      world_->attach_serving(server_->serving());
    }
  }
  ~WorldLease() {
    if (server_->serving() != nullptr) world_->attach_serving(nullptr);
    server_->detach(world_);
  }
  WorldLease(const WorldLease&) = delete;
  WorldLease& operator=(const WorldLease&) = delete;

 private:
  ScopedObsServer* server_;
  eval::World* world_;
};

// Parallelism for bench fan-outs: --threads wins, otherwise the hardware,
// capped by the task count (an idle worker is pure overhead here).
inline int fanout_threads(const Flags& flags, std::size_t tasks) {
  long long requested = flags.get_int("threads", 0);
  int threads = requested > 0
                    ? static_cast<int>(requested)
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  if (static_cast<std::size_t>(threads) > tasks) {
    threads = static_cast<int>(tasks);
  }
  return threads;
}

// The i-th replicate seed of a sweep. Replicate 0 keeps the base seed so a
// single-task fan-out reproduces the historical single-run output exactly;
// later replicates draw from pre-split Rng streams (never a shared one).
inline std::uint64_t replicate_seed(std::uint64_t base, std::size_t i) {
  return i == 0 ? base : Rng(base).split(i).seed();
}

// Runs one independent task per label on a pool and returns results in task
// order (output is therefore identical whatever the parallelism). Each task
// builds its own World — nothing is shared across tasks, so no locking and
// no cross-task RNG. Prints the thread count up front and per-task wall
// times at the end.
template <typename Result, typename Fn>
std::vector<Result> fan_out(int threads,
                            const std::vector<std::string>& labels, Fn&& task,
                            std::ostream& log) {
  runtime::ThreadPool pool(threads);
  log << "fan-out: " << labels.size() << " task(s) on "
      << pool.thread_count() << " thread(s)\n";
  std::vector<Result> results(labels.size());
  std::vector<double> wall_seconds(labels.size(), 0.0);
  runtime::parallel_for(
      &pool, labels.size(),
      [&](std::size_t i) {
        auto begin = std::chrono::steady_clock::now();
        results[i] = task(i);
        wall_seconds[i] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          begin)
                .count();
      },
      /*grain=*/1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    log << "  [" << labels[i] << "] "
        << eval::TableWriter::fmt(wall_seconds[i], 2) << " s\n";
  }
  return results;
}

}  // namespace rrr::bench
