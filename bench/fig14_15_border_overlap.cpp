// Figures 14 & 15 (Appendix C) — why coverage is high: border IPs are
// shared across many AS pairs (fig 14), and border IPs involved in changes
// appear on more paths than those that never change (fig 15).
//
// Paper reference: ~60% of border IPs serve >10 AS pairs, 40% serve >30;
// over 80% of change-involved border IPs are covered by >=10 paths while
// only 40% of all border IPs are.
//
// Flags: --days N --pairs N --seed N
#include <map>
#include <set>

#include "bench_common.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);
  params.days = static_cast<int>(flags.get_int("days", 10));

  eval::print_banner(std::cout, "Figures 14-15",
                     "border-IP sharing across AS pairs and paths",
                     "60% of border IPs used by >10 AS pairs; changed "
                     "border IPs appear on more paths");

  eval::World world(params);
  world.run_until(world.corpus_t0());
  std::size_t pairs = world.initialize_corpus();
  world.run_until(world.end());
  std::cout << "corpus: " << pairs << " pairs\n\n";

  const topo::Topology& topology = world.topology();

  // Fig 14: for each border IP (the ingress interface revealed at each
  // crossing), the number of distinct adjacent AS pairs using it; and
  // fig 15: the number of corpus paths through it.
  std::map<Ipv4, std::set<std::pair<Asn, Asn>>> as_pairs_of;
  std::map<Ipv4, std::set<tr::PairKey>> paths_of;
  for (const tr::PairKey& pair : world.ground_truth().pairs()) {
    const auto& path = world.ground_truth().initial(pair);
    for (const auto& crossing : path.crossings) {
      const topo::Interconnect& ic =
          topology.interconnect_at(crossing.interconnect);
      Ipv4 border_ip = crossing.forward ? ic.ip_b : ic.ip_a;
      Asn a = topology.as_at(crossing.from_as).asn;
      Asn b = topology.as_at(crossing.to_as).asn;
      as_pairs_of[border_ip].insert({std::min(a, b), std::max(a, b)});
      paths_of[border_ip].insert(pair);
    }
  }
  // Border routers serve many links: count AS pairs per *router* too, the
  // paper's observation driver (routers at IXPs and colos).
  std::map<topo::RouterId, std::set<std::pair<Asn, Asn>>> as_pairs_of_router;
  for (const auto& [ip, as_pairs] : as_pairs_of) {
    topo::RouterId router = topology.router_of_interface(ip);
    if (router == topo::kNoRouter) continue;
    as_pairs_of_router[router].insert(as_pairs.begin(), as_pairs.end());
  }

  eval::Cdf per_ip, per_router;
  for (const auto& [ip, set] : as_pairs_of) per_ip.add(double(set.size()));
  for (const auto& [router, set] : as_pairs_of_router) {
    per_router.add(double(set.size()));
  }
  std::cout << "Figure 14 — AS pairs sharing a border element:\n";
  eval::print_cdf(std::cout, "  per border IP    ", per_ip);
  eval::print_cdf(std::cout, "  per border router", per_router);
  std::cout << "  border routers with >10 AS pairs: "
            << eval::TableWriter::fmt_pct(
                   1.0 - per_router.fraction_at_most(10.0))
            << " (paper: ~60% of border IPs)\n";

  // Fig 15: paths per border IP, split by change involvement.
  std::set<Ipv4> changed_ips;
  for (const auto& change : world.ground_truth().changes()) {
    // The crossing that changed: border IPs of both old and new states are
    // "involved"; approximate with the pair's current path crossing.
    const auto& current = world.ground_truth().current(change.pair);
    if (change.changed_crossing >= 0 &&
        static_cast<std::size_t>(change.changed_crossing) <
            current.crossings.size()) {
      const auto& crossing =
          current.crossings[static_cast<std::size_t>(change.changed_crossing)];
      const topo::Interconnect& ic =
          topology.interconnect_at(crossing.interconnect);
      changed_ips.insert(crossing.forward ? ic.ip_b : ic.ip_a);
    }
  }
  eval::Cdf paths_changed, paths_unchanged;
  for (const auto& [ip, path_set] : paths_of) {
    (changed_ips.contains(ip) ? paths_changed : paths_unchanged)
        .add(double(path_set.size()));
  }
  std::cout << "\nFigure 15 — corpus paths per border IP:\n";
  eval::print_cdf(std::cout, "  involved in changes", paths_changed);
  eval::print_cdf(std::cout, "  never changed      ", paths_unchanged);
  std::cout << "  >=10 paths: changed "
            << eval::TableWriter::fmt_pct(
                   1.0 - paths_changed.fraction_at_most(9.0))
            << " vs unchanged "
            << eval::TableWriter::fmt_pct(
                   1.0 - paths_unchanged.fraction_at_most(9.0))
            << " (paper: >80% vs ~40%)\n";
  bench::maybe_write_trace(flags, world.trace_json(), std::cout);
  return 0;
}
