// Figure 13 (Appendix B) — the number of BGP communities generating
// false-positive signals per day decreases as calibration learns and prunes
// communities unrelated to path changes.
//
// Flags: --days N --pairs N --seed N
#include <set>

#include "bench_common.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);

  eval::print_banner(std::cout, "Figure 13",
                     "false-positive communities pruned over time",
                     "the count of FP-generating communities decays day "
                     "over day as calibration prunes them");

  eval::World world(params);
  std::vector<signals::StalenessSignal> all_signals;
  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (auto& s : sigs) all_signals.push_back(std::move(s));
  };
  world.run_until(world.corpus_t0(), hooks);
  world.initialize_corpus();
  world.run_until(world.end(), hooks);

  eval::StalenessOracle oracle;
  oracle.ground_truth = &world.ground_truth();
  oracle.corpus_t0 = world.corpus_t0();
  oracle.refresh_times = world.recalibration_times();

  // Per day: distinct communities with at least one FP community signal.
  std::vector<std::set<std::uint32_t>> fp_by_day(
      static_cast<std::size_t>(params.days));
  std::vector<std::set<std::uint32_t>> all_by_day(
      static_cast<std::size_t>(params.days));
  for (const auto& signal : all_signals) {
    if (signal.technique != signals::Technique::kBgpCommunity) continue;
    std::int64_t day = (signal.time - world.corpus_t0()) / kSecondsPerDay;
    if (day < 0 || day >= params.days) continue;
    all_by_day[static_cast<std::size_t>(day)].insert(signal.community.raw());
    if (!oracle.stale(signal.pair, signal.time)) {
      fp_by_day[static_cast<std::size_t>(day)].insert(signal.community.raw());
    }
  }

  eval::TableWriter table(
      {"day", "communities signalling", "with false positives", "pruned so "
       "far"});
  for (int d = 0; d < params.days; ++d) {
    table.add_row({std::to_string(d),
                   std::to_string(all_by_day[std::size_t(d)].size()),
                   std::to_string(fp_by_day[std::size_t(d)].size()), ""});
  }
  table.print(std::cout);
  std::cout << "\ncommunities pruned globally by the end: "
            << world.engine().community_reputation().pruned_count()
            << "; still generating FPs: "
            << world.engine()
                   .community_reputation()
                   .active_false_positive_communities()
            << "\n";
  bench::maybe_write_trace(flags, world.trace_json(), std::cout);
  return 0;
}
