// Chaos recovery sweep (DESIGN.md §14) — the in-process half of the chaos
// harness. A grid of (kill-at-window k) × (io-fault seed s) points, each
// verifying the crash-fault-tolerance acceptance bar:
//
//   1. A clean baseline run (no checkpointing, no storage faults) records
//      the per-window staleness-signal stream and the semantic stats.
//   2. The chaos arm runs the same world checkpointed under an injected
//      storage-fault plan, is torn down at window k (a simulated crash —
//      the World is destructed mid-run, exactly what kill -9 leaves
//      behind modulo the page cache), and is then finished by a
//      supervised resume (eval/supervisor.h) from the scrubbed directory.
//   3. The point passes when the recovered run's signal stream and
//      semantic stats are byte-identical to the clean baseline, and the
//      checkpoint directory holds no live-looking debris (every stray
//      *.tmp swept into corrupt/).
//
// The external half — a real kill -9 loop against the fig11 binary — is
// tools/chaos_smoke.py; both write the same BENCH_chaos_recovery.json
// shape for CI.
//
// Flags: --days N --pairs N --seed N --kills N --io-seeds N
//        --io-fault-plan SPEC --io-retry SPEC --work-dir D --keep-dirs
//        --out F
#include <filesystem>
#include <map>
#include <optional>
#include <sstream>

#include <unistd.h>

#include "bench_common.h"

namespace fs = std::filesystem;
using namespace rrr;

namespace {

// Per-window digest of the signal stream: the window's signals rendered
// to text, overwritten (not appended) on supervisor re-delivery.
using SignalDigest = std::map<std::int64_t, std::string>;

eval::World::Hooks digest_hooks(SignalDigest& digest) {
  eval::World::Hooks hooks;
  hooks.on_signals = [&digest](std::int64_t window, TimePoint,
                               std::vector<signals::StalenessSignal>&& sigs) {
    std::string text;
    for (const auto& s : sigs) {
      text += s.to_string();
      text += '\n';
    }
    digest[window] = std::move(text);
  };
  return hooks;
}

struct GridResult {
  std::int64_t kill_window = 0;
  std::uint64_t io_seed = 0;
  bool crashed_early = false;  // phase 1 died on a StoreError before k
  int recoveries = 0;
  bool signals_identical = false;
  bool semantic_identical = false;
  int stray_tmp = 0;     // *.tmp left outside corrupt/ (must be 0)
  int quarantined = 0;   // artifacts parked in corrupt/
  bool pass = false;
};

int count_stray_tmp(const std::string& dir) {
  std::error_code ec;
  int count = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.ends_with(".tmp")) ++count;
  }
  return count;
}

int count_entries(const std::string& dir) {
  std::error_code ec;
  int count = 0;
  for ([[maybe_unused]] const fs::directory_entry& entry :
       fs::directory_iterator(dir, ec)) {
    ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  eval::WorldParams base = bench::retrospective_params(flags);
  base.days = static_cast<int>(flags.get_int("days", 2));
  base.corpus_pair_target = static_cast<int>(flags.get_int("pairs", 150));
  base.telemetry = true;  // semantic stats are the comparison artifact
  int kills = static_cast<int>(flags.get_int("kills", 2));
  int io_seeds = static_cast<int>(flags.get_int("io-seeds", 2));

  // Default chaos plan when --io-fault-plan is absent: every fault class
  // at a rate that fires multiple times per run at this scale. The retry
  // default of "no retries" would turn every reported fault into a
  // recovery, which is a valid but slow way to pass — give the retry
  // policy a small budget unless the user picked one.
  if (!base.io_fault_plan.enabled()) {
    fault::IoFaultPlan plan;
    plan.torn_write_rate = 0.02;
    plan.bit_flip_rate = 0.01;
    plan.enospc_rate = 0.01;
    plan.eio_write_rate = 0.005;
    plan.crash_rename_rate = 0.01;
    // Mostly-transient keeps some grid points alive all the way to their
    // kill window, so both crash modes — a reported fault mid-run and the
    // simulated kill — appear across the grid.
    plan.transient_fraction = 0.9;
    base.io_fault_plan = plan;
  }
  if (base.io_retry.max_attempts <= 1) {
    base.io_retry.max_attempts = 4;
    base.io_retry.base_delay_us = 50;
    base.io_retry.max_delay_us = 1000;
  }

  eval::print_banner(std::cout, "Chaos sweep",
                     "crash-at-window × io-fault-seed recovery grid",
                     "every point recovers unaided with a byte-identical "
                     "semantic signal stream");

  // Clean baseline: no checkpointing, no faults, no supervisor.
  SignalDigest clean_digest;
  std::string clean_semantic;
  std::int64_t total_windows = 0;
  std::int64_t window_seconds = 0;
  {
    eval::WorldParams params = base;
    params.checkpoint_dir.clear();
    params.resume_from.clear();
    params.io_fault_plan = fault::IoFaultPlan{};
    params.supervise = false;
    eval::World world(params);
    world.run_all(digest_hooks(clean_digest));
    clean_semantic = world.semantic_stats_json();
    total_windows = world.completed_windows();
    window_seconds = world.window_seconds();
  }
  std::cout << "baseline: " << total_windows << " windows, "
            << clean_digest.size() << " signal window(s) recorded\n\n";

  std::string work_root = flags.get_str("work-dir", "");
  if (work_root.empty()) {
    work_root = (fs::temp_directory_path() /
                 ("rrr_chaos_sweep." + std::to_string(::getpid())))
                    .string();
  }

  std::vector<GridResult> grid;
  for (int ki = 0; ki < kills; ++ki) {
    // Kill points spread over the run's interior, never at window 0.
    std::int64_t kill_window =
        std::max<std::int64_t>(1, total_windows * (ki + 1) / (kills + 1));
    for (int si = 0; si < io_seeds; ++si) {
      GridResult point;
      point.kill_window = kill_window;
      point.io_seed = base.io_fault_plan.seed + static_cast<std::uint64_t>(si);

      const std::string dir = work_root + "/k" + std::to_string(kill_window) +
                              "s" + std::to_string(point.io_seed);
      fs::remove_all(dir);
      fs::create_directories(dir);

      SignalDigest digest;
      eval::World::Hooks hooks = digest_hooks(digest);

      // Phase 1: checkpointed run under faults, torn down at the kill
      // window. A StoreError before that point is itself a crash.
      eval::WorldParams params = base;
      params.checkpoint_dir = dir;
      params.io_fault_plan.seed = point.io_seed;
      params.supervise = false;
      const TimePoint kill_time =
          TimePoint(kill_window * window_seconds);
      try {
        eval::World world(params);
        world.run_until(std::min(kill_time, world.corpus_t0()), hooks);
        if (kill_time > world.corpus_t0()) {
          world.initialize_corpus();
          world.run_until(kill_time, hooks);
        }
      } catch (const store::StoreError&) {
        point.crashed_early = true;
      }

      // Phase 2: supervised resume to the end. The supervisor scrubs the
      // crash debris up front and self-heals any further failures.
      eval::WorldParams resumed = params;
      resumed.resume_from = dir;
      resumed.supervise = true;
      // Chaos rates are far above anything a real disk produces; give the
      // supervisor headroom over its default recovery budget.
      eval::SupervisorParams sup_params;
      sup_params.max_recoveries = 100;
      eval::Supervisor supervisor(resumed, sup_params);
      supervisor.run(hooks);
      point.recoveries = static_cast<int>(supervisor.recoveries().size());
      std::unique_ptr<eval::World> world = supervisor.take_world();

      point.signals_identical = digest == clean_digest;
      point.semantic_identical =
          world->semantic_stats_json() == clean_semantic;
      point.stray_tmp = count_stray_tmp(dir);
      point.quarantined = count_entries(dir + "/corrupt");
      point.pass = point.signals_identical && point.semantic_identical &&
                   point.stray_tmp == 0;
      grid.push_back(point);

      std::cout << "kill@" << kill_window << " seed=" << point.io_seed
                << ": " << (point.pass ? "PASS" : "FAIL")
                << (point.crashed_early ? " (crashed early)" : "")
                << ", recoveries=" << point.recoveries
                << ", quarantined=" << point.quarantined
                << ", stray_tmp=" << point.stray_tmp << "\n";
    }
  }

  bool all_pass = true;
  for (const GridResult& point : grid) all_pass &= point.pass;

  const std::string out_path =
      flags.get_str("out", "BENCH_chaos_recovery.json");
  {
    std::ofstream out(out_path);
    out << "{\"schema\":\"rrr-chaos-v1\",\"mode\":\"in-process\","
        << "\"windows\":" << total_windows << ",\"grid\":[";
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const GridResult& p = grid[i];
      if (i > 0) out << ",";
      out << "{\"kill_window\":" << p.kill_window
          << ",\"io_seed\":" << p.io_seed
          << ",\"crashed_early\":" << (p.crashed_early ? "true" : "false")
          << ",\"recoveries\":" << p.recoveries
          << ",\"signals_identical\":"
          << (p.signals_identical ? "true" : "false")
          << ",\"semantic_identical\":"
          << (p.semantic_identical ? "true" : "false")
          << ",\"stray_tmp\":" << p.stray_tmp
          << ",\"quarantined\":" << p.quarantined
          << ",\"pass\":" << (p.pass ? "true" : "false") << "}";
    }
    out << "],\"pass\":" << (all_pass ? "true" : "false") << "}\n";
  }
  std::cout << "\nchaos grid: " << grid.size() << " point(s), "
            << (all_pass ? "all recovered byte-identical"
                         : "FAILURES present")
            << "; wrote " << out_path << "\n";

  if (!flags.get_bool("keep-dirs")) {
    std::error_code ec;
    fs::remove_all(work_root, ec);
  }
  return all_pass ? 0 : 1;
}
