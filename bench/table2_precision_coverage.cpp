// Table 2 — precision and coverage of every staleness prediction technique
// in the retrospective evaluation (§5.1.3).
//
// Paper reference (60-day RIPE Atlas retrospective, 223k pairs):
//   BGP AS-paths     377,067 signals  p=0.82  cov(all)=0.13 (uniq 0.07)
//   BGP communities  267,571          p=0.80  cov(all)=0.09 (uniq 0.05)
//   BGP bursts       363,368          p=0.72  cov(all)=0.11 (uniq 0.03)
//   BGP total      1,008,006          p=0.74  cov(all)=0.27
//   Colocation       305,909          p=0.85  cov(all)=0.13 (uniq 0.08)
//   Trace subpaths 1,244,558          p=0.81  cov(all)=0.51 (uniq 0.35)
//   Trace borders    261,965          p=0.83  cov(all)=0.11 (uniq 0.07)
//   Trace total    1,812,432          p=0.82  cov(all)=0.69
//   All            2,820,438          p=0.80  cov(all)=0.81  (AS 0.86, border 0.79)
//
// Flags: --days N --pairs N --dests N --public-rate N --seed N
//        --ablate-stationarity (keep outlier windows in detector history)
//        --per-day (also print the Figure 6 style daily series)
//        --seeds N (independent replicates) --threads N (fan-out pool)
//        --engine-threads N (parallel window closing inside each World)
#include <algorithm>
#include <map>
#include <sstream>

#include "bench_common.h"
#include "eval/metrics.h"

namespace {

using namespace rrr;

// One full replicate at `seed`, rendered to text (tasks run concurrently,
// so nothing may write to stdout until the fan-out returns). `trace_out`
// receives the primary replicate's flight-recorder export (--trace-out).
std::string run_replicate(eval::WorldParams params, std::uint64_t seed,
                          const bench::Flags& flags,
                          std::string* trace_out = nullptr) {
  params.seed = seed;
  std::ostringstream out;
  out << "world: " << params.days << " days, target "
      << params.corpus_pair_target << " pairs, seed " << params.seed << "\n";

  eval::World world(params);
  std::vector<signals::StalenessSignal> all_signals;
  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (auto& s : sigs) all_signals.push_back(std::move(s));
  };
  world.run_until(world.corpus_t0(), hooks);
  std::size_t pairs = world.initialize_corpus();
  world.run_until(world.end(), hooks);

  const auto& changes = world.ground_truth().changes();
  out << "corpus: " << pairs << " pairs; ground truth: " << changes.size()
      << " changes; signals: " << all_signals.size() << "\n\n";

  eval::StalenessOracle oracle;
  oracle.ground_truth = &world.ground_truth();
  oracle.corpus_t0 = world.corpus_t0();
  oracle.refresh_times = world.recalibration_times();
  eval::SignalMatcher matcher(all_signals, changes, {}, &oracle);
  eval::Table2Result result = matcher.table2();
  eval::Table2Result strict = matcher.table2(/*strict_precision=*/true);

  eval::TableWriter table({"Technique", "#Signals", "Precision",
                           "Cov all", "uniq", "Cov AS", "uniq",
                           "Cov border", "uniq"});
  auto row = [&](const eval::TechniqueRow& r, bool totals) {
    table.add_row({r.name, eval::TableWriter::fmt_int(r.signal_count),
                   eval::TableWriter::fmt(r.precision),
                   eval::TableWriter::fmt(r.cov_all),
                   totals ? "" : eval::TableWriter::fmt(r.cov_all_unique),
                   eval::TableWriter::fmt(r.cov_as),
                   totals ? "" : eval::TableWriter::fmt(r.cov_as_unique),
                   eval::TableWriter::fmt(r.cov_border),
                   totals ? "" : eval::TableWriter::fmt(r.cov_border_unique)});
  };
  // BGP techniques first (paper row order), then the BGP total, etc.
  row(result.techniques[0], false);
  row(result.techniques[1], false);
  row(result.techniques[2], false);
  row(result.bgp_total, true);
  table.add_separator();
  row(result.techniques[3], false);
  row(result.techniques[4], false);
  row(result.techniques[5], false);
  row(result.trace_total, true);
  table.add_separator();
  row(result.all, true);
  table.print(out);

  out << "strict staleness-vs-last-refresh precision: all="
      << eval::TableWriter::fmt(strict.all.precision)
      << " bgp=" << eval::TableWriter::fmt(strict.bgp_total.precision)
      << " trace=" << eval::TableWriter::fmt(strict.trace_total.precision)
      << "\n";
  out << "\nchanges: total=" << result.total_changes
      << " AS-level=" << result.as_changes
      << " border-level=" << result.border_changes << "\n";

  if (flags.get_bool("monitor-stats")) {
    auto stats = world.engine().subpath_monitor().stats();
    out << "\nsubpath monitor: segments=" << stats.segments
        << " subscribed=" << stats.subscribed << " armed=" << stats.armed
        << " dormant=" << stats.dormant
        << " observations=" << stats.observations << " mean-multiplier="
        << eval::TableWriter::fmt(stats.mean_multiplier, 1) << "\n";
    std::map<std::string, int> fp_communities;
    for (std::size_t s = 0; s < all_signals.size(); ++s) {
      const auto& sig = all_signals[s];
      if (sig.technique != signals::Technique::kBgpCommunity) continue;
      if (oracle.stale(sig.pair, sig.time)) continue;
      fp_communities[sig.community.to_string()]++;
    }
    int geo_tp = 0, geo_fp = 0, te_tp = 0, te_fp = 0;
    for (std::size_t s = 0; s < all_signals.size(); ++s) {
      const auto& sig = all_signals[s];
      if (sig.technique != signals::Technique::kBgpCommunity) continue;
      bool tp = oracle.stale(sig.pair, sig.time);
      bool geo = topo::is_geo_community_value(sig.community.value());
      (geo ? (tp ? geo_tp : geo_fp) : (tp ? te_tp : te_fp))++;
    }
    out << "community signals: geo tp=" << geo_tp << " fp=" << geo_fp
        << "; te tp=" << te_tp << " fp=" << te_fp << "\n";
    const auto cstats = world.engine().community_stats();
    out << "community monitor: records=" << cstats.records
        << " diffs=" << cstats.diffs
        << " no-prev-overlap=" << cstats.no_prev_overlap
        << " no-new-overlap=" << cstats.no_new_overlap
        << " path-rule=" << cstats.path_rule
        << " known-elsewhere=" << cstats.known_elsewhere
        << " pruned=" << cstats.pruned << " fired=" << cstats.fired << "\n";
    out << "community FPs by community (top):\n";
    std::vector<std::pair<int, std::string>> ranked;
    for (auto& [c, n] : fp_communities) ranked.emplace_back(n, c);
    std::sort(ranked.rbegin(), ranked.rend());
    for (std::size_t i = 0; i < std::min<std::size_t>(12, ranked.size());
         ++i) {
      out << "  " << ranked[i].second << ": " << ranked[i].first << "\n";
    }
  }

  if (flags.get_int("cov-debug", 0) > 0) {
    int budget = static_cast<int>(flags.get_int("cov-debug", 0));
    int shown = 0;
    for (std::size_t c = 0; c < changes.size() && shown < budget; ++c) {
      if (changes[c].kind != tracemap::ChangeKind::kBorderLevel) continue;
      if (matcher.change_matched_mask(c) != 0) continue;  // covered
      ++shown;
      out << "MISSED border change pair(probe=" << changes[c].pair.probe
          << ", dst=" << changes[c].pair.dst.to_string() << ") at "
          << changes[c].time.to_string() << " crossing#"
          << changes[c].changed_crossing << "\n  segments:";
      for (const auto& info :
           world.engine().subpath_monitor().segments_for(changes[c].pair)) {
        out << " [b#" << info.border_index << " len=" << info.length
            << (info.armed ? " armed" : "")
            << (info.dormant ? " dormant" : "") << " mult=" << info.multiplier;
        if (info.has_ratio) {
          out << " r=" << eval::TableWriter::fmt(info.last_ratio);
        }
        out << "]";
      }
      out << "\n";
    }
  }

  if (flags.get_int("debug-fp", 0) > 0) {
    int budget = static_cast<int>(flags.get_int("debug-fp", 0));
    std::map<signals::Technique, int> printed;
    // Index changes per pair for context.
    std::map<tr::PairKey, std::vector<const eval::ChangeEvent*>> by_pair;
    for (const auto& c : changes) by_pair[c.pair].push_back(&c);
    for (std::size_t s = 0; s < all_signals.size(); ++s) {
      const auto& sig = all_signals[s];
      if (oracle.stale(sig.pair, sig.time)) continue;  // TP
      if (printed[sig.technique]++ >= budget) continue;
      out << "FP " << sig.to_string() << " t=" << sig.time.to_string()
          << " span=" << sig.span_seconds;
      if (sig.community.raw() != 0) {
        out << " community=" << sig.community.to_string();
      }
      out << "\n  pair changes:";
      auto it = by_pair.find(sig.pair);
      if (it != by_pair.end()) {
        for (const auto* c : it->second) {
          out << " [" << c->time.to_string() << " "
              << (c->kind == tracemap::ChangeKind::kAsLevel ? "AS" : "border")
              << " ev=" << c->cause_event << "]";
        }
      } else {
        out << " none-ever";
      }
      out << "\n";
    }
  }

  if (flags.get_bool("per-day")) {
    out << "\nFigure 6 style daily series:\n";
    eval::TableWriter daily({"day", "prec(AS)", "prec(border)", "cov(AS)",
                             "cov(border)", "#signals", "#changes"});
    for (const auto& point :
         matcher.daily_series(world.corpus_t0(), params.days)) {
      daily.add_row({std::to_string(point.day),
                     eval::TableWriter::fmt(point.precision_as),
                     eval::TableWriter::fmt(point.precision_border),
                     eval::TableWriter::fmt(point.coverage_as),
                     eval::TableWriter::fmt(point.coverage_border),
                     std::to_string(point.signals),
                     std::to_string(point.changes)});
    }
    daily.print(out);
  }
  if (trace_out != nullptr) *trace_out = world.trace_json();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);
  if (flags.get_bool("ablate-stationarity")) {
    params.subpath.zscore.drop_outliers_from_history = false;
    params.border.zscore.drop_outliers_from_history = false;
  }

  eval::print_banner(
      std::cout, "Table 2", "precision & coverage per technique",
      "all techniques precise (0.72-0.85); combined coverage 0.81 of all "
      "changes, 0.86 AS-level, 0.79 border-level");

  auto seeds = static_cast<std::size_t>(flags.get_int("seeds", 1));
  if (seeds == 0) seeds = 1;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < seeds; ++i) {
    labels.push_back("seed " +
                     std::to_string(bench::replicate_seed(params.seed, i)));
  }
  std::string primary_trace;
  std::vector<std::string> reports = bench::fan_out<std::string>(
      bench::fanout_threads(flags, seeds), labels,
      [&](std::size_t i) {
        return run_replicate(params, bench::replicate_seed(params.seed, i),
                             flags, i == 0 ? &primary_trace : nullptr);
      },
      std::cout);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) std::cout << "\n";
    std::cout << reports[i];
  }
  bench::maybe_write_trace(flags, primary_trace, std::cout);
  return 0;
}
