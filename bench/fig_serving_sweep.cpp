// Serving sweep — query latency vs concurrency vs engine throughput for
// the staleness query service (serve/service.h, docs/API.md).
//
// Two questions, two phases:
//
//  1. *Load arms* — the same retrospective world runs with 0 (baseline),
//     then N concurrent HTTP clients hammering the /v1 route family for
//     the whole run. Each arm reports query p50/p99 latency, sustained
//     queries/s, and the engine's window-close throughput; the headline
//     check is that serving under load keeps window throughput within 5%
//     of the no-serving baseline (readers take one acquire-load and never
//     block the close — see serve/snapshot.h).
//
//  2. *Determinism grid* — the world re-runs across
//     (engine_shards × engine_threads × pipeline_absorb) points with
//     serving attached and clients querying throughout. The semantic
//     signal stream (FNV digest + count) and the semantic telemetry
//     snapshot must be byte-identical across every grid point AND equal
//     to the load arms' — serving only reads, so attaching it must not
//     move one byte of output. Any mismatch exits nonzero.
//
// Arms run sequentially on purpose: this harness measures time, so arms
// must not compete for cores.
//
// Writes BENCH_serving_latency.json (schema rrr-serving-v1).
//
// Flags: --days N --pairs N --seed N --public-rate N
//        --clients-list 0,2,8 --grid 1x1x0,2x2x1,4x2x1 --think-us N
//        --out BENCH_serving_latency.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "serve/http_client.h"

namespace {

using namespace rrr;

// FNV-1a over the semantic signal stream; the same mix fig_pipeline_sweep
// uses, so digests are comparable across harnesses.
struct SignalDigest {
  std::uint64_t digest = 1469598103934665603ull;
  std::int64_t count = 0;

  void fold(std::int64_t window,
            const std::vector<signals::StalenessSignal>& sigs) {
    for (const signals::StalenessSignal& s : sigs) {
      auto mix = [this](std::uint64_t v) {
        digest = (digest ^ v) * 1099511628211ull;
      };
      mix(static_cast<std::uint64_t>(window));
      mix(static_cast<std::uint64_t>(s.pair.probe));
      mix(s.pair.dst.value());
      mix(static_cast<std::uint64_t>(s.technique));
      mix(static_cast<std::uint64_t>(s.potential));
      ++count;
    }
  }
};

// One client thread's loop: rotate through the documented routes until the
// stop flag, recording whole-round-trip latencies.
struct ClientStats {
  std::vector<double> latencies_us;
  std::int64_t errors = 0;
};

void client_loop(int port, const std::vector<std::string>& targets,
                 std::size_t offset, std::int64_t think_us,
                 const std::atomic<bool>& stop, ClientStats& stats) {
  std::size_t i = offset;  // stagger starting routes across clients
  while (!stop.load(std::memory_order_relaxed)) {
    const auto begin = std::chrono::steady_clock::now();
    std::optional<serve::HttpResult> result =
        serve::http_get(port, targets[i++ % targets.size()]);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - begin)
                          .count();
    if (result && result->status == 200) {
      stats.latencies_us.push_back(us);
    } else {
      ++stats.errors;
    }
    // Closed-loop client with think time: without it the fleet busy-spins
    // the loopback into a CPU-starvation test (every core burns on socket
    // churn and the engine measurement reads as scheduler contention, not
    // serving cost). --think-us 0 restores the saturation mode.
    if (think_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(think_us));
    }
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

struct ArmResult {
  std::string label;
  int clients = 0;
  int shards = 1;
  int threads = 1;
  bool pipeline = true;
  double run_seconds = 0.0;      // timed segment: corpus_t0 -> end
  std::int64_t windows = 0;      // windows closed in the timed segment
  std::int64_t queries = 0;
  std::int64_t query_errors = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double qps = 0.0;
  SignalDigest digest;
  std::string semantic;          // semantic telemetry snapshot (JSON)
  std::uint64_t snapshots = 0;   // ServingSnapshots published
};

double windows_per_s(const ArmResult& r) {
  return r.run_seconds > 0.0
             ? static_cast<double>(r.windows) / r.run_seconds
             : 0.0;
}

ArmResult run_arm(eval::WorldParams params, const std::string& label,
                  int clients, int shards, int threads, bool pipeline,
                  std::int64_t think_us) {
  params.telemetry = true;  // semantic snapshot is half the determinism check
  params.engine_shards = shards;
  params.engine_threads = threads;
  params.pipeline_absorb = pipeline;

  ArmResult result;
  result.label = label;
  result.clients = clients;
  result.shards = shards;
  result.threads = threads;
  result.pipeline = pipeline;

  eval::World world(params);
  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t window, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    result.digest.fold(window, sigs);
  };
  world.run_until(world.corpus_t0(), hooks);
  world.initialize_corpus();

  // Serving stack: service + server + client fleet, present only on
  // serving arms so the baseline measures the engine alone.
  serve::StalenessService service;
  std::unique_ptr<obs::HttpServer> server;
  std::vector<std::thread> fleet;
  std::vector<ClientStats> stats(static_cast<std::size_t>(
      clients > 0 ? clients : 0));
  std::atomic<bool> stop{false};
  // Declared at function scope: the client threads reference `targets`
  // until they are joined below.
  std::vector<std::string> targets;
  if (clients > 0) {
    world.attach_serving(&service);
    obs::HttpHandlers handlers;
    handlers.api = [&service](const std::string& target) {
      return service.handle(target);
    };
    server = std::make_unique<obs::HttpServer>(0, std::move(handlers));
    // Query mix over every documented /v1 route, anchored on a real pair.
    const tr::PairKey pair = world.ground_truth().pairs().front();
    const std::string pair_query = "src=" + std::to_string(pair.probe) +
                                   "&dst=" + pair.dst.to_string();
    targets = {
        "/v1/verdict?" + pair_query,
        "/v1/signals?" + pair_query + "&limit=8",
        "/v1/pairs?limit=50",
        "/v1/pairs?freshness=stale&limit=50",
        "/v1/refresh-queue?k=20",
    };
    for (int c = 0; c < clients; ++c) {
      fleet.emplace_back([&, c] {
        client_loop(server->port(), targets, static_cast<std::size_t>(c),
                    think_us, stop, stats[static_cast<std::size_t>(c)]);
      });
    }
  }

  const std::int64_t windows_before = world.completed_windows();
  const auto begin = std::chrono::steady_clock::now();
  world.run_until(world.end(), hooks);
  result.run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  result.windows = world.completed_windows() - windows_before;

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : fleet) t.join();
  server.reset();
  world.attach_serving(nullptr);

  std::vector<double> merged;
  for (const ClientStats& s : stats) {
    merged.insert(merged.end(), s.latencies_us.begin(),
                  s.latencies_us.end());
    result.query_errors += s.errors;
  }
  result.queries = static_cast<std::int64_t>(merged.size());
  std::sort(merged.begin(), merged.end());
  result.p50_us = percentile(merged, 0.50);
  result.p99_us = percentile(merged, 0.99);
  result.qps = result.run_seconds > 0.0
                   ? static_cast<double>(result.queries) / result.run_seconds
                   : 0.0;
  result.semantic = world.semantic_stats_json();
  result.snapshots = service.windows_published();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);
  params.days = static_cast<int>(flags.get_int("days", 4));
  params.corpus_pair_target = static_cast<int>(flags.get_int("pairs", 600));

  eval::print_banner(std::cout, "Serving sweep",
                     "query latency under load vs engine throughput",
                     "snapshot readers never block a window close; serving "
                     "moves zero bytes of the semantic stream");

  auto parse_list = [&](const std::string& spec) {
    std::vector<std::string> items;
    std::istringstream in(spec);
    std::string item;
    while (std::getline(in, item, ',')) {
      if (!item.empty()) items.push_back(item);
    }
    return items;
  };

  // Default pacing = a 10 ms operator-poll cadence per client. The within-5%
  // throughput check below compares wall-clock window rates, so the fleet
  // must model a realistic query load, not a core-saturation attack — on a
  // single-core box an unpaced fleet turns the comparison into a scheduler
  // benchmark. --think-us 0 gives the saturation mode when that is the
  // question being asked.
  const std::int64_t think_us = flags.get_int("think-us", 10000);

  // Phase 1: load arms at the session's engine configuration.
  std::vector<ArmResult> arms;
  for (const std::string& item :
       parse_list(flags.get_str("clients-list", "0,2,8"))) {
    const int clients = std::atoi(item.c_str());
    const std::string label =
        clients == 0 ? "baseline" : "clients=" + item;
    arms.push_back(run_arm(params, label, clients, params.engine_shards,
                           params.engine_threads, params.pipeline_absorb,
                           think_us));
    const ArmResult& r = arms.back();
    std::cout << "  [" << r.label << "] "
              << eval::TableWriter::fmt(r.run_seconds, 2) << " s, "
              << r.windows << " windows";
    if (clients > 0) {
      std::cout << ", " << r.queries << " queries, p99 "
                << eval::TableWriter::fmt(r.p99_us, 0) << " us";
    }
    std::cout << "\n";
  }

  // Phase 2: determinism grid (shards x threads x pipeline) with serving
  // attached and a small client fleet querying throughout.
  std::vector<ArmResult> grid;
  for (const std::string& item :
       parse_list(flags.get_str("grid", "1x1x0,2x2x1,4x2x1"))) {
    int shards = 1, threads = 1, pipeline = 1;
    if (std::sscanf(item.c_str(), "%dx%dx%d", &shards, &threads,
                    &pipeline) != 3) {
      std::cerr << "grid: cannot parse \"" << item << "\" — ignored\n";
      continue;
    }
    const std::string label = "grid " + item;
    grid.push_back(
        run_arm(params, label, 2, shards, threads, pipeline != 0, think_us));
    std::cout << "  [" << label << "] "
              << eval::TableWriter::fmt(grid.back().run_seconds, 2)
              << " s\n";
  }

  // --- report ---
  const ArmResult* baseline = nullptr;
  for (const ArmResult& r : arms) {
    if (r.clients == 0) baseline = &r;
  }
  eval::TableWriter table({"arm", "clients", "windows/s", "vs baseline",
                           "queries", "qps", "p50 us", "p99 us", "errors"});
  for (const ArmResult& r : arms) {
    const double ratio = baseline != nullptr && windows_per_s(*baseline) > 0
                             ? windows_per_s(r) / windows_per_s(*baseline)
                             : 1.0;
    table.add_row(
        {r.label, std::to_string(r.clients),
         eval::TableWriter::fmt(windows_per_s(r), 1),
         eval::TableWriter::fmt_pct(ratio), std::to_string(r.queries),
         eval::TableWriter::fmt(r.qps, 0),
         eval::TableWriter::fmt(r.p50_us, 0),
         eval::TableWriter::fmt(r.p99_us, 0),
         std::to_string(r.query_errors)});
  }
  table.print(std::cout);

  // Throughput headline: worst serving arm vs baseline. Advisory (timing
  // is machine-dependent); the determinism check below is the hard gate.
  bool within_5pct = true;
  if (baseline != nullptr) {
    for (const ArmResult& r : arms) {
      if (r.clients == 0) continue;
      const double ratio = windows_per_s(*baseline) > 0
                               ? windows_per_s(r) / windows_per_s(*baseline)
                               : 1.0;
      if (ratio < 0.95) within_5pct = false;
    }
    std::cout << (within_5pct
                      ? "serving throughput within 5% of baseline\n"
                      : "WARNING: serving cost exceeds 5% of baseline "
                        "window throughput\n");
  }

  // Determinism: every arm and grid point must agree on the signal stream
  // and the semantic telemetry snapshot.
  bool identical = true;
  std::vector<const ArmResult*> all;
  for (const ArmResult& r : arms) all.push_back(&r);
  for (const ArmResult& r : grid) all.push_back(&r);
  for (const ArmResult* r : all) {
    if (r->digest.digest != all.front()->digest.digest ||
        r->digest.count != all.front()->digest.count ||
        r->semantic != all.front()->semantic) {
      std::cout << "DIVERGED: " << r->label << " (digest "
                << r->digest.digest << ", " << r->digest.count
                << " signals)\n";
      identical = false;
    }
  }
  std::cout << (identical
                    ? "semantic stream identical across all "
                    : "ERROR: semantic stream diverged across ")
            << all.size() << " arm(s) with serving "
            << (identical ? "on\n" : "on — determinism contract violated\n");

  // --- artifact ---
  const std::string path =
      flags.get_str("out", "BENCH_serving_latency.json");
  std::ofstream out(path);
  if (out) {
    out << "{\"schema\":\"rrr-serving-v1\",\"days\":" << params.days
        << ",\"pairs\":" << params.corpus_pair_target
        << ",\"baseline_windows_per_s\":"
        << (baseline != nullptr ? windows_per_s(*baseline) : 0.0)
        << ",\"within_5pct\":" << (within_5pct ? "true" : "false")
        << ",\"deterministic\":" << (identical ? "true" : "false")
        << ",\"arms\":[";
    bool first = true;
    for (const ArmResult* r : all) {
      if (!first) out << ",";
      first = false;
      out << "{\"label\":\"" << obs::json_escape(r->label)
          << "\",\"clients\":" << r->clients << ",\"shards\":" << r->shards
          << ",\"threads\":" << r->threads
          << ",\"pipeline\":" << (r->pipeline ? "true" : "false")
          << ",\"windows\":" << r->windows
          << ",\"windows_per_s\":" << windows_per_s(*r)
          << ",\"queries\":" << r->queries << ",\"qps\":" << r->qps
          << ",\"p50_us\":" << r->p50_us << ",\"p99_us\":" << r->p99_us
          << ",\"errors\":" << r->query_errors
          << ",\"snapshots\":" << r->snapshots
          << ",\"signals\":" << r->digest.count
          << ",\"signal_digest\":\"" << r->digest.digest << "\"}";
    }
    out << "]}\n";
    std::cout << "wrote " << path << "\n";
  } else {
    std::cerr << "cannot open " << path << "\n";
  }
  return identical ? 0 : 1;
}
