// Figure 11 & §6.2 — reusability of archival traceroutes: of all the
// traceroutes accumulated over the period, how many are still *fresh*
// (no staleness signal since they were taken, every border monitored),
// how many are *stale*, *unknown* (not fully monitorable), or fresh but
// from a probe that has since died.
//
// Paper reference: over two weeks of RIPE Atlas data (1.15B traceroutes),
// ~60% remain fresh and reusable at the end; ~4% of reusable ones are from
// dead probes (27M traces usable but unrepeatable); stale traces accumulate
// faster at first. 90.3% of user-defined measurements could be served from
// the archive (68.6% after accounting for the feedback loop).
//
// Seed replicates are independent worlds, so the sweep fans out over the
// pool; each task renders its own report and the outputs print in seed
// order whatever the parallelism.
//
// Warm-start arm (DESIGN.md §11): `--checkpoint-dir D` snapshots each
// replicate into D/<label>; a later `--resume D` run fast-forwards from
// those snapshots instead of replaying the engine from t=0. The semantic
// stats of cold and warm runs are byte-identical (the resume-determinism
// contract); the printed day table covers only post-resume days, since the
// bench-level archive bookkeeping is not part of the checkpoint.
//
// Supervised arm (DESIGN.md §14): `--supervise` wraps the run in the
// self-healing recovery supervisor, so a store failure (typically injected
// via --io-fault-plan) scrubs the checkpoint directory and resumes instead
// of killing the process. Hooks here follow the supervisor's re-delivery
// contract: archive/table/signal state is keyed by day or window, never
// appended blindly, so a re-delivered boundary overwrites rather than
// duplicates. The live obs endpoint is not attached in supervised mode —
// incarnations are born and die inside the run, and the endpoint must
// never serve a pointer to a dead one.
//
// Flags: --days N --pairs N --seed N --seeds N --threads N
//        --checkpoint-dir D --checkpoint-every N --resume D
//        --resume-window K --io-fault-plan SPEC --io-retry SPEC
//        --supervise --trace-out F --serve-obs PORT
//        --serve-obs-linger N --serve PORT --serve-linger N --watchdog
#include <optional>
#include <set>
#include <sstream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams base = bench::retrospective_params(flags);
  base.days = static_cast<int>(flags.get_int("days", 14));
  // Archive mode: traceroutes accumulate; nothing is refreshed for free.
  base.recalibration_interval_windows = 0;
  base.platform.probe_death_per_day = 0.006;
  int seeds = static_cast<int>(flags.get_int("seeds", 1));

  eval::print_banner(std::cout, "Figure 11",
                     "fresh vs stale archival traceroutes over time",
                     "~60% of two weeks of traceroutes remain fresh; ~4% of "
                     "fresh ones are from dead probes");

  std::vector<std::string> labels;
  for (int k = 0; k < seeds; ++k) {
    labels.push_back(
        "s" + std::to_string(bench::replicate_seed(base.seed,
                                                   std::size_t(k))));
  }
  struct Replicate {
    std::string report;
    bench::RunStats stats;
  };
  int threads = bench::fanout_threads(flags, labels.size());
  bench::ScopedObsServer obs_server(flags, std::cout);
  std::vector<Replicate> replicates = bench::fan_out<Replicate>(
      threads, labels,
      [&](std::size_t k) {
        eval::WorldParams params = base;
        params.seed = bench::replicate_seed(base.seed, k);
        // Replicates are independent worlds, so each gets its own
        // checkpoint directory under the flag's base path.
        if (!params.checkpoint_dir.empty()) {
          params.checkpoint_dir += "/" + labels[k];
        }
        if (!params.resume_from.empty()) {
          params.resume_from += "/" + labels[k];
        }
        std::ostringstream out;

        // The archive: (pair, issue day). Every pair contributes one
        // archived trace per day (scaled stand-in for the public firehose).
        struct Archived {
          tr::PairKey pair;
          TimePoint issued;
        };
        std::vector<Archived> archive;
        // Stale knowledge, keyed by the window that produced it so a
        // window re-delivered after a supervisor recovery overwrites its
        // own signals instead of appending duplicates (the re-delivery
        // contract in eval/supervisor.h).
        std::map<std::int64_t, std::vector<signals::StalenessSignal>>
            signals_by_window;
        // Flattened view: for each pair, times at which signals fired.
        std::map<tr::PairKey, std::vector<TimePoint>> signal_times;
        auto rebuild_signal_times = [&] {
          signal_times.clear();
          for (const auto& [window, sigs] : signals_by_window) {
            (void)window;
            for (const auto& s : sigs) signal_times[s.pair].push_back(s.time);
          }
        };
        auto stale_after = [&](const tr::PairKey& pair, TimePoint issued) {
          auto it = signal_times.find(pair);
          if (it == signal_times.end()) return false;
          for (TimePoint st : it->second) {
            if (st > issued) return true;
          }
          return false;
        };

        // The current incarnation: under the supervisor the World may be
        // torn down and rebuilt mid-run, so hooks resolve it per call
        // instead of capturing a reference that a recovery would dangle.
        std::optional<eval::Supervisor> supervisor;
        std::unique_ptr<eval::World> world_owner;
        auto current = [&]() -> eval::World& {
          return supervisor ? supervisor->world() : *world_owner;
        };

        eval::TableWriter table({"day", "archived", "fresh", "stale",
                                 "unknown", "fresh, dead probe"});
        int last_day = -1;  // re-delivered day boundaries are skipped
        eval::World::Hooks hooks;
        hooks.on_signals = [&](std::int64_t window, TimePoint,
                               std::vector<signals::StalenessSignal>&& sigs) {
          signals_by_window[window] = std::move(sigs);
        };
        hooks.on_day = [&](int day, TimePoint t) {
          eval::World& world = current();
          if (t < world.corpus_t0()) return;
          if (day <= last_day) return;  // already processed pre-recovery
          last_day = day;
          for (const tr::PairKey& pair : world.ground_truth().pairs()) {
            archive.push_back(Archived{pair, t});
          }
          // Classify the whole archive as of now.
          rebuild_signal_times();
          std::int64_t fresh = 0, stale = 0, unknown = 0, fresh_dead = 0;
          for (const Archived& entry : archive) {
            if (stale_after(entry.pair, entry.issued)) {
              ++stale;
              continue;
            }
            // Unknown: the engine cannot monitor every border of this pair.
            tr::Freshness freshness = world.engine().freshness(entry.pair);
            if (freshness == tr::Freshness::kUnknown) {
              ++unknown;
              continue;
            }
            ++fresh;
            if (!world.platform().probe(entry.pair.probe).active) {
              ++fresh_dead;
            }
          }
          table.add_row({std::to_string(day - params.warmup_days + 1),
                         eval::TableWriter::fmt_int(
                             static_cast<std::int64_t>(archive.size())),
                         eval::TableWriter::fmt_pct(
                             double(fresh) / double(archive.size())),
                         eval::TableWriter::fmt_pct(
                             double(stale) / double(archive.size())),
                         eval::TableWriter::fmt_pct(
                             double(unknown) / double(archive.size())),
                         eval::TableWriter::fmt_pct(
                             fresh ? double(fresh_dead) / double(fresh)
                                   : 0)});
        };

        if (params.supervise) {
          // Supervised: run_all under the recovery loop. No obs lease —
          // incarnations are born and die inside run(), and the endpoint
          // must never hold a pointer to a dead one.
          supervisor.emplace(params);
          supervisor->run(hooks);
          if (!supervisor->recoveries().empty()) {
            out << "supervised: recovered "
                << supervisor->recoveries().size() << " time(s)";
            for (const eval::RecoveryEvent& event :
                 supervisor->recoveries()) {
              out << "; resume@" << event.resume_window;
            }
            out << "\n";
          }
          world_owner = supervisor->take_world();
          supervisor.reset();
          out << "archive sources: "
              << world_owner->ground_truth().pairs().size()
              << " pairs, accumulating one measurement per pair per day\n\n";
          table.print(out);
        } else {
          world_owner = std::make_unique<eval::World>(params);
          eval::World& world = *world_owner;
          // The live endpoint follows the primary replicate for the length
          // of its run; other replicates stay detached.
          std::optional<bench::WorldLease> lease;
          if (k == 0 && obs_server.active()) {
            lease.emplace(obs_server, &world);
          }
          if (!params.resume_from.empty()) {
            out << "warm start: resumed at window "
                << world.completed_windows()
                << "; day rows below cover the remainder of the run\n";
          }
          world.run_until(world.corpus_t0());
          std::size_t pairs = world.initialize_corpus();
          out << "archive sources: " << pairs << " pairs, accumulating one "
              << "measurement per pair per day\n\n";
          world.run_until(world.end(), hooks);
          table.print(out);
        }
        eval::World& world = *world_owner;
        rebuild_signal_times();

        // §6.2's request-serving estimate: a request for (probe AS+city ->
        // destination prefix) can be served when a fresh archived trace
        // exists for some pair with the same source AS/city and destination
        // block.
        std::set<std::pair<std::uint64_t, std::uint32_t>> fresh_keys;
        std::set<std::pair<std::uint64_t, std::uint32_t>> all_keys;
        for (const Archived& entry : archive) {
          const tr::Probe& probe = world.platform().probe(entry.pair.probe);
          std::uint64_t src_key =
              (std::uint64_t{probe.as} << 16) | probe.city;
          std::uint32_t dst_block = entry.pair.dst.value() >> 16;
          all_keys.insert({src_key, dst_block});
          if (!stale_after(entry.pair, entry.issued) &&
              world.engine().freshness(entry.pair) == tr::Freshness::kFresh) {
            fresh_keys.insert({src_key, dst_block});
          }
        }
        out << "\n(AS,city)->prefix demands servable by a fresh archived "
            << "trace: "
            << eval::TableWriter::fmt_pct(
                   all_keys.empty() ? 0
                                    : double(fresh_keys.size()) /
                                          double(all_keys.size()))
            << " (paper: 90.3% of UDMs; 68.6% with the feedback loop)\n";
        return Replicate{out.str(), bench::capture_stats(labels[k], world)};
      },
      std::cout);

  for (int k = 0; k < seeds; ++k) {
    std::cout << "\nseed "
              << bench::replicate_seed(base.seed, std::size_t(k)) << ":\n"
              << replicates[static_cast<std::size_t>(k)].report;
  }
  std::vector<bench::RunStats> stats;
  for (Replicate& replicate : replicates) {
    stats.push_back(std::move(replicate.stats));
  }
  bench::maybe_write_trace(flags, stats.empty() ? "" : stats[0].trace,
                           std::cout);
  bench::write_stats_json(bench::stats_json_path(flags), stats, std::cout);
  return 0;
}
