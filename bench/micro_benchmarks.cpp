// Micro-benchmarks for the performance-critical building blocks: longest
// prefix matching, outlier detectors, route computation, forwarding
// resolution, and traceroute processing.
#include <benchmark/benchmark.h>

#include "detect/detector.h"
#include "netbase/radix_trie.h"
#include "netbase/rng.h"
#include "routing/control_plane.h"
#include "topology/builder.h"
#include "tracemap/pipeline.h"
#include "traceroute/platform.h"

namespace {

using namespace rrr;

topo::Topology& shared_topology() {
  static topo::Topology topology = [] {
    topo::TopologyParams params;
    params.seed = 1234;
    return topo::build_topology(params);
  }();
  return topology;
}

void BM_RadixTrieLookup(benchmark::State& state) {
  RadixTrie<int> trie;
  Rng rng(1);
  std::vector<Ipv4> probes;
  for (int i = 0; i < 4096; ++i) {
    auto ip = Ipv4(static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30)));
    trie.insert(Prefix(ip, static_cast<std::uint8_t>(
                               rng.uniform_int(8, 24))),
                i);
    probes.push_back(ip);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(probes[i++ & 4095]));
  }
}
BENCHMARK(BM_RadixTrieLookup);

void BM_ModifiedZScoreUpdate(benchmark::State& state) {
  detect::ModifiedZScoreDetector detector;
  Rng rng(2);
  for (int i = 0; i < 96; ++i) detector.update(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.update(rng.uniform()));
  }
}
BENCHMARK(BM_ModifiedZScoreUpdate);

void BM_BitmapUpdate(benchmark::State& state) {
  detect::BitmapDetector detector;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) detector.update(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.update(rng.uniform()));
  }
}
BENCHMARK(BM_BitmapUpdate);

void BM_RouteComputation(benchmark::State& state) {
  topo::Topology& topology = shared_topology();
  routing::RoutingState rs(topology);
  std::size_t origin = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::compute_routes(
        topology, rs, static_cast<topo::AsIndex>(origin)));
    origin = (origin + 17) % topology.as_count();
  }
}
BENCHMARK(BM_RouteComputation);

void BM_ForwardingResolve(benchmark::State& state) {
  topo::Topology& topology = shared_topology();
  static routing::ControlPlane cp(topology, 5);
  Rng rng(6);
  std::vector<std::pair<topo::AsIndex, Ipv4>> queries;
  for (int i = 0; i < 512; ++i) {
    auto src = static_cast<topo::AsIndex>(rng.index(topology.as_count()));
    auto dst = static_cast<topo::AsIndex>(rng.index(topology.as_count()));
    queries.emplace_back(
        src, Ipv4(topo::as_block(dst).network().value() + 1));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [src, dst] = queries[i++ & 511];
    benchmark::DoNotOptimize(cp.resolver().resolve(
        src, topology.as_at(src).pops.front(), dst, i));
  }
}
BENCHMARK(BM_ForwardingResolve);

void BM_TraceProcessing(benchmark::State& state) {
  topo::Topology& topology = shared_topology();
  static routing::ControlPlane cp(topology, 7);
  static tr::Platform platform(cp, tr::ProberParams{},
                               tr::PlatformParams{});
  static tracemap::ProcessingContext processing(topology, {});
  Rng rng(8);
  std::vector<tr::Traceroute> traces;
  for (int i = 0; i < 256; ++i) {
    tr::ProbeId probe = platform.regular_probes()[rng.index(
        platform.regular_probes().size())];
    auto dst_as =
        static_cast<topo::AsIndex>(rng.index(topology.as_count()));
    traces.push_back(platform.issue(
        probe, Ipv4(topo::as_block(dst_as).network().value() + 1),
        TimePoint(static_cast<std::int64_t>(i) * 900), i & 0xF));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(processing.process(traces[i++ & 255]));
  }
}
BENCHMARK(BM_TraceProcessing);

}  // namespace

BENCHMARK_MAIN();
