// Micro-benchmarks for the performance-critical building blocks: longest
// prefix matching, outlier detectors, route computation, forwarding
// resolution, traceroute processing, and the engine's parallel window
// closing (BM_AdvanceTo; emit BENCH_parallel_scaling.json with
//   --benchmark_filter=AdvanceTo --benchmark_out=BENCH_parallel_scaling.json
//   --benchmark_out_format=json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "detect/detector.h"
#include "eval/world.h"
#include "netbase/intern.h"
#include "netbase/radix_trie.h"
#include "netbase/rng.h"
#include "runtime/arena.h"
#include "routing/control_plane.h"
#include "topology/builder.h"
#include "tracemap/pipeline.h"
#include "traceroute/platform.h"

namespace {

using namespace rrr;

topo::Topology& shared_topology() {
  static topo::Topology topology = [] {
    topo::TopologyParams params;
    params.seed = 1234;
    return topo::build_topology(params);
  }();
  return topology;
}

void BM_RadixTrieLookup(benchmark::State& state) {
  RadixTrie<int> trie;
  Rng rng(1);
  std::vector<Ipv4> probes;
  for (int i = 0; i < 4096; ++i) {
    auto ip = Ipv4(static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30)));
    trie.insert(Prefix(ip, static_cast<std::uint8_t>(
                               rng.uniform_int(8, 24))),
                i);
    probes.push_back(ip);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(probes[i++ & 4095]));
  }
}
BENCHMARK(BM_RadixTrieLookup);

void BM_ModifiedZScoreUpdate(benchmark::State& state) {
  detect::ModifiedZScoreDetector detector;
  Rng rng(2);
  for (int i = 0; i < 96; ++i) detector.update(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.update(rng.uniform()));
  }
}
BENCHMARK(BM_ModifiedZScoreUpdate);

void BM_BitmapUpdate(benchmark::State& state) {
  detect::BitmapDetector detector;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) detector.update(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.update(rng.uniform()));
  }
}
BENCHMARK(BM_BitmapUpdate);

void BM_RouteComputation(benchmark::State& state) {
  topo::Topology& topology = shared_topology();
  routing::RoutingState rs(topology);
  std::size_t origin = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::compute_routes(
        topology, rs, static_cast<topo::AsIndex>(origin)));
    origin = (origin + 17) % topology.as_count();
  }
}
BENCHMARK(BM_RouteComputation);

void BM_ForwardingResolve(benchmark::State& state) {
  topo::Topology& topology = shared_topology();
  static routing::ControlPlane cp(topology, 5);
  Rng rng(6);
  std::vector<std::pair<topo::AsIndex, Ipv4>> queries;
  for (int i = 0; i < 512; ++i) {
    auto src = static_cast<topo::AsIndex>(rng.index(topology.as_count()));
    auto dst = static_cast<topo::AsIndex>(rng.index(topology.as_count()));
    queries.emplace_back(
        src, Ipv4(topo::as_block(dst).network().value() + 1));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [src, dst] = queries[i++ & 511];
    benchmark::DoNotOptimize(cp.resolver().resolve(
        src, topology.as_at(src).pops.front(), dst, i));
  }
}
BENCHMARK(BM_ForwardingResolve);

void BM_TraceProcessing(benchmark::State& state) {
  topo::Topology& topology = shared_topology();
  static routing::ControlPlane cp(topology, 7);
  static tr::Platform platform(cp, tr::ProberParams{},
                               tr::PlatformParams{});
  static tracemap::ProcessingContext processing(topology, {});
  Rng rng(8);
  std::vector<tr::Traceroute> traces;
  for (int i = 0; i < 256; ++i) {
    tr::ProbeId probe = platform.regular_probes()[rng.index(
        platform.regular_probes().size())];
    auto dst_as =
        static_cast<topo::AsIndex>(rng.index(topology.as_count()));
    traces.push_back(platform.issue(
        probe, Ipv4(topo::as_block(dst_as).network().value() + 1),
        TimePoint(static_cast<std::int64_t>(i) * 900), i & 0xF));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(processing.process(traces[i++ & 255]));
  }
}
BENCHMARK(BM_TraceProcessing);

// End-to-end window closing of the staleness engine, parameterized by
// engine thread count, shard count, and corpus size. One iteration = one
// 900 s window: the feed (public traces, untimed) plus advance_to (timed).
// The signal stream is identical at every (shards, threads) combination
// (the engine's determinism contract); only the wall time changes, so the
// 1-shard 1-thread arg is the serial baseline the others are compared
// against.
struct AdvanceToFixture {
  explicit AdvanceToFixture(int threads, int shards = 1, int pairs = 2000,
                            int num_probes = 700, bool telemetry = false,
                            bool pipeline = true, bool trace = false) {
    eval::WorldParams params;
    params.days = 1;
    params.warmup_days = 1;
    params.corpus_pair_target = pairs;
    params.corpus_dest_count = 40;
    params.public_dest_count = 120;
    params.public_traces_per_window = 800;
    params.platform.num_probes = num_probes;
    params.topology.num_transit = 48;
    params.topology.num_stub = 200;
    params.recalibration_interval_windows = 0;
    params.seed = 20200642;
    params.engine_threads = threads;
    params.engine_shards = shards;
    params.telemetry = telemetry;
    params.pipeline_absorb = pipeline;
    params.trace = trace;
    world = std::make_unique<eval::World>(params);
    world->run_until(world->corpus_t0());
    world->initialize_corpus();
    now = world->corpus_t0();

    // A fixed pool of public traceroutes, replayed every window with
    // shifted timestamps — the per-window feed is identical work.
    Rng rng(9);
    const auto& probes = world->public_probes();
    const auto& dests = world->public_dests();
    for (int i = 0; i < 800 && !probes.empty() && !dests.empty(); ++i) {
      tr::ProbeId probe = probes[rng.index(probes.size())];
      if (!world->platform().probe(probe).active) continue;
      Ipv4 dst = dests[rng.index(dests.size())];
      pool.push_back(world->platform().issue(probe, dst, now, i & 0xF));
    }
  }

  // Feeds one window's worth of traces, timestamps shifted into the
  // current window. Also drains the flight recorder (when tracing) so the
  // rings never fill mid-measurement — a full ring fails pushes fast and
  // would understate the recording cost. The drain itself runs untimed,
  // matching World::run_until's boundary drain.
  void feed_window() {
    if (world->tracer() != nullptr) world->tracer()->drain();
    const std::int64_t w = world->window_seconds();
    std::int64_t spacing =
        pool.empty() ? w
                     : std::max<std::int64_t>(w / std::int64_t(pool.size()), 1);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      tr::Traceroute trace = pool[i];
      trace.time = now + std::int64_t(i) * spacing;
      world->engine().on_public_trace(trace);
    }
  }

  std::unique_ptr<eval::World> world;
  std::vector<tr::Traceroute> pool;
  TimePoint now{0};
};

void BM_AdvanceTo(benchmark::State& state) {
  AdvanceToFixture fixture(static_cast<int>(state.range(0)));
  std::size_t signals = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fixture.feed_window();
    state.ResumeTiming();
    auto sigs =
        fixture.world->engine().advance_to(fixture.now +
                                           fixture.world->window_seconds());
    benchmark::DoNotOptimize(sigs.data());
    signals += sigs.size();
    fixture.now = fixture.now + fixture.world->window_seconds();
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["signals"] = static_cast<double>(signals);
}
// 96 iterations = one full simulated day, so the measured span contains
// exactly one periodic full-sweep window (window % 96 == 95) — the close
// path where every monitored series is evaluated, not just touched ones.
BENCHMARK(BM_AdvanceTo)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(96)
    ->Unit(benchmark::kMillisecond);

// Sharded-engine scaling on a larger (>= 4000-pair) corpus: sweeps the
// (shards, threads) grid so the per-dimension contributions separate —
// shards alone exercise the partition with a serial scheduler, threads
// alone the intra-engine monitor fan-out, and the combined points the
// two-level parallelism. Emit BENCH_sharded_scaling.json with
//   --benchmark_filter=ShardedAdvanceTo
//   --benchmark_out=BENCH_sharded_scaling.json --benchmark_out_format=json
void BM_ShardedAdvanceTo(benchmark::State& state) {
  AdvanceToFixture fixture(static_cast<int>(state.range(1)),
                           static_cast<int>(state.range(0)),
                           /*pairs=*/4200, /*probes=*/900);
  std::size_t signals = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fixture.feed_window();
    state.ResumeTiming();
    auto sigs =
        fixture.world->engine().advance_to(fixture.now +
                                           fixture.world->window_seconds());
    benchmark::DoNotOptimize(sigs.data());
    signals += sigs.size();
    fixture.now = fixture.now + fixture.world->window_seconds();
  }
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["signals"] = static_cast<double>(signals);
  state.counters["corpus"] =
      static_cast<double>(fixture.world->engine().corpus_size());
}
BENCHMARK(BM_ShardedAdvanceTo)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->Iterations(96)
    ->Unit(benchmark::kMillisecond);

// Epoch-pipelined absorb vs. the serial schedule (DESIGN.md §10): Args are
// {threads, pipeline}. Pipelined, the table absorb runs on the pool while
// the monitors close against the published epoch; serial, it runs inline
// between the BGP and trace closes. The output is bit-identical either way
// (the determinism grid asserts it), so the wall-time delta is pure
// overlap. Four shards keep phase A busy enough for the overlap to show at
// 4+ threads. Emit BENCH_pipeline_scaling.json with
//   --benchmark_filter=PipelinedAdvanceTo
//   --benchmark_out=BENCH_pipeline_scaling.json --benchmark_out_format=json
void BM_PipelinedAdvanceTo(benchmark::State& state) {
  AdvanceToFixture fixture(static_cast<int>(state.range(0)), /*shards=*/4,
                           /*pairs=*/4200, /*probes=*/900,
                           /*telemetry=*/false,
                           /*pipeline=*/state.range(1) != 0,
                           /*trace=*/state.range(2) != 0);
  std::size_t signals = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fixture.feed_window();
    state.ResumeTiming();
    auto sigs =
        fixture.world->engine().advance_to(fixture.now +
                                           fixture.world->window_seconds());
    benchmark::DoNotOptimize(sigs.data());
    signals += sigs.size();
    fixture.now = fixture.now + fixture.world->window_seconds();
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["pipeline"] = static_cast<double>(state.range(1));
  state.counters["trace"] = static_cast<double>(state.range(2));
  state.counters["signals"] = static_cast<double>(signals);
}
// The {4, 1, 1} arm is the tracing-cost guard on the fully parallel close:
// compare it against {4, 1, 0} — the delta is the recorder's span pushes
// on the pool threads and must stay under the ~5% budget (DESIGN.md §13).
BENCHMARK(BM_PipelinedAdvanceTo)
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({4, 0, 0})
    ->Args({4, 1, 0})
    ->Args({4, 1, 1})
    ->Iterations(96)
    ->Unit(benchmark::kMillisecond);

// Telemetry overhead on the full close path, three arms (emit
// BENCH_trace_overhead.json with --benchmark_filter=TelemetryOverhead):
//   Arg(0) — registry and recorder both off: every instrumentation site
//            (counter, histogram, span) is one null-pointer branch;
//   Arg(1) — metrics on, tracing off: every counter/histogram/span live;
//   Arg(2) — metrics AND the flight recorder on: each close-path span
//            additionally stamps two steady_clock reads and one SPSC push.
// DESIGN.md §13 documents the budgets: Arg(1)/Arg(0) must stay under ~2%,
// Arg(2)/Arg(0) under ~5%. If either regresses, a registry lookup, an
// allocation, or an unconditional clock read leaked into a per-item loop —
// fix that rather than accepting the number.
void BM_TelemetryOverhead(benchmark::State& state) {
  AdvanceToFixture fixture(/*threads=*/1, /*shards=*/1, /*pairs=*/2000,
                           /*probes=*/700,
                           /*telemetry=*/state.range(0) >= 1,
                           /*pipeline=*/true,
                           /*trace=*/state.range(0) >= 2);
  std::size_t signals = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fixture.feed_window();
    state.ResumeTiming();
    auto sigs =
        fixture.world->engine().advance_to(fixture.now +
                                           fixture.world->window_seconds());
    benchmark::DoNotOptimize(sigs.data());
    signals += sigs.size();
    fixture.now = fixture.now + fixture.world->window_seconds();
  }
  state.counters["telemetry"] = static_cast<double>(state.range(0) >= 1);
  state.counters["trace"] = static_cast<double>(state.range(0) >= 2);
  state.counters["signals"] = static_cast<double>(signals);
}
BENCHMARK(BM_TelemetryOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(96)
    ->Unit(benchmark::kMillisecond);

// The two primitives the interning refactor put on the per-record path:
// content→id lookup of an already-interned AS path (the steady state — new
// content is rare by design) and id→content resolution (one acquire-load).
void BM_InternLookup(benchmark::State& state) {
  Interner::ScopedInstance interner;
  Rng rng(7);
  std::vector<AsPath> paths;
  std::vector<PathId> ids;
  for (int i = 0; i < 1024; ++i) {
    AsPath path;
    int hops = static_cast<int>(rng.uniform_int(2, 6));
    for (int h = 0; h < hops; ++h) {
      path.push_back(Asn(static_cast<std::uint32_t>(
          rng.uniform_int(64500, 64500 + 200))));
    }
    paths.push_back(path);
    ids.push_back(interner.get().path_id(path));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    PathId id = interner.get().path_id(paths[i & 1023]);
    benchmark::DoNotOptimize(id);
    benchmark::DoNotOptimize(&interner.get().path(ids[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_InternLookup);

// The window-close allocation pattern with and without the epoch arena:
// build a dispatched-batch-sized vector of 64-byte records, tear it down,
// repeat. Arg(1) = arena backing with reset() per epoch (the engines'
// steady state: zero heap traffic); Arg(0) = plain heap vector.
void BM_ArenaVsHeapBacklog(benchmark::State& state) {
  struct Rec {
    std::uint64_t words[8];
  };
  constexpr std::size_t kBatch = 4096;
  const bool use_arena = state.range(0) != 0;
  runtime::Arena arena;
  for (auto _ : state) {
    if (use_arena) {
      std::vector<Rec, runtime::ArenaAllocator<Rec>> batch{
          runtime::ArenaAllocator<Rec>(arena)};
      batch.reserve(kBatch);
      for (std::size_t i = 0; i < kBatch; ++i) {
        batch.push_back(Rec{{i, i, i, i, i, i, i, i}});
      }
      benchmark::DoNotOptimize(batch.data());
      batch.clear();
      arena.reset();
    } else {
      std::vector<Rec> batch;
      batch.reserve(kBatch);
      for (std::size_t i = 0; i < kBatch; ++i) {
        batch.push_back(Rec{{i, i, i, i, i, i, i, i}});
      }
      benchmark::DoNotOptimize(batch.data());
    }
  }
  state.counters["arena"] = static_cast<double>(state.range(0));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_ArenaVsHeapBacklog)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
