// Figure 1 — fraction of paths whose border-level / AS-level route differs
// from their initial measurement, as a function of time.
//
// Paper reference (RIPE Atlas anchoring mesh, 897 sources x 497 anchors):
// changes accumulate non-monotonically; at 30 days ~16% of paths differ at
// border level; at 60 days ~28% border-level and ~15% AS-level. 72% of
// paths are unchanged even after two months.
//
// Flags: --days N --pairs N --seed N
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);
  params.days = static_cast<int>(flags.get_int("days", 30));
  // This experiment only needs ground truth; silence the heavy machinery.
  params.public_traces_per_window = 0;
  params.recalibration_interval_windows = 0;

  eval::print_banner(std::cout, "Figure 1",
                     "fraction of paths changed vs initial measurement",
                     "~16% border-level at 30 days; 28% border / 15% AS at "
                     "60 days; non-monotonic (paths revert)");

  eval::World world(params);
  world.run_until(world.corpus_t0());
  std::size_t pairs = world.initialize_corpus();
  std::cout << "corpus: " << pairs << " pairs, " << params.days
            << " days\n\n";

  eval::TableWriter table(
      {"day", "AS-level changed", "border-level changed", "unchanged"});
  eval::World::Hooks hooks;
  hooks.on_day = [&](int day, TimePoint) {
    std::size_t as_changed = 0;
    std::size_t border_changed = 0;
    for (const tr::PairKey& pair : world.ground_truth().pairs()) {
      const auto& initial = world.ground_truth().initial(pair);
      const auto& current = world.ground_truth().current(pair);
      switch (eval::GroundTruth::classify(initial, current)) {
        case tracemap::ChangeKind::kAsLevel:
          ++as_changed;
          break;
        case tracemap::ChangeKind::kBorderLevel:
          ++border_changed;
          break;
        case tracemap::ChangeKind::kNone:
          break;
      }
    }
    double n = static_cast<double>(pairs);
    // Figure 1 counts border-level as "subset of routers at inter-AS
    // borders differs", i.e. any change visible at border granularity
    // (AS-level changes imply border-level ones).
    double as_frac = static_cast<double>(as_changed) / n;
    double border_frac =
        static_cast<double>(as_changed + border_changed) / n;
    if (day % 2 == 1 || day + 1 == params.days) {
      table.add_row({std::to_string(day + 1 - params.warmup_days),
                     eval::TableWriter::fmt_pct(as_frac),
                     eval::TableWriter::fmt_pct(border_frac),
                     eval::TableWriter::fmt_pct(1.0 - border_frac)});
    }
  };
  world.run_until(world.end(), hooks);
  table.print(std::cout);
  std::cout << "\ntotal ground-truth change events: "
            << world.ground_truth().changes().size() << "\n";
  bench::maybe_write_trace(flags, world.trace_json(), std::cout);
  return 0;
}
