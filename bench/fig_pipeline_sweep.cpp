// Epoch-pipeline sweep — wall-clock effect of overlapping the BGP-table
// absorb with the monitor closes (DESIGN.md §10 "Epoch pipeline").
//
// Each arm runs the same retrospective world with the epoch-table absorb
// either serial (--pipeline 0 schedule) or pipelined, at each thread count.
// Arms run *sequentially* — this harness measures time, so they must not
// compete for cores. The signal stream is bit-identical across arms (the
// determinism contract; this harness re-checks a digest of it), so every
// difference in the close-path histograms is pure scheduling.
//
// The headline check mirrors the acceptance criterion: at the highest
// thread count, the pipelined total close time should come in at or below
// the serial total minus ~half the measured absorb span — i.e. the overlap
// actually hides the absorb instead of just moving it.
//
// Flags: --days N --pairs N --seed N --public-rate N
//        --engine-shards N (default 4) --threads-list 1,4
//        --stats-json PATH (default BENCH_pipeline_scaling.json)
#include <chrono>
#include <sstream>

#include "bench_common.h"

namespace {

using namespace rrr;

struct Arm {
  std::string label;
  int threads = 1;
  bool pipeline = false;
};

struct ArmResult {
  Arm arm;
  double wall_seconds = 0.0;
  double close_ms = 0.0;        // sum of rrr_engine_window_close_us
  double absorb_ms = 0.0;       // sum of rrr_engine_absorb_us
  double absorb_wait_ms = 0.0;  // sum of rrr_engine_absorb_wait_us
  std::int64_t flips = 0;
  std::uint64_t signal_digest = 0;
  std::int64_t signal_count = 0;
  bench::RunStats stats;
};

double sum_histogram_ms(const obs::Snapshot& snapshot,
                        const std::string& name) {
  double total_us = 0.0;
  for (const obs::MetricSnapshot& metric : snapshot) {
    if (metric.name == name) total_us += metric.sum;
  }
  return total_us / 1000.0;
}

std::int64_t sum_counter(const obs::Snapshot& snapshot,
                         const std::string& name) {
  std::int64_t total = 0;
  for (const obs::MetricSnapshot& metric : snapshot) {
    if (metric.name == name) total += metric.value;
  }
  return total;
}

ArmResult run_arm(eval::WorldParams params, const Arm& arm) {
  params.telemetry = true;  // the close-path spans are the measurement
  params.engine_threads = arm.threads;
  params.pipeline_absorb = arm.pipeline;

  eval::World world(params);
  std::uint64_t digest = 1469598103934665603ull;  // FNV-1a
  std::int64_t count = 0;
  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t window, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (const signals::StalenessSignal& s : sigs) {
      auto mix = [&digest](std::uint64_t v) {
        digest = (digest ^ v) * 1099511628211ull;
      };
      mix(static_cast<std::uint64_t>(window));
      mix(static_cast<std::uint64_t>(s.pair.probe));
      mix(s.pair.dst.value());
      mix(static_cast<std::uint64_t>(s.technique));
      mix(static_cast<std::uint64_t>(s.potential));
      ++count;
    }
  };
  auto begin = std::chrono::steady_clock::now();
  world.run_all(hooks);
  ArmResult result;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  result.arm = arm;
  obs::Snapshot snapshot = world.metrics()->snapshot();
  result.close_ms = sum_histogram_ms(snapshot, "rrr_engine_window_close_us");
  result.absorb_ms = sum_histogram_ms(snapshot, "rrr_engine_absorb_us");
  result.absorb_wait_ms =
      sum_histogram_ms(snapshot, "rrr_engine_absorb_wait_us");
  result.flips = sum_counter(snapshot, "rrr_epoch_flips_total");
  result.signal_digest = digest;
  result.signal_count = count;
  result.stats = bench::capture_stats(arm.label, world);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);
  params.days = static_cast<int>(flags.get_int("days", 6));
  if (params.engine_shards == 1) params.engine_shards = 4;

  eval::print_banner(std::cout, "Epoch-pipeline sweep",
                     "absorb/close overlap vs the serial schedule",
                     "pipelining hides the table absorb behind the monitor "
                     "closes without changing one byte of output");

  std::vector<int> thread_counts;
  {
    std::string item;
    std::istringstream in(flags.get_str("threads-list", "1,4"));
    while (std::getline(in, item, ',')) {
      if (!item.empty()) thread_counts.push_back(std::atoi(item.c_str()));
    }
  }

  std::vector<Arm> arms;
  for (int threads : thread_counts) {
    for (bool pipeline : {false, true}) {
      std::ostringstream label;
      label << "threads=" << threads
            << (pipeline ? " pipelined" : " serial");
      arms.push_back(Arm{label.str(), threads, pipeline});
    }
  }

  // Sequential on purpose: concurrent arms would share cores and corrupt
  // the wall-time comparison.
  std::vector<ArmResult> results;
  for (const Arm& arm : arms) {
    results.push_back(run_arm(params, arm));
    std::cout << "  [" << arm.label << "] "
              << eval::TableWriter::fmt(results.back().wall_seconds, 2)
              << " s\n";
  }

  eval::TableWriter table({"threads", "schedule", "wall s", "close ms",
                           "absorb ms", "wait ms", "flips", "#signals"});
  for (const ArmResult& r : results) {
    table.add_row({std::to_string(r.arm.threads),
                   r.arm.pipeline ? "pipelined" : "serial",
                   eval::TableWriter::fmt(r.wall_seconds, 2),
                   eval::TableWriter::fmt(r.close_ms, 1),
                   eval::TableWriter::fmt(r.absorb_ms, 1),
                   eval::TableWriter::fmt(r.absorb_wait_ms, 1),
                   std::to_string(r.flips),
                   std::to_string(r.signal_count)});
  }
  table.print(std::cout);

  // Output identity across every arm (the determinism contract).
  bool identical = true;
  for (const ArmResult& r : results) {
    if (r.signal_digest != results.front().signal_digest ||
        r.signal_count != results.front().signal_count) {
      identical = false;
    }
  }
  std::cout << (identical
                    ? "\nsignal stream identical across all arms\n"
                    : "\nWARNING: signal stream diverged across arms — "
                      "determinism contract violated\n");

  // Headline: overlap at the highest thread count.
  const ArmResult* serial = nullptr;
  const ArmResult* pipelined = nullptr;
  int max_threads = 0;
  for (const ArmResult& r : results) max_threads = std::max(max_threads, r.arm.threads);
  for (const ArmResult& r : results) {
    if (r.arm.threads != max_threads) continue;
    (r.arm.pipeline ? pipelined : serial) = &r;
  }
  if (serial != nullptr && pipelined != nullptr && max_threads > 1) {
    double target = serial->close_ms - 0.5 * serial->absorb_ms;
    std::cout << "threads=" << max_threads << ": close serial "
              << eval::TableWriter::fmt(serial->close_ms, 1)
              << " ms, pipelined "
              << eval::TableWriter::fmt(pipelined->close_ms, 1)
              << " ms (target <= "
              << eval::TableWriter::fmt(target, 1)
              << " ms = serial - 50% of "
              << eval::TableWriter::fmt(serial->absorb_ms, 1)
              << " ms absorb): "
              << (pipelined->close_ms <= target ? "overlapped"
                                                : "NOT overlapped")
              << "\n";
  }

  std::vector<bench::RunStats> stats;
  for (ArmResult& r : results) stats.push_back(std::move(r.stats));
  std::string path =
      flags.get_str("stats-json", "BENCH_pipeline_scaling.json");
  bench::maybe_write_trace(flags, stats.empty() ? "" : stats[0].trace,
                           std::cout);
  bench::write_stats_json(path, stats, std::cout);
  return 0;
}
