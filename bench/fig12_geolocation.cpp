// Figure 12 — validation of the geolocation technique (Appendix A): compare
// our per-IP locations against three reference databases of differing
// quality, as the paper does against OpenIPMap, a router-specific
// commercial database, and a general-purpose one.
//
// Paper reference: 93% exact match vs the crowd-sourced data (96% <100 km,
// 98% <500 km); 75% exact vs the router-specific database (90% <500 km);
// 60% exact vs the general-purpose database (82% <500 km).
//
// Flags: --seed N
#include "bench_common.h"
#include "netbase/rng.h"
#include "tracemap/geolocate.h"
#include "topology/city.h"

namespace {

using namespace rrr;

// A synthetic reference database: covers a fraction of router interfaces;
// correct entries report the true city, erroneous ones a different city of
// the same AS (or a random one).
struct ReferenceDb {
  const char* name;
  double coverage;
  double accuracy;
  const char* paper_note;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  eval::print_banner(std::cout, "Figure 12",
                     "geolocation validation against reference databases",
                     "93% exact vs crowd-sourced, 75% vs router-specific, "
                     "60% vs general-purpose");

  topo::TopologyParams tp;
  tp.seed = seed;
  topo::Topology topology = topo::build_topology(tp);
  tracemap::GeoParams gp;
  gp.seed = seed + 1;
  tracemap::Geolocator geolocator(topology, gp);

  const ReferenceDb dbs[] = {
      {"crowd-sourced (OpenIPMap-like)", 0.10, 0.97, "93% exact"},
      {"router-specific commercial", 0.45, 0.82, "75% exact"},
      {"general-purpose commercial", 1.00, 0.66, "60% exact"},
  };

  eval::TableWriter table({"database", "overlap", "exact", "<100km",
                           "<500km", "paper exact"});
  for (const ReferenceDb& db : dbs) {
    Rng rng(Rng(seed + 7).fork(static_cast<std::uint64_t>(db.coverage * 100)));
    std::int64_t overlap = 0, exact = 0, within100 = 0, within500 = 0;
    for (const topo::Router& router : topology.routers()) {
      for (Ipv4 ip : router.interfaces) {
        auto ours = geolocator.locate(ip);
        if (!ours) continue;
        if (!rng.bernoulli(db.coverage)) continue;
        // Reference database entry for this interface.
        topo::CityId reference = router.city;
        if (!rng.bernoulli(db.accuracy)) {
          const topo::AsNode& owner = topology.as_at(router.owner);
          reference = owner.pops.size() > 1
                          ? owner.pops[rng.index(owner.pops.size())]
                          : static_cast<topo::CityId>(
                                rng.index(topo::city_count()));
        }
        ++overlap;
        double km = topo::city_distance_km(*ours, reference);
        if (*ours == reference) ++exact;
        if (km < 100.0) ++within100;
        if (km < 500.0) ++within500;
      }
    }
    auto pct = [&](std::int64_t n) {
      return eval::TableWriter::fmt_pct(
          overlap ? double(n) / double(overlap) : 0);
    };
    table.add_row({db.name, eval::TableWriter::fmt_int(overlap), pct(exact),
                   pct(within100), pct(within500), db.paper_note});
  }
  table.print(std::cout);

  // Coverage of the technique itself (paper: located 82% of border IPs).
  std::int64_t total = 0, located = 0;
  for (const topo::Router& router : topology.routers()) {
    if (!router.is_border) continue;
    for (Ipv4 ip : router.interfaces) {
      ++total;
      if (geolocator.locate(ip)) ++located;
    }
  }
  std::cout << "\nborder interfaces located: "
            << eval::TableWriter::fmt_pct(total ? double(located) / total : 0)
            << " (paper: 82%)\n";
  return 0;
}
