// Figure 16 (Appendix D) — integration with iPlane: pruning traceroutes our
// signals flag as stale keeps iPlane's spliced-path predictions valid.
//
// Paper reference: (a) without pruning, over half of iPlane's spliced paths
// are invalid by the end of two months; with pruning the stale fraction
// rarely exceeds 20% and ends below 10%. (b) Pruning retains the vast
// majority of still-valid spliced paths.
//
// Flags: --days N --pairs N --seed N
#include <set>

#include "baselines/iplane.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);
  params.days = static_cast<int>(flags.get_int("days", 14));
  params.recalibration_interval_windows = 0;  // archive setting: no free refreshes

  eval::print_banner(std::cout, "Figure 16",
                     "iPlane splicing with staleness pruning",
                     "unpruned corpus: >50% of splices invalid by the end; "
                     "pruned: mostly <20%, while retaining most valid ones");

  eval::World world(params);
  world.run_until(world.corpus_t0());
  std::size_t pairs = world.initialize_corpus();

  // Build iPlane over the t0 corpus.
  baselines::IPlane iplane;
  for (const tr::PairKey& pair : world.ground_truth().pairs()) {
    const tracemap::ProcessedTrace* processed =
        world.engine().processed_of(pair);
    if (processed != nullptr) iplane.add(pair, *processed);
  }

  // Sample spliced paths: predictions between probes and anchors they do
  // not directly measure.
  struct Splice {
    baselines::SplicedPath path;
  };
  std::vector<Splice> splices;
  {
    std::set<std::pair<tr::ProbeId, Ipv4>> seen;
    for (const tr::PairKey& pair : world.ground_truth().pairs()) {
      for (Ipv4 dst : world.corpus_dests()) {
        if (dst == pair.dst) continue;
        if (!seen.insert({pair.probe, dst}).second) continue;
        if (auto spliced = iplane.predict(pair.probe, dst)) {
          splices.push_back(Splice{*spliced});
        }
        if (splices.size() >= 4000) break;
      }
      if (splices.size() >= 4000) break;
    }
  }
  std::cout << "corpus: " << pairs << " traceroutes; " << splices.size()
            << " spliced predictions sampled\n\n";

  // Track staleness flags as the world runs.
  std::set<tr::PairKey> flagged;
  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (const auto& s : sigs) flagged.insert(s.pair);
  };
  eval::TableWriter table({"day", "invalid (not pruned)",
                           "invalid & kept (pruned)",
                           "valid splices retained"});
  hooks.on_day = [&](int day, TimePoint t) {
    if (t <= world.corpus_t0()) return;
    if ((day - params.warmup_days) % 2 != 1) return;  // report every 2 days
    std::int64_t invalid = 0, invalid_kept = 0, valid = 0, valid_kept = 0;
    for (const Splice& splice : splices) {
      // Validity now, against the live forwarding state.
      auto passes = [&](const tr::PairKey& key) {
        tr::Traceroute now = world.issue_corpus_traceroute(key, t);
        tracemap::ProcessedTrace processed =
            world.processing().process(now);
        for (const baselines::Pop& pop :
             baselines::IPlane::pops_of(processed)) {
          if (pop == splice.path.junction) return true;
        }
        return false;
      };
      bool ok = passes(splice.path.first) && passes(splice.path.second);
      bool kept = !flagged.contains(splice.path.first) &&
                  !flagged.contains(splice.path.second);
      if (ok) {
        ++valid;
        if (kept) ++valid_kept;
      } else {
        ++invalid;
        if (kept) ++invalid_kept;
      }
    }
    auto pct = [](std::int64_t n, std::int64_t d) {
      return d > 0 ? eval::TableWriter::fmt_pct(double(n) / double(d))
                   : std::string("-");
    };
    std::int64_t total = static_cast<std::int64_t>(splices.size());
    std::int64_t kept_total = 0;
    for (const Splice& splice : splices) {
      if (!flagged.contains(splice.path.first) &&
          !flagged.contains(splice.path.second)) {
        ++kept_total;
      }
    }
    table.add_row({std::to_string(day - params.warmup_days + 1),
                   pct(invalid, total), pct(invalid_kept, kept_total),
                   pct(valid_kept, valid)});
  };
  world.run_until(world.end(), hooks);
  table.print(std::cout);
  bench::maybe_write_trace(flags, world.trace_json(), std::cout);
  return 0;
}
