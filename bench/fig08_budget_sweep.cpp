// Figure 8 — fraction of border-level changes detected vs per-path probing
// budget, for round-robin traceroutes, Sibyl patching, DTRACK, signals,
// DTRACK+SIGNALS, and an optimal-signals upper bound (§5.3, §6.1).
//
// Paper reference: more budget detects more changes everywhere; signals
// beat DTRACK at low budgets but plateau at their coverage; Sibyl improves
// on round-robin but trails both; DTRACK+SIGNALS dominates DTRACK (e.g.
// +24% border changes at Ark's budget) and is not coverage-limited;
// optimal signals win until budget suffices to remap every signal.
//
// Flags: --days N --pairs N --seed N
//        --threads N (fan-out pool; budget points run as independent tasks)
//        --engine-threads N (parallel window closing inside each World)
#include <set>

#include "baselines/strategies.h"
#include "bench_common.h"

namespace {

using namespace rrr;

// Oracle over the live world: strategies only query the present, which is
// all the emulation needs since they advance in lockstep with the world.
class WorldOracle final : public baselines::PathOracle {
 public:
  WorldOracle(eval::World& world, std::vector<tr::PairKey> pairs)
      : world_(world), pairs_(std::move(pairs)) {}

  std::size_t path_count() const override { return pairs_.size(); }

  std::vector<std::uint64_t> border_tokens(std::size_t path,
                                           TimePoint) const override {
    const auto& current = world_.ground_truth().current(pairs_[path]);
    std::vector<std::uint64_t> tokens;
    tokens.reserve(current.crossings.size());
    for (const auto& crossing : current.crossings) {
      tokens.push_back((std::uint64_t{crossing.interconnect} << 1) |
                       (crossing.forward ? 1 : 0));
    }
    return tokens;
  }

  std::uint64_t hop_token(std::size_t path, std::size_t index,
                          TimePoint t) const override {
    auto tokens = border_tokens(path, t);
    return index < tokens.size() ? tokens[index] : 0;
  }

  const tr::PairKey& pair_of(std::size_t path) const { return pairs_[path]; }
  std::size_t index_of(const tr::PairKey& pair) const {
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
      if (pairs_[i] == pair) return i;
    }
    return pairs_.size();
  }

 private:
  eval::World& world_;
  std::vector<tr::PairKey> pairs_;
};

// Credits detections against ground-truth change events: a remeasure (or
// patch) at time t detects the latest not-yet-credited change of its pair.
class DetectionLedger {
 public:
  void on_change(const eval::ChangeEvent& change, std::size_t path) {
    pending_[path].push_back(change.time);
    if (change.kind == tracemap::ChangeKind::kBorderLevel) {
      ++total_border_;
    }
    kinds_[path].push_back(change.kind);
  }
  void on_capture(std::size_t path, TimePoint t) {
    auto& times = pending_[path];
    auto& kinds = kinds_[path];
    // The capture reveals the latest change at or before t.
    int best = -1;
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (times[i] <= t) best = static_cast<int>(i);
    }
    if (best < 0) return;
    if (kinds[static_cast<std::size_t>(best)] ==
        tracemap::ChangeKind::kBorderLevel) {
      ++detected_border_;
    }
    // The capture synchronizes the stored state: changes older than the
    // credited one can never be individually detected anymore.
    times.erase(times.begin(), times.begin() + best + 1);
    kinds.erase(kinds.begin(), kinds.begin() + best + 1);
  }
  double border_detection_rate() const {
    return total_border_ > 0
               ? static_cast<double>(detected_border_) / total_border_
               : 0.0;
  }

 private:
  std::map<std::size_t, std::vector<TimePoint>> pending_;
  std::map<std::size_t, std::vector<tracemap::ChangeKind>> kinds_;
  std::int64_t total_border_ = 0;
  std::int64_t detected_border_ = 0;
};

// One (strategy, budget) emulation arm.
struct Arm {
  std::string name;
  std::unique_ptr<baselines::CorpusTracker> tracker;
  std::unique_ptr<baselines::RoundRobinStrategy> round_robin;
  std::unique_ptr<baselines::SibylStrategy> sibyl;
  std::unique_ptr<baselines::DtrackStrategy> dtrack;
  DetectionLedger ledger;
  baselines::EmulationStats stats;
  // Signal-driven refresh credit (for "signals" and "dtrack+signals").
  double credit = 0.0;
  bool uses_signals = false;
  bool optimal = false;
  baselines::ProbeBudget budget;
};

constexpr const char* kStrategyNames[] = {"round-robin", "sibyl",  "dtrack",
                                          "signals",     "dtrack+signals",
                                          "optimal-signals"};
constexpr std::size_t kStrategyCount = 6;

struct PpsResult {
  std::size_t path_count = 0;
  double rates[kStrategyCount] = {};
  bench::RunStats stats;
};

// One budget point: a private World (same seed everywhere, so every task
// replays the identical timeline and ground truth) running all six strategy
// arms at `pps` packets per second per path.
PpsResult run_pps(const eval::WorldParams& params, double pps,
                  const std::string& label) {
  eval::World world(params);
  world.run_until(world.corpus_t0());
  world.initialize_corpus();
  WorldOracle oracle(world, world.ground_truth().pairs());

  std::vector<std::unique_ptr<Arm>> arms;
  for (const char* name : kStrategyNames) {
    auto arm = std::make_unique<Arm>();
    arm->name = name;
    arm->budget.packets_per_second = pps * double(oracle.path_count());
    arm->budget.traceroute_cost = 15;
    arm->tracker = std::make_unique<baselines::CorpusTracker>(
        oracle, world.corpus_t0());
    std::string n = name;
    if (n == "round-robin") {
      arm->round_robin = std::make_unique<baselines::RoundRobinStrategy>(
          *arm->tracker, arm->budget);
    } else if (n == "sibyl") {
      arm->sibyl = std::make_unique<baselines::SibylStrategy>(
          *arm->tracker, arm->budget);
    } else if (n == "dtrack" || n == "dtrack+signals") {
      arm->dtrack = std::make_unique<baselines::DtrackStrategy>(
          *arm->tracker, arm->budget, baselines::DtrackStrategy::Params{},
          params.seed + 17);
      arm->uses_signals = n == "dtrack+signals";
    } else if (n == "signals") {
      arm->uses_signals = true;
    } else {
      arm->optimal = true;
    }
    Arm* raw = arm.get();
    arm->tracker->set_on_change([raw](std::size_t path, TimePoint t) {
      raw->ledger.on_capture(path, t);
    });
    arms.push_back(std::move(arm));
  }

  std::size_t change_cursor = 0;
  TimePoint last = world.corpus_t0();
  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t, TimePoint window_end,
                         std::vector<signals::StalenessSignal>&& sigs) {
    // Register newly arrived ground-truth changes with every ledger.
    const auto& changes = world.ground_truth().changes();
    for (; change_cursor < changes.size(); ++change_cursor) {
      std::size_t path = oracle.index_of(changes[change_cursor].pair);
      if (path >= oracle.path_count()) continue;
      for (auto& arm : arms) arm->ledger.on_change(changes[change_cursor], path);
    }
    double dt = static_cast<double>(window_end - last);
    last = window_end;

    // Unique pairs flagged in this window.
    std::set<std::size_t> flagged;
    for (const auto& signal : sigs) {
      std::size_t path = oracle.index_of(signal.pair);
      if (path < oracle.path_count()) flagged.insert(path);
    }

    for (auto& arm : arms) {
      if (arm->round_robin) arm->round_robin->advance(window_end, arm->stats);
      if (arm->sibyl) arm->sibyl->advance(window_end, arm->stats);
      if (arm->dtrack) arm->dtrack->advance(window_end, arm->stats);
      if (arm->uses_signals || arm->optimal) {
        arm->credit += arm->budget.packets_per_second * dt;
        if (arm->optimal) {
          // Upper bound: refresh exactly the pairs that truly changed.
          const auto& all = world.ground_truth().changes();
          // (re-scan the window's changes)
          for (std::size_t c = all.size(); c-- > 0;) {
            if (all[c].time < window_end - world.window_seconds()) break;
            std::size_t path = oracle.index_of(all[c].pair);
            if (path >= oracle.path_count()) continue;
            if (arm->credit >= arm->budget.traceroute_cost) {
              arm->credit -= arm->budget.traceroute_cost;
              arm->tracker->remeasure(path, window_end);
            }
          }
        } else {
          for (std::size_t path : flagged) {
            if (arm->credit < arm->budget.traceroute_cost) break;
            arm->credit -= arm->budget.traceroute_cost;
            ++arm->stats.traceroutes;
            arm->stats.packets_spent += arm->budget.traceroute_cost;
            arm->tracker->remeasure(path, window_end);
          }
        }
      }
    }
  };
  world.run_until(world.end(), hooks);

  PpsResult result;
  result.path_count = oracle.path_count();
  for (std::size_t s = 0; s < kStrategyCount; ++s) {
    result.rates[s] = arms[s]->ledger.border_detection_rate();
  }
  result.stats = bench::capture_stats(label, world);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);
  params.days = static_cast<int>(flags.get_int("days", 15));
  params.corpus_pair_target = static_cast<int>(flags.get_int("pairs", 800));
  params.recalibration_interval_windows = 0;

  eval::print_banner(std::cout, "Figure 8",
                     "changes detected vs probing budget",
                     "signals win at low budgets, plateau at coverage; "
                     "DTRACK+SIGNALS dominates DTRACK; Sibyl > round-robin");

  const std::vector<double> pps_values = {2e-5, 5e-5, 2e-4, 1e-3, 5e-3};
  std::vector<std::string> labels;
  for (double pps : pps_values) {
    labels.push_back("pps " + eval::TableWriter::fmt(pps, 5));
  }
  std::vector<PpsResult> results = bench::fan_out<PpsResult>(
      bench::fanout_threads(flags, pps_values.size()), labels,
      [&](std::size_t i) { return run_pps(params, pps_values[i], labels[i]); },
      std::cout);

  std::cout << "paths: " << results.front().path_count << ", " << params.days
            << " days\n\n";

  eval::TableWriter table({"pps/path", "round-robin", "sibyl", "dtrack",
                           "signals", "dtrack+signals", "optimal-signals"});
  for (std::size_t i = 0; i < pps_values.size(); ++i) {
    std::vector<std::string> row{eval::TableWriter::fmt(pps_values[i], 5)};
    for (std::size_t s = 0; s < kStrategyCount; ++s) {
      row.push_back(eval::TableWriter::fmt(results[i].rates[s]));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::vector<bench::RunStats> stats;
  for (PpsResult& result : results) stats.push_back(std::move(result.stats));
  bench::maybe_write_trace(flags, stats.empty() ? "" : stats[0].trace,
                           std::cout);
  bench::write_stats_json(bench::stats_json_path(flags), stats, std::cout);
  return 0;
}
