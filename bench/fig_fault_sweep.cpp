// Fault-resilience sweep — precision/coverage of the staleness signals as
// the feeds degrade, with and without feed-health gating.
//
// For each fault-plan kind (collector blackout with session-reset replay,
// uniform record loss, duplicate/reorder/corruption noise) and intensity,
// the same world runs twice: once with the engine's feed-health quarantine
// off ("ungated") and once on ("gated"). The claim under test: gating keeps
// precision from collapsing when feeds misbehave — at a heavy collector
// blackout the recovering sessions replay their tables as duplicate storms,
// and the ungated burst monitor fires on them while the gated one drops
// them on the floor (rrr_signals_dropped_unhealthy_feed_total counts every
// suppression).
//
// Flags: --days N --pairs N --seed N --public-rate N
//        --kinds blackout,loss,noise  --intensities 0,0.15,0.3,0.5
//        --fault-blackout-windows N (blackout duration, default 96 = 1 day)
//        --threads N (fan-out pool) --engine-threads/--engine-shards
//        --stats-json PATH (default BENCH_fault_resilience.json)
#include <sstream>

#include "bench_common.h"
#include "eval/metrics.h"

namespace {

using namespace rrr;

struct Arm {
  std::string label;
  std::string kind;
  double intensity = 0.0;
  bool gated = false;
};

struct ArmResult {
  Arm arm;
  double precision = 0.0;
  double coverage = 0.0;
  std::int64_t signal_count = 0;
  std::int64_t dropped_unhealthy = 0;
  std::int64_t fault_bgp_dropped = 0;
  std::int64_t fault_bgp_replayed = 0;
  bench::RunStats stats;
};

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// The fault plan of one sweep arm. Blackout fractions/rates scale with the
// intensity; the blackout is placed mid-run so quarantine and recovery both
// happen inside the measured period.
fault::FaultPlan plan_for(const std::string& kind, double intensity,
                          std::uint64_t seed, std::int64_t blackout_start,
                          std::int64_t blackout_windows) {
  fault::FaultPlan plan;
  plan.seed = seed;
  if (intensity <= 0.0) return plan;  // clean baseline arm
  if (kind == "blackout") {
    plan.collector_blackout_fraction = intensity;
    plan.blackout_start_window = blackout_start;
    plan.blackout_windows = blackout_windows;
    plan.session_reset_replay = true;
  } else if (kind == "loss") {
    plan.drop_rate = intensity;
    plan.trace_drop_rate = intensity;
  } else if (kind == "noise") {
    plan.duplicate_rate = intensity;
    plan.reorder_rate = intensity;
    plan.reorder_max_seconds = 2 * kSecondsPerMinute;
    plan.corrupt_rate = intensity / 2.0;
  }
  return plan;
}

std::int64_t sum_counter(const obs::Snapshot& snapshot,
                         const std::string& name) {
  std::int64_t total = 0;
  for (const obs::MetricSnapshot& metric : snapshot) {
    if (metric.name == name) total += metric.value;
  }
  return total;
}

ArmResult run_arm(eval::WorldParams params, const Arm& arm,
                  std::int64_t blackout_start,
                  std::int64_t blackout_windows) {
  params.telemetry = true;  // the suppression counters are the point here
  params.fault_plan = plan_for(arm.kind, arm.intensity, params.seed,
                               blackout_start, blackout_windows);
  params.feed_health.enabled = arm.gated;

  eval::World world(params);
  std::vector<signals::StalenessSignal> all_signals;
  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (auto& s : sigs) all_signals.push_back(std::move(s));
  };
  world.run_all(hooks);

  eval::StalenessOracle oracle;
  oracle.ground_truth = &world.ground_truth();
  oracle.corpus_t0 = world.corpus_t0();
  oracle.refresh_times = world.recalibration_times();
  eval::SignalMatcher matcher(all_signals, world.ground_truth().changes(),
                              {}, &oracle);
  eval::Table2Result table = matcher.table2();

  ArmResult result;
  result.arm = arm;
  result.precision = table.all.precision;
  result.coverage = table.all.cov_all;
  result.signal_count = table.all.signal_count;
  obs::Snapshot snapshot = world.metrics()->snapshot();
  result.dropped_unhealthy =
      sum_counter(snapshot, "rrr_signals_dropped_unhealthy_feed_total");
  result.fault_bgp_dropped =
      sum_counter(snapshot, "rrr_fault_bgp_records_dropped_total");
  result.fault_bgp_replayed =
      sum_counter(snapshot, "rrr_fault_bgp_records_replayed_total");
  result.stats = bench::capture_stats(arm.label, world);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);
  // The sweep sets each arm's plan itself; shared --fault-* flags would
  // leak the same plan into every arm.
  params.fault_plan = fault::FaultPlan{};
  if (params.days > 12) params.days = 12;  // 2 worlds per point: keep it sane
  params.days = static_cast<int>(flags.get_int("days", params.days));

  eval::print_banner(std::cout, "Fault sweep",
                     "signal quality vs feed degradation",
                     "feed-health gating holds precision while faults only "
                     "cost coverage");

  std::vector<std::string> kinds =
      split_list(flags.get_str("kinds", "blackout,loss,noise"));
  std::vector<double> intensities;
  for (const std::string& item :
       split_list(flags.get_str("intensities", "0,0.15,0.3,0.5"))) {
    intensities.push_back(std::atof(item.c_str()));
  }

  // Blackout placement: mid-run, after calibration has warmed up.
  std::int64_t windows_per_day = kSecondsPerDay / kBaseWindowSeconds;
  std::int64_t total_windows =
      (params.warmup_days + params.days) * windows_per_day;
  // A sparse BGP stream is judged over up to half a day of windows, so the
  // outage must be long enough to register: one day by default.
  std::int64_t blackout_windows =
      flags.get_int("fault-blackout-windows", 96);
  std::int64_t blackout_start = total_windows / 2;

  std::vector<Arm> arms;
  for (const std::string& kind : kinds) {
    for (double intensity : intensities) {
      if (intensity <= 0.0 && kind != kinds.front()) {
        continue;  // one clean baseline is enough
      }
      for (bool gated : {false, true}) {
        std::ostringstream label;
        label << kind << " x" << intensity
              << (gated ? " gated" : " ungated");
        arms.push_back(Arm{label.str(), kind, intensity, gated});
      }
    }
  }

  std::vector<std::string> labels;
  for (const Arm& arm : arms) labels.push_back(arm.label);
  std::vector<ArmResult> results = bench::fan_out<ArmResult>(
      bench::fanout_threads(flags, arms.size()), labels,
      [&](std::size_t i) {
        return run_arm(params, arms[i], blackout_start, blackout_windows);
      },
      std::cout);

  eval::TableWriter table({"plan", "intensity", "gating", "precision",
                           "coverage", "#signals", "#suppressed",
                           "#bgp-dropped", "#replayed"});
  for (const ArmResult& r : results) {
    table.add_row({r.arm.kind, eval::TableWriter::fmt(r.arm.intensity),
                   r.arm.gated ? "gated" : "ungated",
                   eval::TableWriter::fmt(r.precision),
                   eval::TableWriter::fmt(r.coverage),
                   std::to_string(r.signal_count),
                   std::to_string(r.dropped_unhealthy),
                   std::to_string(r.fault_bgp_dropped),
                   std::to_string(r.fault_bgp_replayed)});
  }
  table.print(std::cout);

  // Headline comparison: the heaviest blackout point, gated vs ungated.
  const ArmResult* worst_ungated = nullptr;
  const ArmResult* worst_gated = nullptr;
  for (const ArmResult& r : results) {
    if (r.arm.kind != "blackout" || r.arm.intensity < 0.3) continue;
    const ArmResult*& slot = r.arm.gated ? worst_gated : worst_ungated;
    if (slot == nullptr || r.arm.intensity > slot->arm.intensity) slot = &r;
  }
  if (worst_ungated != nullptr && worst_gated != nullptr) {
    std::cout << "\nblackout x" << worst_gated->arm.intensity
              << ": precision ungated "
              << eval::TableWriter::fmt(worst_ungated->precision)
              << " -> gated "
              << eval::TableWriter::fmt(worst_gated->precision) << " ("
              << worst_gated->dropped_unhealthy
              << " signals suppressed as unhealthy-feed)\n";
  }

  std::vector<bench::RunStats> stats;
  for (ArmResult& r : results) stats.push_back(std::move(r.stats));
  std::string path =
      flags.get_str("stats-json", "BENCH_fault_resilience.json");
  bench::maybe_write_trace(flags, stats.empty() ? "" : stats[0].trace,
                           std::cout);
  bench::write_stats_json(path, stats, std::cout);
  return 0;
}
