// Figure 6 — precision (a) and coverage (b) of staleness prediction signals
// over the retrospective evaluation period.
//
// Paper reference: precision starts near 60% and climbs past 80% after the
// midpoint (calibration prunes bad communities and VPs), approaching 90% at
// the end; coverage is stable, usually above 80% (above 90% for changes on
// monitorable paths).
//
// Flags: --days N --pairs N --seed N --public-rate N
//        --seeds N (independent replicates) --threads N (fan-out pool)
//        --engine-threads N (parallel window closing inside each World)
#include <sstream>

#include "bench_common.h"
#include "eval/metrics.h"

namespace {

using namespace rrr;

struct Replicate {
  std::string report;
  bench::RunStats stats;
};

// One full retrospective run at `seed`, rendered to text (tasks run
// concurrently, so nothing may write to stdout until the fan-out returns).
Replicate run_replicate(eval::WorldParams params, std::uint64_t seed) {
  params.seed = seed;
  std::ostringstream out;
  eval::World world(params);
  std::vector<signals::StalenessSignal> all_signals;
  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (auto& s : sigs) all_signals.push_back(std::move(s));
  };
  world.run_until(world.corpus_t0(), hooks);
  std::size_t pairs = world.initialize_corpus();
  world.run_until(world.end(), hooks);
  out << "seed " << seed << ": corpus " << pairs << " pairs, "
      << params.days << " days, " << all_signals.size() << " signals, "
      << world.ground_truth().changes().size() << " changes\n\n";

  eval::StalenessOracle oracle;
  oracle.ground_truth = &world.ground_truth();
  oracle.corpus_t0 = world.corpus_t0();
  oracle.refresh_times = world.recalibration_times();
  eval::SignalMatcher matcher(all_signals, world.ground_truth().changes(),
                              {}, &oracle);

  // Smooth over 3-day buckets: daily counts are noisy at this scale.
  auto daily = matcher.daily_series(world.corpus_t0(), params.days);
  eval::TableWriter table({"days", "precision(AS)", "precision(border)",
                           "coverage(AS)", "coverage(border)", "#signals"});
  for (std::size_t d = 0; d + 2 < daily.size(); d += 3) {
    double pa = 0, pb = 0, ca = 0, cb = 0;
    std::int64_t n = 0;
    int pa_n = 0, pb_n = 0, ca_n = 0, cb_n = 0;
    for (std::size_t k = d; k < d + 3 && k < daily.size(); ++k) {
      const auto& point = daily[k];
      if (point.signals > 0) {
        pa += point.precision_as;
        ++pa_n;
        pb += point.precision_border;
        ++pb_n;
      }
      if (point.changes > 0) {
        ca += point.coverage_as;
        ++ca_n;
        cb += point.coverage_border;
        ++cb_n;
      }
      n += point.signals;
    }
    auto avg = [](double sum, int count) {
      return count > 0 ? sum / count : 0.0;
    };
    table.add_row({std::to_string(d) + "-" + std::to_string(d + 2),
                   eval::TableWriter::fmt(avg(pa, pa_n)),
                   eval::TableWriter::fmt(avg(pb, pb_n)),
                   eval::TableWriter::fmt(avg(ca, ca_n)),
                   eval::TableWriter::fmt(avg(cb, cb_n)),
                   std::to_string(n)});
  }
  table.print(out);
  if (world.metrics() != nullptr) {
    out << "\nengine telemetry (cumulative):\n";
    eval::print_stats_summary(out, world.metrics()->snapshot());
  }
  return Replicate{out.str(),
                   bench::capture_stats("seed " + std::to_string(seed),
                                        world)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);

  eval::print_banner(std::cout, "Figure 6",
                     "precision & coverage of signals over time",
                     "precision ramps 60% -> ~90% as calibration learns; "
                     "coverage stable, mostly above 80%");

  auto seeds = static_cast<std::size_t>(flags.get_int("seeds", 1));
  if (seeds == 0) seeds = 1;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < seeds; ++i) {
    labels.push_back("seed " +
                     std::to_string(bench::replicate_seed(params.seed, i)));
  }
  std::vector<Replicate> replicates = bench::fan_out<Replicate>(
      bench::fanout_threads(flags, seeds), labels,
      [&](std::size_t i) {
        return run_replicate(params, bench::replicate_seed(params.seed, i));
      },
      std::cout);
  for (std::size_t i = 0; i < replicates.size(); ++i) {
    if (i > 0) std::cout << "\n";
    std::cout << replicates[i].report;
  }
  std::vector<bench::RunStats> stats;
  for (Replicate& replicate : replicates) {
    stats.push_back(std::move(replicate.stats));
  }
  bench::maybe_write_trace(flags, stats.empty() ? "" : stats[0].trace,
                           std::cout);
  bench::write_stats_json(bench::stats_json_path(flags), stats, std::cout);
  return 0;
}
