// Figure 7 — live evaluation (§5.2): refresh traceroutes chosen by
// staleness prediction signals vs chosen at random, under a fixed daily
// probing budget.
//
// Paper reference: (a) refreshes chosen by signals reveal a change >80% of
// the time across two months; random refreshes start far lower and only
// slowly improve (more paths have changed as time passes). (b) Of the
// changes the random arm stumbles on, signals had flagged 70-85%.
//
// Flags: --days N --pairs N --budget N --seed N
#include <set>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);
  params.days = static_cast<int>(flags.get_int("days", 24));
  params.corpus_pair_target = static_cast<int>(flags.get_int("pairs", 2500));
  // Live mode: no free daily remeasurement; refreshes cost budget.
  params.recalibration_interval_windows = 0;
  int budget = static_cast<int>(
      flags.get_int("budget", params.corpus_pair_target / 25));

  eval::print_banner(std::cout, "Figure 7",
                     "live evaluation: signal-driven vs random refreshes",
                     "(a) signal precision >~0.8 vs random <~0.3 rising; "
                     "(b) signals flag 70-85% of changes random finds");
  std::cout << "budget: " << budget << " refreshes/day/arm\n";

  eval::World world(params);
  world.run_until(world.corpus_t0());
  std::size_t pairs = world.initialize_corpus();
  std::cout << "corpus: " << pairs << " pairs\n\n";

  // The random arm's shadow corpus: last refreshed measurement per pair.
  std::map<tr::PairKey, tracemap::ProcessedTrace> random_store;
  std::vector<tr::PairKey> all_pairs = world.ground_truth().pairs();
  for (const tr::PairKey& pair : all_pairs) {
    const tracemap::ProcessedTrace* processed =
        world.engine().processed_of(pair);
    if (processed != nullptr) random_store[pair] = *processed;
  }

  eval::TableWriter table({"day", "signal precision", "random precision",
                           "signal-flagged share of random finds",
                           "#flagged"});
  Rng arm_rng(params.seed * 77 + 5);

  eval::World::Hooks hooks;
  hooks.on_day = [&](int day, TimePoint t) {
    if (t <= world.corpus_t0()) return;
    // --- signal arm ---
    auto chosen = world.engine().plan_refreshes(budget);
    int signal_hits = 0;
    for (const tr::PairKey& pair : chosen) {
      tr::Traceroute fresh = world.issue_corpus_traceroute(pair, t);
      auto outcome = world.engine().apply_refresh(
          world.platform().probe(pair.probe), fresh);
      if (outcome.change != tracemap::ChangeKind::kNone) ++signal_hits;
    }
    // --- random arm ---
    int random_hits = 0;
    int random_flagged_hits = 0;
    for (int i = 0; i < budget && !all_pairs.empty(); ++i) {
      const tr::PairKey& pair = all_pairs[arm_rng.index(all_pairs.size())];
      auto it = random_store.find(pair);
      if (it == random_store.end()) continue;
      bool was_flagged =
          world.engine().freshness(pair) == tr::Freshness::kStale;
      tr::Traceroute fresh = world.issue_corpus_traceroute(pair, t);
      tracemap::ProcessedTrace processed = world.processing().process(fresh);
      if (tracemap::classify_change(it->second, processed) !=
          tracemap::ChangeKind::kNone) {
        ++random_hits;
        if (was_flagged) ++random_flagged_hits;
      }
      it->second = std::move(processed);
    }
    auto pct = [](int num, int den) {
      return den > 0 ? eval::TableWriter::fmt(
                           static_cast<double>(num) / den)
                     : std::string("-");
    };
    table.add_row({std::to_string(day - params.warmup_days + 1),
                   pct(signal_hits, static_cast<int>(chosen.size())),
                   pct(random_hits, budget),
                   pct(random_flagged_hits, random_hits),
                   std::to_string(chosen.size())});
  };
  world.run_until(world.end(), hooks);
  table.print(std::cout);
  return 0;
}
