// Figure 7 — live evaluation (§5.2): refresh traceroutes chosen by
// staleness prediction signals vs chosen at random, under a fixed daily
// probing budget.
//
// Paper reference: (a) refreshes chosen by signals reveal a change >80% of
// the time across two months; random refreshes start far lower and only
// slowly improve (more paths have changed as time passes). (b) Of the
// changes the random arm stumbles on, signals had flagged 70-85%.
//
// The two arms are independent experiments over the same simulated
// internet (same world seed), so each runs in its own World and the
// arm × seed-replicate grid fans out over the pool; results print in task
// order whatever the parallelism.
//
// The staleness query service (--serve PORT) follows the primary signal-arm
// replicate: while it runs, /v1/verdict &co answer live from its
// window-boundary snapshots; --serve-linger keeps the endpoint up
// afterwards, answering from the final snapshot.
//
// Flags: --days N --pairs N --budget N --seed N --seeds N --threads N
//        --serve PORT --serve-linger N --serve-obs PORT
//        --serve-obs-linger N
#include <optional>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams base = bench::retrospective_params(flags);
  base.days = static_cast<int>(flags.get_int("days", 24));
  base.corpus_pair_target = static_cast<int>(flags.get_int("pairs", 2500));
  // Live mode: no free daily remeasurement; refreshes cost budget.
  base.recalibration_interval_windows = 0;
  int budget = static_cast<int>(
      flags.get_int("budget", base.corpus_pair_target / 25));
  int seeds = static_cast<int>(flags.get_int("seeds", 1));

  eval::print_banner(std::cout, "Figure 7",
                     "live evaluation: signal-driven vs random refreshes",
                     "(a) signal precision >~0.8 vs random <~0.3 rising; "
                     "(b) signals flag 70-85% of changes random finds");
  std::cout << "budget: " << budget << " refreshes/day/arm\n";

  // One day of one arm: hits over a denominator, plus how many of the
  // random arm's hits the engine had flagged stale beforehand.
  struct DayRow {
    int day = 0;
    int hits = 0;
    int denom = 0;
    int flagged_hits = 0;
  };
  struct ArmResult {
    std::size_t pairs = 0;
    std::vector<DayRow> days;
    bench::RunStats stats;
  };

  std::vector<std::string> labels;
  for (int k = 0; k < seeds; ++k) {
    std::string s = std::to_string(bench::replicate_seed(base.seed,
                                                         std::size_t(k)));
    labels.push_back("signal s" + s);
    labels.push_back("random s" + s);
  }
  int threads = bench::fanout_threads(flags, labels.size());
  bench::ScopedObsServer obs_server(flags, std::cout);
  std::vector<ArmResult> results = bench::fan_out<ArmResult>(
      threads, labels,
      [&](std::size_t i) {
        eval::WorldParams params = base;
        params.seed = bench::replicate_seed(base.seed, i / 2);
        const bool random_arm = i % 2 == 1;
        eval::World world(params);
        // The live endpoint (and the /v1 query service under --serve)
        // follows the primary signal-arm replicate for its whole run.
        std::optional<bench::WorldLease> lease;
        if (i == 0 && obs_server.active()) {
          lease.emplace(obs_server, &world);
        }
        world.run_until(world.corpus_t0());
        ArmResult result;
        result.pairs = world.initialize_corpus();
        std::vector<tr::PairKey> all_pairs = world.ground_truth().pairs();
        Rng arm_rng(params.seed * 77 + 5);

        eval::World::Hooks hooks;
        hooks.on_day = [&](int day, TimePoint t) {
          if (t <= world.corpus_t0()) return;
          DayRow row;
          row.day = day - params.warmup_days + 1;
          if (!random_arm) {
            auto chosen = world.engine().plan_refreshes(budget);
            for (const tr::PairKey& pair : chosen) {
              tr::Traceroute fresh = world.issue_corpus_traceroute(pair, t);
              auto outcome = world.engine().apply_refresh(
                  world.platform().probe(pair.probe), fresh);
              if (outcome.change != tracemap::ChangeKind::kNone) ++row.hits;
            }
            row.denom = static_cast<int>(chosen.size());
          } else {
            for (int r = 0; r < budget && !all_pairs.empty(); ++r) {
              const tr::PairKey& pair =
                  all_pairs[arm_rng.index(all_pairs.size())];
              if (world.engine().freshness(pair) == tr::Freshness::kUnknown) {
                continue;
              }
              tr::Traceroute fresh = world.issue_corpus_traceroute(pair, t);
              auto outcome = world.engine().apply_refresh(
                  world.platform().probe(pair.probe), fresh);
              if (outcome.change != tracemap::ChangeKind::kNone) {
                ++row.hits;
                if (outcome.was_flagged_stale) ++row.flagged_hits;
              }
            }
            row.denom = budget;
          }
          result.days.push_back(row);
        };
        world.run_until(world.end(), hooks);
        result.stats = bench::capture_stats(labels[i], world);
        return result;
      },
      std::cout);

  auto pct = [](int num, int den) {
    return den > 0
               ? eval::TableWriter::fmt(static_cast<double>(num) / den)
               : std::string("-");
  };
  for (int k = 0; k < seeds; ++k) {
    const ArmResult& sig = results[static_cast<std::size_t>(2 * k)];
    const ArmResult& rnd = results[static_cast<std::size_t>(2 * k + 1)];
    std::cout << "\nseed " << bench::replicate_seed(base.seed, std::size_t(k))
              << ": corpus " << sig.pairs << " pairs\n";
    eval::TableWriter table({"day", "signal precision", "random precision",
                             "signal-flagged share of random finds",
                             "#flagged"});
    std::size_t days = std::min(sig.days.size(), rnd.days.size());
    for (std::size_t d = 0; d < days; ++d) {
      const DayRow& s = sig.days[d];
      const DayRow& r = rnd.days[d];
      table.add_row({std::to_string(s.day), pct(s.hits, s.denom),
                     pct(r.hits, r.denom), pct(r.flagged_hits, r.hits),
                     std::to_string(s.denom)});
    }
    table.print(std::cout);
  }
  std::vector<bench::RunStats> stats;
  for (ArmResult& result : results) stats.push_back(std::move(result.stats));
  bench::maybe_write_trace(flags, stats.empty() ? "" : stats[0].trace,
                           std::cout);
  bench::write_stats_json(bench::stats_json_path(flags), stats, std::cout);
  return 0;
}
