// Figures 9 & 10 — impact of load balancing (§5.4): number of staleness
// prediction signals and their precision, for path segments that cross
// interdomain load-balancer diamonds versus segments that do not.
//
// Paper reference: signal *counts* are similar for the two groups (slightly
// more for non-LB segments); precision is lower on diamonds (median 68% vs
// 84%) — load balancers sometimes trick the techniques.
//
// Flags: --days N --pairs N --seed N
#include "bench_common.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrr;
  bench::Flags flags(argc, argv);
  eval::WorldParams params = bench::retrospective_params(flags);
  // More diamonds than the default world so the LB group is populated.
  params.topology.interdomain_diamond_prob = 0.15;
  params.topology.lb_as_prob = 0.35;

  eval::print_banner(std::cout, "Figures 9-10",
                     "signals and precision on load-balanced segments",
                     "similar #signals per segment for LB vs non-LB; "
                     "precision median ~68% on diamonds vs ~84% off them");

  eval::World world(params);
  std::vector<signals::StalenessSignal> all_signals;
  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (auto& s : sigs) all_signals.push_back(std::move(s));
  };
  world.run_until(world.corpus_t0(), hooks);
  std::size_t pairs = world.initialize_corpus();
  world.run_until(world.end(), hooks);

  eval::StalenessOracle oracle;
  oracle.ground_truth = &world.ground_truth();
  oracle.corpus_t0 = world.corpus_t0();
  oracle.refresh_times = world.recalibration_times();

  // Classify every monitored (pair, border) by whether its initial
  // crossing sits on an ECMP interconnect group (an interdomain diamond).
  const topo::Topology& topology = world.topology();
  auto is_lb = [&](const tr::PairKey& pair, std::size_t border) {
    const auto& initial = world.ground_truth().initial(pair);
    if (border >= initial.crossings.size()) return false;
    return topology.interconnect_at(initial.crossings[border].interconnect)
               .ecmp_group >= 0;
  };

  // Signals and precision per (pair, border) segment.
  struct SegmentTally {
    int signals = 0;
    int correct = 0;
    bool lb = false;
  };
  std::map<std::pair<tr::PairKey, std::size_t>, SegmentTally> tallies;
  std::size_t lb_segments = 0, total_segments = 0;
  for (const tr::PairKey& pair : world.ground_truth().pairs()) {
    const auto& initial = world.ground_truth().initial(pair);
    for (std::size_t b = 0; b < initial.crossings.size(); ++b) {
      SegmentTally tally;
      tally.lb = is_lb(pair, b);
      if (tally.lb) ++lb_segments;
      ++total_segments;
      tallies[{pair, b}] = tally;
    }
  }
  for (const auto& signal : all_signals) {
    if (!is_bgp_technique(signal.technique) &&
        signal.border_index != signals::kWholePath) {
      auto it = tallies.find({signal.pair, signal.border_index});
      if (it == tallies.end()) continue;
      ++it->second.signals;
      if (oracle.stale(signal.pair, signal.time)) ++it->second.correct;
    }
  }

  std::cout << "corpus: " << pairs << " pairs, " << total_segments
            << " interdomain segments (" << lb_segments
            << " crossing diamonds)\n\n";

  eval::Cdf lb_signals, nonlb_signals, lb_precision, nonlb_precision;
  std::size_t lb_with_signals = 0, nonlb_with_signals = 0;
  for (const auto& [key, tally] : tallies) {
    (tally.lb ? lb_signals : nonlb_signals).add(tally.signals);
    if (tally.signals > 0) {
      (tally.lb ? lb_precision : nonlb_precision)
          .add(static_cast<double>(tally.correct) / tally.signals);
      ++(tally.lb ? lb_with_signals : nonlb_with_signals);
    }
  }

  std::cout << "Figure 9 — signals per interdomain segment:\n";
  eval::print_cdf(std::cout, "  load-balanced ", lb_signals);
  eval::print_cdf(std::cout, "  non-balanced  ", nonlb_signals);
  std::cout << "  segments with any signal: LB "
            << eval::TableWriter::fmt_pct(
                   lb_segments
                       ? double(lb_with_signals) / double(lb_segments)
                       : 0)
            << ", non-LB "
            << eval::TableWriter::fmt_pct(
                   total_segments - lb_segments
                       ? double(nonlb_with_signals) /
                             double(total_segments - lb_segments)
                       : 0)
            << " (paper: 9.8% of diamonds vs 7.1% of non-LB)\n";

  std::cout << "\nFigure 10 — precision per segment with signals:\n";
  eval::print_cdf(std::cout, "  load-balanced ", lb_precision);
  eval::print_cdf(std::cout, "  non-balanced  ", nonlb_precision);
  std::cout << "  medians: LB "
            << eval::TableWriter::fmt(lb_precision.median())
            << " vs non-LB "
            << eval::TableWriter::fmt(nonlb_precision.median())
            << " (paper: 0.68 vs 0.84)\n";
  bench::maybe_write_trace(flags, world.trace_json(), std::cout);
  return 0;
}
