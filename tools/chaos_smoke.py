#!/usr/bin/env python3
"""External chaos harness: kill -9 loop + storage-fault sweep (DESIGN.md §14).

The process-level half of the chaos harness (the in-process grid is
bench/fig_chaos_sweep.cpp). For each (kill attempt, io-fault seed) point:

  1. A clean baseline fig11 run records its rrr-stats-v1 envelope.
  2. A checkpointed run under --io-fault-plan is started and killed with
     SIGKILL after a seeded random delay — a real crash: stranded *.tmp
     files, possibly a half-appended WAL frame.
  3. The run is restarted with --resume --supervise. The supervisor
     scrubs the crash debris (quarantining it into corrupt/, never
     deleting, never silently reading) and finishes the run.
  4. The point passes when the recovered envelope's `semantic` member is
     byte-identical to the clean baseline's and no stray *.tmp remains
     outside corrupt/.

A kill that lands before the binary ever opens the checkpoint directory,
or after the run already finished, still restarts and must still converge
to the identical answer — those points are recorded with phase "early" /
"finished" rather than skipped.

Writes a BENCH_chaos_recovery.json summary (schema rrr-chaos-v1).

Usage: chaos_smoke.py /path/to/fig11_archival_reuse [options] [-- extra...]
  --kills N        kill/restart points to run (default 3)
  --io-seeds N     io-fault seeds per kill point (default 2)
  --fault-plan S   io-fault plan spec (default a mixed mostly-transient one)
  --out F          summary path (default BENCH_chaos_recovery.json)
  --seed N         RNG seed for kill delays (default 1)
Everything after `--` is forwarded to every fig11 invocation.
"""

import argparse
import json
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

DEFAULT_WORLD = ["--days", "2", "--pairs", "150"]
DEFAULT_PLAN = ("torn=0.02,bitflip=0.01,enospc=0.01,eio=0.005,"
                "crash_rename=0.01,transient=0.9")
DEFAULT_RETRY = "attempts=4,base_us=50,max_us=1000"


def run(cmd):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.exit(f"command failed ({proc.returncode}): {' '.join(cmd)}")
    return proc.stdout


def semantic_bytes(path):
    with open(path, encoding="utf-8") as fh:
        envelope = json.load(fh)
    if envelope.get("schema") != "rrr-stats-v1":
        sys.exit(f"{path}: unexpected schema {envelope.get('schema')!r}")
    return json.dumps([r["semantic"] for r in envelope["runs"]],
                      sort_keys=False)


def stray_tmp(ckpt_dir):
    """*.tmp files anywhere under ckpt_dir except inside corrupt/."""
    stray = []
    for path in Path(ckpt_dir).rglob("*.tmp"):
        if "corrupt" not in path.parts:
            stray.append(str(path))
    return stray


def quarantined(ckpt_dir):
    return sum(1 for _ in Path(ckpt_dir).rglob("corrupt/*"))


def main():
    argv = sys.argv[1:]
    extra = []
    if "--" in argv:
        split = argv.index("--")
        argv, extra = argv[:split], argv[split + 1:]
    parser = argparse.ArgumentParser()
    parser.add_argument("binary")
    parser.add_argument("--kills", type=int, default=3)
    parser.add_argument("--io-seeds", type=int, default=2)
    parser.add_argument("--fault-plan", default=DEFAULT_PLAN)
    parser.add_argument("--retry", default=DEFAULT_RETRY)
    parser.add_argument("--out", default="BENCH_chaos_recovery.json")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    world = extra or DEFAULT_WORLD
    rng = random.Random(args.seed)

    grid = []
    with tempfile.TemporaryDirectory(prefix="rrr-chaos-smoke-") as scratch:
        scratch = Path(scratch)
        clean_json = scratch / "clean.json"
        run([args.binary, *world, "--stats-json", str(clean_json)])
        clean = semantic_bytes(clean_json)
        print(f"baseline: clean semantic stats captured "
              f"({len(clean)} bytes serialized)")

        # Calibrate kill delays against one full checkpointed (unfaulted)
        # run, so kills land inside the run's lifetime.
        t0 = time.monotonic()
        calib_dir = scratch / "calib"
        run([args.binary, *world, "--checkpoint-dir", str(calib_dir)])
        full_runtime = time.monotonic() - t0

        for ki in range(args.kills):
            for si in range(args.io_seeds):
                io_seed = args.seed + si
                label = f"k{ki}s{io_seed}"
                ckpt = scratch / f"ckpt-{label}"
                chaos_json = scratch / f"chaos-{label}.json"
                plan = f"{args.fault_plan},seed={io_seed}"
                cmd = [args.binary, *world,
                       "--checkpoint-dir", str(ckpt),
                       "--io-fault-plan", plan,
                       "--io-retry", args.retry,
                       "--stats-json", str(chaos_json)]

                # Phase 1: start, then SIGKILL after a seeded delay inside
                # the calibrated runtime.
                delay = rng.uniform(0.05, max(0.1, full_runtime * 0.9))
                proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                                        stderr=subprocess.STDOUT)
                time.sleep(delay)
                phase = "killed"
                if proc.poll() is None:
                    proc.send_signal(signal.SIGKILL)
                    proc.wait()
                elif proc.returncode == 0:
                    phase = "finished"  # kill landed after a clean exit
                else:
                    phase = "died"  # fault rate killed it first (no retry
                    #                 supervisor in phase 1 — that is the
                    #                 restart's job)

                # Phase 2: supervised restart from the same directory.
                out = run([args.binary, *world,
                           "--checkpoint-dir", str(ckpt),
                           "--resume", str(ckpt),
                           "--io-fault-plan", plan,
                           "--io-retry", args.retry,
                           "--supervise",
                           "--stats-json", str(chaos_json)])

                recoveries = 0
                for line in out.splitlines():
                    if line.startswith("supervised: recovered"):
                        recoveries = int(line.split()[2])
                identical = semantic_bytes(chaos_json) == clean
                stray = stray_tmp(ckpt)
                point = {
                    "kill": ki,
                    "io_seed": io_seed,
                    "delay_s": round(delay, 3),
                    "phase": phase,
                    "recoveries": recoveries,
                    "semantic_identical": identical,
                    "stray_tmp": len(stray),
                    "quarantined": quarantined(ckpt),
                    "pass": identical and not stray,
                }
                grid.append(point)
                status = "PASS" if point["pass"] else "FAIL"
                print(f"{label}: {status} phase={phase} "
                      f"delay={point['delay_s']}s "
                      f"recoveries={recoveries} "
                      f"quarantined={point['quarantined']} "
                      f"stray_tmp={len(stray)}")
                if stray:
                    for path in stray:
                        print(f"  stray: {path}")

    all_pass = all(p["pass"] for p in grid)
    summary = {
        "schema": "rrr-chaos-v1",
        "mode": "kill9",
        "grid": grid,
        "pass": all_pass,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=1)
        fh.write("\n")
    print(f"chaos smoke: {len(grid)} point(s), "
          f"{'all recovered byte-identical' if all_pass else 'FAILURES'}; "
          f"wrote {args.out}")
    sys.exit(0 if all_pass else 1)


if __name__ == "__main__":
    main()
