#!/usr/bin/env python3
"""Check that relative links in markdown files point at real files.

Usage: check_markdown_links.py FILE_OR_DIR [FILE_OR_DIR ...]

Directories are scanned recursively for *.md. For every inline markdown
link [text](target):

  - http(s)/mailto links are skipped (no network access in CI),
  - pure-anchor links (#section) are checked against the headings of the
    same file,
  - relative paths are resolved against the file's directory and must
    exist; a trailing #anchor is checked against the target's headings
    when the target is itself markdown.

Exits non-zero listing every broken link.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, spaces to dashes, drop punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    return {slugify(h) for h in HEADING_RE.findall(text)}


def check_file(path: Path) -> list:
    errors = []
    text = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are examples, not navigation.
    text = CODE_FENCE_RE.sub("", text)
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        resolved = path if not base else (path.parent / base).resolve()
        if base and not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md" and resolved.exists():
            if slugify(anchor) not in anchors_of(resolved):
                errors.append(f"{path}: missing anchor -> {target}")
    return errors


def main(argv: list) -> int:
    files = []
    for arg in argv:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"warning: {arg} does not exist, skipping", file=sys.stderr)
    errors = []
    for f in files:
        errors.extend(check_file(f))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
