#!/usr/bin/env python3
"""Check that relative links in markdown files point at real files.

Usage: check_markdown_links.py FILE_OR_DIR [FILE_OR_DIR ...]

Directories are scanned recursively for *.md. Both inline links
[text](target) and reference-style links [text][ref] (resolved through
their `[ref]: target` definitions) are checked:

  - http(s)/mailto links are skipped (no network access in CI),
  - pure-anchor links (#section) are checked against the anchors of the
    same file,
  - relative paths are resolved against the file's directory and must
    exist; a trailing #anchor is checked against the target's anchors
    when the target is itself markdown.

Anchors are computed the way GitHub renders them: headings are stripped
of markdown (backticks, emphasis, link syntax), slugified (lowercase,
punctuation dropped, spaces to dashes), and duplicate headings get -1,
-2, ... suffixes. Explicit HTML anchors (<a name="..."> / id="...")
count too.

Exits non-zero listing every broken link.
"""

import re
import sys
from pathlib import Path

INLINE_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
# [text][ref] — and bare collapsed [ref][] — but not [text](inline) or a
# definition line.
REF_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\[([^\]]*)\]")
REF_DEF_RE = re.compile(r"^\s{0,3}\[([^\]]+)\]:\s*(\S+)", re.MULTILINE)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
HTML_ANCHOR_RE = re.compile(r"""<a\s+(?:name|id)=["']([^"']+)["']""")
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def strip_heading_markup(heading: str) -> str:
    """Reduce a heading to the text GitHub slugifies: drop code/emphasis
    markers, replace link syntax with the link text."""
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = re.sub(r"!?\[([^\]]*)\]\[[^\]]*\]", r"\1", text)
    # Backticks and asterisks fall to slugify's punctuation pass anyway;
    # underscores must survive — they are word characters in a slug
    # (fig_serving_sweep), not emphasis, in every heading we render.
    return text


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, spaces to dashes, drop punctuation."""
    slug = strip_heading_markup(heading).strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    anchors = set(HTML_ANCHOR_RE.findall(text))
    # Headings inside fenced code blocks don't render as headings.
    text = CODE_FENCE_RE.sub("", text)
    seen = {}
    for heading in HEADING_RE.findall(text):
        slug = slugify(heading)
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        # GitHub disambiguates repeated headings with -1, -2, ...
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def link_targets(text: str) -> list:
    """All link targets in the (fence-stripped) text: inline plus
    reference-style resolved through their definitions."""
    targets = list(INLINE_LINK_RE.findall(text))
    defs = {ref.lower(): target for ref, target in REF_DEF_RE.findall(text)}
    for match in REF_LINK_RE.finditer(text):
        ref = match.group(1)
        if not ref:  # collapsed [ref][] uses the link text as the ref
            ref = re.match(r"\[([^\]]+)\]", match.group(0)).group(1)
        target = defs.get(ref.lower())
        if target is None:
            targets.append(f"#__undefined_reference__{ref}")
        else:
            targets.append(target)
    return targets


def check_file(path: Path) -> list:
    errors = []
    text = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are examples, not navigation.
    text = CODE_FENCE_RE.sub("", text)
    for target in link_targets(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#__undefined_reference__"):
            ref = target[len("#__undefined_reference__"):]
            errors.append(f"{path}: undefined link reference -> [{ref}]")
            continue
        base, _, anchor = target.partition("#")
        resolved = path if not base else (path.parent / base).resolve()
        if base and not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md" and resolved.exists():
            if anchor not in anchors_of(resolved):
                errors.append(f"{path}: missing anchor -> {target}")
    return errors


def main(argv: list) -> int:
    files = []
    for arg in argv:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"warning: {arg} does not exist, skipping", file=sys.stderr)
    errors = []
    for f in files:
        errors.extend(check_file(f))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
