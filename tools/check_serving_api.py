#!/usr/bin/env python3
"""Keep docs/API.md and the HTTP routes in code from drifting apart.

Two layers, both mechanical:

  Static (always): extract the route inventory from the source
  (src/serve/service.cpp `path == "/v1/..."` dispatch literals and
  src/obs/http_export.cpp fixed-route literals) and from docs/API.md
  (`### GET /route` headings). Any asymmetric difference — a route in
  code that the docs don't describe, or a documented route that no
  longer exists — fails.

  Live (--probe PORT): curl every documented route against a running
  server and validate each JSON body's *structure* against the worked
  example under that route's heading in docs/API.md: same key set at
  every object level, recursively (array elements are checked against
  the example's first element; a documented null is allowed to be an
  object and vice versa, e.g. `last_signal`). The /v1/verdict and
  /v1/signals probes self-discover a live pair from /v1/pairs; the
  error contract (400 on a malformed query, 404 on an unknown pair and
  unknown route) is probed too.

Usage:
  check_serving_api.py [--repo ROOT] [--probe PORT]

Exits non-zero listing every drift. CI runs the static half in
lint-docs and the live half in the serving-introspection job, so a new
route without docs (or docs for a removed route, or a body shape that
no longer matches its example) fails the build.
"""

import argparse
import json
import re
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

ROUTE_HEADING_RE = re.compile(r"^### GET (/\S+)$", re.MULTILINE)
# Dispatch literals in the serve layer: path == "/v1/...".
SERVE_ROUTE_RE = re.compile(r'path == "(/v1/[^"]+)"')
# Fixed routes in the obs server: path == "/metrics" etc.
OBS_ROUTE_RE = re.compile(r'path == "(/[^"]+)"')
JSON_BLOCK_RE = re.compile(r"```json\n(.*?)```", re.DOTALL)


def code_routes(repo: Path) -> set:
    routes = set()
    service = repo / "src/serve/service.cpp"
    if service.exists():
        routes.update(SERVE_ROUTE_RE.findall(service.read_text()))
    http = repo / "src/obs/http_export.cpp"
    if http.exists():
        routes.update(OBS_ROUTE_RE.findall(http.read_text()))
    return routes


def doc_routes(api_md: Path) -> dict:
    """Route -> example JSON object (or None when the route documents no
    JSON body, e.g. /healthz)."""
    text = api_md.read_text()
    routes = {}
    headings = list(ROUTE_HEADING_RE.finditer(text))
    for i, match in enumerate(headings):
        section_end = (
            headings[i + 1].start() if i + 1 < len(headings) else len(text)
        )
        section = text[match.start():section_end]
        example = None
        for block in JSON_BLOCK_RE.findall(section):
            try:
                example = json.loads(block)
                break
            except json.JSONDecodeError:
                continue
        routes[match.group(1)] = example
    return routes


def structure_errors(route: str, example, live, path: str = "$") -> list:
    """Same-shape check: key sets must match at every object level."""
    if example is None or live is None:
        # A documented-null field (last_signal) may be live-populated and
        # vice versa; nothing further to compare.
        return []
    if isinstance(example, dict) != isinstance(live, dict) or isinstance(
        example, list
    ) != isinstance(live, list):
        return [
            f"{route}: {path}: documented {type(example).__name__}, "
            f"server sent {type(live).__name__}"
        ]
    errors = []
    if isinstance(example, dict):
        doc_keys, live_keys = set(example), set(live)
        for key in sorted(doc_keys - live_keys):
            errors.append(f"{route}: {path}.{key}: documented, missing from response")
        for key in sorted(live_keys - doc_keys):
            errors.append(f"{route}: {path}.{key}: in response, not documented")
        for key in sorted(doc_keys & live_keys):
            errors.extend(
                structure_errors(route, example[key], live[key], f"{path}.{key}")
            )
    elif isinstance(example, list):
        # Elements are homogeneous; compare against the first documented one.
        if example and live:
            errors.extend(
                structure_errors(route, example[0], live[0], f"{path}[0]")
            )
    return errors


def fetch(port: int, target: str):
    url = f"http://127.0.0.1:{port}{target}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8", "replace")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8", "replace")
    except OSError as error:
        return None, str(error)


def probe(port: int, examples: dict, wait_pairs: float = 0.0) -> list:
    errors = []

    def get(target: str, expect_status: int):
        status, body = fetch(port, target)
        if status is None:
            errors.append(f"{target}: request failed: {body}")
            return None
        if status != expect_status:
            errors.append(f"{target}: expected {expect_status}, got {status}")
            return None
        return body

    def get_json(target: str, route: str, expect_status: int = 200):
        body = get(target, expect_status)
        if body is None:
            return None
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError as error:
            errors.append(f"{target}: body is not JSON: {error}")
            return None
        if route in examples and examples[route] is not None:
            errors.extend(structure_errors(route, examples[route], parsed))
        return parsed

    # Observability routes: liveness + content sanity.
    healthz = get("/healthz", 200)
    if healthz is not None and healthz != "ok\n":
        errors.append(f"/healthz: expected 'ok', got {healthz!r}")
    metrics = get("/metrics", 200)
    if metrics is not None and "rrr_" not in metrics:
        errors.append("/metrics: no rrr_ metric families in exposition")
    body = get("/stats.json", 200)
    if body is not None:
        try:
            json.loads(body)
        except json.JSONDecodeError as error:
            errors.append(f"/stats.json: body is not JSON: {error}")
    trace = get("/trace.json", 200)
    if trace is not None and "traceEvents" not in trace:
        errors.append("/trace.json: no traceEvents key")

    # /v1 family: roster first, then self-discover a pair to probe the
    # per-pair routes with. A bench that just started serves an empty
    # pre-corpus snapshot, so optionally wait for the corpus to appear —
    # that is what makes the populated verdict/signals path reachable.
    if wait_pairs > 0:
        deadline = time.monotonic() + wait_pairs
        while time.monotonic() < deadline:
            status, body = fetch(port, "/v1/pairs?limit=1")
            try:
                if status == 200 and json.loads(body).get("pairs"):
                    break
            except json.JSONDecodeError:
                pass
            time.sleep(0.2)
        else:
            errors.append(
                f"/v1/pairs: corpus still empty after {wait_pairs}s --wait-pairs"
            )
    pairs = get_json("/v1/pairs?limit=5", "/v1/pairs")
    get_json("/v1/refresh-queue?k=5", "/v1/refresh-queue")
    if pairs is not None and pairs.get("pairs"):
        probe_id = pairs["pairs"][0].get("probe")
        dst = pairs["pairs"][0].get("dst")
        get_json(f"/v1/verdict?src={probe_id}&dst={dst}", "/v1/verdict")
        get_json(f"/v1/signals?src={probe_id}&dst={dst}&limit=4", "/v1/signals")
    elif pairs is not None:
        print("note: corpus empty; per-pair routes checked on the 404 path only")

    # The documented error contract.
    get_json("/v1/verdict?src=abc&dst=0.0.0.1", "", expect_status=400)
    get_json("/v1/verdict?src=4294967295&dst=255.255.255.254", "", expect_status=404)
    get_json("/v1/nope", "", expect_status=404)
    return errors


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", type=Path, default=Path(__file__).resolve().parents[1])
    parser.add_argument("--probe", type=int, metavar="PORT",
                        help="also probe a live server on 127.0.0.1:PORT")
    parser.add_argument("--wait-pairs", type=float, default=0.0, metavar="SECONDS",
                        help="poll /v1/pairs up to SECONDS for a non-empty "
                             "corpus before probing (fail if still empty)")
    args = parser.parse_args(argv)

    api_md = args.repo / "docs/API.md"
    if not api_md.exists():
        print(f"error: {api_md} does not exist", file=sys.stderr)
        return 1
    documented = doc_routes(api_md)
    in_code = code_routes(args.repo)

    errors = []
    for route in sorted(in_code - set(documented)):
        errors.append(f"route in code but not documented in docs/API.md: {route}")
    for route in sorted(set(documented) - in_code):
        errors.append(f"route documented in docs/API.md but absent from code: {route}")

    if args.probe and not errors:
        errors.extend(probe(args.probe, documented, args.wait_pairs))

    for error in errors:
        print(error, file=sys.stderr)
    mode = "static+probe" if args.probe else "static"
    print(f"{mode}: {len(in_code)} code route(s), {len(documented)} documented, "
          f"{len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
