#!/usr/bin/env python3
"""Validate a flight-recorder trace file (--trace-out / World::trace_json).

Checks, in order:

  1. The file is valid JSON with the Chrome trace-event envelope:
     {"displayTimeUnit": "ms", "traceEvents": [...]}.
  2. Every event carries the required keys for its phase ("X" complete
     spans need ts/dur, "i" instants need ts, "M" metadata needs a name)
     and numeric fields are non-negative numbers.
  3. Expected span taxonomy is present: at least one "window" span
     (cat "window"), and per window-close "dispatch"/"merge" spans plus
     "shard_close" or the monitor subpath spans (cat "close"), and the
     epoch-table "absorb_apply" span / "epoch_flip" instant (cat "table").
  4. Containment: every cat "close" event whose args.window == W falls
     inside the [ts, ts+dur] interval of the "window" span for that same
     window on some thread (the driver drains at the window boundary, so
     the close machinery must nest inside the window it closes).

Exit code 0 when the trace passes, 1 with a message on stderr otherwise.
Usage: validate_trace.py TRACE.json [--require-shards] [--quiet]
"""

import argparse
import json
import sys

REQUIRED_CLOSE_NAMES = {"dispatch", "merge"}
SHARD_CLOSE_NAMES = {"shard_close", "close_subpath", "close_border",
                     "close_ixp"}


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_envelope(doc):
    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    if doc.get("displayTimeUnit") != "ms":
        fail("missing or wrong displayTimeUnit (expected \"ms\")")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents is missing or not an array")
    return events


def check_event_shapes(events):
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"traceEvents[{i}] is not an object")
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            fail(f"traceEvents[{i}] has unknown phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            fail(f"traceEvents[{i}] has no name")
        if phase == "M":
            continue
        for key in ("pid", "tid", "ts"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"traceEvents[{i}] ({event['name']}) has bad {key}: "
                     f"{value!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"traceEvents[{i}] ({event['name']}) has bad dur: "
                     f"{dur!r}")
        if not isinstance(event.get("cat"), str):
            fail(f"traceEvents[{i}] ({event['name']}) has no cat")


def window_of(event):
    args = event.get("args")
    if isinstance(args, dict) and isinstance(args.get("window"), int):
        return args["window"]
    return None


def check_taxonomy(events, require_shards):
    spans = [e for e in events if e.get("ph") == "X"]
    window_spans = [e for e in spans if e.get("cat") == "window"]
    if not window_spans:
        fail("no cat=\"window\" span — was tracing enabled for the run?")
    close_names = {e["name"] for e in spans if e.get("cat") == "close"}
    missing = REQUIRED_CLOSE_NAMES - close_names
    if missing:
        fail(f"missing close-path spans: {sorted(missing)} "
             f"(saw {sorted(close_names)})")
    if require_shards and not (SHARD_CLOSE_NAMES & close_names):
        fail(f"no per-shard close span ({sorted(SHARD_CLOSE_NAMES)}); "
             f"saw {sorted(close_names)}")
    table_names = {e["name"] for e in events if e.get("cat") == "table"}
    if "absorb_apply" not in table_names:
        fail(f"missing epoch-table absorb_apply span (saw "
             f"{sorted(table_names)})")
    if "epoch_flip" not in table_names:
        fail(f"missing epoch_flip instant (saw {sorted(table_names)})")
    return window_spans


def check_containment(events, window_spans):
    # Window index -> union of [start, end] intervals of its window spans
    # (one per World; fan-outs may run several worlds into one recorder).
    intervals = {}
    for span in window_spans:
        w = window_of(span)
        if w is None:
            fail(f"window span at ts={span['ts']} lacks args.window")
        intervals.setdefault(w, []).append(
            (span["ts"], span["ts"] + span["dur"]))

    checked = 0
    for event in events:
        if event.get("cat") != "close":
            continue
        w = window_of(event)
        if w is None:
            fail(f"close event {event['name']!r} at ts={event['ts']} "
                 f"lacks args.window")
        if w not in intervals:
            fail(f"close event {event['name']!r} references window {w} "
                 f"which has no window span")
        start = event["ts"]
        end = start + event.get("dur", 0)
        if not any(lo <= start and end <= hi for lo, hi in intervals[w]):
            fail(f"close event {event['name']!r} [{start}, {end}] is not "
                 f"contained in any window-{w} span "
                 f"{intervals[w]}")
        checked += 1
    return checked


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON file (--trace-out output)")
    parser.add_argument("--require-shards", action="store_true",
                        help="require per-shard close spans (sharded runs)")
    parser.add_argument("--quiet", action="store_true")
    options = parser.parse_args()

    try:
        with open(options.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {options.trace}: {error}")

    events = check_envelope(doc)
    check_event_shapes(events)
    window_spans = check_taxonomy(events, options.require_shards)
    checked = check_containment(events, window_spans)

    if not options.quiet:
        print(f"validate_trace: OK: {len(events)} events, "
              f"{len(window_spans)} window spans, "
              f"{checked} close events contained")


if __name__ == "__main__":
    main()
