#!/usr/bin/env python3
"""Bench-level resume-reproducibility smoke test (DESIGN.md §11).

Runs the fig11 archival-reuse harness twice with the same world flags:
once cold with --checkpoint-dir (writing snapshots + the op WAL), then
once warm with --resume pointing at the same directory. Both runs write an
rrr-stats-v1 envelope via --stats-json; the warm run fast-forwards from the
snapshot instead of replaying the engine, so its day table is empty — but
the `semantic` member of every run object must match the cold run byte for
byte. That is the resume-determinism contract surfaced at the CLI, the
same property tests/checkpoint_resume_test.cpp pins at the World level.

Usage: resume_smoke.py /path/to/fig11_archival_reuse [--days N] ...
Extra arguments are forwarded to both runs. Exits non-zero on any diff.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def run(cmd):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.exit(f"command failed ({proc.returncode}): {' '.join(cmd)}")
    return proc.stdout


def load_runs(path):
    with open(path, encoding="utf-8") as fh:
        envelope = json.load(fh)
    if envelope.get("schema") != "rrr-stats-v1":
        sys.exit(f"{path}: unexpected schema {envelope.get('schema')!r}")
    return envelope["runs"]


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    binary = sys.argv[1]
    extra = sys.argv[2:] or ["--days", "2", "--pairs", "200", "--seeds", "2"]

    with tempfile.TemporaryDirectory(prefix="rrr-resume-smoke-") as scratch:
        scratch = Path(scratch)
        ckpt = scratch / "checkpoints"
        cold_json = scratch / "cold.json"
        warm_json = scratch / "warm.json"

        run([binary, *extra, "--checkpoint-dir", str(ckpt),
             "--checkpoint-every", "16", "--stats-json", str(cold_json)])
        out = run([binary, *extra, "--resume", str(ckpt),
                   "--stats-json", str(warm_json)])
        if "warm start: resumed at window" not in out:
            sys.exit("warm run never announced a resume — did the "
                     "checkpoint directory load?")

        cold_runs = load_runs(cold_json)
        warm_runs = load_runs(warm_json)
        if len(cold_runs) != len(warm_runs):
            sys.exit(f"run count mismatch: cold {len(cold_runs)} vs "
                     f"warm {len(warm_runs)}")
        failures = 0
        for cold, warm in zip(cold_runs, warm_runs):
            label = cold.get("label", "?")
            if warm.get("label") != label:
                sys.exit(f"label mismatch: {label!r} vs "
                         f"{warm.get('label')!r}")
            # Byte-for-byte on the serialized semantic member: re-dump with
            # no whitespace changes so the comparison is on content order
            # too, not a normalized view.
            cold_bytes = json.dumps(cold["semantic"], sort_keys=False)
            warm_bytes = json.dumps(warm["semantic"], sort_keys=False)
            if cold_bytes != warm_bytes:
                failures += 1
                print(f"[{label}] semantic stats diverge:")
                for c, w in zip(cold["semantic"], warm["semantic"]):
                    if c != w:
                        print(f"  cold: {c}\n  warm: {w}")
        if failures:
            sys.exit(f"{failures} run(s) diverged")
        print(f"resume smoke OK: {len(cold_runs)} run(s), semantic stats "
              "byte-identical cold vs warm")


if __name__ == "__main__":
    main()
