// §4.1.3 — staleness signals from BGP community changes.
//
// Communities often encode where an AS learned a route (Figure 3), so a
// community change on a path overlapping a corpus traceroute's AS-level
// suffix suggests an IP-level border change even when the AS path is
// unchanged. Two suppression rules guard precision: transitions between
// "has communities" and "has none" only count when the AS path is unchanged
// (an intermediate AS may simply have started stripping), and a community
// that already appears on another VP's overlapping path is not new
// information. A reputation store (Appendix B) additionally prunes
// communities that keep producing false positives, because many communities
// (traffic engineering, prepending control) never relate to the traversed
// path.
#pragma once

#include <map>
#include <unordered_map>

#include "signals/bgp_context.h"
#include "signals/monitor.h"

namespace rrr::runtime {
class ThreadPool;
}

namespace rrr::signals {

// Appendix B: per-community calibration. A community is pruned once it has
// produced enough confirmed false positives with too few true positives.
class CommunityReputation {
 public:
  // Grades one refresh outcome. Tallies are kept globally per community
  // (prunes communities unrelated to routing, e.g. TE values) and per
  // (community, pair) (prunes communities that describe a portion of the
  // AS the monitored traceroute does not traverse — §4.1.3's second
  // failure case).
  void record_outcome(Community community, const tr::PairKey& pair,
                      bool true_positive);
  bool pruned(Community community) const;
  bool pruned_for(Community community, const tr::PairKey& pair) const;
  // Number of distinct communities that generated at least one FP and are
  // not yet pruned — the quantity Figure 13 tracks over time.
  std::size_t active_false_positive_communities() const;
  std::size_t pruned_count() const;

  struct Stats {
    int tp = 0;
    int fp = 0;
  };
  const std::map<Community, Stats>& stats() const { return stats_; }

  int prune_fp_threshold = 3;
  double prune_precision_floor = 0.34;
  int pair_prune_fp_threshold = 4;
  int definer_prune_fp_threshold = 6;

  // Checkpoint support: round-trips the three tally maps (thresholds are
  // configuration).
  void save_state(store::Encoder& enc) const {
    auto put_stats = [&enc](const Stats& stats) {
      enc.i64(stats.tp);
      enc.i64(stats.fp);
    };
    enc.u64(stats_.size());
    for (const auto& [community, stats] : stats_) {
      store::put(enc, community);
      put_stats(stats);
    }
    enc.u64(pair_stats_.size());
    for (const auto& [key, stats] : pair_stats_) {
      store::put(enc, key.first);
      put_pair(enc, key.second);
      put_stats(stats);
    }
    enc.u64(definer_stats_.size());
    for (const auto& [key, stats] : definer_stats_) {
      store::put(enc, key.first);
      put_pair(enc, key.second);
      put_stats(stats);
    }
  }
  void load_state(store::Decoder& dec) {
    stats_.clear();
    pair_stats_.clear();
    definer_stats_.clear();
    auto get_stats = [&dec]() {
      Stats stats;
      stats.tp = static_cast<int>(dec.i64());
      stats.fp = static_cast<int>(dec.i64());
      return stats;
    };
    std::uint64_t n = dec.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Community community = store::get_community(dec);
      stats_[community] = get_stats();
    }
    n = dec.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Community community = store::get_community(dec);
      tr::PairKey pair = get_pair(dec);
      pair_stats_[{community, pair}] = get_stats();
    }
    n = dec.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Asn definer = store::get_asn(dec);
      tr::PairKey pair = get_pair(dec);
      definer_stats_[{definer, pair}] = get_stats();
    }
  }

 private:
  std::map<Community, Stats> stats_;
  std::map<std::pair<Community, tr::PairKey>, Stats> pair_stats_;
  // Keyed by (defining AS, pair): when an AS's communities repeatedly
  // mis-predict for a traceroute, the BGP path evidently traverses a
  // different portion of that AS than the traceroute does.
  std::map<std::pair<Asn, tr::PairKey>, Stats> definer_stats_;
};

class CommunityMonitor final : public BgpMonitor {
 public:
  CommunityMonitor(const BgpContext& context, CommunityReputation& reputation)
      : context_(context), reputation_(reputation) {}

  Technique technique() const override { return Technique::kBgpCommunity; }
  // Stamps window-close signals across entries on `pool` (null = serial).
  void set_pool(runtime::ThreadPool* pool) { pool_ = pool; }
  void watch(const CorpusView& view, PotentialIndex& index) override;
  void unwatch(const tr::PairKey& pair) override;
  void on_record(const DispatchedRecord& record,
                 std::int64_t window) override;
  std::vector<StalenessSignal> close_window(std::int64_t window,
                                            TimePoint window_end) override;
  bool reverted(PotentialId id) const override;

  struct Stats {
    std::int64_t records = 0;          // non-withdrawal records dispatched
    std::int64_t diffs = 0;            // records with a nonempty diff for some entry's definer
    std::int64_t no_prev_overlap = 0;  // suppressed: old path does not overlap
    std::int64_t no_new_overlap = 0;   // suppressed: new path does not overlap
    std::int64_t path_rule = 0;        // suppressed: path changed, not a value change
    std::int64_t known_elsewhere = 0;  // suppressed: community visible on another VP
    std::int64_t pruned = 0;           // suppressed: reputation
    std::int64_t fired = 0;            // pending signals created
  };
  const Stats& stats() const { return stats_; }

  // Checkpoint support; same index-vector ordering contract as
  // AsPathMonitor::save_state.
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);

 private:
  mutable Stats stats_;
  // One potential per (pair, AS on τ's path): a community defined by that
  // AS changing on an overlapping VP path signals that τ's border there may
  // have moved.
  struct Entry {
    PotentialId id = kNoPotential;
    tr::PairKey pair;
    Asn as;  // the defining AS a_j
    // τ_d's full AS path; interned handle shared across entries.
    InternedPath tau_path;
    std::size_t tau_index = 0;
    std::size_t border_index = kWholePath;
    // Communities defined by `as` present on overlapping VP paths at watch
    // time (the baseline for revocation).
    CommunitySet baseline;
    // Pending signal (emitted at window close); stores the judging window.
    bool pending = false;
    Community pending_community;
    int pending_vp_count = 0;
  };

  // Whether `path` overlaps τ's suffix at `entry.as` (i.e. the suffixes
  // from a_j match).
  static bool overlaps_suffix(const Entry& entry, const AsPath& path);
  // Communities defined by `definer` on any *other* overlapping VP's
  // standing route toward dst.
  bool community_known_elsewhere(const Entry& entry, Community community,
                                 bgp::VpId except_vp) const;
  CommunitySet baseline_communities(const Entry& entry) const;

  runtime::ThreadPool* pool_ = nullptr;
  const BgpContext& context_;
  CommunityReputation& reputation_;
  std::unordered_map<PotentialId, std::unique_ptr<Entry>> entries_;
  std::map<tr::PairKey, std::vector<Entry*>> by_pair_;
  std::unordered_map<Ipv4, std::vector<Entry*>> by_dst_;
  DstIndex dst_index_;
  std::unordered_map<PotentialId, Entry*> by_potential_;
  std::vector<Entry*> pending_;
};

}  // namespace rrr::signals
