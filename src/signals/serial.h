// Checkpoint codec helpers shared by the signals layer: pair keys, signal
// metadata, full signals, and active-signal records. Field order is fixed;
// see store/serial.h.
#pragma once

#include "signals/calibration.h"
#include "signals/signal.h"
#include "store/codec.h"

namespace rrr::signals {

inline void put_pair(store::Encoder& enc, const tr::PairKey& pair) {
  enc.u32(pair.probe);
  store::put(enc, pair.dst);
}

inline tr::PairKey get_pair(store::Decoder& dec) {
  tr::PairKey pair;
  pair.probe = dec.u32();
  pair.dst = store::get_ipv4(dec);
  return pair;
}

inline void put_meta(store::Encoder& enc, const SignalMeta& meta) {
  enc.i64(meta.ip_overlap);
  enc.i64(meta.as_overlap);
  enc.i64(meta.vps_same_as_city);
  enc.i64(meta.vps_same_as);
  enc.i64(meta.vps_same_city);
  enc.boolean(meta.as_level);
  enc.i64(meta.vp_count);
  enc.f64(meta.deviation);
}

inline SignalMeta get_meta(store::Decoder& dec) {
  SignalMeta meta;
  meta.ip_overlap = static_cast<int>(dec.i64());
  meta.as_overlap = static_cast<int>(dec.i64());
  meta.vps_same_as_city = static_cast<int>(dec.i64());
  meta.vps_same_as = static_cast<int>(dec.i64());
  meta.vps_same_city = static_cast<int>(dec.i64());
  meta.as_level = dec.boolean();
  meta.vp_count = static_cast<int>(dec.i64());
  meta.deviation = dec.f64();
  return meta;
}

inline void put_signal(store::Encoder& enc, const StalenessSignal& signal) {
  enc.u8(static_cast<std::uint8_t>(signal.technique));
  enc.u64(signal.potential);
  store::put(enc, signal.time);
  enc.i64(signal.window);
  enc.i64(signal.span_seconds);
  put_pair(enc, signal.pair);
  enc.u64(signal.border_index);
  put_meta(enc, signal.meta);
  store::put(enc, signal.community);
}

inline StalenessSignal get_signal(store::Decoder& dec) {
  StalenessSignal signal;
  signal.technique = static_cast<Technique>(dec.u8());
  signal.potential = dec.u64();
  signal.time = store::get_time(dec);
  signal.window = dec.i64();
  signal.span_seconds = dec.i64();
  signal.pair = get_pair(dec);
  signal.border_index = dec.u64();
  signal.meta = get_meta(dec);
  signal.community = store::get_community(dec);
  return signal;
}

inline void put_active(store::Encoder& enc, const ActiveSignal& active) {
  enc.u64(active.potential);
  enc.u8(static_cast<std::uint8_t>(active.technique));
  put_meta(enc, active.meta);
  put_pair(enc, active.pair);
  store::put(enc, active.community);
}

inline ActiveSignal get_active(store::Decoder& dec) {
  ActiveSignal active;
  active.potential = dec.u64();
  active.technique = static_cast<Technique>(dec.u8());
  active.meta = get_meta(dec);
  active.pair = get_pair(dec);
  active.community = store::get_community(dec);
  return active;
}

}  // namespace rrr::signals
