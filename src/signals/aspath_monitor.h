// §4.1.2 — staleness signals from overlapping BGP AS paths.
//
// For a corpus traceroute τ_d and each AS a_j on its AS-level path, the
// monitor tracks P_ratio = |P_match| / |P_intersect| over 15-minute windows:
// among BGP paths toward d that first intersect τ_d at a_j (counting the
// standing route at window start plus every update within the window, from
// the pinned VP set V_0 that intersected at watch time), the fraction whose
// suffix from a_j matches τ_d's. Outliers in the Bitmap-detected series are
// staleness prediction signals; flagged windows are excluded from history so
// persistent changes keep signalling (§4.1.2).
#pragma once

#include <map>
#include <unordered_map>

#include "detect/series.h"
#include "signals/bgp_context.h"
#include "signals/monitor.h"

namespace rrr::runtime {
class ThreadPool;
}

namespace rrr::signals {

class AsPathMonitor final : public BgpMonitor {
 public:
  explicit AsPathMonitor(const BgpContext& context) : context_(context) {}

  Technique technique() const override { return Technique::kBgpAsPath; }
  // Evaluates window closes across entries on `pool` (null = serial).
  void set_pool(runtime::ThreadPool* pool) { pool_ = pool; }
  void watch(const CorpusView& view, PotentialIndex& index) override;
  void unwatch(const tr::PairKey& pair) override;
  void on_record(const DispatchedRecord& record,
                 std::int64_t window) override;
  std::vector<StalenessSignal> close_window(std::int64_t window,
                                            TimePoint window_end) override;
  bool reverted(PotentialId id) const override;

  std::size_t entry_count() const { return entries_.size(); }

  // Checkpoint support. Entries are serialized sorted by potential id with
  // every dynamic field; the index vectors (by_pair_/by_dst_/dirty_/hot_)
  // are serialized as ordered id lists rather than rebuilt, because their
  // order (set by unordered_map-driven insertion at watch/dispatch time)
  // feeds the close-path work lists and therefore the canonical signal
  // merge. dst_index_ and by_potential_ are derived and rebuilt on load.
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);

 private:
  struct Entry {
    PotentialId id = kNoPotential;
    tr::PairKey pair;
    Asn as;                 // a_j
    InternedPath tau_path;  // τ_d's full AS path; shared across entries
    std::size_t tau_index;  // position of a_j in tau_path
    std::size_t border_index = kWholePath;
    // Sorted, duplicate-free; flat instead of std::set for the same
    // resident-set reasons as BurstMonitor's VP lists.
    std::vector<bgp::VpId> v0;
    detect::LazySeries series;
    double baseline_ratio = 1.0;
    bool dirty = false;
    // Windows left in which the series must be re-evaluated even without
    // new updates: the Bitmap detector's lead window needs several samples
    // of a shifted level before the bitmap distance peaks, so a value
    // change keeps the entry "hot" for a few windows.
    int hot_windows = 0;
    // Update paths observed in the open window, per VP. Interned handles:
    // buffering an update is an id copy, and the checkpoint codec resolves
    // to content on write (bytes unchanged) / re-interns on read.
    std::vector<std::pair<bgp::VpId, InternedPath>> window_updates;
  };

  // Computes (match, intersect) counts for `entry` from standing routes and
  // its buffered window updates.
  std::pair<int, int> counts(const Entry& entry) const;
  static bool path_counts(const Entry& entry, const AsPath& path, int& num,
                          int& den);
  void fill_meta(const Entry& entry, double score, SignalMeta& meta) const;

  // One entry's re-evaluation at window close. Touches only `entry` (the
  // table view is read-only during the close), so distinct entries are safe
  // to evaluate concurrently; the hot-queue membership change is returned
  // instead of applied so the caller can apply it in work-list order.
  struct EvalResult {
    std::vector<StalenessSignal> signals;
    bool newly_hot = false;
  };
  EvalResult evaluate(Entry* entry, bool from_update, std::int64_t window,
                      TimePoint window_end);

  runtime::ThreadPool* pool_ = nullptr;
  const BgpContext& context_;
  std::unordered_map<PotentialId, std::unique_ptr<Entry>> entries_;
  std::map<tr::PairKey, std::vector<Entry*>> by_pair_;
  // Destination IP -> entries monitoring it, plus the prefix-cover index.
  std::unordered_map<Ipv4, std::vector<Entry*>> by_dst_;
  DstIndex dst_index_;
  std::vector<Entry*> dirty_;
  std::vector<Entry*> hot_;
  std::unordered_map<PotentialId, Entry*> by_potential_;
};

}  // namespace rrr::signals
