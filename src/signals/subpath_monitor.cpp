#include "signals/subpath_monitor.h"

#include <algorithm>
#include <cmath>

#include "netbase/rng.h"
#include "runtime/parallel.h"
#include "signals/feed_health.h"

namespace rrr::signals {

std::uint64_t SubpathMonitor::key_of(const std::vector<Ipv4>& ips) {
  std::uint64_t h = 0x5E69E7;
  for (Ipv4 ip : ips) h = hash_combine(h, ip.value());
  return h;
}

SubpathMonitor::Segment* SubpathMonitor::ensure_segment(
    const std::vector<Ipv4>& ips, PotentialIndex& index) {
  std::uint64_t key = key_of(ips);
  auto it = segments_.find(key);
  if (it != segments_.end()) return it->second.get();
  auto segment = std::make_unique<Segment>(Segment{
      .id = index.create(Technique::kTraceSubpath),
      .ips = ips,
      .series = detect::AdaptiveRatioSeries(prototype_,
                                            params_.max_window_multiplier),
      .subscribers = {},
      .baseline_ratio = -1.0,
      .touched = false,
  });
  Segment* raw = segment.get();
  by_first_ip_[ips.front()].push_back(raw);
  by_potential_[raw->id] = raw;
  segments_.emplace(key, std::move(segment));
  return raw;
}

void SubpathMonitor::watch(const CorpusView& view, PotentialIndex& index) {
  const tracemap::ProcessedTrace& pt = view.processed;
  for (std::size_t b = 0; b < pt.borders.size(); ++b) {
    // The monitored segment must *span* the border it watches with
    // endpoints that survive a change of that border: when the crossing
    // moves, traceroutes still flow between the endpoints (T_intersect
    // holds) but no longer follow the exact hops (T_match drops), which is
    // what the ratio detector needs. A segment whose endpoints die with
    // the crossing only ever produces missing windows.
    std::size_t begin =
        b > 0 ? pt.borders[b - 1].far_index
              : (pt.borders[b].near_index > 0 ? pt.borders[b].near_index - 1
                                              : pt.borders[b].near_index);
    std::size_t end = b + 1 < pt.borders.size()
                          ? pt.borders[b + 1].near_index
                          : std::min(pt.borders[b].far_index +
                                         static_cast<std::size_t>(
                                             params_.flank_hops),
                                     pt.hops.size() - 1);
    if (end <= begin) continue;
    std::vector<Ipv4> ips;
    bool usable = true;
    for (std::size_t i = begin; i <= end; ++i) {
      if (!pt.hops[i].responded()) {
        usable = false;
        break;
      }
      ips.push_back(*pt.hops[i].ip);
    }
    if (!usable || ips.size() < 2) continue;
    Segment* segment = ensure_segment(ips, index);
    bool found = false;
    for (Subscriber& sub : segment->subscribers) {
      if (sub.pair == view.key && sub.border == b) {
        sub.zombie = false;
        found = true;
        break;
      }
    }
    if (!found) {
      segment->subscribers.push_back(Subscriber{view.key, b, false});
    }
    index.relate(segment->id, view.key, b);
    by_pair_[view.key].push_back(segment);
  }
}

void SubpathMonitor::unwatch(const tr::PairKey& pair) {
  auto it = by_pair_.find(pair);
  if (it == by_pair_.end()) return;
  for (Segment* segment : it->second) {
    for (Subscriber& sub : segment->subscribers) {
      if (sub.pair == pair) sub.zombie = true;
    }
  }
  by_pair_.erase(it);
}

void SubpathMonitor::on_public_trace(const tracemap::ProcessedTrace& trace,
                                     std::int64_t window) {
  // Position of each responding IP (first occurrence).
  std::unordered_map<Ipv4, std::size_t> position;
  position.reserve(trace.hops.size() * 2);
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    if (trace.hops[i].responded()) {
      position.try_emplace(*trace.hops[i].ip, i);
    }
  }
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    if (!trace.hops[i].responded()) continue;
    auto sit = by_first_ip_.find(*trace.hops[i].ip);
    if (sit == by_first_ip_.end()) continue;
    for (Segment* segment : sit->second) {
      // Intersect: the public trace goes from ι_m to ι_n.
      auto pit = position.find(segment->ips.back());
      if (pit == position.end() || pit->second <= i) continue;
      // Match: the exact hop sequence is followed.
      bool match = true;
      if (i + segment->ips.size() <= trace.hops.size()) {
        for (std::size_t k = 0; k < segment->ips.size(); ++k) {
          const auto& hop = trace.hops[i + k];
          if (!hop.responded() || *hop.ip != segment->ips[k]) {
            match = false;
            break;
          }
        }
      } else {
        match = false;
      }
      segment->series.add(window, match ? 1 : 0, 1);
      ++observations_;
      if (!segment->touched) {
        segment->touched = true;
        touched_.push_back(segment);
      }
    }
  }
}

std::vector<StalenessSignal> SubpathMonitor::close_segment(
    Segment* segment, std::int64_t window, TimePoint window_end) {
  std::vector<StalenessSignal> signals;
  for (const detect::ClosedRatioWindow& closed :
       segment->series.close_through(window + 1)) {
    if (segment->baseline_ratio < 0.0 && segment->series.armed()) {
      segment->baseline_ratio = closed.ratio;
    }
    bool drop = closed.judgement.outlier && closed.judgement.score < 0 &&
                closed.intersect >= params_.min_intersect;
    // A path change can only *reduce* how often the exact subpath is
    // followed (upward outliers are sampling-mix noise), and a thin
    // window needs corroboration from the next one.
    bool confirmed =
        drop && (closed.intersect >= params_.single_shot_intersect ||
                 segment->pending_drop);
    segment->pending_drop = drop;
    if (!confirmed) continue;
    // §4.2.1 gating: with a degraded public-trace feed, T_ratio drops
    // measure which probes went dark, not where packets flow.
    if (health_ != nullptr && health_->trace_degraded()) {
      obs::inc(dropped_unhealthy_,
               static_cast<std::int64_t>(segment->subscribers.size()));
      continue;
    }
    // The outlier belongs to its aggregate window, which may end before
    // the base window being closed (sparse segments aggregate slowly).
    std::int64_t agg_end =
        closed.aggregate_window * closed.multiplier + closed.multiplier - 1;
    TimePoint at = window_end -
                   (window - agg_end) * params_.base_window_seconds;
    for (const Subscriber& sub : segment->subscribers) {
      StalenessSignal signal;
      signal.technique = Technique::kTraceSubpath;
      signal.potential = segment->id;
      signal.time = at;
      signal.window = agg_end;
      signal.span_seconds =
          closed.multiplier * params_.base_window_seconds;
      signal.pair = sub.pair;
      signal.border_index = sub.border;
      signal.meta.ip_overlap = static_cast<int>(segment->ips.size());
      signal.meta.deviation = std::abs(closed.judgement.score);
      signals.push_back(std::move(signal));
    }
  }
  return signals;
}

std::vector<StalenessSignal> SubpathMonitor::close_window(
    std::int64_t window, TimePoint window_end) {
  std::vector<StalenessSignal> signals;
  // Segments are disjoint state, so shards close them concurrently into
  // per-segment buffers; concatenating the buffers in work-list order makes
  // the output independent of the thread count.
  obs::ScopedSpan span(mobs_.close_us);
  std::vector<Segment*> work;
  work.swap(touched_);
  obs::observe(mobs_.close_items, static_cast<double>(work.size()));
  std::vector<std::vector<StalenessSignal>> shards =
      runtime::parallel_map(pool_, work, [&](Segment* segment) {
        segment->touched = false;
        return close_segment(segment, window, window_end);
      });
  for (std::vector<StalenessSignal>& shard : shards) {
    for (StalenessSignal& signal : shard) {
      signals.push_back(std::move(signal));
    }
  }
  // Periodic sweep so idle segments still close their pending windows;
  // zombie subscriptions have flushed whatever was pending by now.
  if (window % 96 == 95) {
    std::vector<Segment*> all;
    all.reserve(segments_.size());
    for (auto& [key, segment] : segments_) all.push_back(segment.get());
    std::vector<std::vector<StalenessSignal>> swept =
        runtime::parallel_map(pool_, all, [&](Segment* segment) {
          return close_segment(segment, window, window_end);
        });
    for (std::vector<StalenessSignal>& shard : swept) {
      for (StalenessSignal& signal : shard) {
        signals.push_back(std::move(signal));
      }
    }
    for (Segment* segment : all) {
      std::erase_if(segment->subscribers,
                    [](const Subscriber& sub) { return sub.zombie; });
    }
  }
  return signals;
}

SubpathMonitor::Stats SubpathMonitor::stats() const {
  Stats stats;
  stats.segments = segments_.size();
  double mult_sum = 0.0;
  for (const auto& [key, segment] : segments_) {
    if (segment->series.armed()) ++stats.armed;
    if (segment->series.dormant()) ++stats.dormant;
    if (!segment->subscribers.empty()) ++stats.subscribed;
    mult_sum += static_cast<double>(segment->series.multiplier());
  }
  if (!segments_.empty()) {
    stats.mean_multiplier = mult_sum / static_cast<double>(segments_.size());
  }
  stats.observations = observations_;
  return stats;
}

std::vector<SubpathMonitor::SegmentInfo> SubpathMonitor::segments_for(
    const tr::PairKey& pair) const {
  std::vector<SegmentInfo> out;
  auto it = by_pair_.find(pair);
  if (it == by_pair_.end()) return out;
  for (const Segment* segment : it->second) {
    SegmentInfo info;
    for (const Subscriber& sub : segment->subscribers) {
      if (sub.pair == pair) {
        info.border_index = sub.border;
        break;
      }
    }
    info.length = segment->ips.size();
    info.armed = segment->series.armed();
    info.dormant = segment->series.dormant();
    info.multiplier = segment->series.multiplier();
    info.has_ratio = segment->series.has_ratio();
    info.last_ratio = segment->series.last_ratio();
    out.push_back(info);
  }
  return out;
}

void SubpathMonitor::save_state(store::Encoder& enc) const {
  std::vector<const Segment*> ordered;
  ordered.reserve(segments_.size());
  for (const auto& [key, segment] : segments_) {
    ordered.push_back(segment.get());
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Segment* a, const Segment* b) { return a->id < b->id; });
  enc.u64(ordered.size());
  for (const Segment* segment : ordered) {
    enc.u64(segment->id);
    enc.u64(segment->ips.size());
    for (Ipv4 ip : segment->ips) store::put(enc, ip);
    segment->series.save_state(enc);
    enc.u64(segment->subscribers.size());
    for (const Subscriber& sub : segment->subscribers) {
      put_pair(enc, sub.pair);
      enc.u64(sub.border);
      enc.boolean(sub.zombie);
    }
    enc.f64(segment->baseline_ratio);
    enc.boolean(segment->touched);
    enc.boolean(segment->pending_drop);
  }
  auto put_ids = [&enc](const std::vector<Segment*>& list) {
    enc.u64(list.size());
    for (const Segment* segment : list) enc.u64(segment->id);
  };
  enc.u64(by_pair_.size());
  for (const auto& [pair, list] : by_pair_) {
    put_pair(enc, pair);
    put_ids(list);
  }
  put_ids(touched_);
  enc.u64(observations_);
}

void SubpathMonitor::load_state(store::Decoder& dec) {
  segments_.clear();
  by_first_ip_.clear();
  by_pair_.clear();
  by_potential_.clear();
  touched_.clear();
  std::vector<Segment*> in_id_order;
  std::uint64_t count = dec.u64();
  in_id_order.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PotentialId id = dec.u64();
    std::vector<Ipv4> ips;
    std::uint64_t ip_count = dec.u64();
    ips.reserve(ip_count);
    for (std::uint64_t j = 0; j < ip_count; ++j) {
      ips.push_back(store::get_ipv4(dec));
    }
    auto segment = std::make_unique<Segment>(Segment{
        .id = id,
        .ips = std::move(ips),
        .series = detect::AdaptiveRatioSeries(prototype_,
                                              params_.max_window_multiplier),
        .subscribers = {},
        .baseline_ratio = -1.0,
        .touched = false,
        .pending_drop = false,
    });
    segment->series.load_state(dec);
    std::uint64_t sub_count = dec.u64();
    segment->subscribers.reserve(sub_count);
    for (std::uint64_t j = 0; j < sub_count; ++j) {
      Subscriber sub;
      sub.pair = get_pair(dec);
      sub.border = dec.u64();
      sub.zombie = dec.boolean();
      segment->subscribers.push_back(sub);
    }
    segment->baseline_ratio = dec.f64();
    segment->touched = dec.boolean();
    segment->pending_drop = dec.boolean();
    Segment* raw = segment.get();
    in_id_order.push_back(raw);
    by_potential_[raw->id] = raw;
    segments_.emplace(key_of(raw->ips), std::move(segment));
  }
  // Id order == original registration order (see header comment).
  for (Segment* segment : in_id_order) {
    by_first_ip_[segment->ips.front()].push_back(segment);
  }
  auto get_ids = [this, &dec]() {
    std::vector<Segment*> list;
    std::uint64_t n = dec.u64();
    list.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      list.push_back(by_potential_.at(dec.u64()));
    }
    return list;
  };
  std::uint64_t pair_count = dec.u64();
  for (std::uint64_t i = 0; i < pair_count; ++i) {
    tr::PairKey pair = get_pair(dec);
    by_pair_[pair] = get_ids();
  }
  touched_ = get_ids();
  observations_ = dec.u64();
}

bool SubpathMonitor::reverted(PotentialId id) const {
  auto it = by_potential_.find(id);
  if (it == by_potential_.end()) return false;
  const Segment& segment = *it->second;
  if (segment.baseline_ratio < 0.0 || !segment.series.has_ratio()) {
    return false;
  }
  return std::abs(segment.series.last_ratio() - segment.baseline_ratio) <
         0.1;
}

}  // namespace rrr::signals
