// ShardedStalenessEngine: the staleness engine scaled horizontally by
// partitioning the corpus over N StalenessEngine shards.
//
// Each pair is routed to shard hash(pair) % N by a platform-stable hash, so
// a shard owns a disjoint slice of the corpus plus the BGP monitors whose
// entries are per-pair (AS-path, community, burst). One BGP/public-trace
// stream fans out to all shards; per-window shard batches merge at the
// boundary in a canonical order, making the signal stream bit-identical for
// any (shards, threads) combination — the same determinism contract
// DESIGN.md states for threads (see "Sharded engine").
//
// Exactly one copy of the BGP table state exists regardless of shard count:
// the facade owns a bgp::EpochTableView whose *published* epoch is the
// immutable start-of-window snapshot every shard and monitor reads (through
// the shared BgpContext). The window's records are absorbed once — into the
// *shadow* buffer, by a pool task that overlaps phases A and B when
// EngineParams::pipeline_absorb is on — and the epoch flips with one atomic
// pointer swap in the serial section before the canonical merge. Readers
// therefore never lock and never observe a half-applied batch; see
// bgp/epoch_table.h for the buffer protocol and DESIGN.md §10 for the
// schedule.
//
// Cross-pair state that the single-engine design shares *between* pairs —
// the potential-id space, calibration and community-reputation tallies, the
// global signal cooldown, and the trace-driven monitors (subpath/border
// series are deduplicated across pairs; IXP membership is learned globally)
// — stays in the facade with one instance, because per-shard copies would
// make the output depend on the partition. Shards borrow it read-only
// during parallel phases; all mutation happens in facade-serial sections
// (watch, refresh, registration), which is what keeps the sharded close
// TSAN-clean without locks.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "runtime/task_group.h"
#include "runtime/thread_pool.h"
#include "signals/engine.h"

namespace rrr::signals {

class ShardedStalenessEngine {
 public:
  // Same wiring as StalenessEngine; `params.shards` fixes the partition
  // count (clamped to >= 1) and `params.threads` the pool size shared by
  // every shard and monitor.
  ShardedStalenessEngine(const EngineParams& params,
                         tracemap::ProcessingContext& processing,
                         std::vector<bgp::VantagePoint> vps,
                         std::vector<topo::AsIndex> vp_as,
                         std::vector<topo::CityId> vp_city,
                         std::set<Asn> ixp_route_server_asns, AsRelDb rels,
                         std::map<topo::IxpId, std::set<Asn>> ixp_members);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  // Stable pair -> shard routing (mix64-based, not std::hash: the partition
  // must not vary across platforms or runs).
  std::size_t shard_of(const tr::PairKey& pair) const;

  // --- corpus management ---
  void watch(const tr::Probe& probe, const tr::Traceroute& trace);
  std::size_t corpus_size() const;

  // --- data feeds ---
  void on_bgp_record(const bgp::BgpRecord& record);
  void on_public_trace(const tr::Traceroute& trace);

  // Closes every window ending at or before `t`; returns the staleness
  // prediction signals generated in them, merged across shards in
  // canonical (technique-close-rank, window, potential, pair) order.
  std::vector<StalenessSignal> advance_to(TimePoint t);

  // --- refresh cycle (§4.3.1) ---
  // Merges every shard's candidates and plans under one global budget with
  // one calibration store and one RNG stream, so the chosen set is
  // independent of the partition.
  std::vector<tr::PairKey> plan_refreshes(int budget);
  RefreshOutcome apply_refresh(const tr::Probe& probe,
                               const tr::Traceroute& fresh);

  // --- queries ---
  tr::Freshness freshness(const tr::PairKey& pair) const;
  // Stale pairs across all shards, sorted by pair key.
  std::vector<tr::PairKey> stale_pairs() const;
  // Per-pair verdict state merged across shards, sorted by pair key. Pure
  // read (no RNG draw, no mutation) — the serving layer materializes its
  // snapshots from this at every window boundary.
  std::vector<PairStateView> pair_states() const;
  // Publication counter of the epoch-flipped BGP table: increments once per
  // absorbed window, captured into ServingSnapshot::table_epoch.
  std::uint64_t table_epoch() const { return table_.epoch(); }
  const Calibration& calibration() const { return calibration_; }
  const CommunityReputation& community_reputation() const {
    return reputation_;
  }
  const bgp::VpTableView& table_view() const { return table_.read(); }
  const PotentialIndex& potentials() const { return index_; }
  std::int64_t current_window() const { return next_window_; }
  const WindowClock& clock() const { return clock_; }
  const tracemap::ProcessedTrace* processed_of(const tr::PairKey& pair) const;
  const SubpathMonitor& subpath_monitor() const { return subpath_; }
  const BorderMonitor& border_monitor() const { return border_; }
  // Suppression counters summed over every shard's community monitor.
  CommunityMonitor::Stats community_stats() const;
  // Direct shard access (tests / diagnostics).
  const StalenessEngine& shard(std::size_t i) const { return *shards_[i]; }

  // --- checkpoint support ---
  // Serializes the facade's single cross-pair instances followed by every
  // shard's local slice. The shard count is stored and verified on load:
  // a snapshot written at N shards restores only into an engine built with
  // N shards (the partition fixes which shard holds which pair — but the
  // merged signal stream is partition-invariant, so the determinism grid
  // may still compare runs across shard counts by their outputs).
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);

 private:
  void close_one_window(std::int64_t window,
                        std::vector<StalenessSignal>& out);

  EngineParams params_;
  WindowClock clock_;
  tracemap::ProcessingContext& processing_;
  Rng rng_;
  // Facade-owned instrument bundles (all-null when params_.metrics is null);
  // declared before the shards, which copy obs_ at construction.
  EngineObs obs_;
  runtime::PoolObs pool_obs_;
  // Per-shard phase-A close spans, labeled {shard="i"}; empty when
  // telemetry is off.
  std::vector<obs::Histogram*> shard_close_us_;
  // Shared worker pool (null when threads <= 1); declared before everything
  // that borrows it.
  std::unique_ptr<runtime::ThreadPool> pool_;

  // The single copies of all cross-pair state (see file comment).
  std::vector<bgp::VantagePoint> vps_;
  // Table-canonical path memo used at the serial feed boundary to stamp
  // BgpRecord::canonical_path (the absorb task then never interns on a
  // pool thread). Declared before `table_`, which consumes the IXP set.
  bgp::PathCanonicalizer feed_canon_;
  // Epoch-flipped table: shards/monitors read the published buffer during
  // the parallel phases while the absorb writer fills the shadow.
  bgp::EpochTableView table_;
  BgpContext context_;
  std::vector<bgp::BgpRecord> pending_records_;
  // Dispatch-path prepend-collapse memo and the epoch arena backing the
  // per-close dispatch batch; serial close path only, arena reset per close.
  bgp::PathCanonicalizer collapse_canon_;
  runtime::Arena close_arena_;
  PotentialIndex index_;
  Calibration calibration_;
  CommunityReputation reputation_;
  AsRelDb rels_;
  SubpathMonitor subpath_;
  BorderMonitor border_;
  IxpMonitor ixp_;
  // Feed-health tracker (one instance: delivery is counted at the facade's
  // serial feed boundary; shards only consult it). Null when tracking is
  // off. Declared before the shards, which borrow it at construction.
  std::unique_ptr<FeedHealthTracker> health_;

  std::vector<std::unique_ptr<StalenessEngine>> shards_;
  // Global signal cooldown: a potential shared by pairs in different shards
  // must still fire at most once per cooldown window span.
  std::map<PotentialId, std::int64_t> last_fired_;
  std::int64_t next_window_ = 0;  // first window not yet closed
};

}  // namespace rrr::signals
