#include "signals/monitor.h"

#include <stdexcept>

namespace rrr::signals {

const char* to_string(Technique technique) {
  switch (technique) {
    case Technique::kBgpAsPath:
      return "BGP AS-paths";
    case Technique::kBgpCommunity:
      return "BGP communities";
    case Technique::kBgpBurst:
      return "BGP update bursts";
    case Technique::kColocation:
      return "Colocation changes";
    case Technique::kTraceSubpath:
      return "Traceroute subpaths";
    case Technique::kTraceBorder:
      return "Traceroute borders";
  }
  return "?";
}

std::string StalenessSignal::to_string() const {
  std::string out = "[";
  out += signals::to_string(technique);
  out += "] pair(probe=" + std::to_string(pair.probe) +
         ", dst=" + pair.dst.to_string() + ") window=" +
         std::to_string(window);
  if (border_index != kWholePath) {
    out += " border#" + std::to_string(border_index);
  } else {
    out += " (AS-level)";
  }
  return out;
}

PotentialId PotentialIndex::create(Technique technique) {
  techniques_.push_back(technique);
  obs::inc(opened_[technique_index(technique)]);
  return static_cast<PotentialId>(techniques_.size());
}

Technique PotentialIndex::technique_of(PotentialId id) const {
  if (id == kNoPotential || id > techniques_.size()) {
    throw std::out_of_range("unknown potential id");
  }
  return techniques_[id - 1];
}

void PotentialIndex::relate(PotentialId id, const tr::PairKey& pair,
                            std::size_t border_index) {
  auto& relations = by_pair_[pair];
  Relation relation{id, border_index};
  for (const Relation& existing : relations) {
    if (existing == relation) return;
  }
  relations.push_back(relation);
}

void PotentialIndex::unrelate_pair(const tr::PairKey& pair) {
  by_pair_.erase(pair);
}

const std::vector<PotentialIndex::Relation>& PotentialIndex::relations_of(
    const tr::PairKey& pair) const {
  static const std::vector<Relation> kEmpty;
  auto it = by_pair_.find(pair);
  return it == by_pair_.end() ? kEmpty : it->second;
}

}  // namespace rrr::signals
