// Per-stream feed-health tracking at the engine's feed boundary.
//
// The engine's signals are ratios over what the feeds deliver; when a
// collector goes dark the ratios crater for reasons that have nothing to do
// with the Internet. The tracker watches every BGP *collector* (the
// aggregate of its vantage points' records — a single peer's stream is too
// bursty to judge) and every public-traceroute probe as an independent
// stream, learns its expected per-window record rate (EWMA baseline), and
// runs a quarantine state machine per stream:
//
//     healthy → suspect → dead → recovering → healthy
//
// A gap is judged over an adaptive horizon — the last ceil(judge_mass /
// baseline) windows, so a sparse stream (a BGP vantage point emitting a few
// updates a day) is judged over enough windows to carry signal while a
// dense one (a public probe) is judged almost per-window. The judgement is
// *relative to the rest of the feed*: the expected delivery is scaled by
// the feed's activity ratio (what the whole feed delivered over the horizon
// vs. what every stream's baseline predicts), so a feed-wide lull — routing
// updates are event-driven and globally bursty — shrinks every stream's
// expectation instead of reading as a thousand simultaneous outages. Only a
// stream that is silent *while its peers chatter* gaps. One gap (horizon
// delivery below gap_fraction × expected) makes a stream suspect;
// `suspect_windows` consecutive gaps make it dead; a dead stream that
// delivers again recovers, and `recover_windows` consecutive healthy
// windows return it to healthy. `dead` and `recovering` streams are
// *quarantined*: monitors consult the tracker before emitting ratio-based
// signals and drop (and count) signals that would be attributable to a
// quarantined stream, and calibration tallies for quarantined probes are
// frozen so TPR/TNR estimates are not poisoned by the outage.
//
// Concurrency/determinism: counting happens on the serial feed path and
// state transitions in `close_window`, which both engines call at the top
// of their (facade-serial) window close — before any monitor runs. During
// the parallel monitor phases the tracker is strictly read-only, so its
// answers are identical at every (shards, threads) grid point and the
// semantic gauges it exports are part of the determinism contract.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bgp/record.h"
#include "store/serial.h"
#include "traceroute/traceroute.h"

namespace rrr::obs {
class Gauge;
class MetricsRegistry;
}  // namespace rrr::obs

namespace rrr::signals {

enum class FeedState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kDead = 2,
  kRecovering = 3,
};

const char* to_string(FeedState state);

struct FeedHealthParams {
  bool enabled = false;
  // EWMA weight of the expected-rate baseline, applied per judgement
  // horizon (not per window), so the baseline of a sparse stream cannot
  // decay to unjudgeable during the horizon-long lag before a gap fires.
  double baseline_alpha = 0.2;
  // A judgement horizon delivering fewer than gap_fraction x expected
  // records is a gap. Expected = baseline x horizon x activity_ratio, where
  // the activity ratio compares the whole feed's horizon delivery against
  // the sum of its streams' baselines: a feed-wide lull scales every
  // stream's expectation toward zero (no gap can fire), while a stream
  // silent during normal feed activity is judged at full expectation.
  // Conservative by default: a real collector outage is *total* silence
  // over many horizons, so a low fraction costs no detection while letting
  // one stream idle through another's busy stretch.
  double gap_fraction = 0.15;
  // Streams with a baseline (records/window) below this are too quiet to
  // judge at any horizon.
  double min_baseline = 0.05;
  // Expected records per judgement horizon: the horizon stretches to
  // ceil(judge_mass / baseline) windows so sparse streams (a collector
  // aggregating a few quiet peers) are judged over enough windows to carry
  // signal, while dense streams are judged almost per-window. Sized so a
  // natural lull is far below the gap threshold (P[X < gap_fraction * 24]
  // is ~1e-7 for a Poisson stream at the baseline rate — real update
  // streams are burstier than Poisson, hence the margin).
  double judge_mass = 24.0;
  // Cap on the stretched horizon; streams too sparse to reach judge_mass
  // within it are judged on whatever the capped horizon holds.
  std::int64_t max_horizon_windows = 48;
  // Windows a stream must be observed before it can be judged at all.
  std::int64_t warmup_windows = 6;
  // Consecutive gap windows that turn suspect into dead.
  std::int64_t suspect_windows = 2;
  // Consecutive healthy-rate windows that turn recovering into healthy.
  std::int64_t recover_windows = 4;
  // Fraction of judged streams quarantined above which the whole feed
  // counts as degraded.
  double degraded_fraction = 0.3;
};

class FeedHealthTracker {
 public:
  explicit FeedHealthTracker(const FeedHealthParams& params);

  // Registers the semantic health gauges (rrr_feed_streams /
  // rrr_feed_degraded).
  void set_metrics(obs::MetricsRegistry& registry);

  // --- serial feed path ---
  // `window` is the engine-clock index of the record's timestamp; counts
  // are bucketed per window so jittered/reordered records land where their
  // timestamp says. BGP liveness is judged per *collector* (the aggregate
  // of its vantage points' records): a single peer's stream is naturally
  // bursty — a quiet half-day means nothing — while a collector aggregates
  // enough sessions to have a judgeable rate, and a collector outage is
  // exactly the failure mode worth catching. The vp argument records which
  // collector answers for that VP's quarantine queries.
  //
  // The hot path takes the interned collector id (the engines pass
  // record.collector.id(): one integer-keyed map probe per record); the
  // string overload interns and delegates, for tests and offline callers.
  void count_bgp(bgp::VpId vp, CollectorId collector, std::int64_t window);
  void count_bgp(bgp::VpId vp, const std::string& collector,
                 std::int64_t window);
  void count_trace(tr::ProbeId probe, std::int64_t window);

  // --- facade-serial close path ---
  // Consumes the counts of every window <= `window` and advances each
  // stream's state machine once. Must be called once per window, in order,
  // before any monitor close consults the tracker.
  void close_window(std::int64_t window);

  // --- read-only queries (safe during parallel monitor phases) ---
  FeedState bgp_state(bgp::VpId vp) const;
  FeedState trace_state(tr::ProbeId probe) const;
  // Quarantined = dead or recovering: the stream's data for recent windows
  // is missing or still back-filling.
  bool bgp_quarantined(bgp::VpId vp) const;
  bool trace_quarantined(tr::ProbeId probe) const;
  // Aggregate degradation, recomputed at close: fraction of judged streams
  // currently quarantined >= degraded_fraction.
  bool bgp_degraded() const { return bgp_degraded_; }
  bool trace_degraded() const { return trace_degraded_; }
  double bgp_quarantined_fraction() const { return bgp_quarantined_fraction_; }
  double trace_quarantined_fraction() const {
    return trace_quarantined_fraction_;
  }

  const FeedHealthParams& params() const { return params_; }

  // Checkpoint support: round-trips every stream's quarantine state
  // machine (state, streaks, EWMA baseline, arrival rings, pending
  // buckets) plus the collector-intern tables, so a restored tracker's
  // subsequent judgements are bit-identical to the uninterrupted one
  // (asserted by tests/checkpoint_resume_test.cpp). The exported gauges
  // are refreshed on the next close_window.
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);

 private:
  struct Stream {
    // Records per window the stream historically delivers; < 0 = unset.
    double baseline = -1.0;
    FeedState state = FeedState::kHealthy;
    std::int64_t gap_streak = 0;
    std::int64_t ok_streak = 0;
    std::int64_t seen_windows = 0;
    // Ring of the last max_horizon_windows per-window counts; the gap
    // judgement sums the most recent `horizon` of them.
    std::vector<std::int64_t> recent;
    std::size_t recent_pos = 0;
    // Per-window arrival counts not yet consumed by close_window.
    std::map<std::int64_t, std::int64_t> pending;
  };
  // std::map: close_window iterates streams, and deterministic iteration
  // order keeps the exported gauges grid-invariant.
  using StreamMap = std::map<std::uint32_t, Stream>;

  // One feed (BGP or trace): its streams plus the feed-wide per-window
  // delivery totals the activity ratio is computed from.
  struct Feed {
    StreamMap streams;
    // Ring of the last max_horizon_windows feed-wide totals.
    std::vector<std::int64_t> totals;
    std::size_t totals_pos = 0;
    std::int64_t seen_windows = 0;
  };

  // Judges one stream against the feed's recent activity;
  // `sum_baselines` is the sum of every seeded stream's baseline, the
  // denominator of the activity ratio.
  void advance(Stream& stream, const Feed& feed, double sum_baselines);
  struct CloseResult {
    std::array<std::int64_t, 4> by_state{};
    std::int64_t judged = 0;
    std::int64_t quarantined = 0;
  };
  CloseResult close_feed(Feed& feed, std::int64_t window);

  FeedHealthParams params_;
  // BGP streams are keyed by a tracker-local dense id assigned in serial
  // feed first-sight order (so stream iteration order — and with it FP
  // summation order and the exported gauges — is grid-invariant);
  // collector_local_ maps the global interned CollectorId to that local id,
  // and vp_collector_ maps each vantage point to the collector stream that
  // answers for it. Snapshots store collector *names*, never intern ids.
  Feed bgp_;
  std::map<CollectorId, std::uint32_t> collector_local_;
  std::map<bgp::VpId, std::uint32_t> vp_collector_;
  Feed trace_;
  bool bgp_degraded_ = false;
  bool trace_degraded_ = false;
  double bgp_quarantined_fraction_ = 0.0;
  double trace_quarantined_fraction_ = 0.0;

  std::array<obs::Gauge*, 4> obs_bgp_states_{};
  std::array<obs::Gauge*, 4> obs_trace_states_{};
  obs::Gauge* obs_bgp_degraded_ = nullptr;
  obs::Gauge* obs_trace_degraded_ = nullptr;
};

}  // namespace rrr::signals
