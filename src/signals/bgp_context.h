// Shared state the BGP-based monitors read: the standing per-VP table view
// and vantage-point metadata for signal attributes.
#pragma once

#include <vector>

#include "bgp/record.h"
#include "bgp/table_view.h"
#include "topology/types.h"

namespace rrr::signals {

struct BgpContext {
  const bgp::VpTableView* table = nullptr;
  const std::vector<bgp::VantagePoint>* vps = nullptr;
  // Per-VpId location, for the Table 1 bootstrap attributes.
  std::vector<topo::AsIndex> vp_as;
  std::vector<topo::CityId> vp_city;

  std::size_t vp_count() const { return vps ? vps->size() : 0; }
};

}  // namespace rrr::signals
