// Shared state the BGP-based monitors read: the standing per-VP table view
// and vantage-point metadata for signal attributes.
//
// Reader role: everything reached through this struct is *read-only* during
// the parallel phases of a window close. `table` points at the engine's
// EpochTableView, whose published epoch holds the start-of-window state for
// the whole close — monitors may look routes up from any pool thread while
// the absorb writer fills the shadow buffer (see bgp/epoch_table.h for the
// full protocol). The epoch only flips in the serial section after every
// monitor close has been joined, so a monitor never sees the table change
// under it mid-close.
#pragma once

#include <vector>

#include "bgp/epoch_table.h"
#include "bgp/record.h"
#include "topology/types.h"

namespace rrr::signals {

struct BgpContext {
  // The engine-owned epoch table. Monitors call `table->route(...)` etc.,
  // which forward to the published (immutable) epoch.
  const bgp::EpochTableView* table = nullptr;
  const std::vector<bgp::VantagePoint>* vps = nullptr;
  // Per-VpId location, for the Table 1 bootstrap attributes.
  std::vector<topo::AsIndex> vp_as;
  std::vector<topo::CityId> vp_city;

  std::size_t vp_count() const { return vps ? vps->size() : 0; }
};

}  // namespace rrr::signals
