#include "signals/sharded_engine.h"

#include <algorithm>

#include "bgp/serial.h"
#include "runtime/parallel.h"

namespace rrr::signals {
namespace {

EngineParams normalized(EngineParams params) {
  params.subpath.base_window_seconds = params.window_seconds;
  params.border.base_window_seconds = params.window_seconds;
  if (params.shards < 1) params.shards = 1;
  return params;
}

// Rank of each technique in the canonical merge order — the order the
// single-engine close path registers batches in (BGP monitors, then table
// absorption, then trace monitors). Within a rank, signals order by
// (window, potential, pair, border): subpath/border potentials are shared
// by several subscriber pairs, so the pair key breaks the tie the same way
// for every partition.
int close_rank(Technique technique) {
  switch (technique) {
    case Technique::kBgpAsPath: return 0;
    case Technique::kBgpCommunity: return 1;
    case Technique::kBgpBurst: return 2;
    case Technique::kTraceSubpath: return 3;
    case Technique::kTraceBorder: return 4;
    case Technique::kColocation: return 5;
  }
  return 6;
}

bool canonical_less(const StalenessSignal& a, const StalenessSignal& b) {
  int ra = close_rank(a.technique);
  int rb = close_rank(b.technique);
  if (ra != rb) return ra < rb;
  if (a.window != b.window) return a.window < b.window;
  if (a.potential != b.potential) return a.potential < b.potential;
  if (a.pair != b.pair) return a.pair < b.pair;
  return a.border_index < b.border_index;
}

}  // namespace

ShardedStalenessEngine::ShardedStalenessEngine(
    const EngineParams& params, tracemap::ProcessingContext& processing,
    std::vector<bgp::VantagePoint> vps, std::vector<topo::AsIndex> vp_as,
    std::vector<topo::CityId> vp_city, std::set<Asn> ixp_route_server_asns,
    AsRelDb rels, std::map<topo::IxpId, std::set<Asn>> ixp_members)
    : params_(normalized(params)),
      clock_(params.t0, params.window_seconds),
      processing_(processing),
      rng_(Rng(params.seed).fork(0xE9619E)),
      vps_(std::move(vps)),
      feed_canon_(ixp_route_server_asns),
      table_(std::move(ixp_route_server_asns)),
      calibration_(params.calibration_windows),
      rels_(std::move(rels)),
      subpath_(params_.subpath),
      border_(params_.border),
      ixp_(rels_, std::move(ixp_members)) {
  context_.table = &table_;
  context_.vps = &vps_;
  context_.vp_as = std::move(vp_as);
  context_.vp_city = std::move(vp_city);
  if (params_.threads > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(params_.threads);
  }
  if (params_.tracer != nullptr) {
    if (pool_ != nullptr) pool_->set_tracer(params_.tracer);
    table_.set_tracer(params_.tracer);
  }
  subpath_.set_pool(pool_.get());
  border_.set_pool(pool_.get());
  ixp_.set_pool(pool_.get());

  if (params_.metrics != nullptr) {
    obs_ = EngineObs::create(*params_.metrics);
    index_.set_obs(obs_.potentials_opened);
    shard_close_us_.reserve(static_cast<std::size_t>(params_.shards));
    for (int i = 0; i < params_.shards; ++i) {
      shard_close_us_.push_back(&params_.metrics->histogram(
          "rrr_shard_close_us", obs::duration_buckets_us(),
          {{"shard", std::to_string(i)}}, obs::Domain::kRuntime,
          "Wall microseconds of one shard's phase-A close"));
    }
    if (pool_ != nullptr) {
      pool_obs_ = runtime::PoolObs::create(*params_.metrics);
      pool_->set_obs(&pool_obs_);
    }
  }
  subpath_.set_obs(obs_.monitors[technique_index(Technique::kTraceSubpath)]);
  border_.set_obs(obs_.monitors[technique_index(Technique::kTraceBorder)]);
  ixp_.set_obs(obs_.monitors[technique_index(Technique::kColocation)]);

  if (params_.feed_health.enabled) {
    health_ = std::make_unique<FeedHealthTracker>(params_.feed_health);
    if (params_.metrics != nullptr) health_->set_metrics(*params_.metrics);
  }
  subpath_.set_feed_health(
      health_.get(),
      obs_.dropped_unhealthy_feed[technique_index(Technique::kTraceSubpath)]);
  border_.set_feed_health(
      health_.get(),
      obs_.dropped_unhealthy_feed[technique_index(Technique::kTraceBorder)]);
  ixp_.set_feed_health(
      health_.get(),
      obs_.dropped_unhealthy_feed[technique_index(Technique::kColocation)]);

  EngineSharedState shared;
  shared.context = &context_;
  shared.pool = pool_.get();
  shared.index = &index_;
  shared.calibration = &calibration_;
  shared.reputation = &reputation_;
  shared.subpath = &subpath_;
  shared.border = &border_;
  shared.ixp = &ixp_;
  shared.obs = &obs_;
  shared.health = health_.get();
  shards_.reserve(static_cast<std::size_t>(params_.shards));
  for (int i = 0; i < params_.shards; ++i) {
    shards_.push_back(
        std::make_unique<StalenessEngine>(params_, processing_, shared));
  }
}

std::size_t ShardedStalenessEngine::shard_of(const tr::PairKey& pair) const {
  std::uint64_t h = hash_combine(static_cast<std::uint64_t>(pair.probe),
                                 static_cast<std::uint64_t>(pair.dst.value()));
  return static_cast<std::size_t>(h % shards_.size());
}

void ShardedStalenessEngine::watch(const tr::Probe& probe,
                                   const tr::Traceroute& trace) {
  tr::PairKey key{trace.probe, trace.dst_ip};
  shards_[shard_of(key)]->watch(probe, trace);
}

std::size_t ShardedStalenessEngine::corpus_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->corpus_size();
  return total;
}

void ShardedStalenessEngine::on_bgp_record(const bgp::BgpRecord& record) {
  // Delivery tally at the (serial) feed boundary — the one place every
  // record passes exactly once regardless of the shard partition.
  if (health_ != nullptr) {
    health_->count_bgp(record.vp, record.collector.id(),
                       clock_.index_of(record.time));
  }
  bgp::BgpRecord& stored = pending_records_.emplace_back(record);
  // Stamp the table-canonical path here — the one serial point every record
  // passes — so the pipelined absorb never interns on a pool thread.
  stored.canonical_path = feed_canon_.canonical(stored.as_path.id());
}

void ShardedStalenessEngine::on_public_trace(const tr::Traceroute& trace) {
  // Public traces feed only the global trace monitors — no shard fan-out
  // (and none would be deterministic: their series mix evidence across
  // pairs, so each trace must update exactly one instance).
  tracemap::ProcessedTrace processed = processing_.ingest(trace);
  std::int64_t window = clock_.index_of(trace.time);
  if (health_ != nullptr) health_->count_trace(trace.probe, window);
  subpath_.on_public_trace(processed, window);
  border_.on_public_trace(processed, window);
  ixp_.on_public_trace(processed, window);
}

void ShardedStalenessEngine::close_one_window(
    std::int64_t window, std::vector<StalenessSignal>& out) {
  obs::ScopedSpan close_span(obs_.window_close_us);
  TimePoint end = clock_.window_end(window);
  // Health transitions run facade-serial before any parallel phase: shards
  // and trace monitors then consult a frozen tracker, which keeps the
  // close TSAN-clean and the gating independent of the partition.
  if (health_ != nullptr) health_->close_window(window);
  std::size_t cut = cut_window_prefix(pending_records_, clock_, window);
  // Normalize the window's records once against the published start-of-
  // window epoch; every shard dispatches the same read-only views. The
  // batch is arena-backed: dead by the end of this close, reclaimed by the
  // reset below.
  DispatchedBatch dispatched = [&] {
    obs::ScopedSpan dispatch_span(obs_.dispatch_us);
    obs::TraceSpan trace_span(params_.tracer, "dispatch", "close", window,
                              "records", static_cast<std::int64_t>(cut));
    return dispatch_against_table(pending_records_, cut, table_.read(),
                                  collapse_canon_, close_arena_);
  }();

  // The absorb writer fills the epoch table's shadow while every reader
  // (shards in phase A, revocation sweeps) keeps seeing the published
  // epoch. Pipelined, it overlaps phases A and B on the pool; serial, it
  // runs inline between them — the exact pre-epoch schedule. The flip is
  // deferred until writer and readers are joined, so both schedules yield
  // the same signal stream.
  runtime::TaskGroup absorb_group(pool_.get());
  auto absorb_batch = [this, cut, window] {
    obs::ScopedSpan absorb_span(obs_.absorb_us);
    obs::TraceSpan trace_span(params_.tracer, "absorb", "close", window,
                              "records", static_cast<std::int64_t>(cut));
    table_.absorb(pending_records_, cut);
  };
  if (params_.pipeline_absorb) absorb_group.spawn(absorb_batch);

  // Phase A — shards in parallel: dispatch the window's records to the
  // shard's BGP monitors and close them into raw per-shard buffers. The
  // published epoch is immutable here, and each shard touches only its
  // own entries.
  std::vector<std::vector<StalenessSignal>> raw(shards_.size());
  runtime::parallel_for(
      pool_.get(), shards_.size(),
      [&](std::size_t i) {
        obs::ScopedSpan shard_span(
            shard_close_us_.empty() ? nullptr : shard_close_us_[i]);
        obs::TraceSpan trace_span(params_.tracer, "shard_close", "close",
                                  window, "shard",
                                  static_cast<std::int64_t>(i));
        shards_[i]->dispatch_window_records(dispatched, window);
        shards_[i]->collect_bgp_close(raw[i], window, end);
      },
      /*grain=*/1);

  if (!params_.pipeline_absorb) {
    absorb_batch();
    table_.flip();
    obs::inc(obs_.epoch_flips);
  }

  // Phase B — the three global trace monitors close concurrently (each
  // fans its own per-series work out on the same pool).
  std::vector<StalenessSignal> subpath_raw;
  std::vector<StalenessSignal> border_raw;
  std::vector<StalenessSignal> ixp_raw;
  {
    runtime::TaskGroup group(pool_.get());
    group.spawn([&] {
      obs::TraceSpan span(params_.tracer, "close_subpath", "close", window);
      subpath_raw = subpath_.close_window(window, end);
    });
    group.spawn([&] {
      obs::TraceSpan span(params_.tracer, "close_border", "close", window);
      border_raw = border_.close_window(window, end);
    });
    group.spawn([&] {
      obs::TraceSpan span(params_.tracer, "close_ixp", "close", window);
      ixp_raw = ixp_.close_window(window, end);
    });
    group.wait();
  }

  if (params_.pipeline_absorb) {
    {
      obs::ScopedSpan wait_span(obs_.absorb_wait_us);
      obs::TraceSpan trace_span(params_.tracer, "absorb_wait", "close",
                                window);
      absorb_group.wait();
    }
    table_.flip();
    obs::inc(obs_.epoch_flips);
  }
  obs::inc(obs_.bgp_records_absorbed, static_cast<std::int64_t>(cut));
  pending_records_.erase(pending_records_.begin(),
                         pending_records_.begin() +
                             static_cast<std::ptrdiff_t>(cut));
  // Phase A is joined, so nothing references the dispatch batch anymore;
  // drop it and recycle the arena slabs for the next window.
  dispatched.clear();
  close_arena_.reset();

  // Merge in canonical order, then register serially: registration owns
  // the global cooldown map and the shards' freshness state.
  std::vector<StalenessSignal> batch;
  {
    obs::ScopedSpan merge_span(obs_.merge_us);
    obs::TraceSpan trace_span(params_.tracer, "merge", "close", window);
    std::size_t total =
        subpath_raw.size() + border_raw.size() + ixp_raw.size();
    for (const auto& buffer : raw) total += buffer.size();
    batch.reserve(total);
    auto append = [&batch](std::vector<StalenessSignal>&& buffer) {
      batch.insert(batch.end(), std::make_move_iterator(buffer.begin()),
                   std::make_move_iterator(buffer.end()));
    };
    for (auto& buffer : raw) append(std::move(buffer));
    append(std::move(subpath_raw));
    append(std::move(border_raw));
    append(std::move(ixp_raw));
    std::sort(batch.begin(), batch.end(), canonical_less);
  }

  {
    obs::ScopedSpan register_span(obs_.register_us);
    obs::TraceSpan trace_span(params_.tracer, "register", "close", window,
                              "signals",
                              static_cast<std::int64_t>(batch.size()));
    out.reserve(out.size() + batch.size());
    for (StalenessSignal& signal : batch) {
      StalenessEngine& shard = *shards_[shard_of(signal.pair)];
      if (!shard.has_pair(signal.pair)) {
        obs::inc(obs_.signals_dropped_refreshed);
        continue;  // refreshed mid-window
      }
      auto fired = last_fired_.find(signal.potential);
      if (fired != last_fired_.end() &&
          signal.window - fired->second < params_.signal_cooldown_windows) {
        obs::inc(obs_.signals_suppressed_cooldown);
        continue;  // persistent change already reported recently
      }
      last_fired_[signal.potential] = signal.window;
      obs::inc(obs_.signals_emitted[technique_index(signal.technique)]);
      shard.mark_stale(signal);
      out.push_back(std::move(signal));
    }
  }

  if (params_.revocation_check_interval > 0 &&
      window % params_.revocation_check_interval ==
          params_.revocation_check_interval - 1) {
    obs::TraceSpan trace_span(params_.tracer, "revocation", "close", window);
    // Each shard sweeps its own corpus; monitors and table are read-only.
    runtime::parallel_for(
        pool_.get(), shards_.size(),
        [&](std::size_t i) { shards_[i]->run_revocation(window); },
        /*grain=*/1);
  }
}

std::vector<StalenessSignal> ShardedStalenessEngine::advance_to(TimePoint t) {
  std::vector<StalenessSignal> out;
  std::int64_t last = clock_.index_of(t) - 1;  // windows fully ended by t
  if (clock_.window_end(last + 1) == t) last += 1;
  while (next_window_ <= last) {
    close_one_window(next_window_, out);
    ++next_window_;
  }
  return out;
}

std::vector<tr::PairKey> ShardedStalenessEngine::plan_refreshes(int budget) {
  // std::map keeps the merged candidates in pair order, so the scheduler
  // sees the exact single-engine input whatever the partition.
  std::map<tr::PairKey, RefreshScheduler::PairState> pairs;
  for (const auto& shard : shards_) shard->collect_refresh_candidates(pairs);
  return RefreshScheduler::plan(pairs, calibration_, budget, rng_);
}

RefreshOutcome ShardedStalenessEngine::apply_refresh(
    const tr::Probe& probe, const tr::Traceroute& fresh) {
  tr::PairKey key{fresh.probe, fresh.dst_ip};
  return shards_[shard_of(key)]->apply_refresh(probe, fresh);
}

tr::Freshness ShardedStalenessEngine::freshness(
    const tr::PairKey& pair) const {
  return shards_[shard_of(pair)]->freshness(pair);
}

std::vector<tr::PairKey> ShardedStalenessEngine::stale_pairs() const {
  std::vector<tr::PairKey> out;
  for (const auto& shard : shards_) {
    std::vector<tr::PairKey> part = shard->stale_pairs();
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PairStateView> ShardedStalenessEngine::pair_states() const {
  std::vector<PairStateView> out;
  out.reserve(corpus_size());
  for (const auto& shard : shards_) shard->collect_pair_states(out);
  // Each shard appends in pair order; the merged view re-sorts so the
  // result is partition-invariant.
  std::sort(out.begin(), out.end(),
            [](const PairStateView& a, const PairStateView& b) {
              return a.pair < b.pair;
            });
  return out;
}

const tracemap::ProcessedTrace* ShardedStalenessEngine::processed_of(
    const tr::PairKey& pair) const {
  return shards_[shard_of(pair)]->processed_of(pair);
}

void ShardedStalenessEngine::save_state(store::Encoder& enc) const {
  enc.str(rng_.save_state());
  table_.save_state(enc);
  enc.u64(pending_records_.size());
  for (const bgp::BgpRecord& record : pending_records_) {
    bgp::put_record(enc, record);
  }
  index_.save_state(enc);
  calibration_.save_state(enc);
  reputation_.save_state(enc);
  subpath_.save_state(enc);
  border_.save_state(enc);
  ixp_.save_state(enc);
  enc.boolean(health_ != nullptr);
  if (health_ != nullptr) health_->save_state(enc);
  enc.u64(last_fired_.size());
  for (const auto& [potential, window] : last_fired_) {
    enc.u64(potential);
    enc.i64(window);
  }
  enc.i64(next_window_);
  enc.u32(static_cast<std::uint32_t>(shards_.size()));
  for (const auto& shard : shards_) shard->save_shard_state(enc);
}

void ShardedStalenessEngine::load_state(store::Decoder& dec) {
  rng_.load_state(std::string(dec.str()));
  table_.load_state(dec);
  pending_records_.clear();
  std::uint64_t record_count = dec.u64();
  pending_records_.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    pending_records_.push_back(bgp::get_record(dec));
  }
  index_.load_state(dec);
  calibration_.load_state(dec);
  reputation_.load_state(dec);
  subpath_.load_state(dec);
  border_.load_state(dec);
  ixp_.load_state(dec, &index_);
  bool has_health = dec.boolean();
  if (has_health != (health_ != nullptr)) {
    throw store::StoreError(
        store::StoreError::Kind::kCorrupt,
        "snapshot feed-health state does not match engine configuration");
  }
  if (health_ != nullptr) health_->load_state(dec);
  last_fired_.clear();
  std::uint64_t fired_count = dec.u64();
  for (std::uint64_t i = 0; i < fired_count; ++i) {
    PotentialId potential = dec.u64();
    last_fired_[potential] = dec.i64();
  }
  next_window_ = dec.i64();
  std::uint32_t shard_count = dec.u32();
  if (shard_count != shards_.size()) {
    throw store::StoreError(
        store::StoreError::Kind::kCorrupt,
        "snapshot shard count does not match engine configuration");
  }
  for (auto& shard : shards_) shard->load_shard_state(dec);
}

CommunityMonitor::Stats ShardedStalenessEngine::community_stats() const {
  CommunityMonitor::Stats total;
  for (const auto& shard : shards_) {
    const CommunityMonitor::Stats& s = shard->community_monitor().stats();
    total.records += s.records;
    total.diffs += s.diffs;
    total.no_prev_overlap += s.no_prev_overlap;
    total.no_new_overlap += s.no_new_overlap;
    total.path_rule += s.path_rule;
    total.known_elsewhere += s.known_elsewhere;
    total.pruned += s.pruned;
    total.fired += s.fired;
  }
  return total;
}

}  // namespace rrr::signals
