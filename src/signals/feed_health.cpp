#include "signals/feed_health.h"

#include <algorithm>
#include <cmath>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace rrr::signals {

const char* to_string(FeedState state) {
  switch (state) {
    case FeedState::kHealthy:
      return "healthy";
    case FeedState::kSuspect:
      return "suspect";
    case FeedState::kDead:
      return "dead";
    case FeedState::kRecovering:
      return "recovering";
  }
  return "?";
}

FeedHealthTracker::FeedHealthTracker(const FeedHealthParams& params)
    : params_(params) {}

void FeedHealthTracker::set_metrics(obs::MetricsRegistry& registry) {
  constexpr auto kSem = obs::Domain::kSemantic;
  constexpr FeedState kStates[] = {FeedState::kHealthy, FeedState::kSuspect,
                                   FeedState::kDead, FeedState::kRecovering};
  for (FeedState state : kStates) {
    auto index = static_cast<std::size_t>(state);
    obs_bgp_states_[index] = &registry.gauge(
        "rrr_feed_streams",
        {{"feed", "bgp"}, {"state", to_string(state)}}, kSem,
        "feed streams per quarantine state");
    obs_trace_states_[index] = &registry.gauge(
        "rrr_feed_streams",
        {{"feed", "trace"}, {"state", to_string(state)}}, kSem,
        "feed streams per quarantine state");
  }
  obs_bgp_degraded_ =
      &registry.gauge("rrr_feed_degraded", {{"feed", "bgp"}}, kSem,
                      "1 when the feed's quarantined fraction is degraded");
  obs_trace_degraded_ =
      &registry.gauge("rrr_feed_degraded", {{"feed", "trace"}}, kSem,
                      "1 when the feed's quarantined fraction is degraded");
}

void FeedHealthTracker::count_bgp(bgp::VpId vp, CollectorId collector,
                                  std::int64_t window) {
  auto [it, inserted] = collector_local_.try_emplace(
      collector, static_cast<std::uint32_t>(collector_local_.size()));
  vp_collector_.emplace(vp, it->second);
  ++bgp_.streams[it->second].pending[window];
}

void FeedHealthTracker::count_bgp(bgp::VpId vp, const std::string& collector,
                                  std::int64_t window) {
  count_bgp(vp, Interner::global().collector_id(collector), window);
}

void FeedHealthTracker::count_trace(tr::ProbeId probe, std::int64_t window) {
  ++trace_.streams[probe].pending[window];
}

void FeedHealthTracker::advance(Stream& stream, const Feed& feed,
                                double sum_baselines) {
  const std::size_t ring = stream.recent.size();
  const std::int64_t count =
      stream.recent[(stream.recent_pos + ring - 1) % ring];

  const bool judged = stream.seen_windows > params_.warmup_windows &&
                      stream.baseline >= params_.min_baseline;

  // Adaptive judgement horizon: enough windows to expect judge_mass records
  // at the baseline rate, capped at the ring. One window for dense streams,
  // most of a day for a collector whose peers speak a few times an hour.
  std::int64_t horizon = 0;
  std::int64_t delivered = 0;
  bool gap = false;
  if (stream.baseline >= params_.min_baseline) {
    horizon = static_cast<std::int64_t>(
        std::ceil(params_.judge_mass / stream.baseline));
    horizon = std::clamp<std::int64_t>(horizon, 1,
                                       params_.max_horizon_windows);
    horizon = std::min<std::int64_t>(horizon, stream.seen_windows);
    std::int64_t feed_delivered = 0;
    for (std::int64_t k = 0; k < horizon; ++k) {
      const auto back = static_cast<std::size_t>(k);
      delivered +=
          stream.recent[(stream.recent_pos + ring - 1 - back) % ring];
      feed_delivered +=
          feed.totals[(feed.totals_pos + ring - 1 - back) % ring];
    }
    if (judged) {
      // BGP activity is event-driven and globally bursty: judge the stream
      // against what the feed actually delivered, not wall-clock time. In
      // a feed-wide lull the ratio collapses and no gap can fire; a stream
      // silent while its peers chatter is judged at full expectation.
      const double expected_feed =
          sum_baselines * static_cast<double>(horizon);
      const double ratio =
          expected_feed > 1e-12
              ? std::min(1.0, static_cast<double>(feed_delivered) /
                                  expected_feed)
              : 0.0;
      gap = static_cast<double>(delivered) <
            params_.gap_fraction * stream.baseline *
                static_cast<double>(horizon) * ratio;
    }
  }

  // The baseline is an estimate of the *healthy* rate: it learns only while
  // the stream is healthy, so an outage cannot decay it to zero and a
  // recovery backfill burst cannot inflate it. The stream's first-ever
  // window is skipped — for BGP vantage points that is the initial RIB
  // dump, orders of magnitude above the steady rate. Once judgeable, the
  // EWMA tracks the horizon mean at an effective weight of baseline_alpha
  // per *horizon*: the gap judgement lags silence by up to one horizon, and
  // a per-window weight would let that lag decay a sparse stream's baseline
  // below min_baseline (unjudgeable, so never quarantined) before the gap
  // ever fired. Per-horizon weighting bounds the pre-gap decay at ~e^-alpha
  // however sparse the stream.
  if (!gap && stream.state == FeedState::kHealthy &&
      stream.seen_windows > 1) {
    if (stream.baseline < params_.min_baseline) {
      // Seed (and re-seed a too-quiet stream) from raw nonzero counts until
      // the stream is loud enough to judge.
      if (count > 0) {
        stream.baseline =
            stream.baseline < 0.0
                ? static_cast<double>(count)
                : (1.0 - params_.baseline_alpha) * stream.baseline +
                      params_.baseline_alpha * static_cast<double>(count);
      }
    } else {
      const double mean = static_cast<double>(delivered) /
                          static_cast<double>(horizon);
      const double weight =
          params_.baseline_alpha / static_cast<double>(horizon);
      stream.baseline = (1.0 - weight) * stream.baseline + weight * mean;
    }
  }

  switch (stream.state) {
    case FeedState::kHealthy:
      if (gap) {
        stream.state = FeedState::kSuspect;
        stream.gap_streak = 1;
      }
      break;
    case FeedState::kSuspect:
      if (gap) {
        if (++stream.gap_streak >= params_.suspect_windows) {
          stream.state = FeedState::kDead;
        }
      } else {
        stream.state = FeedState::kHealthy;
        stream.gap_streak = 0;
      }
      break;
    case FeedState::kDead:
      if (!gap) {
        stream.state = FeedState::kRecovering;
        stream.ok_streak = 1;
      }
      break;
    case FeedState::kRecovering:
      if (gap) {
        stream.state = FeedState::kDead;
        stream.ok_streak = 0;
      } else if (++stream.ok_streak >= params_.recover_windows) {
        stream.state = FeedState::kHealthy;
        stream.ok_streak = 0;
        stream.gap_streak = 0;
      }
      break;
  }
}

FeedHealthTracker::CloseResult FeedHealthTracker::close_feed(
    Feed& feed, std::int64_t window) {
  CloseResult result;
  const auto ring = static_cast<std::size_t>(
      std::max<std::int64_t>(params_.max_horizon_windows, 1));
  if (feed.totals.size() != ring) feed.totals.assign(ring, 0);

  // Pass 1: drain this window's counts into every stream's ring and the
  // feed-wide totals ring. The activity-ratio denominator sums the
  // baselines as of the previous close — pass 2 may update them.
  std::int64_t total = 0;
  double sum_baselines = 0.0;
  for (auto& [id, stream] : feed.streams) {
    std::int64_t count = 0;
    auto it = stream.pending.begin();
    while (it != stream.pending.end() && it->first <= window) {
      count += it->second;
      it = stream.pending.erase(it);
    }
    ++stream.seen_windows;
    if (stream.recent.size() != ring) stream.recent.assign(ring, 0);
    stream.recent[stream.recent_pos] = count;
    stream.recent_pos = (stream.recent_pos + 1) % ring;
    total += count;
    sum_baselines += std::max(stream.baseline, 0.0);
  }
  feed.totals[feed.totals_pos] = total;
  feed.totals_pos = (feed.totals_pos + 1) % ring;
  ++feed.seen_windows;

  // Pass 2: judge each stream against the feed's recent activity.
  for (auto& [id, stream] : feed.streams) {
    advance(stream, feed, sum_baselines);
    ++result.by_state[static_cast<std::size_t>(stream.state)];
    if (stream.seen_windows > params_.warmup_windows &&
        stream.baseline >= params_.min_baseline) {
      ++result.judged;
      if (stream.state == FeedState::kDead ||
          stream.state == FeedState::kRecovering) {
        ++result.quarantined;
      }
    }
  }
  return result;
}

void FeedHealthTracker::close_window(std::int64_t window) {
  CloseResult bgp = close_feed(bgp_, window);
  CloseResult trace = close_feed(trace_, window);

  bgp_quarantined_fraction_ =
      bgp.judged == 0 ? 0.0
                      : static_cast<double>(bgp.quarantined) /
                            static_cast<double>(bgp.judged);
  trace_quarantined_fraction_ =
      trace.judged == 0 ? 0.0
                        : static_cast<double>(trace.quarantined) /
                              static_cast<double>(trace.judged);
  bgp_degraded_ = bgp_quarantined_fraction_ >= params_.degraded_fraction;
  trace_degraded_ = trace_quarantined_fraction_ >= params_.degraded_fraction;

  for (std::size_t i = 0; i < 4; ++i) {
    obs::set(obs_bgp_states_[i], bgp.by_state[i]);
    obs::set(obs_trace_states_[i], trace.by_state[i]);
  }
  obs::set(obs_bgp_degraded_, bgp_degraded_ ? 1 : 0);
  obs::set(obs_trace_degraded_, trace_degraded_ ? 1 : 0);
}

FeedState FeedHealthTracker::bgp_state(bgp::VpId vp) const {
  auto vit = vp_collector_.find(vp);
  if (vit == vp_collector_.end()) return FeedState::kHealthy;
  auto it = bgp_.streams.find(vit->second);
  return it == bgp_.streams.end() ? FeedState::kHealthy : it->second.state;
}

FeedState FeedHealthTracker::trace_state(tr::ProbeId probe) const {
  auto it = trace_.streams.find(probe);
  return it == trace_.streams.end() ? FeedState::kHealthy : it->second.state;
}

bool FeedHealthTracker::bgp_quarantined(bgp::VpId vp) const {
  FeedState state = bgp_state(vp);
  return state == FeedState::kDead || state == FeedState::kRecovering;
}

bool FeedHealthTracker::trace_quarantined(tr::ProbeId probe) const {
  FeedState state = trace_state(probe);
  return state == FeedState::kDead || state == FeedState::kRecovering;
}

void FeedHealthTracker::save_state(store::Encoder& enc) const {
  auto save_feed = [&](const Feed& feed) {
    enc.u64(feed.streams.size());
    for (const auto& [id, stream] : feed.streams) {
      enc.u32(id);
      enc.f64(stream.baseline);
      enc.u8(static_cast<std::uint8_t>(stream.state));
      enc.i64(stream.gap_streak);
      enc.i64(stream.ok_streak);
      enc.i64(stream.seen_windows);
      enc.u64(stream.recent.size());
      for (std::int64_t v : stream.recent) enc.i64(v);
      enc.u64(stream.recent_pos);
      enc.u64(stream.pending.size());
      for (const auto& [window, count] : stream.pending) {
        enc.i64(window);
        enc.i64(count);
      }
    }
    enc.u64(feed.totals.size());
    for (std::int64_t v : feed.totals) enc.i64(v);
    enc.u64(feed.totals_pos);
    enc.i64(feed.seen_windows);
  };
  save_feed(bgp_);
  save_feed(trace_);
  // Written as (name, local id) sorted by name — exactly the bytes the
  // pre-interning std::map<std::string, id> emitted — so snapshots depend
  // only on content, never on global intern-id assignment history.
  std::vector<std::pair<std::string_view, std::uint32_t>> collectors;
  collectors.reserve(collector_local_.size());
  for (const auto& [collector, local] : collector_local_) {
    collectors.emplace_back(Interner::global().collector(collector), local);
  }
  std::sort(collectors.begin(), collectors.end());
  enc.u64(collectors.size());
  for (const auto& [name, local] : collectors) {
    enc.str(name);
    enc.u32(local);
  }
  enc.u64(vp_collector_.size());
  for (const auto& [vp, id] : vp_collector_) {
    enc.u32(vp);
    enc.u32(id);
  }
  enc.boolean(bgp_degraded_);
  enc.boolean(trace_degraded_);
  enc.f64(bgp_quarantined_fraction_);
  enc.f64(trace_quarantined_fraction_);
}

void FeedHealthTracker::load_state(store::Decoder& dec) {
  auto load_feed = [&](Feed& feed) {
    feed.streams.clear();
    std::uint64_t stream_count = dec.u64();
    for (std::uint64_t i = 0; i < stream_count; ++i) {
      std::uint32_t id = dec.u32();
      Stream& stream = feed.streams[id];
      stream.baseline = dec.f64();
      stream.state = static_cast<FeedState>(dec.u8());
      stream.gap_streak = dec.i64();
      stream.ok_streak = dec.i64();
      stream.seen_windows = dec.i64();
      stream.recent.assign(dec.u64(), 0);
      for (std::int64_t& v : stream.recent) v = dec.i64();
      stream.recent_pos = dec.u64();
      std::uint64_t pending = dec.u64();
      for (std::uint64_t j = 0; j < pending; ++j) {
        std::int64_t window = dec.i64();
        stream.pending[window] = dec.i64();
      }
    }
    feed.totals.assign(dec.u64(), 0);
    for (std::int64_t& v : feed.totals) v = dec.i64();
    feed.totals_pos = dec.u64();
    feed.seen_windows = dec.i64();
  };
  load_feed(bgp_);
  load_feed(trace_);
  collector_local_.clear();
  std::uint64_t collectors = dec.u64();
  for (std::uint64_t i = 0; i < collectors; ++i) {
    std::string collector(dec.str());
    collector_local_[Interner::global().collector_id(collector)] = dec.u32();
  }
  vp_collector_.clear();
  std::uint64_t vps = dec.u64();
  for (std::uint64_t i = 0; i < vps; ++i) {
    bgp::VpId vp = dec.u32();
    vp_collector_[vp] = dec.u32();
  }
  bgp_degraded_ = dec.boolean();
  trace_degraded_ = dec.boolean();
  bgp_quarantined_fraction_ = dec.f64();
  trace_quarantined_fraction_ = dec.f64();
}

}  // namespace rrr::signals
