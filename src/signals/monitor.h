// Monitor plumbing shared by the six techniques: the processed view of a
// corpus traceroute, the registry tying potential signals to the corpus
// entries they monitor, and the monitor interfaces.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "bgp/record.h"
#include "bgp/table_view.h"
#include "runtime/arena.h"
#include "signals/engine_obs.h"
#include "signals/serial.h"
#include "signals/signal.h"
#include "topology/types.h"
#include "tracemap/processed.h"
#include "tracemap/serial.h"
#include "traceroute/corpus.h"

namespace rrr::signals {

// What monitors know about one corpus traceroute.
struct CorpusView {
  tr::PairKey key;
  topo::AsIndex probe_as = topo::kNoAs;
  topo::CityId probe_city = topo::kNoCity;
  std::int64_t window = 0;  // base window of the measurement (t0)
  tracemap::ProcessedTrace processed;
};

// Registry of potential-signal <-> corpus-pair relations, used by the
// calibration layer to account true negatives / false negatives for signals
// that stayed silent (§4.3.1).
class PotentialIndex {
 public:
  PotentialId create(Technique technique);

  Technique technique_of(PotentialId id) const;

  // Declares that potential `id` monitors `border_index` of `pair`.
  void relate(PotentialId id, const tr::PairKey& pair,
              std::size_t border_index);
  // Removes every relation of `pair` (called when the pair is refreshed and
  // will be re-registered against the new measurement).
  void unrelate_pair(const tr::PairKey& pair);

  struct Relation {
    PotentialId id = kNoPotential;
    std::size_t border_index = kWholePath;
    auto operator<=>(const Relation&) const = default;
  };
  // All potentials related to `pair` (empty vector when none).
  const std::vector<Relation>& relations_of(const tr::PairKey& pair) const;

  std::size_t potential_count() const { return techniques_.size(); }

  // Attaches the per-technique potentials-opened counters (semantic domain);
  // null entries (or never calling this) keep create() uninstrumented.
  void set_obs(const std::array<obs::Counter*, kTechniqueCount>& opened) {
    opened_ = opened;
  }

  // Checkpoint support: round-trips the id->technique table and every
  // pair relation, so restored ids keep their meanings and calibration
  // grading sees the same silent/firing partition.
  void save_state(store::Encoder& enc) const {
    enc.u64(techniques_.size());
    for (Technique technique : techniques_) {
      enc.u8(static_cast<std::uint8_t>(technique));
    }
    enc.u64(by_pair_.size());
    for (const auto& [pair, relations] : by_pair_) {
      put_pair(enc, pair);
      enc.u64(relations.size());
      for (const Relation& relation : relations) {
        enc.u64(relation.id);
        enc.u64(relation.border_index);
      }
    }
  }
  void load_state(store::Decoder& dec) {
    techniques_.clear();
    by_pair_.clear();
    std::uint64_t count = dec.u64();
    techniques_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      techniques_.push_back(static_cast<Technique>(dec.u8()));
    }
    std::uint64_t pair_count = dec.u64();
    for (std::uint64_t i = 0; i < pair_count; ++i) {
      tr::PairKey pair = get_pair(dec);
      std::vector<Relation>& relations = by_pair_[pair];
      std::uint64_t relation_count = dec.u64();
      relations.reserve(relation_count);
      for (std::uint64_t j = 0; j < relation_count; ++j) {
        Relation relation;
        relation.id = dec.u64();
        relation.border_index = dec.u64();
        relations.push_back(relation);
      }
    }
  }

 private:
  std::vector<Technique> techniques_;  // indexed by (id - 1)
  std::map<tr::PairKey, std::vector<Relation>> by_pair_;
  std::array<obs::Counter*, kTechniqueCount> opened_{};
};

// A BGP record as dispatched to monitors: attributes normalized (§4.1.1)
// and duplicate status precomputed against the standing table. The
// normalized path is an interned handle, so building a dispatch batch
// copies ids instead of hop vectors and monitors compare paths by id.
struct DispatchedRecord {
  const bgp::BgpRecord* record = nullptr;
  InternedPath path;  // IXP-ASN-stripped, prepending-collapsed
  bool duplicate = false;  // same path & communities as the standing route
};

// One window's dispatch batch. Arena-backed: it lives exactly one window
// close, so the memory comes back wholesale at the owner's Arena::reset()
// instead of through per-window heap churn.
using DispatchedBatch =
    std::vector<DispatchedRecord, runtime::ArenaAllocator<DispatchedRecord>>;

// Index from announced prefixes to the monitored destination IPs they
// cover. Destinations are bucketed by /16 blocks so a record dispatch only
// inspects destinations that can possibly match (prefixes shorter than /16
// fall back to a scan, which real routing tables make vanishingly rare).
class DstIndex {
 public:
  void add(Ipv4 dst) { ++blocks_[dst.value() >> 16][dst]; }
  void remove(Ipv4 dst) {
    auto bit = blocks_.find(dst.value() >> 16);
    if (bit == blocks_.end()) return;
    auto it = bit->second.find(dst);
    if (it == bit->second.end()) return;
    if (--it->second == 0) bit->second.erase(it);
    if (bit->second.empty()) blocks_.erase(bit);
  }

  template <typename Visitor>
  void for_covered(const Prefix& prefix, Visitor&& visit) const {
    if (prefix.length() >= 16) {
      auto it = blocks_.find(prefix.network().value() >> 16);
      if (it == blocks_.end()) return;
      for (const auto& [dst, count] : it->second) {
        if (prefix.contains(dst)) visit(dst);
      }
      return;
    }
    for (const auto& [block, dsts] : blocks_) {
      for (const auto& [dst, count] : dsts) {
        if (prefix.contains(dst)) visit(dst);
      }
    }
  }

 private:
  std::unordered_map<std::uint32_t, std::map<Ipv4, int>> blocks_;
};

class FeedHealthTracker;

class Monitor {
 public:
  virtual ~Monitor() = default;

  // Attaches close-path instrumentation; the bundle is copied, and an
  // all-null bundle (the default) makes every update a no-op.
  void set_obs(const MonitorObs& mobs) { mobs_ = mobs; }

  // Attaches the feed-health tracker the monitor consults before emitting
  // (null = no gating, the default) and the semantic counter incremented
  // for every signal dropped on an unhealthy feed. The tracker is read-only
  // during monitor phases, so concurrent closes may share it.
  void set_feed_health(const FeedHealthTracker* health,
                       obs::Counter* dropped) {
    health_ = health;
    dropped_unhealthy_ = dropped;
  }

  virtual Technique technique() const = 0;
  virtual void watch(const CorpusView& view, PotentialIndex& index) = 0;
  virtual void unwatch(const tr::PairKey& pair) = 0;
  // Closes `window`, emitting any signals generated in it.
  virtual std::vector<StalenessSignal> close_window(std::int64_t window,
                                                    TimePoint window_end) = 0;
  // §4.3.2: whether the monitored element identified by `id` has returned
  // to the state it had when its traceroute was issued.
  virtual bool reverted(PotentialId id) const {
    (void)id;
    return false;
  }

 protected:
  MonitorObs mobs_;
  const FeedHealthTracker* health_ = nullptr;
  obs::Counter* dropped_unhealthy_ = nullptr;
};

class BgpMonitor : public Monitor {
 public:
  // Called for every update record of the current window, *before* the
  // standing table view absorbs it (so the standing route is still the
  // start-of-window route).
  virtual void on_record(const DispatchedRecord& record,
                         std::int64_t window) = 0;
};

class TraceMonitor : public Monitor {
 public:
  virtual void on_public_trace(const tracemap::ProcessedTrace& trace,
                               std::int64_t window) = 0;
};

}  // namespace rrr::signals
