#include "signals/ixp_monitor.h"

#include "runtime/parallel.h"
#include "signals/feed_health.h"

namespace rrr::signals {

const std::set<Asn>& IxpMonitor::members_of(topo::IxpId ixp) const {
  static const std::set<Asn> kEmpty;
  auto it = members_.find(ixp);
  return it == members_.end() ? kEmpty : it->second;
}

void IxpMonitor::watch(const CorpusView& view, PotentialIndex& index) {
  index_ = &index;
  const tracemap::ProcessedTrace& pt = view.processed;
  if (pt.as_path.empty()) return;
  WatchedPair watched;
  watched.key = view.key;
  watched.path = pt.as_path;
  watched.ingress_border.assign(pt.as_path.size(), kWholePath);
  for (std::size_t p = 0; p < pt.as_path.size(); ++p) {
    for (std::size_t b = 0; b < pt.borders.size(); ++b) {
      if (pt.borders[b].far_as == pt.as_path[p]) {
        watched.ingress_border[p] = b;
        break;
      }
    }
    by_as_[pt.as_path[p]].insert(view.key);
  }
  // Seed membership from the corpus trace itself (no signals for members
  // that were present when monitoring started): the near-end neighbor of
  // an IXP interface is a member.
  for (std::size_t i = 1; i < pt.hops.size(); ++i) {
    const tracemap::ProcessedHop& hop = pt.hops[i];
    if (!hop.responded() || !hop.is_ixp || hop.ixp == topo::kNoIxp) continue;
    const tracemap::ProcessedHop& near = pt.hops[i - 1];
    if (near.responded() && near.asn.is_valid() && !near.is_ixp) {
      members_[hop.ixp].insert(near.asn);
    }
  }
  watched_[view.key] = std::move(watched);
}

void IxpMonitor::unwatch(const tr::PairKey& pair) {
  auto it = watched_.find(pair);
  if (it == watched_.end()) return;
  for (Asn asn : it->second.path) {
    auto ait = by_as_.find(asn);
    if (ait != by_as_.end()) {
      ait->second.erase(pair);
      if (ait->second.empty()) by_as_.erase(ait);
    }
  }
  watched_.erase(it);
}

void IxpMonitor::handle_new_member(topo::IxpId ixp, Asn joiner) {
  std::set<Asn>& members = members_[ixp];
  if (!members.insert(joiner).second) return;
  ++detected_joins_;
  if (index_ == nullptr) return;

  auto pit = by_as_.find(joiner);
  if (pit == by_as_.end()) return;
  for (const tr::PairKey& key : pit->second) {
    auto wit = watched_.find(key);
    if (wit == watched_.end()) continue;
    const WatchedPair& watched = wit->second;
    int pos = index_of(watched.path, joiner);
    if (pos < 0 || static_cast<std::size_t>(pos) + 1 >= watched.path.size()) {
      continue;  // joiner is the last hop: nothing to shortcut
    }
    auto p = static_cast<std::size_t>(pos);
    Asn next_hop = watched.path[p + 1];
    // Is some established member of this IXP further along the path (and
    // not already the next hop)?
    bool member_downstream = false;
    for (std::size_t q = p + 2; q < watched.path.size(); ++q) {
      if (members.contains(watched.path[q])) {
        member_downstream = true;
        break;
      }
    }
    if (!member_downstream) continue;

    AsRelDb::Info rel = rels_.relation(joiner, next_hop);
    bool signal = false;
    if (rel.rel == AsRel::kCustomer) {
      // The joiner pays `next_hop` for transit; a free IXP path wins.
      signal = true;
    } else if (rel.rel == AsRel::kPeer && rel.via_ixp) {
      // Public peer over another IXP: same class, shortest AS path wins.
      signal = true;
    } else if (rel.rel == AsRel::kPeer && !rel.via_ixp) {
      // Private peers usually carry higher local preference; only signal
      // when equal-preference behaviour has been learned for this AS.
      signal = equal_pref_.contains(joiner);
    }
    if (!signal) continue;

    // §4.2.3 gating: membership "discoveries" made while the public-trace
    // feed is degraded are as likely to be sampling artifacts (the usual
    // witnesses went dark) as real joins. Learn the member, skip the
    // signal.
    if (health_ != nullptr && health_->trace_degraded()) {
      obs::inc(dropped_unhealthy_);
      continue;
    }

    StalenessSignal s;
    s.technique = Technique::kColocation;
    s.potential = index_->create(Technique::kColocation);
    // Membership is discovered from whichever public traceroute first
    // crosses the new peering; the underlying change may be much older.
    s.span_seconds = 3 * kSecondsPerDay;
    s.pair = key;
    std::size_t border = watched.ingress_border[p + 1];
    s.border_index = border;
    index_->relate(s.potential, key, border);
    s.meta.as_overlap = 1;
    pending_.push_back(std::move(s));
  }
}

void IxpMonitor::on_public_trace(const tracemap::ProcessedTrace& trace,
                                 std::int64_t window) {
  (void)window;
  for (std::size_t i = 1; i < trace.hops.size(); ++i) {
    const tracemap::ProcessedHop& hop = trace.hops[i];
    if (!hop.responded() || !hop.is_ixp) continue;
    if (hop.ixp == topo::kNoIxp) continue;
    const tracemap::ProcessedHop& near = trace.hops[i - 1];
    if (!near.responded() || !near.asn.is_valid() || near.is_ixp) continue;
    // The near-end (left-adjacent) neighbor of an IXP interface is a
    // member; far-end neighbors are ignored (§4.2.3).
    handle_new_member(hop.ixp, near.asn);
  }
}

void IxpMonitor::save_state(store::Encoder& enc) const {
  auto put_asns = [&enc](const std::set<Asn>& asns) {
    enc.u64(asns.size());
    for (Asn asn : asns) store::put(enc, asn);
  };
  enc.u64(members_.size());
  for (const auto& [ixp, members] : members_) {
    enc.u16(ixp);
    put_asns(members);
  }
  put_asns(equal_pref_);
  enc.u64(watched_.size());
  for (const auto& [pair, watched] : watched_) {
    put_pair(enc, pair);
    store::put(enc, watched.path);
    enc.u64(watched.ingress_border.size());
    for (std::size_t border : watched.ingress_border) enc.u64(border);
  }
  enc.u64(by_as_.size());
  for (const auto& [asn, pairs] : by_as_) {
    store::put(enc, asn);
    enc.u64(pairs.size());
    for (const tr::PairKey& pair : pairs) put_pair(enc, pair);
  }
  enc.u64(pending_.size());
  for (const StalenessSignal& signal : pending_) put_signal(enc, signal);
  enc.u64(detected_joins_);
}

void IxpMonitor::load_state(store::Decoder& dec, PotentialIndex* index) {
  index_ = index;
  members_.clear();
  equal_pref_.clear();
  watched_.clear();
  by_as_.clear();
  pending_.clear();
  auto get_asns = [&dec]() {
    std::set<Asn> asns;
    std::uint64_t n = dec.u64();
    for (std::uint64_t i = 0; i < n; ++i) asns.insert(store::get_asn(dec));
    return asns;
  };
  std::uint64_t member_count = dec.u64();
  for (std::uint64_t i = 0; i < member_count; ++i) {
    topo::IxpId ixp = dec.u16();
    members_[ixp] = get_asns();
  }
  equal_pref_ = get_asns();
  std::uint64_t watched_count = dec.u64();
  for (std::uint64_t i = 0; i < watched_count; ++i) {
    tr::PairKey pair = get_pair(dec);
    WatchedPair watched;
    watched.key = pair;
    watched.path = store::get_as_path(dec);
    std::uint64_t border_count = dec.u64();
    watched.ingress_border.reserve(border_count);
    for (std::uint64_t j = 0; j < border_count; ++j) {
      watched.ingress_border.push_back(dec.u64());
    }
    watched_[pair] = std::move(watched);
  }
  std::uint64_t as_count = dec.u64();
  for (std::uint64_t i = 0; i < as_count; ++i) {
    Asn asn = store::get_asn(dec);
    std::set<tr::PairKey>& pairs = by_as_[asn];
    std::uint64_t pair_count = dec.u64();
    for (std::uint64_t j = 0; j < pair_count; ++j) {
      pairs.insert(get_pair(dec));
    }
  }
  std::uint64_t pending_count = dec.u64();
  pending_.reserve(pending_count);
  for (std::uint64_t i = 0; i < pending_count; ++i) {
    pending_.push_back(get_signal(dec));
  }
  detected_joins_ = dec.u64();
}

std::vector<StalenessSignal> IxpMonitor::close_window(std::int64_t window,
                                                      TimePoint window_end) {
  obs::ScopedSpan span(mobs_.close_us);
  std::vector<StalenessSignal> signals;
  signals.swap(pending_);
  obs::observe(mobs_.close_items, static_cast<double>(signals.size()));
  // Pending signals are independent; stamping fans out over the pool and
  // mutates each element in place, so order is untouched.
  runtime::parallel_for(pool_, signals.size(), [&](std::size_t i) {
    signals[i].window = window;
    signals[i].time = window_end;
  });
  return signals;
}

}  // namespace rrr::signals
