// Staleness prediction signals — the paper's central artifact (§4).
//
// A *potential signal* is a monitor instance watching one portion (border or
// destination/subpath) of one or more corpus traceroutes. When the monitor
// detects a change it emits a `StalenessSignal` naming the corpus pair and
// the portion; potential signals that stay quiet implicitly vouch that their
// portion is unchanged (§4.3.1's true-negative accounting).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "netbase/community.h"
#include "netbase/time.h"
#include "traceroute/corpus.h"

namespace rrr::signals {

// The six techniques of Table 2.
enum class Technique : std::uint8_t {
  kBgpAsPath,      // §4.1.2
  kBgpCommunity,   // §4.1.3
  kBgpBurst,       // §4.1.4
  kColocation,     // §4.2.3 (IXP membership changes)
  kTraceSubpath,   // §4.2.1
  kTraceBorder,    // §4.2.2
};
inline constexpr int kTechniqueCount = 6;

const char* to_string(Technique technique);
inline bool is_bgp_technique(Technique t) {
  return t == Technique::kBgpAsPath || t == Technique::kBgpCommunity ||
         t == Technique::kBgpBurst;
}

// Identity of a potential signal: unique per (technique, monitored element).
using PotentialId = std::uint64_t;
inline constexpr PotentialId kNoPotential = 0;

inline constexpr std::size_t kWholePath = std::numeric_limits<std::size_t>::max();

// Bootstrap-priority attributes (Table 1) carried by every signal so the
// scheduler can order signals before TPR/TNR calibration is warmed up.
struct SignalMeta {
  int ip_overlap = 0;        // longest IP-level overlap with trigger data
  int as_overlap = 0;        // longest AS-level overlap
  int vps_same_as_city = 0;  // trigger VPs colocated with the corpus VP
  int vps_same_as = 0;
  int vps_same_city = 0;
  bool as_level = false;     // signal indicates an AS-level change
  int vp_count = 0;          // tie-break for BGP signals
  double deviation = 0.0;    // tie-break for traceroute signals (|z|)
};

struct StalenessSignal {
  Technique technique = Technique::kBgpAsPath;
  PotentialId potential = kNoPotential;
  TimePoint time;              // end of the generation window
  std::int64_t window = 0;     // base-window index
  // Duration of the generation window: base-sized for BGP techniques, up
  // to 24 h for adaptive traceroute series. The change this signal reports
  // happened somewhere inside [time - span_seconds, time].
  std::int64_t span_seconds = kBaseWindowSeconds;
  tr::PairKey pair;            // corpus traceroute implicated
  // Border index within the corpus traceroute's processed view that this
  // signal claims changed; kWholePath for AS-level claims.
  std::size_t border_index = kWholePath;
  SignalMeta meta;
  // For community signals: the community whose change triggered it (drives
  // the Appendix-B reputation learning).
  Community community{};

  std::string to_string() const;
};

}  // namespace rrr::signals
