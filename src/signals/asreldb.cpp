#include "signals/asreldb.h"

namespace rrr::signals {

void AsRelDb::add(Asn a, Asn b, AsRel rel_a_to_b, bool via_ixp) {
  rels_[{a, b}] = Info{rel_a_to_b, via_ixp};
  AsRel inverse = rel_a_to_b;
  if (rel_a_to_b == AsRel::kCustomer) inverse = AsRel::kProvider;
  if (rel_a_to_b == AsRel::kProvider) inverse = AsRel::kCustomer;
  rels_[{b, a}] = Info{inverse, via_ixp};
}

AsRelDb::Info AsRelDb::relation(Asn a, Asn b) const {
  auto it = rels_.find({a, b});
  return it == rels_.end() ? Info{} : it->second;
}

AsRelDb AsRelDb::from_topology(const topo::Topology& topology) {
  AsRelDb db;
  for (const topo::AsLink& link : topology.links()) {
    bool via_ixp = false;
    for (topo::InterconnectId ic : link.interconnects) {
      if (topology.interconnect_at(ic).ixp != topo::kNoIxp) {
        via_ixp = true;
        break;
      }
    }
    Asn a = topology.as_at(link.a).asn;
    Asn b = topology.as_at(link.b).asn;
    AsRel rel = link.rel == topo::RelType::kCustomerProvider
                    ? AsRel::kCustomer
                    : AsRel::kPeer;
    db.add(a, b, rel, via_ixp);
  }
  return db;
}

}  // namespace rrr::signals
