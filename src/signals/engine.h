// StalenessEngine: the public API of the paper's system.
//
// Wires the six monitors to their data feeds, maintains the corpus's
// freshness state, applies the calibration/scheduling policy of §4.3.1 and
// the revocation rule of §4.3.2.
//
// Contract: feed all BGP records and public traceroutes belonging to a
// window before calling advance_to() past that window's end.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "runtime/thread_pool.h"

#include "bgp/record.h"
#include "bgp/table_view.h"
#include "signals/aspath_monitor.h"
#include "signals/asreldb.h"
#include "signals/bgp_context.h"
#include "signals/border_monitor.h"
#include "signals/burst_monitor.h"
#include "signals/calibration.h"
#include "signals/community_monitor.h"
#include "signals/ixp_monitor.h"
#include "signals/monitor.h"
#include "signals/subpath_monitor.h"
#include "tracemap/pipeline.h"
#include "traceroute/traceroute.h"

namespace rrr::signals {

struct EngineParams {
  TimePoint t0;
  std::int64_t window_seconds = kBaseWindowSeconds;
  std::int64_t calibration_windows = 30;
  std::int64_t revocation_check_interval = 8;  // in windows
  // A potential signal that keeps flagging a persistent change re-fires at
  // most once per cooldown (the pair is already marked stale; repeats only
  // add noise to downstream consumers).
  std::int64_t signal_cooldown_windows = 8;
  SubpathParams subpath;
  BorderMonitorParams border;
  std::uint64_t seed = 31;
  // Parallelism degree for window closing (per-series work is sharded over
  // a thread pool). 1 = fully serial; results are identical either way —
  // shard buffers merge in a canonical order, see DESIGN.md "Runtime &
  // determinism".
  int threads = 1;
};

// What a refresh revealed, returned to callers for their own accounting.
struct RefreshOutcome {
  tr::PairKey pair;
  tracemap::ChangeKind change = tracemap::ChangeKind::kNone;
  bool was_flagged_stale = false;
};

class StalenessEngine {
 public:
  StalenessEngine(const EngineParams& params,
                  tracemap::ProcessingContext& processing,
                  std::vector<bgp::VantagePoint> vps,
                  std::vector<topo::AsIndex> vp_as,
                  std::vector<topo::CityId> vp_city,
                  std::set<Asn> ixp_route_server_asns, AsRelDb rels,
                  std::map<topo::IxpId, std::set<Asn>> ixp_members);

  // --- corpus management ---
  void watch(const tr::Probe& probe, const tr::Traceroute& trace);
  std::size_t corpus_size() const { return corpus_.size(); }

  // --- data feeds ---
  void on_bgp_record(const bgp::BgpRecord& record);
  void on_public_trace(const tr::Traceroute& trace);

  // Closes every window ending at or before `t`; returns the staleness
  // prediction signals generated in them.
  std::vector<StalenessSignal> advance_to(TimePoint t);

  // --- refresh cycle (§4.3.1) ---
  // Chooses up to `budget` pairs to remeasure now.
  std::vector<tr::PairKey> plan_refreshes(int budget);
  // Grades related potential signals against the new measurement, updates
  // calibration and community reputation, and re-registers the pair.
  RefreshOutcome apply_refresh(const tr::Probe& probe,
                               const tr::Traceroute& fresh);

  // --- queries ---
  tr::Freshness freshness(const tr::PairKey& pair) const;
  std::vector<tr::PairKey> stale_pairs() const;
  const Calibration& calibration() const { return calibration_; }
  const CommunityReputation& community_reputation() const {
    return reputation_;
  }
  const bgp::VpTableView& table_view() const { return table_; }
  const PotentialIndex& potentials() const { return index_; }
  std::int64_t current_window() const { return next_window_; }
  const WindowClock& clock() const { return clock_; }
  const tracemap::ProcessedTrace* processed_of(const tr::PairKey& pair) const;
  const SubpathMonitor& subpath_monitor() const { return subpath_; }
  const BorderMonitor& border_monitor() const { return border_; }
  const AsPathMonitor& aspath_monitor() const { return aspath_; }
  const CommunityMonitor& community_monitor() const { return community_; }

 private:
  struct PairState {
    CorpusView view;
    tr::Freshness freshness = tr::Freshness::kFresh;
    std::int64_t watched_window = 0;
    // Fired-and-unrevoked signals, keyed by potential.
    std::map<PotentialId, ActiveSignal> active;
  };

  void register_signals(std::vector<StalenessSignal>& out,
                        std::vector<StalenessSignal>&& batch);
  void close_one_window(std::int64_t window,
                        std::vector<StalenessSignal>& out);
  void run_revocation(std::int64_t window);
  bool portion_changed(const tracemap::ProcessedTrace& before,
                       const tracemap::ProcessedTrace& after,
                       std::size_t border_index) const;
  tr::Freshness initial_freshness(const tr::PairKey& pair,
                                  const CorpusView& view) const;
  Monitor* monitor_for(Technique technique);
  const Monitor* monitor_for(Technique technique) const;

  EngineParams params_;
  WindowClock clock_;
  tracemap::ProcessingContext& processing_;
  Rng rng_;
  // Worker pool for window closing; null when params_.threads <= 1.
  // Declared before the monitors that borrow it so it outlives them.
  std::unique_ptr<runtime::ThreadPool> pool_;

  // BGP side.
  std::vector<bgp::VantagePoint> vps_;
  bgp::VpTableView table_;
  BgpContext bgp_context_;
  std::vector<bgp::BgpRecord> pending_records_;

  PotentialIndex index_;
  Calibration calibration_;
  CommunityReputation reputation_;
  AsRelDb rels_;

  AsPathMonitor aspath_;
  CommunityMonitor community_;
  BurstMonitor burst_;
  SubpathMonitor subpath_;
  BorderMonitor border_;
  IxpMonitor ixp_;

  std::map<tr::PairKey, PairState> corpus_;
  std::map<PotentialId, std::int64_t> last_fired_;
  std::int64_t next_window_ = 0;  // first window not yet closed
};

}  // namespace rrr::signals
