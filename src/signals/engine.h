// StalenessEngine: the public API of the paper's system.
//
// Wires the six monitors to their data feeds, maintains the corpus's
// freshness state, applies the calibration/scheduling policy of §4.3.1 and
// the revocation rule of §4.3.2.
//
// Contract: feed all BGP records and public traceroutes belonging to a
// window before calling advance_to() past that window's end.
//
// The engine runs in one of two modes:
//  * standalone — it owns every piece of cross-pair state (BGP table view,
//    potential index, calibration, reputation, the trace-driven monitors)
//    and drives the full feed/close/refresh cycle itself;
//  * shard — a ShardedStalenessEngine facade owns the cross-pair state and
//    hands this engine read/write borrows of it (EngineSharedState). The
//    shard keeps only per-pair state (its slice of the corpus plus the BGP
//    monitors, whose entries are per-pair) and exposes the facade hooks
//    below instead of closing windows on its own.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "runtime/thread_pool.h"

#include "obs/trace.h"

#include "bgp/epoch_table.h"
#include "bgp/record.h"
#include "bgp/table_view.h"
#include "signals/aspath_monitor.h"
#include "signals/asreldb.h"
#include "signals/bgp_context.h"
#include "signals/border_monitor.h"
#include "signals/burst_monitor.h"
#include "signals/calibration.h"
#include "signals/community_monitor.h"
#include "signals/engine_obs.h"
#include "signals/feed_health.h"
#include "signals/ixp_monitor.h"
#include "signals/monitor.h"
#include "signals/subpath_monitor.h"
#include "tracemap/pipeline.h"
#include "traceroute/traceroute.h"

namespace rrr::signals {

struct EngineParams {
  TimePoint t0;
  std::int64_t window_seconds = kBaseWindowSeconds;
  std::int64_t calibration_windows = 30;
  std::int64_t revocation_check_interval = 8;  // in windows
  // A potential signal that keeps flagging a persistent change re-fires at
  // most once per cooldown (the pair is already marked stale; repeats only
  // add noise to downstream consumers).
  std::int64_t signal_cooldown_windows = 8;
  SubpathParams subpath;
  BorderMonitorParams border;
  std::uint64_t seed = 31;
  // Parallelism degree for window closing (per-series work is sharded over
  // a thread pool). 1 = fully serial; results are identical either way —
  // shard buffers merge in a canonical order, see DESIGN.md "Runtime &
  // determinism".
  int threads = 1;
  // Corpus partitions of a ShardedStalenessEngine (ignored by a standalone
  // StalenessEngine). Purely a throughput knob: the facade's signal stream
  // is identical for any (shards, threads) combination.
  int shards = 1;
  // Overlap the table-absorb step with the monitor closes: the just-closed
  // window's records are applied to the epoch table's shadow buffer by a
  // pool task while the monitors still read the published start-of-window
  // epoch, and the flip happens after both are joined. Off recovers the
  // exact serial schedule (absorb inline between the BGP and trace monitor
  // closes). The signal stream and semantic telemetry are bit-identical
  // either way — see DESIGN.md §10 "Epoch pipeline".
  bool pipeline_absorb = true;
  // Telemetry sink; null (the default) disables all instrumentation — every
  // update site degrades to one branch on a null pointer. Must outlive the
  // engine.
  obs::MetricsRegistry* metrics = nullptr;
  // Trace recorder for flight-recorder spans (obs/trace.h); null disables
  // the trace path the same way — every span site is one branch on a null
  // pointer. Must outlive the engine.
  obs::TraceRecorder* tracer = nullptr;
  // Feed-health quarantine (feed_health.h). Disabled by default: the
  // tracker is not even constructed and every consult site degrades to one
  // branch on a null pointer.
  FeedHealthParams feed_health;
};

// One pair's verdict state as read out for the serving layer (src/serve).
// A value copy of the corpus entry's dynamic fields — holders never point
// back into the engine.
struct PairStateView {
  tr::PairKey pair;
  tr::Freshness freshness = tr::Freshness::kFresh;
  std::int64_t watched_window = 0;
  std::uint32_t active_signals = 0;  // fired-and-unrevoked signals
};

// What a refresh revealed, returned to callers for their own accounting.
struct RefreshOutcome {
  tr::PairKey pair;
  tracemap::ChangeKind change = tracemap::ChangeKind::kNone;
  bool was_flagged_stale = false;
};

// Cross-pair state a ShardedStalenessEngine lends to its shards. Everything
// here has exactly one instance regardless of shard count: one BGP table
// (shards read the immutable start-of-window snapshot through `context`),
// one potential-id space, one calibration/reputation store, and one of each
// trace-driven monitor (their series are deduplicated *across* pairs, so
// per-shard copies would diverge from the single-engine signal stream).
struct EngineSharedState {
  const BgpContext* context = nullptr;
  runtime::ThreadPool* pool = nullptr;  // null = serial
  PotentialIndex* index = nullptr;
  Calibration* calibration = nullptr;
  CommunityReputation* reputation = nullptr;
  SubpathMonitor* subpath = nullptr;
  BorderMonitor* border = nullptr;
  IxpMonitor* ixp = nullptr;
  // Facade-owned instrument bundle; null when the facade has no registry.
  // Shards copy it so all shards update the same shared instruments.
  const EngineObs* obs = nullptr;
  // Facade-owned feed-health tracker, read-only during shard closes; null
  // when health tracking is off.
  const FeedHealthTracker* health = nullptr;
};

// Builds the monitor-facing view of the first `count` records (normalized
// path, duplicate status) against the standing start-of-window `table`. The
// returned views point into `records`, which must outlive them. `collapse`
// is the caller's single-writer prepend-collapse memo (most updates repeat
// a path already normalized this run), and the batch itself is bump-
// allocated from `arena` — the caller resets it once the close is over.
DispatchedBatch dispatch_against_table(
    const std::vector<bgp::BgpRecord>& records, std::size_t count,
    const bgp::VpTableView& table, bgp::PathCanonicalizer& collapse,
    runtime::Arena& arena);

// Moves every record belonging to a window <= `window` to the front of
// `pending` (stably), sorts that prefix by time, and returns its length.
// Records for future windows keep their arrival order behind the cut and
// are *not* re-sorted — closing W must cost O(|window W| log |window W|),
// not O(|backlog| log |backlog|) as the old whole-buffer sort did. The
// (time, arrival-order) tie-break is identical to sorting the whole buffer,
// so the dispatched record order (and thus the signal stream) is unchanged.
std::size_t cut_window_prefix(std::vector<bgp::BgpRecord>& pending,
                              const WindowClock& clock, std::int64_t window);

class StalenessEngine {
 public:
  // Standalone mode: the engine owns all state below.
  StalenessEngine(const EngineParams& params,
                  tracemap::ProcessingContext& processing,
                  std::vector<bgp::VantagePoint> vps,
                  std::vector<topo::AsIndex> vp_as,
                  std::vector<topo::CityId> vp_city,
                  std::set<Asn> ixp_route_server_asns, AsRelDb rels,
                  std::map<topo::IxpId, std::set<Asn>> ixp_members);
  // Shard mode: cross-pair state is borrowed from `shared` (all pointers
  // except `pool` must be non-null); the facade drives the window cycle.
  StalenessEngine(const EngineParams& params,
                  tracemap::ProcessingContext& processing,
                  const EngineSharedState& shared);

  // --- corpus management ---
  void watch(const tr::Probe& probe, const tr::Traceroute& trace);
  std::size_t corpus_size() const { return corpus_.size(); }

  // --- data feeds ---
  void on_bgp_record(const bgp::BgpRecord& record);
  void on_public_trace(const tr::Traceroute& trace);

  // Closes every window ending at or before `t`; returns the staleness
  // prediction signals generated in them. Standalone mode only.
  std::vector<StalenessSignal> advance_to(TimePoint t);

  // --- refresh cycle (§4.3.1) ---
  // Chooses up to `budget` pairs to remeasure now.
  std::vector<tr::PairKey> plan_refreshes(int budget);
  // Grades related potential signals against the new measurement, updates
  // calibration and community reputation, and re-registers the pair.
  RefreshOutcome apply_refresh(const tr::Probe& probe,
                               const tr::Traceroute& fresh);

  // --- facade hooks (shard mode; see sharded_engine.h) ---
  // Dispatches one window's records to this shard's BGP monitors (records
  // are read-only; the shared table still holds the start-of-window state).
  void dispatch_window_records(const DispatchedBatch& records,
                               std::int64_t window);
  // Closes the shard's BGP monitors, appending their raw (unregistered)
  // signals to `into`; the facade merges and registers across shards.
  void collect_bgp_close(std::vector<StalenessSignal>& into,
                         std::int64_t window, TimePoint window_end);
  bool has_pair(const tr::PairKey& pair) const {
    return corpus_.contains(pair);
  }
  // Applies one registered signal's state change (freshness + active set).
  // The facade has already performed the corpus-presence and cooldown
  // checks that standalone registration does.
  void mark_stale(const StalenessSignal& signal);
  // Adds this shard's refresh candidates (pairs with firing signals) to the
  // facade's merged candidate map.
  void collect_refresh_candidates(
      std::map<tr::PairKey, RefreshScheduler::PairState>& into) const;
  // §4.3.2 sweep over this shard's corpus (also used internally).
  void run_revocation(std::int64_t window);

  // --- queries ---
  tr::Freshness freshness(const tr::PairKey& pair) const;
  std::vector<tr::PairKey> stale_pairs() const;
  // Appends this engine's per-pair verdict state (corpus order, i.e. sorted
  // by pair). Pure read — no RNG draw, no state change — so the serving
  // layer can call it every window without perturbing the signal stream.
  void collect_pair_states(std::vector<PairStateView>& into) const;
  const Calibration& calibration() const { return *calibration_; }
  const CommunityReputation& community_reputation() const {
    return *reputation_;
  }
  const bgp::VpTableView& table_view() const { return context_->table->read(); }
  const PotentialIndex& potentials() const { return *index_; }
  std::int64_t current_window() const { return next_window_; }
  const WindowClock& clock() const { return clock_; }
  const tracemap::ProcessedTrace* processed_of(const tr::PairKey& pair) const;
  const SubpathMonitor& subpath_monitor() const { return *subpath_; }
  const BorderMonitor& border_monitor() const { return *border_; }
  const AsPathMonitor& aspath_monitor() const { return *aspath_; }
  const CommunityMonitor& community_monitor() const { return *community_; }

  // --- checkpoint support ---
  // Shard-local dynamic state: rng, pending record backlog, corpus slice
  // with per-pair freshness/active-signal state, cooldown map, window
  // cursor, and the per-pair BGP monitors. Configuration (params, topology,
  // processing context) is not stored — the owner reconstructs the engine
  // with identical parameters before loading.
  void save_shard_state(store::Encoder& enc) const;
  void load_shard_state(store::Decoder& dec);
  // Standalone engines only: the owned cross-pair state (epoch table,
  // potential index, calibration, reputation, trace-driven monitors, feed
  // health). In sharded mode the facade saves its single instances itself.
  void save_global_state(store::Encoder& enc) const;
  void load_global_state(store::Decoder& dec);
  // Full standalone state = globals followed by the shard-local slice.
  void save_state(store::Encoder& enc) const {
    save_global_state(enc);
    save_shard_state(enc);
  }
  void load_state(store::Decoder& dec) {
    load_global_state(dec);
    load_shard_state(dec);
  }

 private:
  struct PairState {
    CorpusView view;
    tr::Freshness freshness = tr::Freshness::kFresh;
    std::int64_t watched_window = 0;
    // Fired-and-unrevoked signals, keyed by potential.
    std::map<PotentialId, ActiveSignal> active;
  };

  // Cross-pair state of a standalone engine; absent in shard mode, where
  // the equivalent single instances live in the ShardedStalenessEngine.
  struct OwnedGlobals {
    OwnedGlobals(std::vector<bgp::VantagePoint> vps_in,
                 std::set<Asn> ixp_route_server_asns,
                 std::int64_t calibration_windows, AsRelDb rels_in)
        : vps(std::move(vps_in)),
          feed_canon(ixp_route_server_asns),
          table(std::move(ixp_route_server_asns)),
          calibration(calibration_windows),
          rels(std::move(rels_in)) {}

    std::vector<bgp::VantagePoint> vps;
    // Table-canonical (IXP-strip + prepend-collapse) memo used at the
    // serial feed boundary to stamp BgpRecord::canonical_path, so the
    // pipelined absorb task never interns. Declared before `table`, which
    // consumes the IXP set.
    bgp::PathCanonicalizer feed_canon;
    // Double-buffered: monitors read the published epoch through `context`;
    // close_one_window absorbs into the shadow and flips at the boundary.
    bgp::EpochTableView table;
    BgpContext context;
    PotentialIndex index;
    Calibration calibration;
    CommunityReputation reputation;
    AsRelDb rels;
    std::unique_ptr<SubpathMonitor> subpath;
    std::unique_ptr<BorderMonitor> border;
    std::unique_ptr<IxpMonitor> ixp;
    // Present only when params.feed_health.enabled.
    std::unique_ptr<FeedHealthTracker> health;
  };

  void register_signals(std::vector<StalenessSignal>& out,
                        std::vector<StalenessSignal>&& batch);
  void close_one_window(std::int64_t window,
                        std::vector<StalenessSignal>& out);
  bool portion_changed(const tracemap::ProcessedTrace& before,
                       const tracemap::ProcessedTrace& after,
                       std::size_t border_index) const;
  tr::Freshness initial_freshness(const tr::PairKey& pair,
                                  const CorpusView& view) const;
  Monitor* monitor_for(Technique technique);
  const Monitor* monitor_for(Technique technique) const;

  EngineParams params_;
  WindowClock clock_;
  tracemap::ProcessingContext& processing_;
  Rng rng_;
  // Instrument bundle: built from params_.metrics (standalone) or copied
  // from the facade's EngineSharedState; all-null when telemetry is off.
  EngineObs obs_;
  runtime::PoolObs pool_obs_;
  // Worker pool for window closing; owned in standalone mode (null when
  // params_.threads <= 1), borrowed from the facade in shard mode.
  // Declared before the monitors that borrow it so it outlives them.
  std::unique_ptr<runtime::ThreadPool> owned_pool_;
  runtime::ThreadPool* pool_ = nullptr;

  std::unique_ptr<OwnedGlobals> owned_;

  // Active cross-pair state: points into owned_ (standalone) or into the
  // facade's EngineSharedState (shard mode).
  const BgpContext* context_ = nullptr;
  PotentialIndex* index_ = nullptr;
  Calibration* calibration_ = nullptr;
  CommunityReputation* reputation_ = nullptr;
  SubpathMonitor* subpath_ = nullptr;
  BorderMonitor* border_ = nullptr;
  IxpMonitor* ixp_ = nullptr;
  // Feed-health tracker: owned (and fed/closed) by a standalone engine,
  // facade-owned and read-only in shard mode; null when tracking is off.
  const FeedHealthTracker* health_ = nullptr;

  std::vector<bgp::BgpRecord> pending_records_;
  // Dispatch-path prepend-collapse memo (empty IXP list) and the epoch
  // arena backing the per-close dispatch batch; both live on the serial
  // close path only. The arena resets at the end of every close.
  bgp::PathCanonicalizer collapse_canon_;
  runtime::Arena close_arena_;

  // BGP monitors hold per-pair entries only, so every shard owns its own.
  std::unique_ptr<AsPathMonitor> aspath_;
  std::unique_ptr<CommunityMonitor> community_;
  std::unique_ptr<BurstMonitor> burst_;

  std::map<tr::PairKey, PairState> corpus_;
  std::map<PotentialId, std::int64_t> last_fired_;
  std::int64_t next_window_ = 0;  // first window not yet closed
};

}  // namespace rrr::signals
