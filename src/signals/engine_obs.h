// Telemetry instrument bundles for the staleness engine (see obs/metrics.h
// for the cost model and the semantic/runtime domain split).
//
// Ownership: the engine that owns a MetricsRegistry (standalone engine or
// sharded facade) builds one EngineObs of pointers into it and hands
// *copies* of the relevant sub-bundles to monitors, shards, and the
// potential index. Instruments are registry-owned, so copies stay valid for
// the registry's lifetime; a default-constructed bundle is all-null and
// makes every update a no-op.
#pragma once

#include <array>

#include "obs/metrics.h"
#include "signals/signal.h"

namespace rrr::signals {

// Short label slug per technique, e.g. {technique="aspath"}.
const char* technique_label(Technique technique);

inline std::size_t technique_index(Technique technique) {
  return static_cast<std::size_t>(technique);
}

// Per-monitor close instrumentation (runtime domain): wall time of one
// close_window call and the size of the work list it drained.
struct MonitorObs {
  obs::Histogram* close_us = nullptr;
  obs::Histogram* close_items = nullptr;
};

// Every instrument the engine close path updates.
struct EngineObs {
  // Semantic domain — facts of the signal stream, byte-identical across any
  // (shards, threads) grid point (asserted by tests/determinism_test.cpp).
  std::array<obs::Counter*, kTechniqueCount> signals_emitted{};
  std::array<obs::Counter*, kTechniqueCount> potentials_opened{};
  // Signals a monitor suppressed because the feed streams backing them were
  // quarantined by the FeedHealthTracker.
  std::array<obs::Counter*, kTechniqueCount> dropped_unhealthy_feed{};
  obs::Counter* signals_suppressed_cooldown = nullptr;
  obs::Counter* signals_dropped_refreshed = nullptr;
  // Refresh gradings skipped because the refreshed pair's probe stream was
  // quarantined (calibration tallies frozen, section 4.3.1).
  obs::Counter* calibration_frozen = nullptr;
  obs::Counter* revocations = nullptr;
  obs::Counter* refreshes = nullptr;
  obs::Counter* refreshes_changed = nullptr;
  obs::Counter* bgp_records_absorbed = nullptr;

  // Runtime domain — wall-clock spans of the close path's stages.
  obs::Histogram* window_close_us = nullptr;
  obs::Histogram* dispatch_us = nullptr;
  obs::Histogram* absorb_us = nullptr;
  obs::Histogram* merge_us = nullptr;
  obs::Histogram* register_us = nullptr;
  // Epoch pipeline (runtime domain — the pipelined and serial schedules
  // must keep the *semantic* snapshot byte-identical, so everything that
  // differs between them lives here). absorb_wait_us is the residual stall
  // joining the absorb writer after the monitor closes: near zero when the
  // overlap hides the absorb entirely, ~absorb_us when it doesn't.
  obs::Counter* epoch_flips = nullptr;
  obs::Histogram* absorb_wait_us = nullptr;

  // Per-monitor bundles, indexed by technique_index().
  std::array<MonitorObs, kTechniqueCount> monitors{};

  static EngineObs create(obs::MetricsRegistry& registry);
};

}  // namespace rrr::signals
