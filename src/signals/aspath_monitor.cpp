#include "signals/aspath_monitor.h"

#include <algorithm>

#include "runtime/parallel.h"
#include "signals/feed_health.h"

namespace rrr::signals {
namespace {

// First AS of `path` (VP end first) that appears in `tau`: the intersection
// point farthest from the destination. Returns its index in `tau`, or -1.
int first_intersection(const AsPath& path, const AsPath& tau) {
  for (Asn asn : path) {
    int idx = index_of(tau, asn);
    if (idx >= 0) return idx;
  }
  return -1;
}

}  // namespace

void AsPathMonitor::watch(const CorpusView& view, PotentialIndex& index) {
  const tracemap::ProcessedTrace& pt = view.processed;
  if (pt.as_path.empty()) return;

  // Pin V0 per AS hop: VPs whose standing route to d first intersects τ at
  // that hop. Hops no VP can see are unmonitorable and get no entry.
  std::vector<std::vector<bgp::VpId>> v0s(pt.as_path.size());
  for (const bgp::VantagePoint& vp : *context_.vps) {
    const bgp::VpRoute* route = context_.table->route(vp.id, view.key.dst);
    if (route == nullptr || route->path.empty()) continue;
    int j = first_intersection(route->path, pt.as_path);
    if (j < 0) continue;
    v0s[static_cast<std::size_t>(j)].push_back(vp.id);
  }
  for (std::vector<bgp::VpId>& v0 : v0s) {
    std::sort(v0.begin(), v0.end());  // each VP lands in exactly one hop
    v0.shrink_to_fit();
  }

  for (std::size_t j = 0; j < pt.as_path.size(); ++j) {
    if (v0s[j].empty()) continue;
    auto entry = std::make_unique<Entry>(Entry{
        .id = index.create(Technique::kBgpAsPath),
        .pair = view.key,
        .as = pt.as_path[j],
        .tau_path = pt.as_path,
        .tau_index = j,
        .border_index = kWholePath,
        .v0 = std::move(v0s[j]),
        .series = detect::LazySeries(
            std::make_unique<detect::BitmapDetector>(),
            detect::GapPolicy::kCarryLast),
        .baseline_ratio = 1.0,
        .dirty = false,
        .window_updates = {},
    });
    // The border whose far side is a_j (its ingress interconnection).
    for (std::size_t b = 0; b < pt.borders.size(); ++b) {
      if (pt.borders[b].far_as == pt.as_path[j]) {
        entry->border_index = b;
        break;
      }
    }
    Entry* raw = entry.get();
    index.relate(raw->id, view.key, raw->border_index);
    by_pair_[view.key].push_back(raw);
    by_dst_[view.key.dst].push_back(raw);
    dst_index_.add(view.key.dst);
    by_potential_[raw->id] = raw;
    auto [num, den] = counts(*raw);
    raw->baseline_ratio =
        den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 1.0;
    // Seed the series with a warm history of the standing ratio: the feed
    // has been collected since before the corpus was initialized, so the
    // detector starts armed rather than blind to the first change.
    raw->series.seed(view.window, raw->baseline_ratio, 24);
    entries_.emplace(raw->id, std::move(entry));
  }
}

void AsPathMonitor::unwatch(const tr::PairKey& pair) {
  auto it = by_pair_.find(pair);
  if (it == by_pair_.end()) return;
  for (Entry* entry : it->second) {
    auto& dst_list = by_dst_[pair.dst];
    std::erase(dst_list, entry);
    dst_index_.remove(pair.dst);
    by_potential_.erase(entry->id);
    std::erase(dirty_, entry);
    std::erase(hot_, entry);
    entries_.erase(entry->id);
  }
  by_pair_.erase(it);
}

void AsPathMonitor::on_record(const DispatchedRecord& record,
                              std::int64_t window) {
  (void)window;
  dst_index_.for_covered(record.record->prefix, [&](Ipv4 dst) {
    auto it = by_dst_.find(dst);
    if (it == by_dst_.end()) return;
    for (Entry* entry : it->second) {
      if (!std::binary_search(entry->v0.begin(), entry->v0.end(),
                              record.record->vp)) {
        continue;
      }
      entry->window_updates.emplace_back(record.record->vp, record.path);
      if (!entry->dirty) {
        entry->dirty = true;
        dirty_.push_back(entry);
      }
    }
  });
}

bool AsPathMonitor::path_counts(const Entry& entry, const AsPath& path,
                                int& num, int& den) {
  int j = first_intersection(path, entry.tau_path);
  if (j < 0 || static_cast<std::size_t>(j) != entry.tau_index) return false;
  ++den;
  if (suffix_matches(path, static_cast<std::size_t>(index_of(
                               path, entry.tau_path[entry.tau_index])),
                     entry.tau_path)) {
    ++num;
  }
  return true;
}

std::pair<int, int> AsPathMonitor::counts(const Entry& entry) const {
  int num = 0;
  int den = 0;
  for (bgp::VpId vp : entry.v0) {
    const bgp::VpRoute* standing = context_.table->route(vp, entry.pair.dst);
    if (standing != nullptr && !standing->path.empty()) {
      path_counts(entry, standing->path, num, den);
    }
    for (const auto& [uvp, path] : entry.window_updates) {
      if (uvp == vp && !path.empty()) path_counts(entry, path, num, den);
    }
  }
  return {num, den};
}

void AsPathMonitor::fill_meta(const Entry& entry, double score,
                              SignalMeta& meta) const {
  meta.as_overlap =
      static_cast<int>(entry.tau_path.size() - entry.tau_index);
  meta.as_level = true;
  meta.vp_count = static_cast<int>(entry.v0.size());
  meta.deviation = std::abs(score);
}

AsPathMonitor::EvalResult AsPathMonitor::evaluate(Entry* entry,
                                                  bool from_update,
                                                  std::int64_t window,
                                                  TimePoint window_end) {
  EvalResult result;
  auto [num, den] = counts(*entry);
  entry->window_updates.clear();
  if (den == 0) return result;  // missing window (§4.1.2)
  double ratio = static_cast<double>(num) / static_cast<double>(den);
  bool moved = !entry->series.has_last() ||
               ratio != entry->series.last_value();
  detect::Judgement judgement = entry->series.feed(window, ratio);
  if (from_update || moved) {
    // Keep re-scoring while the shifted level fills the lead window.
    if (entry->hot_windows == 0) result.newly_hot = true;
    entry->hot_windows = 8;
  }
  if (judgement.outlier) {
    // §4.1.2 gating: P_ratio over a mostly-quarantined V0 measures the
    // outage, not the path. Suppress when the BGP feed is degraded overall
    // or when at least half this entry's pinned VPs are quarantined.
    if (health_ != nullptr) {
      std::size_t quarantined = 0;
      for (bgp::VpId vp : entry->v0) {
        if (health_->bgp_quarantined(vp)) ++quarantined;
      }
      if (health_->bgp_degraded() || 2 * quarantined >= entry->v0.size()) {
        obs::inc(dropped_unhealthy_);
        return result;
      }
    }
    StalenessSignal signal;
    signal.technique = Technique::kBgpAsPath;
    signal.potential = entry->id;
    signal.time = window_end;
    signal.window = window;
    signal.pair = entry->pair;
    signal.border_index = entry->border_index;
    fill_meta(*entry, judgement.score, signal.meta);
    result.signals.push_back(std::move(signal));
  }
  return result;
}

std::vector<StalenessSignal> AsPathMonitor::close_window(
    std::int64_t window, TimePoint window_end) {
  obs::ScopedSpan span(mobs_.close_us);
  obs::observe(mobs_.close_items,
               static_cast<double>(dirty_.size() + hot_.size()));
  std::vector<StalenessSignal> signals;
  auto merge = [&](const std::vector<Entry*>& work,
                   std::vector<EvalResult>& results) {
    for (std::size_t i = 0; i < work.size(); ++i) {
      for (StalenessSignal& signal : results[i].signals) {
        signals.push_back(std::move(signal));
      }
      if (results[i].newly_hot) hot_.push_back(work[i]);
    }
  };

  // Evaluate dirty entries (updates arrived), then still-hot entries whose
  // lead windows are filling; rebuild the hot queue afterwards. The two
  // phases stay sequential (a dirty evaluation re-arms hot_windows that the
  // hot phase must observe), but within a phase entries are distinct and
  // evaluate concurrently; merging per-entry results in work-list order
  // keeps the output independent of the thread count.
  std::vector<Entry*> dirty;
  dirty.swap(dirty_);
  std::vector<Entry*> hot;
  hot.swap(hot_);
  std::vector<EvalResult> dirty_results =
      runtime::parallel_map(pool_, dirty, [&](Entry* entry) {
        entry->dirty = false;
        return evaluate(entry, /*from_update=*/true, window, window_end);
      });
  merge(dirty, dirty_results);
  std::vector<EvalResult> hot_results =
      runtime::parallel_map(pool_, hot, [&](Entry* entry) {
        if (entry->hot_windows <= 0) return EvalResult{};
        --entry->hot_windows;
        // No-op if fed this window already (dirty phase ran first).
        return evaluate(entry, /*from_update=*/false, window, window_end);
      });
  merge(hot, hot_results);
  // Deduplicated rebuild: hot_ may have gained entries inside evaluate().
  std::vector<Entry*> requeued;
  requeued.swap(hot_);
  auto enqueue = [&](Entry* entry) {
    if (entry->hot_windows > 0 &&
        std::find(hot_.begin(), hot_.end(), entry) == hot_.end()) {
      hot_.push_back(entry);
    }
  };
  for (Entry* entry : requeued) enqueue(entry);
  for (Entry* entry : dirty) enqueue(entry);
  for (Entry* entry : hot) enqueue(entry);
  return signals;
}

void AsPathMonitor::save_state(store::Encoder& enc) const {
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ordered.push_back(entry.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Entry* a, const Entry* b) { return a->id < b->id; });
  enc.u64(ordered.size());
  for (const Entry* entry : ordered) {
    enc.u64(entry->id);
    put_pair(enc, entry->pair);
    store::put(enc, entry->as);
    store::put(enc, entry->tau_path);
    enc.u64(entry->tau_index);
    enc.u64(entry->border_index);
    enc.u64(entry->v0.size());
    for (bgp::VpId vp : entry->v0) enc.u32(vp);
    entry->series.save_state(enc);
    enc.f64(entry->baseline_ratio);
    enc.boolean(entry->dirty);
    enc.i64(entry->hot_windows);
    enc.u64(entry->window_updates.size());
    for (const auto& [vp, path] : entry->window_updates) {
      enc.u32(vp);
      store::put(enc, path);
    }
  }
  auto put_ids = [&enc](const std::vector<Entry*>& list) {
    enc.u64(list.size());
    for (const Entry* entry : list) enc.u64(entry->id);
  };
  enc.u64(by_pair_.size());
  for (const auto& [pair, list] : by_pair_) {
    put_pair(enc, pair);
    put_ids(list);
  }
  std::vector<Ipv4> dsts;
  dsts.reserve(by_dst_.size());
  for (const auto& [dst, list] : by_dst_) dsts.push_back(dst);
  std::sort(dsts.begin(), dsts.end());
  enc.u64(dsts.size());
  for (Ipv4 dst : dsts) {
    store::put(enc, dst);
    put_ids(by_dst_.at(dst));
  }
  put_ids(dirty_);
  put_ids(hot_);
}

void AsPathMonitor::load_state(store::Decoder& dec) {
  entries_.clear();
  by_pair_.clear();
  by_dst_.clear();
  dst_index_ = DstIndex();
  dirty_.clear();
  hot_.clear();
  by_potential_.clear();
  std::uint64_t count = dec.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    PotentialId id = dec.u64();
    tr::PairKey pair = get_pair(dec);
    Asn as = store::get_asn(dec);
    AsPath tau_path = store::get_as_path(dec);
    std::uint64_t tau_index = dec.u64();
    std::uint64_t border_index = dec.u64();
    // Writer order is sorted, preserving the sorted-unique invariant.
    std::vector<bgp::VpId> v0;
    std::uint64_t v0_count = dec.u64();
    v0.reserve(v0_count);
    for (std::uint64_t j = 0; j < v0_count; ++j) v0.push_back(dec.u32());
    auto entry = std::make_unique<Entry>(Entry{
        .id = id,
        .pair = pair,
        .as = as,
        .tau_path = std::move(tau_path),
        .tau_index = tau_index,
        .border_index = border_index,
        .v0 = std::move(v0),
        .series = detect::LazySeries(std::make_unique<detect::BitmapDetector>(),
                                     detect::GapPolicy::kCarryLast),
        .window_updates = {},
    });
    entry->series.load_state(dec);
    entry->baseline_ratio = dec.f64();
    entry->dirty = dec.boolean();
    entry->hot_windows = static_cast<int>(dec.i64());
    std::uint64_t update_count = dec.u64();
    entry->window_updates.reserve(update_count);
    for (std::uint64_t j = 0; j < update_count; ++j) {
      bgp::VpId vp = dec.u32();
      entry->window_updates.emplace_back(vp, store::get_as_path(dec));
    }
    by_potential_[entry->id] = entry.get();
    entries_.emplace(entry->id, std::move(entry));
  }
  auto get_ids = [this, &dec]() {
    std::vector<Entry*> list;
    std::uint64_t n = dec.u64();
    list.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      list.push_back(by_potential_.at(dec.u64()));
    }
    return list;
  };
  std::uint64_t pair_count = dec.u64();
  for (std::uint64_t i = 0; i < pair_count; ++i) {
    tr::PairKey pair = get_pair(dec);
    by_pair_[pair] = get_ids();
  }
  std::uint64_t dst_count = dec.u64();
  for (std::uint64_t i = 0; i < dst_count; ++i) {
    Ipv4 dst = store::get_ipv4(dec);
    std::vector<Entry*> list = get_ids();
    for (std::size_t j = 0; j < list.size(); ++j) dst_index_.add(dst);
    by_dst_[dst] = std::move(list);
  }
  dirty_ = get_ids();
  hot_ = get_ids();
}

bool AsPathMonitor::reverted(PotentialId id) const {
  auto it = by_potential_.find(id);
  if (it == by_potential_.end()) return false;
  const Entry& entry = *it->second;
  // Reverted when the standing routes reproduce the ratio seen at watch
  // time (the window-update buffer is empty between windows).
  auto [num, den] = counts(entry);
  if (den == 0) return false;
  double ratio = static_cast<double>(num) / static_cast<double>(den);
  return std::abs(ratio - entry.baseline_ratio) < 1e-9;
}

}  // namespace rrr::signals
