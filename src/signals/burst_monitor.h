// §4.1.4 — staleness signals from bursts of duplicate BGP updates.
//
// Routers emit updates when non-transitive attributes (MED, IGP cost)
// change, producing announcements identical to the previous one. A burst of
// such duplicates from multiple VPs sharing an AS-level suffix of a corpus
// traceroute suggests a change on the shared subpath. To avoid blaming the
// overlap when the real change is upstream, a parallel series U' is kept for
// every "extra" AS that at least two of those VPs traverse outside the
// overlap: a signal fires only if some bursting VP traverses no extra AS
// with a contemporaneous burst (Figure 4).
#pragma once

#include <map>
#include <unordered_map>

#include "detect/series.h"
#include "signals/bgp_context.h"
#include "signals/monitor.h"

namespace rrr::runtime {
class ThreadPool;
}

namespace rrr::signals {

class BurstMonitor final : public BgpMonitor {
 public:
  explicit BurstMonitor(const BgpContext& context) : context_(context) {}

  Technique technique() const override { return Technique::kBgpBurst; }
  // Evaluates window closes across entries on `pool` (null = serial).
  void set_pool(runtime::ThreadPool* pool) { pool_ = pool; }
  void watch(const CorpusView& view, PotentialIndex& index) override;
  void unwatch(const tr::PairKey& pair) override;
  void on_record(const DispatchedRecord& record,
                 std::int64_t window) override;
  std::vector<StalenessSignal> close_window(std::int64_t window,
                                            TimePoint window_end) override;

  std::size_t entry_count() const { return entries_.size(); }

  // Checkpoint support; same index-vector ordering contract as
  // AsPathMonitor::save_state.
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);

 private:
  // Sorted duplicate-free VP lists, flat instead of std::set: the monitor
  // holds one entry per (pair, suffix) — tens of thousands at 10x corpus
  // scale, each watching ~25 VPs — and rb-tree nodes (48 bytes per VP)
  // dominated its resident set. Sorted order keeps iteration, and therefore
  // save_state bytes and the close-path work, identical to the set.
  using VpList = std::vector<bgp::VpId>;

  struct ExtraSeries {
    Asn as;                      // a_k, traversed outside the overlap
    VpList vps;                  // W^{k,d}
    detect::LazySeries series;   // U'^{k,d}
    VpList window_dups;
    bool outlier_this_window = false;
  };

  struct Entry {                  // one per (pair, suffix start j)
    PotentialId id = kNoPotential;
    tr::PairKey pair;
    InternedPath suffix;         // {a_j .. a_d}; shared across entries
    std::size_t border_index = kWholePath;
    VpList v0;                   // VPs sharing the suffix at watch time
    detect::LazySeries series;   // U^{j,d}
    VpList window_dups;
    std::vector<ExtraSeries> extras;
    // Extra ASes traversed per V0 VP (indices into `extras`).
    std::map<bgp::VpId, std::vector<std::size_t>> vp_extras;
    bool dirty = false;
  };

  runtime::ThreadPool* pool_ = nullptr;
  const BgpContext& context_;
  std::unordered_map<PotentialId, std::unique_ptr<Entry>> entries_;
  std::map<tr::PairKey, std::vector<Entry*>> by_pair_;
  std::unordered_map<Ipv4, std::vector<Entry*>> by_dst_;
  DstIndex dst_index_;
  std::vector<Entry*> dirty_;
};

}  // namespace rrr::signals
