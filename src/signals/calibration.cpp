#include "signals/calibration.h"

#include <algorithm>
#include <set>

namespace rrr::signals {

void Calibration::record(tr::ProbeId vp, PotentialId signal,
                         std::int64_t window, Outcome outcome) {
  Tally& tally = tallies_[{vp, signal}];
  if (tally.first_window < 0) tally.first_window = window;
  tally.last_window = std::max(tally.last_window, window);
  tally.events.emplace_back(window, outcome);
  // Slide: keep only the last `sliding_windows_` generation windows.
  while (!tally.events.empty() &&
         tally.events.front().first <= tally.last_window - sliding_windows_) {
    tally.events.pop_front();
  }
}

const Calibration::Tally* Calibration::find(tr::ProbeId vp,
                                            PotentialId signal) const {
  auto it = tallies_.find({vp, signal});
  return it == tallies_.end() ? nullptr : &it->second;
}

Calibration::Counts Calibration::counts_of(const Tally& tally) const {
  Counts c;
  for (const auto& [window, outcome] : tally.events) {
    switch (outcome) {
      case Outcome::kTruePositive: ++c.tp; break;
      case Outcome::kFalsePositive: ++c.fp; break;
      case Outcome::kTrueNegative: ++c.tn; break;
      case Outcome::kFalseNegative: ++c.fn; break;
    }
  }
  return c;
}

std::optional<double> Calibration::tpr(tr::ProbeId vp,
                                       PotentialId signal) const {
  const Tally* tally = find(vp, signal);
  if (tally == nullptr) return std::nullopt;
  // Uninitialized until the window has had a chance to fill (§4.3.1).
  if (tally->last_window - tally->first_window < sliding_windows_ &&
      tally->events.size() < 4) {
    return std::nullopt;
  }
  Counts c = counts_of(*tally);
  if (c.tp + c.fn == 0) return std::nullopt;
  return static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fn);
}

std::optional<double> Calibration::tnr(tr::ProbeId vp,
                                       PotentialId signal) const {
  const Tally* tally = find(vp, signal);
  if (tally == nullptr) return std::nullopt;
  if (tally->last_window - tally->first_window < sliding_windows_ &&
      tally->events.size() < 4) {
    return std::nullopt;
  }
  Counts c = counts_of(*tally);
  if (c.tn + c.fp == 0) return std::nullopt;
  return static_cast<double>(c.tn) / static_cast<double>(c.tn + c.fp);
}

std::uint64_t Calibration::digest() const {
  std::uint64_t h = 0xCA11B8A7E;
  for (const auto& [key, tally] : tallies_) {
    h = hash_combine(h, key.first);
    h = hash_combine(h, key.second);
    for (const auto& [window, outcome] : tally.events) {
      h = hash_combine(h, static_cast<std::uint64_t>(window));
      h = hash_combine(h, static_cast<std::uint64_t>(outcome));
    }
  }
  return h;
}

bool bootstrap_priority_less(const ActiveSignal& a, const ActiveSignal& b) {
  // Returns true when `a` has higher priority. Attributes in Table 1 order;
  // within a tied attribute, the category-specific tie-break applies when
  // both signals share a category.
  auto tie_break = [&](int& decided) {
    bool a_bgp = is_bgp_technique(a.technique);
    bool b_bgp = is_bgp_technique(b.technique);
    if (a_bgp && b_bgp) {
      if (a.meta.vp_count != b.meta.vp_count) {
        decided = a.meta.vp_count > b.meta.vp_count ? 1 : -1;
      }
    } else if (!a_bgp && !b_bgp) {
      if (a.meta.deviation != b.meta.deviation) {
        decided = a.meta.deviation > b.meta.deviation ? 1 : -1;
      }
    }
  };
  auto attr = [&](int va, int vb) -> int {
    if (va != vb) return va > vb ? 1 : -1;
    int decided = 0;
    tie_break(decided);
    return decided;
  };
  if (int d = attr(a.meta.ip_overlap, b.meta.ip_overlap)) return d > 0;
  if (int d = attr(a.meta.as_overlap, b.meta.as_overlap)) return d > 0;
  if (int d = attr(a.meta.vps_same_as_city, b.meta.vps_same_as_city)) {
    return d > 0;
  }
  if (int d = attr(a.meta.vps_same_as, b.meta.vps_same_as)) return d > 0;
  if (int d = attr(a.meta.vps_same_city, b.meta.vps_same_city)) return d > 0;
  if (int d = attr(a.meta.as_level ? 1 : 0, b.meta.as_level ? 1 : 0)) {
    return d > 0;
  }
  return false;
}

std::vector<tr::PairKey> RefreshScheduler::plan(
    const std::map<tr::PairKey, PairState>& pairs,
    const Calibration& calibration, int budget, Rng& rng) {
  std::vector<tr::PairKey> chosen;
  if (budget <= 0) return chosen;
  std::set<tr::PairKey> taken;

  // Group firing pairs by vantage point (source probe).
  std::map<tr::ProbeId, std::vector<const tr::PairKey*>> by_vp;
  for (const auto& [key, state] : pairs) {
    if (!state.firing.empty()) by_vp[key.probe].push_back(&key);
  }

  // Steps 1-4: VP-by-VP probabilistic refresh, highest summed TPR first.
  std::set<tr::ProbeId> exhausted;
  while (budget > 0 && exhausted.size() < by_vp.size()) {
    tr::ProbeId best_vp = tr::kNoProbe;
    double best_sum = -1.0;
    for (const auto& [vp, vp_pairs] : by_vp) {
      if (exhausted.contains(vp)) continue;
      double sum = 0.0;
      bool any = false;
      for (const tr::PairKey* key : vp_pairs) {
        for (const ActiveSignal& s : pairs.at(*key).firing) {
          if (auto t = calibration.tpr(vp, s.potential)) {
            sum += *t;
            any = true;
          }
        }
      }
      if (any && sum > best_sum) {
        best_sum = sum;
        best_vp = vp;
      }
    }
    if (best_vp == tr::kNoProbe) break;  // no calibrated VP left
    exhausted.insert(best_vp);

    // Step 2: the per-VP refresh probability from TPRs of firing signals
    // and TNRs of silent related potentials.
    double tpr_sum = 0.0;
    double tnr_sum = 0.0;
    for (const tr::PairKey* key : by_vp[best_vp]) {
      const PairState& state = pairs.at(*key);
      for (const ActiveSignal& s : state.firing) {
        if (auto t = calibration.tpr(best_vp, s.potential)) tpr_sum += *t;
      }
      for (PotentialId silent : state.silent) {
        if (auto t = calibration.tnr(best_vp, silent)) tnr_sum += *t;
      }
    }
    if (tpr_sum + tnr_sum <= 0.0) continue;
    double p_refresh = tpr_sum / (tpr_sum + tnr_sum);

    // Step 3: refresh each firing pair of this VP with probability p.
    for (const tr::PairKey* key : by_vp[best_vp]) {
      if (budget <= 0) break;
      if (taken.contains(*key)) continue;
      if (rng.bernoulli(p_refresh)) {
        chosen.push_back(*key);
        taken.insert(*key);
        --budget;
      }
    }
  }

  // Step 5: bootstrap — spend leftover budget on the best-attributed
  // signals (Table 1 ordering) among untaken pairs.
  if (budget > 0) {
    std::vector<const ActiveSignal*> all;
    for (const auto& [key, state] : pairs) {
      if (taken.contains(key)) continue;
      for (const ActiveSignal& s : state.firing) all.push_back(&s);
    }
    std::sort(all.begin(), all.end(),
              [](const ActiveSignal* a, const ActiveSignal* b) {
                return bootstrap_priority_less(*a, *b);
              });
    for (const ActiveSignal* s : all) {
      if (budget <= 0) break;
      if (taken.contains(s->pair)) continue;
      chosen.push_back(s->pair);
      taken.insert(s->pair);
      --budget;
    }
  }
  return chosen;
}

}  // namespace rrr::signals
