// §4.2.3 — staleness signals from IXP membership changes ("Colocation
// changes" in Table 2).
//
// Membership starts from a PeeringDB-like snapshot, augmented by ASes seen
// as near-end (left-adjacent) neighbors of IXP interfaces in traceroutes
// (far-end neighbors are ignored: routers reply with ingress interfaces, so
// the hop after an IXP address need not belong to the interface's owner).
// When AS_i newly appears as a member of IXP_x, corpus traceroutes that
// traverse AS_i and later another member AS_j may have switched to a direct
// AS_i--AS_j peering: a signal fires when AS_i currently reaches AS_j via a
// provider or a public peer (shortest-path / cost reasoning); private peers
// only produce signals once equal local-preference behaviour has been
// learned for AS_i.
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "signals/asreldb.h"
#include "signals/monitor.h"

namespace rrr::runtime {
class ThreadPool;
}

namespace rrr::signals {

class IxpMonitor final : public TraceMonitor {
 public:
  IxpMonitor(const AsRelDb& rels,
             std::map<topo::IxpId, std::set<Asn>> initial_members)
      : rels_(rels), members_(std::move(initial_members)) {}

  Technique technique() const override { return Technique::kColocation; }
  // Stamps window-close signals on `pool` (null = serial).
  void set_pool(runtime::ThreadPool* pool) { pool_ = pool; }
  void watch(const CorpusView& view, PotentialIndex& index) override;
  void unwatch(const tr::PairKey& pair) override;
  void on_public_trace(const tracemap::ProcessedTrace& trace,
                       std::int64_t window) override;
  std::vector<StalenessSignal> close_window(std::int64_t window,
                                            TimePoint window_end) override;

  // Calibration feedback: AS_i has been observed preferring IXP routes over
  // private peers, so future private-peer cases also signal.
  void learn_equal_preference(Asn as) { equal_pref_.insert(as); }

  const std::set<Asn>& members_of(topo::IxpId ixp) const;
  std::size_t detected_joins() const { return detected_joins_; }

  // Checkpoint support. The potential index is re-bound explicitly on load
  // (it is normally captured at first watch, which a restored monitor may
  // never see again).
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec, PotentialIndex* index);

 private:
  struct WatchedPair {
    tr::PairKey key;
    AsPath path;
    // For AS at path position p, the border index whose far side is it.
    std::vector<std::size_t> ingress_border;
  };

  void handle_new_member(topo::IxpId ixp, Asn joiner);

  runtime::ThreadPool* pool_ = nullptr;
  const AsRelDb& rels_;
  std::map<topo::IxpId, std::set<Asn>> members_;
  std::set<Asn> equal_pref_;
  std::map<tr::PairKey, WatchedPair> watched_;
  std::map<Asn, std::set<tr::PairKey>> by_as_;
  PotentialIndex* index_ = nullptr;  // bound at first watch
  std::vector<StalenessSignal> pending_;
  std::size_t detected_joins_ = 0;
};

}  // namespace rrr::signals
