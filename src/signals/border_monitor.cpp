#include "signals/border_monitor.h"

#include <cmath>

#include "runtime/parallel.h"
#include "signals/feed_health.h"

namespace rrr::signals {

std::optional<BorderMonitor::CityPairKey> BorderMonitor::key_of(
    const tracemap::BorderView& b) {
  if (!b.near_city || !b.far_city || *b.near_city == *b.far_city) {
    return std::nullopt;  // §4.2.2 requires c_m != c_n (and both located)
  }
  return CityPairKey{b.near_as, *b.near_city, b.far_as, *b.far_city};
}

void BorderMonitor::watch(const CorpusView& view, PotentialIndex& index) {
  const tracemap::ProcessedTrace& pt = view.processed;
  for (std::size_t b = 0; b < pt.borders.size(); ++b) {
    auto key = key_of(pt.borders[b]);
    if (!key) continue;
    auto& entry = entries_[*key];
    if (!entry) {
      entry = std::make_unique<Entry>();
      entry->key = *key;
    }
    RouterSeries* rs = nullptr;
    for (auto& candidate : entry->routers) {
      if (candidate->router == pt.borders[b].border_router) {
        rs = candidate.get();
        break;
      }
    }
    if (rs == nullptr) {
      auto created = std::make_unique<RouterSeries>(RouterSeries{
          .id = index.create(Technique::kTraceBorder),
          .router = pt.borders[b].border_router,
          .series = detect::AdaptiveRatioSeries(
              prototype_, params_.max_window_multiplier),
          .subscribers = {},
          .baseline_ratio = -1.0,
          .touched = false,
      });
      rs = created.get();
      by_potential_[rs->id] = rs;
      entry->routers.push_back(std::move(created));
    }
    bool found = false;
    for (Subscriber& sub : rs->subscribers) {
      if (sub.pair == view.key && sub.border == b) {
        sub.zombie = false;
        found = true;
        break;
      }
    }
    if (!found) rs->subscribers.push_back(Subscriber{view.key, b, false});
    index.relate(rs->id, view.key, b);
    by_pair_[view.key].push_back(rs);
  }
}

void BorderMonitor::unwatch(const tr::PairKey& pair) {
  auto it = by_pair_.find(pair);
  if (it == by_pair_.end()) return;
  for (RouterSeries* rs : it->second) {
    for (Subscriber& sub : rs->subscribers) {
      if (sub.pair == pair) sub.zombie = true;
    }
  }
  by_pair_.erase(it);
}

void BorderMonitor::on_public_trace(const tracemap::ProcessedTrace& trace,
                                    std::int64_t window) {
  for (const tracemap::BorderView& border : trace.borders) {
    auto key = key_of(border);
    if (!key) continue;
    auto eit = entries_.find(*key);
    if (eit == entries_.end()) continue;
    for (auto& rs : eit->second->routers) {
      bool match = rs->router == border.border_router;
      rs->series.add(window, match ? 1 : 0, 1);
      if (!rs->touched) {
        rs->touched = true;
        touched_.push_back(rs.get());
      }
    }
  }
}

std::vector<StalenessSignal> BorderMonitor::close_series(
    RouterSeries* rs, std::int64_t window, TimePoint window_end) {
  std::vector<StalenessSignal> signals;
  for (const detect::ClosedRatioWindow& closed :
       rs->series.close_through(window + 1)) {
    if (rs->baseline_ratio < 0.0 && rs->series.armed()) {
      rs->baseline_ratio = closed.ratio;
    }
    bool drop = closed.judgement.outlier && closed.judgement.score < 0 &&
                closed.intersect >= params_.min_intersect;
    // The monitored router can only *lose* share when the border moves;
    // thin windows need two consecutive drops.
    bool confirmed =
        drop && (closed.intersect >= params_.single_shot_intersect ||
                 rs->pending_drop);
    rs->pending_drop = drop;
    if (!confirmed) continue;
    // §4.2.2 gating: a border router "losing share" during a degraded
    // trace feed usually means its observers went quiet, not that the
    // border moved.
    if (health_ != nullptr && health_->trace_degraded()) {
      obs::inc(dropped_unhealthy_,
               static_cast<std::int64_t>(rs->subscribers.size()));
      continue;
    }
    std::int64_t agg_end =
        closed.aggregate_window * closed.multiplier + closed.multiplier - 1;
    TimePoint at = window_end -
                   (window - agg_end) * params_.base_window_seconds;
    for (const Subscriber& sub : rs->subscribers) {
      StalenessSignal signal;
      signal.technique = Technique::kTraceBorder;
      signal.potential = rs->id;
      signal.time = at;
      signal.window = agg_end;
      signal.span_seconds =
          closed.multiplier * params_.base_window_seconds;
      signal.pair = sub.pair;
      signal.border_index = sub.border;
      signal.meta.deviation = std::abs(closed.judgement.score);
      signals.push_back(std::move(signal));
    }
  }
  return signals;
}

std::vector<StalenessSignal> BorderMonitor::close_window(
    std::int64_t window, TimePoint window_end) {
  std::vector<StalenessSignal> signals;
  // Router series are disjoint state; shards close them concurrently and
  // the per-series buffers are concatenated in work-list order, so the
  // output is independent of the thread count.
  obs::ScopedSpan span(mobs_.close_us);
  std::vector<RouterSeries*> work;
  work.swap(touched_);
  obs::observe(mobs_.close_items, static_cast<double>(work.size()));
  std::vector<std::vector<StalenessSignal>> shards =
      runtime::parallel_map(pool_, work, [&](RouterSeries* rs) {
        rs->touched = false;
        return close_series(rs, window, window_end);
      });
  for (std::vector<StalenessSignal>& shard : shards) {
    for (StalenessSignal& signal : shard) {
      signals.push_back(std::move(signal));
    }
  }
  if (window % 96 == 95) {
    std::vector<RouterSeries*> all;
    for (auto& [key, entry] : entries_) {
      for (auto& rs : entry->routers) all.push_back(rs.get());
    }
    std::vector<std::vector<StalenessSignal>> swept =
        runtime::parallel_map(pool_, all, [&](RouterSeries* rs) {
          return close_series(rs, window, window_end);
        });
    for (std::vector<StalenessSignal>& shard : swept) {
      for (StalenessSignal& signal : shard) {
        signals.push_back(std::move(signal));
      }
    }
    for (RouterSeries* rs : all) {
      std::erase_if(rs->subscribers,
                    [](const Subscriber& sub) { return sub.zombie; });
    }
  }
  return signals;
}

void BorderMonitor::save_state(store::Encoder& enc) const {
  enc.u64(entries_.size());
  for (const auto& [key, entry] : entries_) {
    store::put(enc, key.as_m);
    enc.u16(key.c_m);
    store::put(enc, key.as_n);
    enc.u16(key.c_n);
    enc.u64(entry->routers.size());
    for (const auto& rs : entry->routers) {
      enc.u64(rs->id);
      enc.u64(rs->router.value);
      rs->series.save_state(enc);
      enc.u64(rs->subscribers.size());
      for (const Subscriber& sub : rs->subscribers) {
        put_pair(enc, sub.pair);
        enc.u64(sub.border);
        enc.boolean(sub.zombie);
      }
      enc.f64(rs->baseline_ratio);
      enc.boolean(rs->touched);
      enc.boolean(rs->pending_drop);
    }
  }
  auto put_ids = [&enc](const std::vector<RouterSeries*>& list) {
    enc.u64(list.size());
    for (const RouterSeries* rs : list) enc.u64(rs->id);
  };
  enc.u64(by_pair_.size());
  for (const auto& [pair, list] : by_pair_) {
    put_pair(enc, pair);
    put_ids(list);
  }
  put_ids(touched_);
}

void BorderMonitor::load_state(store::Decoder& dec) {
  entries_.clear();
  by_pair_.clear();
  by_potential_.clear();
  touched_.clear();
  std::uint64_t entry_count = dec.u64();
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    CityPairKey key;
    key.as_m = store::get_asn(dec);
    key.c_m = dec.u16();
    key.as_n = store::get_asn(dec);
    key.c_n = dec.u16();
    auto entry = std::make_unique<Entry>();
    entry->key = key;
    std::uint64_t router_count = dec.u64();
    entry->routers.reserve(router_count);
    for (std::uint64_t j = 0; j < router_count; ++j) {
      auto rs = std::make_unique<RouterSeries>(RouterSeries{
          .id = dec.u64(),
          .router = tracemap::RouterKey{dec.u64()},
          .series = detect::AdaptiveRatioSeries(
              prototype_, params_.max_window_multiplier),
          .subscribers = {},
          .baseline_ratio = -1.0,
          .touched = false,
          .pending_drop = false,
      });
      rs->series.load_state(dec);
      std::uint64_t sub_count = dec.u64();
      rs->subscribers.reserve(sub_count);
      for (std::uint64_t k = 0; k < sub_count; ++k) {
        Subscriber sub;
        sub.pair = get_pair(dec);
        sub.border = dec.u64();
        sub.zombie = dec.boolean();
        rs->subscribers.push_back(sub);
      }
      rs->baseline_ratio = dec.f64();
      rs->touched = dec.boolean();
      rs->pending_drop = dec.boolean();
      by_potential_[rs->id] = rs.get();
      entry->routers.push_back(std::move(rs));
    }
    entries_.emplace(key, std::move(entry));
  }
  auto get_ids = [this, &dec]() {
    std::vector<RouterSeries*> list;
    std::uint64_t n = dec.u64();
    list.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      list.push_back(by_potential_.at(dec.u64()));
    }
    return list;
  };
  std::uint64_t pair_count = dec.u64();
  for (std::uint64_t i = 0; i < pair_count; ++i) {
    tr::PairKey pair = get_pair(dec);
    by_pair_[pair] = get_ids();
  }
  touched_ = get_ids();
}

bool BorderMonitor::reverted(PotentialId id) const {
  auto it = by_potential_.find(id);
  if (it == by_potential_.end()) return false;
  const RouterSeries& rs = *it->second;
  if (rs.baseline_ratio < 0.0 || !rs.series.has_ratio()) return false;
  return std::abs(rs.series.last_ratio() - rs.baseline_ratio) < 0.1;
}

}  // namespace rrr::signals
