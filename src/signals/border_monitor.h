// §4.2.2 — staleness signals from router-level border usage between
// ⟨AS, city⟩ pairs.
//
// When IP-level subpaths are too noisy, routing decisions are still
// consistent at PoP granularity: if public traceroutes between ⟨AS_m, c_m⟩
// and ⟨AS_n, c_n⟩ consistently cross border router r and later consistently
// cross r', the ASes changed routing policy (Figure 5). The monitor keeps,
// per city pair, one adaptive ratio series per border router that corpus
// traceroutes use, fed by public traceroutes crossing the same city pair.
#pragma once

#include <map>
#include <unordered_map>

#include "detect/series.h"
#include "signals/monitor.h"
#include "tracemap/alias.h"

namespace rrr::runtime {
class ThreadPool;
}

namespace rrr::signals {

struct BorderMonitorParams {
  std::int64_t max_window_multiplier = 96;
  std::int64_t base_window_seconds = kBaseWindowSeconds;
  std::int64_t min_intersect = 2;
  // Windows at least this thick may signal on a single drop-outlier;
  // thinner ones need two consecutive drops (binomial noise guard).
  std::int64_t single_shot_intersect = 5;
  detect::ZScoreParams zscore{.threshold = 3.5,
                               .min_history = 20,
                               .max_history = 96,
                               .drop_outliers_from_history = true,
                               .min_abs_deviation = 0.35};
};

class BorderMonitor final : public TraceMonitor {
 public:
  explicit BorderMonitor(const BorderMonitorParams& params = {})
      : params_(params), prototype_(params.zscore) {}

  Technique technique() const override { return Technique::kTraceBorder; }
  // Evaluates window closes across router series on `pool` (null = serial).
  void set_pool(runtime::ThreadPool* pool) { pool_ = pool; }
  void watch(const CorpusView& view, PotentialIndex& index) override;
  void unwatch(const tr::PairKey& pair) override;
  void on_public_trace(const tracemap::ProcessedTrace& trace,
                       std::int64_t window) override;
  std::vector<StalenessSignal> close_window(std::int64_t window,
                                            TimePoint window_end) override;
  bool reverted(PotentialId id) const override;

  std::size_t city_pair_count() const { return entries_.size(); }

  // Checkpoint support; router series keep their in-entry order (it drives
  // touched_-list construction) and by_pair_/touched_ round-trip as ordered
  // id lists, as in AsPathMonitor::save_state.
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);

 private:
  // ⟨AS_m, c_m⟩ -> ⟨AS_n, c_n⟩.
  struct CityPairKey {
    Asn as_m;
    topo::CityId c_m = topo::kNoCity;
    Asn as_n;
    topo::CityId c_n = topo::kNoCity;
    auto operator<=>(const CityPairKey&) const = default;
  };

  struct Subscriber {
    tr::PairKey pair;
    std::size_t border = 0;
    bool zombie = false;
  };
  struct RouterSeries {
    PotentialId id = kNoPotential;
    tracemap::RouterKey router;
    detect::AdaptiveRatioSeries series;
    std::vector<Subscriber> subscribers;
    double baseline_ratio = -1.0;
    bool touched = false;
    bool pending_drop = false;
  };

  struct Entry {
    CityPairKey key;
    std::vector<std::unique_ptr<RouterSeries>> routers;
  };

  static std::optional<CityPairKey> key_of(const tracemap::BorderView& b);
  // Closes `rs`'s pending aggregate windows; returns the signals it fired.
  // Touches only `rs`, so distinct series may be closed concurrently.
  std::vector<StalenessSignal> close_series(RouterSeries* rs,
                                            std::int64_t window,
                                            TimePoint window_end);

  runtime::ThreadPool* pool_ = nullptr;
  BorderMonitorParams params_;
  detect::ModifiedZScoreDetector prototype_;
  std::map<CityPairKey, std::unique_ptr<Entry>> entries_;
  std::map<tr::PairKey, std::vector<RouterSeries*>> by_pair_;
  std::unordered_map<PotentialId, RouterSeries*> by_potential_;
  std::vector<RouterSeries*> touched_;
};

}  // namespace rrr::signals
