// §4.3.1 — signal calibration and refresh scheduling.
//
// Every remeasurement grades the potential signals related to the old
// traceroute: fired-and-changed (TP), fired-and-unchanged (FP),
// silent-and-unchanged (TN), silent-and-changed (FN). Tallies slide over
// the last l=30 signal-generation windows and yield per-(VP, signal)
// TPR/TNR, which drive which vantage point refreshes next and with what
// probability. Until tallies initialize, signals are ordered by the Table 1
// attribute priority list.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "netbase/rng.h"
#include "signals/signal.h"
#include "store/serial.h"

namespace rrr::signals {

enum class Outcome : std::uint8_t {
  kTruePositive,
  kFalsePositive,
  kTrueNegative,
  kFalseNegative,
};

class Calibration {
 public:
  explicit Calibration(std::int64_t sliding_windows = 30)
      : sliding_windows_(sliding_windows) {}

  void record(tr::ProbeId vp, PotentialId signal, std::int64_t window,
              Outcome outcome);

  // TPR = TP / (TP + FN); nullopt while uninitialized (too little history).
  std::optional<double> tpr(tr::ProbeId vp, PotentialId signal) const;
  // TNR = TN / (TN + FP).
  std::optional<double> tnr(tr::ProbeId vp, PotentialId signal) const;

  std::size_t tally_count() const { return tallies_.size(); }

  // Fingerprint of the full calibration state (every (VP, signal) tally and
  // its outcome sequence). Two engines with equal digests grade refreshes
  // identically; determinism tests compare serial vs. parallel runs by it.
  std::uint64_t digest() const;

  // Checkpoint support: round-trips every tally's outcome deque and window
  // bounds (sliding_windows_ is configuration, re-supplied by the ctor).
  void save_state(store::Encoder& enc) const {
    enc.u64(tallies_.size());
    for (const auto& [key, tally] : tallies_) {
      enc.u32(key.first);
      enc.u64(key.second);
      enc.u64(tally.events.size());
      for (const auto& [window, outcome] : tally.events) {
        enc.i64(window);
        enc.u8(static_cast<std::uint8_t>(outcome));
      }
      enc.i64(tally.first_window);
      enc.i64(tally.last_window);
    }
  }
  void load_state(store::Decoder& dec) {
    tallies_.clear();
    std::uint64_t count = dec.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      std::pair<tr::ProbeId, PotentialId> key;
      key.first = dec.u32();
      key.second = dec.u64();
      Tally& tally = tallies_[key];
      std::uint64_t event_count = dec.u64();
      for (std::uint64_t j = 0; j < event_count; ++j) {
        std::int64_t window = dec.i64();
        auto outcome = static_cast<Outcome>(dec.u8());
        tally.events.emplace_back(window, outcome);
      }
      tally.first_window = dec.i64();
      tally.last_window = dec.i64();
    }
  }

 private:
  struct Tally {
    std::deque<std::pair<std::int64_t, Outcome>> events;
    std::int64_t first_window = -1;
    std::int64_t last_window = -1;
  };
  struct Counts {
    int tp = 0, fp = 0, tn = 0, fn = 0;
  };
  Counts counts_of(const Tally& tally) const;
  const Tally* find(tr::ProbeId vp, PotentialId signal) const;

  std::int64_t sliding_windows_;
  std::map<std::pair<tr::ProbeId, PotentialId>, Tally> tallies_;
};

// A signal currently indicating that its pair is stale.
struct ActiveSignal {
  PotentialId potential = kNoPotential;
  Technique technique = Technique::kBgpAsPath;
  SignalMeta meta;
  tr::PairKey pair;
  Community community{};  // set for community signals (Appendix B)
};

// Table 1: lexicographic priority with the in-attribute VP-count /
// deviation tie-break. Returns true when `a` outranks `b`.
bool bootstrap_priority_less(const ActiveSignal& a, const ActiveSignal& b);

// Chooses which pairs to refresh this round (§4.3.1 steps 1-5).
class RefreshScheduler {
 public:
  // `related`: for each pair, all related potentials and whether each is
  // currently firing. Returns at most `budget` distinct pairs.
  struct PairState {
    std::vector<ActiveSignal> firing;
    std::vector<PotentialId> silent;
  };
  static std::vector<tr::PairKey> plan(
      const std::map<tr::PairKey, PairState>& pairs,
      const Calibration& calibration, int budget, Rng& rng);
};

}  // namespace rrr::signals
