#include "signals/community_monitor.h"

#include <algorithm>

#include "runtime/parallel.h"
#include "signals/feed_health.h"

namespace rrr::signals {

void CommunityReputation::record_outcome(Community community,
                                         const tr::PairKey& pair,
                                         bool true_positive) {
  Stats& stats = stats_[community];
  Stats& pair_stats = pair_stats_[{community, pair}];
  Stats& definer_stats = definer_stats_[{community.definer(), pair}];
  if (true_positive) {
    ++stats.tp;
    ++pair_stats.tp;
    ++definer_stats.tp;
  } else {
    ++stats.fp;
    ++pair_stats.fp;
    ++definer_stats.fp;
  }
}

bool CommunityReputation::pruned_for(Community community,
                                     const tr::PairKey& pair) const {
  if (pruned(community)) return true;
  auto it = pair_stats_.find({community, pair});
  if (it != pair_stats_.end()) {
    const Stats& s = it->second;
    if (s.fp >= pair_prune_fp_threshold && s.tp == 0) return true;
  }
  auto dit = definer_stats_.find({community.definer(), pair});
  if (dit != definer_stats_.end()) {
    const Stats& s = dit->second;
    if (s.fp >= definer_prune_fp_threshold && s.tp == 0) return true;
  }
  return false;
}

bool CommunityReputation::pruned(Community community) const {
  auto it = stats_.find(community);
  if (it == stats_.end()) return false;
  const Stats& s = it->second;
  if (s.fp < prune_fp_threshold) return false;
  double precision =
      static_cast<double>(s.tp) / static_cast<double>(s.tp + s.fp);
  return precision < prune_precision_floor;
}

std::size_t CommunityReputation::active_false_positive_communities() const {
  std::size_t count = 0;
  for (const auto& [community, s] : stats_) {
    if (s.fp > 0 && !pruned(community)) ++count;
  }
  return count;
}

std::size_t CommunityReputation::pruned_count() const {
  std::size_t count = 0;
  for (const auto& [community, s] : stats_) {
    if (pruned(community)) ++count;
  }
  return count;
}

bool CommunityMonitor::overlaps_suffix(const Entry& entry,
                                       const AsPath& path) {
  int pos = index_of(path, entry.as);
  if (pos < 0) return false;
  return suffix_matches(path, static_cast<std::size_t>(pos),
                        entry.tau_path);
}

CommunitySet CommunityMonitor::baseline_communities(
    const Entry& entry) const {
  CommunitySet baseline;
  for (const bgp::VantagePoint& vp : *context_.vps) {
    const bgp::VpRoute* route = context_.table->route(vp.id, entry.pair.dst);
    if (route == nullptr || !overlaps_suffix(entry, route->path)) continue;
    for (Community c : route->communities) {
      if (c.definer() == entry.as) baseline.insert(c);
    }
  }
  return baseline;
}

void CommunityMonitor::watch(const CorpusView& view, PotentialIndex& index) {
  const tracemap::ProcessedTrace& pt = view.processed;
  if (pt.as_path.empty()) return;
  for (std::size_t j = 0; j < pt.as_path.size(); ++j) {
    auto entry = std::make_unique<Entry>();
    entry->id = index.create(Technique::kBgpCommunity);
    entry->pair = view.key;
    entry->as = pt.as_path[j];
    entry->tau_path = pt.as_path;
    entry->tau_index = j;
    for (std::size_t b = 0; b < pt.borders.size(); ++b) {
      if (pt.borders[b].far_as == pt.as_path[j]) {
        entry->border_index = b;
        break;
      }
    }
    entry->baseline = baseline_communities(*entry);
    Entry* raw = entry.get();
    index.relate(raw->id, view.key, raw->border_index);
    by_pair_[view.key].push_back(raw);
    by_dst_[view.key.dst].push_back(raw);
    dst_index_.add(view.key.dst);
    by_potential_[raw->id] = raw;
    entries_.emplace(raw->id, std::move(entry));
  }
}

void CommunityMonitor::unwatch(const tr::PairKey& pair) {
  auto it = by_pair_.find(pair);
  if (it == by_pair_.end()) return;
  for (Entry* entry : it->second) {
    std::erase(by_dst_[pair.dst], entry);
    dst_index_.remove(pair.dst);
    by_potential_.erase(entry->id);
    std::erase(pending_, entry);
    entries_.erase(entry->id);
  }
  by_pair_.erase(it);
}

bool CommunityMonitor::community_known_elsewhere(const Entry& entry,
                                                 Community community,
                                                 bgp::VpId except_vp) const {
  for (const bgp::VantagePoint& vp : *context_.vps) {
    if (vp.id == except_vp) continue;
    const bgp::VpRoute* route = context_.table->route(vp.id, entry.pair.dst);
    if (route == nullptr || !overlaps_suffix(entry, route->path)) continue;
    if (route->communities.contains(community)) return true;
  }
  return false;
}

void CommunityMonitor::on_record(const DispatchedRecord& record,
                                 std::int64_t window) {
  (void)window;
  const bgp::BgpRecord& rec = *record.record;
  if (rec.type == bgp::RecordType::kWithdrawal) return;

  ++stats_.records;
  dst_index_.for_covered(rec.prefix, [&](Ipv4 dst) {
    auto dit = by_dst_.find(dst);
    if (dit == by_dst_.end()) return;
    // Standing (start-of-window) route of this VP.
    const bgp::VpRoute* prev = context_.table->route(rec.vp, dst);
    if (prev == nullptr || prev->path.empty()) return;

    bool emptiness_flip =
        prev->communities.empty() != rec.communities.empty();
    bool path_changed = record.path != prev->path;
    for (Entry* entry : dit->second) {
      if (entry->pending) continue;  // one signal per window suffices
      // The VP must overlap τ's suffix at a_j — on its established route
      // AND on the announced one. A route that moved away from a_j drops
      // a_j's communities trivially; that is an AS-path event about the
      // VP, not evidence that τ's border at a_j moved.
      if (!overlaps_suffix(*entry, prev->path)) {
        ++stats_.no_prev_overlap;
        continue;
      }
      if (!overlaps_suffix(*entry, record.path)) {
        ++stats_.no_new_overlap;
        continue;
      }
      CommunityDiff diff =
          diff_communities(prev->communities, rec.communities, entry->as);
      if (diff.empty()) continue;
      ++stats_.diffs;
      // Suppression 1 (§4.1.3): communities are optional and transitive —
      // any AS on the way may strip them, so a path change (even upstream
      // of a_j) can make a_j's communities appear or vanish without any
      // change at a_j. With a changed path, only a *value change* (one of
      // a_j's communities replaced by another) is trustworthy evidence.
      if (path_changed && (diff.added.empty() || diff.removed.empty())) {
        ++stats_.path_rule;
        continue;
      }
      if (emptiness_flip && path_changed) continue;
      // Feed-health gating: a community flip witnessed only by a
      // quarantined stream (e.g. a session replaying stale attributes) is
      // not evidence that the border moved.
      if (health_ != nullptr && health_->bgp_quarantined(rec.vp)) {
        obs::inc(dropped_unhealthy_);
        continue;
      }
      for (Community c : diff.added) {
        if (reputation_.pruned_for(c, entry->pair)) {
          ++stats_.pruned;
          continue;
        }
        // Suppression 2: a community already visible on another
        // overlapping path is not a new signal of change.
        if (community_known_elsewhere(*entry, c, rec.vp)) {
          ++stats_.known_elsewhere;
          continue;
        }
        entry->pending = true;
        ++stats_.fired;
        entry->pending_community = c;
        ++entry->pending_vp_count;
        pending_.push_back(entry);
        break;
      }
      if (entry->pending) continue;
      for (Community c : diff.removed) {
        if (reputation_.pruned_for(c, entry->pair)) {
          ++stats_.pruned;
          continue;
        }
        entry->pending = true;
        ++stats_.fired;
        entry->pending_community = c;
        ++entry->pending_vp_count;
        pending_.push_back(entry);
        break;
      }
    }
  });
}

std::vector<StalenessSignal> CommunityMonitor::close_window(
    std::int64_t window, TimePoint window_end) {
  obs::ScopedSpan span(mobs_.close_us);
  std::vector<Entry*> work;
  work.reserve(pending_.size());
  for (Entry* entry : pending_) {
    if (entry->pending) work.push_back(entry);
  }
  pending_.clear();
  obs::observe(mobs_.close_items, static_cast<double>(work.size()));
  // Entries are disjoint, so stamping their signals fans out; parallel_map
  // returns results in work-list order — the serial emission order.
  return runtime::parallel_map(pool_, work, [&](Entry* entry) {
    StalenessSignal signal;
    signal.technique = Technique::kBgpCommunity;
    signal.potential = entry->id;
    signal.time = window_end;
    signal.window = window;
    signal.pair = entry->pair;
    signal.border_index = entry->border_index;
    signal.community = entry->pending_community;
    signal.meta.as_overlap =
        static_cast<int>(entry->tau_path.size() - entry->tau_index);
    signal.meta.as_level = false;
    signal.meta.vp_count = entry->pending_vp_count;
    entry->pending = false;
    entry->pending_vp_count = 0;
    return signal;
  });
}

void CommunityMonitor::save_state(store::Encoder& enc) const {
  enc.i64(stats_.records);
  enc.i64(stats_.diffs);
  enc.i64(stats_.no_prev_overlap);
  enc.i64(stats_.no_new_overlap);
  enc.i64(stats_.path_rule);
  enc.i64(stats_.known_elsewhere);
  enc.i64(stats_.pruned);
  enc.i64(stats_.fired);
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ordered.push_back(entry.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Entry* a, const Entry* b) { return a->id < b->id; });
  enc.u64(ordered.size());
  for (const Entry* entry : ordered) {
    enc.u64(entry->id);
    put_pair(enc, entry->pair);
    store::put(enc, entry->as);
    store::put(enc, entry->tau_path);
    enc.u64(entry->tau_index);
    enc.u64(entry->border_index);
    store::put(enc, entry->baseline);
    enc.boolean(entry->pending);
    store::put(enc, entry->pending_community);
    enc.i64(entry->pending_vp_count);
  }
  auto put_ids = [&enc](const std::vector<Entry*>& list) {
    enc.u64(list.size());
    for (const Entry* entry : list) enc.u64(entry->id);
  };
  enc.u64(by_pair_.size());
  for (const auto& [pair, list] : by_pair_) {
    put_pair(enc, pair);
    put_ids(list);
  }
  std::vector<Ipv4> dsts;
  dsts.reserve(by_dst_.size());
  for (const auto& [dst, list] : by_dst_) dsts.push_back(dst);
  std::sort(dsts.begin(), dsts.end());
  enc.u64(dsts.size());
  for (Ipv4 dst : dsts) {
    store::put(enc, dst);
    put_ids(by_dst_.at(dst));
  }
  put_ids(pending_);
}

void CommunityMonitor::load_state(store::Decoder& dec) {
  stats_.records = dec.i64();
  stats_.diffs = dec.i64();
  stats_.no_prev_overlap = dec.i64();
  stats_.no_new_overlap = dec.i64();
  stats_.path_rule = dec.i64();
  stats_.known_elsewhere = dec.i64();
  stats_.pruned = dec.i64();
  stats_.fired = dec.i64();
  entries_.clear();
  by_pair_.clear();
  by_dst_.clear();
  dst_index_ = DstIndex();
  by_potential_.clear();
  pending_.clear();
  std::uint64_t count = dec.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    auto entry = std::make_unique<Entry>();
    entry->id = dec.u64();
    entry->pair = get_pair(dec);
    entry->as = store::get_asn(dec);
    entry->tau_path = store::get_as_path(dec);
    entry->tau_index = dec.u64();
    entry->border_index = dec.u64();
    entry->baseline = store::get_community_set(dec);
    entry->pending = dec.boolean();
    entry->pending_community = store::get_community(dec);
    entry->pending_vp_count = static_cast<int>(dec.i64());
    by_potential_[entry->id] = entry.get();
    Entry* raw = entry.get();
    entries_.emplace(raw->id, std::move(entry));
  }
  auto get_ids = [this, &dec]() {
    std::vector<Entry*> list;
    std::uint64_t n = dec.u64();
    list.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      list.push_back(by_potential_.at(dec.u64()));
    }
    return list;
  };
  std::uint64_t pair_count = dec.u64();
  for (std::uint64_t i = 0; i < pair_count; ++i) {
    tr::PairKey pair = get_pair(dec);
    by_pair_[pair] = get_ids();
  }
  std::uint64_t dst_count = dec.u64();
  for (std::uint64_t i = 0; i < dst_count; ++i) {
    Ipv4 dst = store::get_ipv4(dec);
    std::vector<Entry*> list = get_ids();
    for (std::size_t j = 0; j < list.size(); ++j) dst_index_.add(dst);
    by_dst_[dst] = std::move(list);
  }
  pending_ = get_ids();
}

bool CommunityMonitor::reverted(PotentialId id) const {
  auto it = by_potential_.find(id);
  if (it == by_potential_.end()) return false;
  const Entry& entry = *it->second;
  return baseline_communities(entry) == entry.baseline;
}

}  // namespace rrr::signals
