#include "signals/engine.h"

#include <algorithm>
#include <cassert>

#include "bgp/serial.h"
#include "runtime/task_group.h"

namespace rrr::signals {
namespace {

EngineParams normalized(EngineParams params) {
  params.subpath.base_window_seconds = params.window_seconds;
  params.border.base_window_seconds = params.window_seconds;
  return params;
}

}  // namespace

DispatchedBatch dispatch_against_table(
    const std::vector<bgp::BgpRecord>& records, std::size_t count,
    const bgp::VpTableView& table, bgp::PathCanonicalizer& collapse,
    runtime::Arena& arena) {
  DispatchedBatch out{runtime::ArenaAllocator<DispatchedRecord>(arena)};
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const bgp::BgpRecord& record = records[i];
    DispatchedRecord dispatched;
    dispatched.record = &record;
    dispatched.path =
        InternedPath::from_id(collapse.canonical(record.as_path.id()));
    const bgp::VpRoute* standing =
        table.route(record.vp, record.prefix.network());
    // Duplicate status is two id compares now: id equality is content
    // equality within one interner, so this matches the old vector/set
    // comparisons exactly.
    dispatched.duplicate = record.type == bgp::RecordType::kAnnouncement &&
                           standing != nullptr &&
                           standing->path == dispatched.path &&
                           standing->communities == record.communities;
    out.push_back(dispatched);
  }
  return out;
}

std::size_t cut_window_prefix(std::vector<bgp::BgpRecord>& pending,
                              const WindowClock& clock, std::int64_t window) {
  auto in_window = [&](const bgp::BgpRecord& r) {
    return clock.index_of(r.time) <= window;
  };
  // Stable partition + prefix sort: equal-time records keep arrival order,
  // exactly as a stable sort of the whole buffer would leave them, but the
  // future-window tail is never touched (it is re-partitioned, in arrival
  // order, when its own window closes).
  auto mid = std::stable_partition(pending.begin(), pending.end(), in_window);
  std::stable_sort(pending.begin(), mid,
                   [](const bgp::BgpRecord& a, const bgp::BgpRecord& b) {
                     return a.time < b.time;
                   });
  return static_cast<std::size_t>(mid - pending.begin());
}

StalenessEngine::StalenessEngine(
    const EngineParams& params, tracemap::ProcessingContext& processing,
    std::vector<bgp::VantagePoint> vps, std::vector<topo::AsIndex> vp_as,
    std::vector<topo::CityId> vp_city, std::set<Asn> ixp_route_server_asns,
    AsRelDb rels, std::map<topo::IxpId, std::set<Asn>> ixp_members)
    : params_(normalized(params)),
      clock_(params.t0, params.window_seconds),
      processing_(processing),
      rng_(Rng(params.seed).fork(0xE9619E)) {
  owned_ = std::make_unique<OwnedGlobals>(
      std::move(vps), std::move(ixp_route_server_asns),
      params_.calibration_windows, std::move(rels));
  owned_->context.table = &owned_->table;
  owned_->context.vps = &owned_->vps;
  owned_->context.vp_as = std::move(vp_as);
  owned_->context.vp_city = std::move(vp_city);
  owned_->subpath = std::make_unique<SubpathMonitor>(params_.subpath);
  owned_->border = std::make_unique<BorderMonitor>(params_.border);
  owned_->ixp =
      std::make_unique<IxpMonitor>(owned_->rels, std::move(ixp_members));

  context_ = &owned_->context;
  index_ = &owned_->index;
  calibration_ = &owned_->calibration;
  reputation_ = &owned_->reputation;
  subpath_ = owned_->subpath.get();
  border_ = owned_->border.get();
  ixp_ = owned_->ixp.get();

  if (params_.threads > 1) {
    owned_pool_ = std::make_unique<runtime::ThreadPool>(params_.threads);
  }
  pool_ = owned_pool_.get();

  if (params_.tracer != nullptr) {
    if (owned_pool_ != nullptr) owned_pool_->set_tracer(params_.tracer);
    owned_->table.set_tracer(params_.tracer);
  }

  if (params_.metrics != nullptr) {
    obs_ = EngineObs::create(*params_.metrics);
    index_->set_obs(obs_.potentials_opened);
    if (owned_pool_ != nullptr) {
      pool_obs_ = runtime::PoolObs::create(*params_.metrics);
      owned_pool_->set_obs(&pool_obs_);
    }
  }

  if (params_.feed_health.enabled) {
    owned_->health = std::make_unique<FeedHealthTracker>(params_.feed_health);
    if (params_.metrics != nullptr) {
      owned_->health->set_metrics(*params_.metrics);
    }
    health_ = owned_->health.get();
  }

  aspath_ = std::make_unique<AsPathMonitor>(*context_);
  community_ = std::make_unique<CommunityMonitor>(*context_, *reputation_);
  burst_ = std::make_unique<BurstMonitor>(*context_);
  // Monitors with per-series window-close work shard it over the pool; a
  // null pool keeps them on the exact serial code path.
  aspath_->set_pool(pool_);
  community_->set_pool(pool_);
  burst_->set_pool(pool_);
  subpath_->set_pool(pool_);
  border_->set_pool(pool_);
  ixp_->set_pool(pool_);
  // All-null bundles when telemetry is off, so this is unconditional.
  aspath_->set_obs(obs_.monitors[technique_index(Technique::kBgpAsPath)]);
  community_->set_obs(
      obs_.monitors[technique_index(Technique::kBgpCommunity)]);
  burst_->set_obs(obs_.monitors[technique_index(Technique::kBgpBurst)]);
  subpath_->set_obs(obs_.monitors[technique_index(Technique::kTraceSubpath)]);
  border_->set_obs(obs_.monitors[technique_index(Technique::kTraceBorder)]);
  ixp_->set_obs(obs_.monitors[technique_index(Technique::kColocation)]);
  // A null tracker leaves every consult site on its single-branch fast
  // path; the counters are the per-technique suppression tallies.
  aspath_->set_feed_health(
      health_,
      obs_.dropped_unhealthy_feed[technique_index(Technique::kBgpAsPath)]);
  community_->set_feed_health(
      health_,
      obs_.dropped_unhealthy_feed[technique_index(Technique::kBgpCommunity)]);
  burst_->set_feed_health(
      health_,
      obs_.dropped_unhealthy_feed[technique_index(Technique::kBgpBurst)]);
  subpath_->set_feed_health(
      health_,
      obs_.dropped_unhealthy_feed[technique_index(Technique::kTraceSubpath)]);
  border_->set_feed_health(
      health_,
      obs_.dropped_unhealthy_feed[technique_index(Technique::kTraceBorder)]);
  ixp_->set_feed_health(
      health_,
      obs_.dropped_unhealthy_feed[technique_index(Technique::kColocation)]);
}

StalenessEngine::StalenessEngine(const EngineParams& params,
                                 tracemap::ProcessingContext& processing,
                                 const EngineSharedState& shared)
    : params_(normalized(params)),
      clock_(params.t0, params.window_seconds),
      processing_(processing),
      rng_(Rng(params.seed).fork(0xE9619E)) {
  assert(shared.context != nullptr && shared.index != nullptr &&
         shared.calibration != nullptr && shared.reputation != nullptr &&
         shared.subpath != nullptr && shared.border != nullptr &&
         shared.ixp != nullptr);
  pool_ = shared.pool;
  context_ = shared.context;
  index_ = shared.index;
  calibration_ = shared.calibration;
  reputation_ = shared.reputation;
  subpath_ = shared.subpath;
  border_ = shared.border;
  ixp_ = shared.ixp;
  health_ = shared.health;  // may be null: health tracking off

  if (shared.obs != nullptr) obs_ = *shared.obs;

  aspath_ = std::make_unique<AsPathMonitor>(*context_);
  community_ = std::make_unique<CommunityMonitor>(*context_, *reputation_);
  burst_ = std::make_unique<BurstMonitor>(*context_);
  aspath_->set_pool(pool_);
  community_->set_pool(pool_);
  burst_->set_pool(pool_);
  // Shards share the facade's per-technique instruments (atomic updates).
  aspath_->set_obs(obs_.monitors[technique_index(Technique::kBgpAsPath)]);
  community_->set_obs(
      obs_.monitors[technique_index(Technique::kBgpCommunity)]);
  burst_->set_obs(obs_.monitors[technique_index(Technique::kBgpBurst)]);
  // The facade's tracker is read-only here (transitions happen before the
  // shards fan out), so concurrent shard closes can consult it safely.
  aspath_->set_feed_health(
      health_,
      obs_.dropped_unhealthy_feed[technique_index(Technique::kBgpAsPath)]);
  community_->set_feed_health(
      health_,
      obs_.dropped_unhealthy_feed[technique_index(Technique::kBgpCommunity)]);
  burst_->set_feed_health(
      health_,
      obs_.dropped_unhealthy_feed[technique_index(Technique::kBgpBurst)]);
}

Monitor* StalenessEngine::monitor_for(Technique technique) {
  switch (technique) {
    case Technique::kBgpAsPath: return aspath_.get();
    case Technique::kBgpCommunity: return community_.get();
    case Technique::kBgpBurst: return burst_.get();
    case Technique::kColocation: return ixp_;
    case Technique::kTraceSubpath: return subpath_;
    case Technique::kTraceBorder: return border_;
  }
  return nullptr;
}

const Monitor* StalenessEngine::monitor_for(Technique technique) const {
  return const_cast<StalenessEngine*>(this)->monitor_for(technique);
}

tr::Freshness StalenessEngine::initial_freshness(
    const tr::PairKey& pair, const CorpusView& view) const {
  // Fresh only when every border of the traceroute is monitored by at
  // least one potential signal; otherwise its state is unknowable (§6.2).
  const auto& relations = index_->relations_of(pair);
  for (std::size_t b = 0; b < view.processed.borders.size(); ++b) {
    bool covered = false;
    for (const auto& relation : relations) {
      if (relation.border_index == b || relation.border_index == kWholePath) {
        covered = true;
        break;
      }
    }
    if (!covered) return tr::Freshness::kUnknown;
  }
  return relations.empty() ? tr::Freshness::kUnknown : tr::Freshness::kFresh;
}

void StalenessEngine::watch(const tr::Probe& probe,
                            const tr::Traceroute& trace) {
  tr::PairKey key{trace.probe, trace.dst_ip};
  PairState state;
  state.view.key = key;
  state.view.probe_as = probe.as;
  state.view.probe_city = probe.city;
  state.view.window = clock_.index_of(trace.time);
  state.view.processed = processing_.ingest(trace);
  state.watched_window = state.view.window;

  aspath_->watch(state.view, *index_);
  community_->watch(state.view, *index_);
  burst_->watch(state.view, *index_);
  subpath_->watch(state.view, *index_);
  border_->watch(state.view, *index_);
  ixp_->watch(state.view, *index_);

  state.freshness = initial_freshness(key, state.view);
  corpus_[key] = std::move(state);
}

void StalenessEngine::on_bgp_record(const bgp::BgpRecord& record) {
  // Feed-boundary delivery tally (standalone mode only; the facade counts
  // on its own tracker before records reach the shards).
  if (owned_ != nullptr && owned_->health != nullptr) {
    owned_->health->count_bgp(record.vp, record.collector.id(),
                              clock_.index_of(record.time));
  }
  bgp::BgpRecord& stored = pending_records_.emplace_back(record);
  // Stamp the table-canonical path at the serial feed boundary (standalone
  // mode; the facade stamps at its own boundary) so the epoch-table absorb
  // task is interner-read-only on the pool thread.
  if (owned_ != nullptr) {
    stored.canonical_path = owned_->feed_canon.canonical(stored.as_path.id());
  }
}

void StalenessEngine::on_public_trace(const tr::Traceroute& trace) {
  std::int64_t window = clock_.index_of(trace.time);
  if (owned_ != nullptr && owned_->health != nullptr) {
    owned_->health->count_trace(trace.probe, window);
  }
  tracemap::ProcessedTrace processed = processing_.ingest(trace);
  subpath_->on_public_trace(processed, window);
  border_->on_public_trace(processed, window);
  ixp_->on_public_trace(processed, window);
}

void StalenessEngine::register_signals(
    std::vector<StalenessSignal>& out, std::vector<StalenessSignal>&& batch) {
  // Canonical merge order: each monitor's shard buffers already concatenate
  // in a deterministic work-list order, and the batch is additionally
  // ordered by (window, PotentialId). This ordering — not scheduling luck —
  // is the determinism contract: the signal stream is identical whatever
  // params_.threads is (DESIGN.md, "Runtime & determinism").
  std::stable_sort(batch.begin(), batch.end(),
                   [](const StalenessSignal& a, const StalenessSignal& b) {
                     return a.window != b.window ? a.window < b.window
                                                 : a.potential < b.potential;
                   });
  out.reserve(out.size() + batch.size());
  for (StalenessSignal& signal : batch) {
    auto it = corpus_.find(signal.pair);
    if (it == corpus_.end()) {
      obs::inc(obs_.signals_dropped_refreshed);
      continue;  // pair refreshed mid-window
    }
    auto fired = last_fired_.find(signal.potential);
    if (fired != last_fired_.end() &&
        signal.window - fired->second < params_.signal_cooldown_windows) {
      obs::inc(obs_.signals_suppressed_cooldown);
      continue;  // persistent change already reported recently
    }
    last_fired_[signal.potential] = signal.window;
    obs::inc(obs_.signals_emitted[technique_index(signal.technique)]);
    PairState& state = it->second;
    if (state.freshness != tr::Freshness::kStale) {
      state.freshness = tr::Freshness::kStale;
    }
    ActiveSignal active;
    active.potential = signal.potential;
    active.technique = signal.technique;
    active.meta = signal.meta;
    active.pair = signal.pair;
    active.community = signal.community;
    state.active[signal.potential] = std::move(active);
    out.push_back(std::move(signal));
  }
}

void StalenessEngine::mark_stale(const StalenessSignal& signal) {
  auto it = corpus_.find(signal.pair);
  if (it == corpus_.end()) return;
  PairState& state = it->second;
  state.freshness = tr::Freshness::kStale;
  ActiveSignal active;
  active.potential = signal.potential;
  active.technique = signal.technique;
  active.meta = signal.meta;
  active.pair = signal.pair;
  active.community = signal.community;
  state.active[signal.potential] = std::move(active);
}

void StalenessEngine::dispatch_window_records(
    const DispatchedBatch& records, std::int64_t window) {
  for (const DispatchedRecord& dispatched : records) {
    aspath_->on_record(dispatched, window);
    community_->on_record(dispatched, window);
    burst_->on_record(dispatched, window);
  }
}

void StalenessEngine::collect_bgp_close(std::vector<StalenessSignal>& into,
                                        std::int64_t window,
                                        TimePoint window_end) {
  auto append = [&into](std::vector<StalenessSignal>&& batch) {
    into.insert(into.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  };
  append(aspath_->close_window(window, window_end));
  append(community_->close_window(window, window_end));
  append(burst_->close_window(window, window_end));
}

void StalenessEngine::close_one_window(std::int64_t window,
                                       std::vector<StalenessSignal>& out) {
  assert(owned_ != nullptr && "shard-mode engines are closed by the facade");
  obs::ScopedSpan close_span(obs_.window_close_us);
  TimePoint end = clock_.window_end(window);
  // Feed-health transitions happen before any monitor consults the tracker,
  // so every gate in this close sees the state as of this window's deliveries.
  if (owned_->health != nullptr) owned_->health->close_window(window);
  // Dispatch this window's BGP records to the monitors against the
  // published start-of-window epoch, then absorb them into the shadow.
  std::size_t cut = cut_window_prefix(pending_records_, clock_, window);
  {
    obs::ScopedSpan dispatch_span(obs_.dispatch_us);
    obs::TraceSpan trace_span(params_.tracer, "dispatch", "close", window,
                              "records", static_cast<std::int64_t>(cut));
    DispatchedBatch dispatched =
        dispatch_against_table(pending_records_, cut, owned_->table.read(),
                               collapse_canon_, close_arena_);
    dispatch_window_records(dispatched, window);
  }

  // The absorb writer fills the epoch table's shadow buffer; monitors keep
  // reading the published epoch throughout. Pipelined, it overlaps every
  // monitor close below; serial, it runs inline at the exact point the
  // pre-epoch schedule absorbed (between the BGP and trace closes). Either
  // way the flip is what makes the new state visible, and it only happens
  // once the writer and all readers are joined — so the signal stream is
  // identical across both schedules.
  runtime::TaskGroup absorb_group(pool_);
  auto absorb_batch = [this, cut, window] {
    obs::ScopedSpan absorb_span(obs_.absorb_us);
    obs::TraceSpan trace_span(params_.tracer, "absorb", "close", window,
                              "records", static_cast<std::int64_t>(cut));
    owned_->table.absorb(pending_records_, cut);
  };
  if (params_.pipeline_absorb) absorb_group.spawn(absorb_batch);

  register_signals(out, aspath_->close_window(window, end));
  register_signals(out, community_->close_window(window, end));
  register_signals(out, burst_->close_window(window, end));

  if (!params_.pipeline_absorb) {
    absorb_batch();
    owned_->table.flip();
    obs::inc(obs_.epoch_flips);
  }

  register_signals(out, subpath_->close_window(window, end));
  register_signals(out, border_->close_window(window, end));
  register_signals(out, ixp_->close_window(window, end));

  if (params_.pipeline_absorb) {
    {
      obs::ScopedSpan wait_span(obs_.absorb_wait_us);
      obs::TraceSpan trace_span(params_.tracer, "absorb_wait", "close",
                                window);
      absorb_group.wait();
    }
    owned_->table.flip();
    obs::inc(obs_.epoch_flips);
  }
  obs::inc(obs_.bgp_records_absorbed, static_cast<std::int64_t>(cut));
  pending_records_.erase(pending_records_.begin(),
                         pending_records_.begin() +
                             static_cast<std::ptrdiff_t>(cut));
  // Everything arena-allocated this close (the dispatch batch) is dead;
  // recycle the slabs wholesale for the next window.
  close_arena_.reset();

  if (params_.revocation_check_interval > 0 &&
      window % params_.revocation_check_interval ==
          params_.revocation_check_interval - 1) {
    run_revocation(window);
  }
}

void StalenessEngine::run_revocation(std::int64_t window) {
  (void)window;
  for (auto& [key, state] : corpus_) {
    if (state.freshness != tr::Freshness::kStale || state.active.empty()) {
      continue;
    }
    // §4.3.2: revocation applies when every AS-path, community, subpath,
    // and border signal has returned to its issue-time state. Burst and
    // colocation signals carry no revertible state; they neither revoke
    // nor block (a pair flagged *only* by them stays flagged).
    bool all_reverted = true;
    int revocable = 0;
    for (const auto& [potential, active] : state.active) {
      if (active.technique == Technique::kBgpBurst ||
          active.technique == Technique::kColocation) {
        continue;
      }
      ++revocable;
      const Monitor* monitor = monitor_for(active.technique);
      if (monitor == nullptr || !monitor->reverted(potential)) {
        all_reverted = false;
        break;
      }
    }
    if (revocable == 0) all_reverted = false;
    if (all_reverted) {
      state.active.clear();
      state.freshness = initial_freshness(key, state.view);
      obs::inc(obs_.revocations);
    }
  }
}

std::vector<StalenessSignal> StalenessEngine::advance_to(TimePoint t) {
  std::vector<StalenessSignal> out;
  std::int64_t last = clock_.index_of(t) - 1;  // windows fully ended by t
  if (clock_.window_end(last + 1) == t) last += 1;
  while (next_window_ <= last) {
    close_one_window(next_window_, out);
    ++next_window_;
  }
  return out;
}

void StalenessEngine::collect_refresh_candidates(
    std::map<tr::PairKey, RefreshScheduler::PairState>& into) const {
  for (const auto& [key, state] : corpus_) {
    if (state.active.empty()) continue;
    RefreshScheduler::PairState ps;
    for (const auto& [potential, active] : state.active) {
      ps.firing.push_back(active);
    }
    for (const auto& relation : index_->relations_of(key)) {
      if (!state.active.contains(relation.id)) {
        ps.silent.push_back(relation.id);
      }
    }
    into.emplace(key, std::move(ps));
  }
}

std::vector<tr::PairKey> StalenessEngine::plan_refreshes(int budget) {
  std::map<tr::PairKey, RefreshScheduler::PairState> pairs;
  collect_refresh_candidates(pairs);
  return RefreshScheduler::plan(pairs, *calibration_, budget, rng_);
}

bool StalenessEngine::portion_changed(const tracemap::ProcessedTrace& before,
                                      const tracemap::ProcessedTrace& after,
                                      std::size_t border_index) const {
  if (border_index == kWholePath) return before.as_path != after.as_path;
  if (border_index >= before.borders.size()) return false;
  const tracemap::BorderView& old_border = before.borders[border_index];
  bool same_as_pair_seen = false;
  for (const tracemap::BorderView& candidate : after.borders) {
    if (candidate.near_as == old_border.near_as &&
        candidate.far_as == old_border.far_as) {
      if (candidate.border_router == old_border.border_router) {
        return false;  // the portion survives in the new measurement
      }
      same_as_pair_seen = true;
    }
  }
  // The same AS pair crossed through a different router: a border change.
  if (same_as_pair_seen) return true;
  // The border is absent entirely. With a changed AS path that is a real
  // change; with the same AS path it is almost always an unresponsive-hop
  // artifact, and wildcards cannot indicate a change (Appendix A).
  return before.as_path != after.as_path;
}

RefreshOutcome StalenessEngine::apply_refresh(const tr::Probe& probe,
                                              const tr::Traceroute& fresh) {
  tr::PairKey key{fresh.probe, fresh.dst_ip};
  RefreshOutcome outcome;
  outcome.pair = key;

  tracemap::ProcessedTrace new_processed = processing_.ingest(fresh);
  auto it = corpus_.find(key);
  if (it != corpus_.end()) {
    PairState& state = it->second;
    outcome.was_flagged_stale = state.freshness == tr::Freshness::kStale;
    outcome.change =
        tracemap::classify_change(state.view.processed, new_processed);

    // Grade every related potential (§4.3.1) — unless the pair's probe is
    // quarantined, in which case the "fresh" measurement itself is suspect
    // and grading against it would poison the TPR/TNR tallies. The refresh
    // still replaces the corpus entry; only the grades are frozen.
    std::int64_t window = clock_.index_of(fresh.time);
    if (health_ != nullptr && health_->trace_quarantined(key.probe)) {
      obs::inc(obs_.calibration_frozen);
    } else {
      for (const auto& relation : index_->relations_of(key)) {
        bool fired = state.active.contains(relation.id);
        bool changed = portion_changed(state.view.processed, new_processed,
                                       relation.border_index);
        Outcome graded =
            fired
                ? (changed ? Outcome::kTruePositive : Outcome::kFalsePositive)
                : (changed ? Outcome::kFalseNegative
                           : Outcome::kTrueNegative);
        calibration_->record(key.probe, relation.id, window, graded);
      }
    }
    // Community reputation: grade the fired community signals.
    for (const auto& [potential, active] : state.active) {
      if (active.technique != Technique::kBgpCommunity) continue;
      bool changed = true;
      for (const auto& relation : index_->relations_of(key)) {
        if (relation.id == potential) {
          changed = portion_changed(state.view.processed, new_processed,
                                    relation.border_index);
          break;
        }
      }
      if (active.community.raw() != 0) {
        reputation_->record_outcome(active.community, key, changed);
      }
    }

    // Unregister the old measurement everywhere.
    aspath_->unwatch(key);
    community_->unwatch(key);
    burst_->unwatch(key);
    subpath_->unwatch(key);
    border_->unwatch(key);
    ixp_->unwatch(key);
    index_->unrelate_pair(key);
    corpus_.erase(it);
  }

  // Register the fresh measurement. `probe` and `fresh` stay valid through
  // watch() (it only reads them), so no defensive copies.
  watch(probe, fresh);
  obs::inc(obs_.refreshes);
  if (outcome.change != tracemap::ChangeKind::kNone) {
    obs::inc(obs_.refreshes_changed);
  }
  return outcome;
}

void StalenessEngine::save_shard_state(store::Encoder& enc) const {
  enc.str(rng_.save_state());
  enc.u64(pending_records_.size());
  for (const bgp::BgpRecord& record : pending_records_) {
    bgp::put_record(enc, record);
  }
  enc.u64(corpus_.size());
  for (const auto& [key, state] : corpus_) {
    put_pair(enc, key);
    enc.u32(state.view.probe_as);
    enc.u16(state.view.probe_city);
    enc.i64(state.view.window);
    tracemap::put_processed(enc, state.view.processed);
    enc.u8(static_cast<std::uint8_t>(state.freshness));
    enc.i64(state.watched_window);
    enc.u64(state.active.size());
    for (const auto& [potential, active] : state.active) {
      enc.u64(potential);
      put_active(enc, active);
    }
  }
  enc.u64(last_fired_.size());
  for (const auto& [potential, window] : last_fired_) {
    enc.u64(potential);
    enc.i64(window);
  }
  enc.i64(next_window_);
  aspath_->save_state(enc);
  community_->save_state(enc);
  burst_->save_state(enc);
}

void StalenessEngine::load_shard_state(store::Decoder& dec) {
  rng_.load_state(std::string(dec.str()));
  pending_records_.clear();
  std::uint64_t record_count = dec.u64();
  pending_records_.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    pending_records_.push_back(bgp::get_record(dec));
  }
  corpus_.clear();
  std::uint64_t pair_count = dec.u64();
  for (std::uint64_t i = 0; i < pair_count; ++i) {
    tr::PairKey key = get_pair(dec);
    PairState state;
    state.view.key = key;
    state.view.probe_as = dec.u32();
    state.view.probe_city = dec.u16();
    state.view.window = dec.i64();
    state.view.processed = tracemap::get_processed(dec);
    state.freshness = static_cast<tr::Freshness>(dec.u8());
    state.watched_window = dec.i64();
    std::uint64_t active_count = dec.u64();
    for (std::uint64_t j = 0; j < active_count; ++j) {
      PotentialId potential = dec.u64();
      state.active[potential] = get_active(dec);
    }
    corpus_[key] = std::move(state);
  }
  last_fired_.clear();
  std::uint64_t fired_count = dec.u64();
  for (std::uint64_t i = 0; i < fired_count; ++i) {
    PotentialId potential = dec.u64();
    last_fired_[potential] = dec.i64();
  }
  next_window_ = dec.i64();
  aspath_->load_state(dec);
  community_->load_state(dec);
  burst_->load_state(dec);
}

void StalenessEngine::save_global_state(store::Encoder& enc) const {
  assert(owned_ != nullptr && "global state belongs to standalone engines");
  owned_->table.save_state(enc);
  owned_->index.save_state(enc);
  owned_->calibration.save_state(enc);
  owned_->reputation.save_state(enc);
  owned_->subpath->save_state(enc);
  owned_->border->save_state(enc);
  owned_->ixp->save_state(enc);
  enc.boolean(owned_->health != nullptr);
  if (owned_->health != nullptr) owned_->health->save_state(enc);
}

void StalenessEngine::load_global_state(store::Decoder& dec) {
  assert(owned_ != nullptr && "global state belongs to standalone engines");
  owned_->table.load_state(dec);
  owned_->index.load_state(dec);
  owned_->calibration.load_state(dec);
  owned_->reputation.load_state(dec);
  owned_->subpath->load_state(dec);
  owned_->border->load_state(dec);
  owned_->ixp->load_state(dec, &owned_->index);
  bool has_health = dec.boolean();
  if (has_health != (owned_->health != nullptr)) {
    throw store::StoreError(
        store::StoreError::Kind::kCorrupt,
        "snapshot feed-health state does not match engine configuration");
  }
  if (owned_->health != nullptr) owned_->health->load_state(dec);
}

tr::Freshness StalenessEngine::freshness(const tr::PairKey& pair) const {
  auto it = corpus_.find(pair);
  return it == corpus_.end() ? tr::Freshness::kUnknown
                             : it->second.freshness;
}

std::vector<tr::PairKey> StalenessEngine::stale_pairs() const {
  std::vector<tr::PairKey> out;
  for (const auto& [key, state] : corpus_) {
    if (state.freshness == tr::Freshness::kStale) out.push_back(key);
  }
  return out;
}

void StalenessEngine::collect_pair_states(
    std::vector<PairStateView>& into) const {
  for (const auto& [key, state] : corpus_) {
    into.push_back(PairStateView{
        key, state.freshness, state.watched_window,
        static_cast<std::uint32_t>(state.active.size())});
  }
}

const tracemap::ProcessedTrace* StalenessEngine::processed_of(
    const tr::PairKey& pair) const {
  auto it = corpus_.find(pair);
  return it == corpus_.end() ? nullptr : &it->second.view.processed;
}

}  // namespace rrr::signals
