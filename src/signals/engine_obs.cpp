#include "signals/engine_obs.h"

namespace rrr::signals {

const char* technique_label(Technique technique) {
  switch (technique) {
    case Technique::kBgpAsPath: return "aspath";
    case Technique::kBgpCommunity: return "community";
    case Technique::kBgpBurst: return "burst";
    case Technique::kColocation: return "colocation";
    case Technique::kTraceSubpath: return "subpath";
    case Technique::kTraceBorder: return "border";
  }
  return "?";
}

EngineObs EngineObs::create(obs::MetricsRegistry& registry) {
  EngineObs out;
  constexpr Technique kAll[] = {
      Technique::kBgpAsPath,    Technique::kBgpCommunity,
      Technique::kBgpBurst,     Technique::kColocation,
      Technique::kTraceSubpath, Technique::kTraceBorder,
  };
  for (Technique t : kAll) {
    obs::LabelList labels{{"technique", technique_label(t)}};
    std::size_t i = technique_index(t);
    out.signals_emitted[i] = &registry.counter(
        "rrr_signals_emitted_total", labels, obs::Domain::kSemantic,
        "Staleness signals registered (post cooldown/refresh filters)");
    out.potentials_opened[i] = &registry.counter(
        "rrr_potentials_opened_total", labels, obs::Domain::kSemantic,
        "Potential signals created by watch()/refresh registration");
    out.dropped_unhealthy_feed[i] = &registry.counter(
        "rrr_signals_dropped_unhealthy_feed_total", labels,
        obs::Domain::kSemantic,
        "Signals suppressed because their feed streams were quarantined");
    out.monitors[i].close_us = &registry.histogram(
        "rrr_monitor_close_us", obs::duration_buckets_us(), labels,
        obs::Domain::kRuntime, "Wall microseconds per monitor close_window");
    out.monitors[i].close_items = &registry.histogram(
        "rrr_monitor_close_items", obs::size_buckets(), labels,
        obs::Domain::kRuntime, "Work-list size drained per close_window");
  }
  out.signals_suppressed_cooldown = &registry.counter(
      "rrr_signals_suppressed_cooldown_total", {}, obs::Domain::kSemantic,
      "Raw signals suppressed by the per-potential cooldown");
  out.signals_dropped_refreshed = &registry.counter(
      "rrr_signals_dropped_refreshed_total", {}, obs::Domain::kSemantic,
      "Raw signals dropped because their pair was refreshed mid-window");
  out.calibration_frozen = &registry.counter(
      "rrr_calibration_frozen_total", {}, obs::Domain::kSemantic,
      "Refresh gradings skipped while the pair's probe was quarantined");
  out.revocations =
      &registry.counter("rrr_revocations_total", {}, obs::Domain::kSemantic,
                        "Stale flags revoked by the section-4.3.2 sweep");
  out.refreshes =
      &registry.counter("rrr_refreshes_total", {}, obs::Domain::kSemantic,
                        "Refresh measurements applied");
  out.refreshes_changed = &registry.counter(
      "rrr_refreshes_changed_total", {}, obs::Domain::kSemantic,
      "Refreshes whose new measurement differed from the corpus one");
  out.bgp_records_absorbed = &registry.counter(
      "rrr_bgp_records_absorbed_total", {}, obs::Domain::kSemantic,
      "BGP update records absorbed into the standing table");
  out.window_close_us = &registry.histogram(
      "rrr_engine_window_close_us", obs::duration_buckets_us(), {},
      obs::Domain::kRuntime, "Wall microseconds per closed window");
  out.dispatch_us = &registry.histogram(
      "rrr_engine_dispatch_us", obs::duration_buckets_us(), {},
      obs::Domain::kRuntime,
      "Wall microseconds normalizing+dispatching a window's BGP records");
  out.absorb_us = &registry.histogram(
      "rrr_engine_absorb_us", obs::duration_buckets_us(), {},
      obs::Domain::kRuntime,
      "Wall microseconds absorbing a window's records into the table");
  out.epoch_flips = &registry.counter(
      "rrr_epoch_flips_total", {}, obs::Domain::kRuntime,
      "Epoch-table pointer flips publishing an absorbed window");
  out.absorb_wait_us = &registry.histogram(
      "rrr_engine_absorb_wait_us", obs::duration_buckets_us(), {},
      obs::Domain::kRuntime,
      "Wall microseconds stalled joining the overlapped absorb writer");
  out.merge_us = &registry.histogram(
      "rrr_engine_merge_us", obs::duration_buckets_us(), {},
      obs::Domain::kRuntime,
      "Wall microseconds merging shard batches into canonical order");
  out.register_us = &registry.histogram(
      "rrr_engine_register_us", obs::duration_buckets_us(), {},
      obs::Domain::kRuntime,
      "Wall microseconds registering the merged batch (serial section)");
  return out;
}

}  // namespace rrr::signals
