#include "signals/burst_monitor.h"

#include <algorithm>

#include "runtime/parallel.h"
#include "signals/feed_health.h"

namespace rrr::signals {
namespace {

// Whether `path` ends with exactly `suffix` (same origin-side hops).
bool shares_suffix(const AsPath& path, const AsPath& suffix) {
  if (suffix.empty() || path.size() < suffix.size()) return false;
  return std::equal(suffix.begin(), suffix.end(),
                    path.end() - static_cast<std::ptrdiff_t>(suffix.size()));
}

bool vp_contains(const std::vector<bgp::VpId>& vps, bgp::VpId vp) {
  return std::binary_search(vps.begin(), vps.end(), vp);
}

// Sorted-unique insert, preserving the old std::set semantics.
void vp_insert(std::vector<bgp::VpId>& vps, bgp::VpId vp) {
  auto it = std::lower_bound(vps.begin(), vps.end(), vp);
  if (it == vps.end() || *it != vp) vps.insert(it, vp);
}

}  // namespace

void BurstMonitor::watch(const CorpusView& view, PotentialIndex& index) {
  const tracemap::ProcessedTrace& pt = view.processed;
  if (pt.as_path.empty()) return;

  // Gather each VP's standing path toward d once. The resolved references
  // are stable: interned entries never move.
  std::vector<std::pair<bgp::VpId, const AsPath*>> vp_paths;
  for (const bgp::VantagePoint& vp : *context_.vps) {
    const bgp::VpRoute* route = context_.table->route(vp.id, view.key.dst);
    if (route != nullptr && !route->path.empty()) {
      vp_paths.emplace_back(vp.id, &route->path.view());
    }
  }

  for (std::size_t j = 0; j < pt.as_path.size(); ++j) {
    AsPath suffix(pt.as_path.begin() + static_cast<std::ptrdiff_t>(j),
                  pt.as_path.end());
    auto entry = std::make_unique<Entry>(Entry{
        .id = kNoPotential,
        .pair = view.key,
        .suffix = suffix,
        .border_index = kWholePath,
        .v0 = {},
        .series = detect::LazySeries(
            std::make_unique<detect::BitmapDetector>(),
            detect::GapPolicy::kZero),
        .window_dups = {},
        .extras = {},
        .vp_extras = {},
        .dirty = false,
    });
    for (auto& [vp, path] : vp_paths) {
      if (shares_suffix(*path, suffix)) vp_insert(entry->v0, vp);
    }
    if (entry->v0.size() < 2) continue;  // need corroboration across VPs
    entry->v0.shrink_to_fit();

    // Extra ASes: on >= 2 V0 paths but not on τ.
    std::map<Asn, std::set<bgp::VpId>> outside;
    for (auto& [vp, path] : vp_paths) {
      if (!vp_contains(entry->v0, vp)) continue;
      for (Asn asn : *path) {
        if (!contains(pt.as_path, asn)) outside[asn].insert(vp);
      }
    }
    for (auto& [asn, vps_on] : outside) {
      if (vps_on.size() < 2) continue;
      ExtraSeries extra{
          .as = asn,
          .vps = {},
          .series = detect::LazySeries(
              std::make_unique<detect::BitmapDetector>(),
              detect::GapPolicy::kZero),
          .window_dups = {},
          .outlier_this_window = false,
      };
      // W^{k,d}: VPs traversing a_k toward d but NOT the whole suffix.
      for (auto& [vp, path] : vp_paths) {
        if (contains(*path, asn) && !shares_suffix(*path, suffix)) {
          vp_insert(extra.vps, vp);
        }
      }
      if (extra.vps.empty()) continue;
      extra.vps.shrink_to_fit();
      std::size_t extra_index = entry->extras.size();
      entry->extras.push_back(std::move(extra));
      for (bgp::VpId vp : vps_on) {
        entry->vp_extras[vp].push_back(extra_index);
      }
    }

    for (std::size_t b = 0; b < pt.borders.size(); ++b) {
      if (pt.borders[b].far_as == pt.as_path[j]) {
        entry->border_index = b;
        break;
      }
    }
    entry->id = index.create(Technique::kBgpBurst);
    Entry* raw = entry.get();
    // Seed with a warm zero baseline (duplicates are absent most windows),
    // ending the window *before* the watch: seeding at view.window itself
    // would make the series refuse its first feed at the close of the watch
    // window, silently swallowing a duplicate burst that arrives right
    // after the watch — exactly what a session-reset storm aligned with a
    // corpus refresh produces.
    raw->series.seed(view.window - 1, 0.0, 24);
    for (ExtraSeries& extra : raw->extras) {
      extra.series.seed(view.window - 1, 0.0, 24);
    }
    index.relate(raw->id, view.key, raw->border_index);
    by_pair_[view.key].push_back(raw);
    by_dst_[view.key.dst].push_back(raw);
    dst_index_.add(view.key.dst);
    entries_.emplace(raw->id, std::move(entry));
  }
}

void BurstMonitor::unwatch(const tr::PairKey& pair) {
  auto it = by_pair_.find(pair);
  if (it == by_pair_.end()) return;
  for (Entry* entry : it->second) {
    std::erase(by_dst_[pair.dst], entry);
    dst_index_.remove(pair.dst);
    std::erase(dirty_, entry);
    entries_.erase(entry->id);
  }
  by_pair_.erase(it);
}

void BurstMonitor::on_record(const DispatchedRecord& record,
                             std::int64_t window) {
  (void)window;
  if (!record.duplicate) return;
  const bgp::BgpRecord& rec = *record.record;
  dst_index_.for_covered(rec.prefix, [&](Ipv4 dst) {
    auto dit = by_dst_.find(dst);
    if (dit == by_dst_.end()) return;
    for (Entry* entry : dit->second) {
      bool touched = false;
      if (vp_contains(entry->v0, rec.vp)) {
        vp_insert(entry->window_dups, rec.vp);
        touched = true;
      }
      for (ExtraSeries& extra : entry->extras) {
        if (vp_contains(extra.vps, rec.vp)) {
          vp_insert(extra.window_dups, rec.vp);
          touched = true;
        }
      }
      if (touched && !entry->dirty) {
        entry->dirty = true;
        dirty_.push_back(entry);
      }
    }
  });
}

std::vector<StalenessSignal> BurstMonitor::close_window(
    std::int64_t window, TimePoint window_end) {
  // Each dirty entry owns its series and per-window VP sets exclusively, so
  // evaluation fans out over the pool; per-entry buffers concatenate in
  // work-list order, keeping the output identical to the serial loop.
  obs::ScopedSpan span(mobs_.close_us);
  std::vector<Entry*> work;
  work.swap(dirty_);
  obs::observe(mobs_.close_items, static_cast<double>(work.size()));
  auto evaluate = [&](Entry* entry) {
    std::vector<StalenessSignal> out;
    entry->dirty = false;
    // Extras first: their contemporaneous-outlier status gates the signal.
    for (ExtraSeries& extra : entry->extras) {
      if (extra.window_dups.empty()) {
        // Zero windows are reconstructed lazily by the gap policy.
        extra.outlier_this_window = false;
      } else {
        double u_prime = static_cast<double>(extra.window_dups.size());
        extra.outlier_this_window =
            extra.series.feed(window, u_prime).outlier;
      }
      extra.window_dups.clear();
    }

    double u = static_cast<double>(entry->window_dups.size());
    detect::Judgement judgement = entry->series.feed(window, u);
    // §4.1.4 rests on *contemporaneous* duplicates from multiple peers: a
    // single parroting VP is never a burst, whatever the detector says,
    // and with many watching VPs a couple of stragglers is routine noise.
    std::size_t quorum = std::max<std::size_t>(
        3, static_cast<std::size_t>(0.4 * double(entry->v0.size()) + 0.5));
    if (entry->window_dups.size() < quorum) judgement.outlier = false;
    if (judgement.outlier) {
      // Figure 4's disambiguation: at least one bursting VP must traverse
      // no extra AS that is simultaneously bursting.
      bool independent_vp = false;
      for (bgp::VpId vp : entry->window_dups) {
        bool blamed_elsewhere = false;
        auto eit = entry->vp_extras.find(vp);
        if (eit != entry->vp_extras.end()) {
          for (std::size_t idx : eit->second) {
            if (entry->extras[idx].outlier_this_window) {
              blamed_elsewhere = true;
              break;
            }
          }
        }
        if (!blamed_elsewhere) {
          independent_vp = true;
          break;
        }
      }
      // Session resets replay a stream's table as duplicates — exactly the
      // burst shape §4.1.4 looks for. A burst must reach quorum on healthy
      // streams alone; quarantined (dead/recovering) VPs don't corroborate.
      if (independent_vp && health_ != nullptr) {
        std::size_t healthy = 0;
        for (bgp::VpId vp : entry->window_dups) {
          if (!health_->bgp_quarantined(vp)) ++healthy;
        }
        if (healthy < quorum) {
          obs::inc(dropped_unhealthy_);
          independent_vp = false;
        }
      }
      if (independent_vp) {
        StalenessSignal signal;
        signal.technique = Technique::kBgpBurst;
        signal.potential = entry->id;
        signal.time = window_end;
        signal.window = window;
        signal.pair = entry->pair;
        signal.border_index = entry->border_index;
        signal.meta.as_overlap = static_cast<int>(entry->suffix.size());
        signal.meta.vp_count = static_cast<int>(entry->v0.size());
        signal.meta.deviation = judgement.score;
        out.push_back(std::move(signal));
      }
    }
    entry->window_dups.clear();
    return out;
  };

  std::vector<std::vector<StalenessSignal>> buffers =
      runtime::parallel_map(pool_, work, evaluate);
  std::vector<StalenessSignal> signals;
  for (std::vector<StalenessSignal>& buffer : buffers) {
    for (StalenessSignal& signal : buffer) {
      signals.push_back(std::move(signal));
    }
  }
  return signals;
}

void BurstMonitor::save_state(store::Encoder& enc) const {
  auto put_vps = [&enc](const std::vector<bgp::VpId>& vps) {
    enc.u64(vps.size());
    for (bgp::VpId vp : vps) enc.u32(vp);
  };
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ordered.push_back(entry.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Entry* a, const Entry* b) { return a->id < b->id; });
  enc.u64(ordered.size());
  for (const Entry* entry : ordered) {
    enc.u64(entry->id);
    put_pair(enc, entry->pair);
    store::put(enc, entry->suffix);
    enc.u64(entry->border_index);
    put_vps(entry->v0);
    entry->series.save_state(enc);
    put_vps(entry->window_dups);
    enc.u64(entry->extras.size());
    for (const ExtraSeries& extra : entry->extras) {
      store::put(enc, extra.as);
      put_vps(extra.vps);
      extra.series.save_state(enc);
      put_vps(extra.window_dups);
      enc.boolean(extra.outlier_this_window);
    }
    enc.u64(entry->vp_extras.size());
    for (const auto& [vp, indices] : entry->vp_extras) {
      enc.u32(vp);
      enc.u64(indices.size());
      for (std::size_t index : indices) enc.u64(index);
    }
    enc.boolean(entry->dirty);
  }
  auto put_ids = [&enc](const std::vector<Entry*>& list) {
    enc.u64(list.size());
    for (const Entry* entry : list) enc.u64(entry->id);
  };
  enc.u64(by_pair_.size());
  for (const auto& [pair, list] : by_pair_) {
    put_pair(enc, pair);
    put_ids(list);
  }
  std::vector<Ipv4> dsts;
  dsts.reserve(by_dst_.size());
  for (const auto& [dst, list] : by_dst_) dsts.push_back(dst);
  std::sort(dsts.begin(), dsts.end());
  enc.u64(dsts.size());
  for (Ipv4 dst : dsts) {
    store::put(enc, dst);
    put_ids(by_dst_.at(dst));
  }
  put_ids(dirty_);
}

void BurstMonitor::load_state(store::Decoder& dec) {
  entries_.clear();
  by_pair_.clear();
  by_dst_.clear();
  dst_index_ = DstIndex();
  dirty_.clear();
  auto get_vps = [&dec]() {
    // The writer emits VPs in sorted order; keeping stream order preserves
    // the sorted-unique invariant the binary searches rely on.
    std::vector<bgp::VpId> vps;
    std::uint64_t n = dec.u64();
    vps.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) vps.push_back(dec.u32());
    return vps;
  };
  std::unordered_map<PotentialId, Entry*> by_id;
  std::uint64_t count = dec.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    PotentialId id = dec.u64();
    tr::PairKey pair = get_pair(dec);
    AsPath suffix = store::get_as_path(dec);
    std::uint64_t border_index = dec.u64();
    VpList v0 = get_vps();
    auto entry = std::make_unique<Entry>(Entry{
        .id = id,
        .pair = pair,
        .suffix = std::move(suffix),
        .border_index = border_index,
        .v0 = std::move(v0),
        .series = detect::LazySeries(std::make_unique<detect::BitmapDetector>(),
                                     detect::GapPolicy::kZero),
        .window_dups = {},
        .extras = {},
        .vp_extras = {},
        .dirty = false,
    });
    entry->series.load_state(dec);
    entry->window_dups = get_vps();
    std::uint64_t extra_count = dec.u64();
    entry->extras.reserve(extra_count);
    for (std::uint64_t j = 0; j < extra_count; ++j) {
      ExtraSeries extra{
          .as = store::get_asn(dec),
          .vps = get_vps(),
          .series = detect::LazySeries(
              std::make_unique<detect::BitmapDetector>(),
              detect::GapPolicy::kZero),
          .window_dups = {},
          .outlier_this_window = false,
      };
      extra.series.load_state(dec);
      extra.window_dups = get_vps();
      extra.outlier_this_window = dec.boolean();
      entry->extras.push_back(std::move(extra));
    }
    std::uint64_t vp_extra_count = dec.u64();
    for (std::uint64_t j = 0; j < vp_extra_count; ++j) {
      bgp::VpId vp = dec.u32();
      std::vector<std::size_t>& indices = entry->vp_extras[vp];
      std::uint64_t index_count = dec.u64();
      indices.reserve(index_count);
      for (std::uint64_t k = 0; k < index_count; ++k) {
        indices.push_back(dec.u64());
      }
    }
    entry->dirty = dec.boolean();
    by_id[entry->id] = entry.get();
    entries_.emplace(entry->id, std::move(entry));
  }
  auto get_ids = [&by_id, &dec]() {
    std::vector<Entry*> list;
    std::uint64_t n = dec.u64();
    list.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      list.push_back(by_id.at(dec.u64()));
    }
    return list;
  };
  std::uint64_t pair_count = dec.u64();
  for (std::uint64_t i = 0; i < pair_count; ++i) {
    tr::PairKey pair = get_pair(dec);
    by_pair_[pair] = get_ids();
  }
  std::uint64_t dst_count = dec.u64();
  for (std::uint64_t i = 0; i < dst_count; ++i) {
    Ipv4 dst = store::get_ipv4(dec);
    std::vector<Entry*> list = get_ids();
    for (std::size_t j = 0; j < list.size(); ++j) dst_index_.add(dst);
    by_dst_[dst] = std::move(list);
  }
  dirty_ = get_ids();
}

}  // namespace rrr::signals
