// AS relationship database (CAIDA-style) used by the IXP membership
// technique (§4.2.3) to decide whether a new IXP peering is likely to
// replace an existing next hop.
#pragma once

#include <map>
#include <utility>

#include "netbase/asn.h"
#include "topology/topology.h"

namespace rrr::signals {

enum class AsRel : std::uint8_t {
  kUnknown,
  kCustomer,  // first AS is a customer of the second
  kProvider,  // first AS is a provider of the second
  kPeer,
};

class AsRelDb {
 public:
  struct Info {
    AsRel rel = AsRel::kUnknown;
    bool via_ixp = false;  // public peering (over an IXP LAN)
  };

  void add(Asn a, Asn b, AsRel rel_a_to_b, bool via_ixp);

  // Relationship of `a` toward `b` (kUnknown when unrecorded).
  Info relation(Asn a, Asn b) const;

  // Derives the database from ground truth, as CAIDA's inference would from
  // public BGP data (it is near-complete for links visible in BGP).
  static AsRelDb from_topology(const topo::Topology& topology);

  std::size_t size() const { return rels_.size(); }

 private:
  std::map<std::pair<Asn, Asn>, Info> rels_;
};

}  // namespace rrr::signals
