// §4.2.1 — staleness signals from IP-level subpath overlap with public
// traceroutes.
//
// For every border-crossing IP segment of a corpus traceroute, the monitor
// tracks T_ratio: among recent public traceroutes that pass through the
// segment's first hop and later its last hop (regardless of destination),
// the fraction that follow the exact hop sequence. Window sizes adapt per
// segment (15 minutes to 24 hours) until 20 consecutive populated windows
// exist (§4.2.1's configuration rule); the modified z-score flags outliers,
// which become staleness prediction signals for every corpus traceroute
// subscribed to the segment. Segments are deduplicated by content, so one
// busy border feeds signals to the many corpus paths crossing it
// (Appendix C, Figure 14).
#pragma once

#include <map>
#include <unordered_map>

#include "detect/series.h"
#include "signals/monitor.h"

namespace rrr::runtime {
class ThreadPool;
}

namespace rrr::signals {

struct SubpathParams {
  // Hops of context kept around each border when carving segments.
  int flank_hops = 1;
  std::int64_t max_window_multiplier = 96;  // 96 x 15 min = 24 h
  std::int64_t base_window_seconds = kBaseWindowSeconds;
  // Aggregate windows with fewer public traceroutes than this are too thin
  // to report outliers from.
  std::int64_t min_intersect = 2;
  // Windows at least this thick may signal on a single drop-outlier;
  // thinner ones need two consecutive drops (binomial noise guard).
  std::int64_t single_shot_intersect = 5;
  detect::ZScoreParams zscore{.threshold = 3.5,
                               .min_history = 20,
                               .max_history = 96,
                               .drop_outliers_from_history = true,
                               .min_abs_deviation = 0.35};
};

class SubpathMonitor final : public TraceMonitor {
 public:
  explicit SubpathMonitor(const SubpathParams& params = {})
      : params_(params),
        prototype_(params.zscore) {}

  Technique technique() const override { return Technique::kTraceSubpath; }
  // Evaluates window closes across segments on `pool` (null = serial).
  void set_pool(runtime::ThreadPool* pool) { pool_ = pool; }
  void watch(const CorpusView& view, PotentialIndex& index) override;
  void unwatch(const tr::PairKey& pair) override;
  void on_public_trace(const tracemap::ProcessedTrace& trace,
                       std::int64_t window) override;
  std::vector<StalenessSignal> close_window(std::int64_t window,
                                            TimePoint window_end) override;
  bool reverted(PotentialId id) const override;

  std::size_t segment_count() const { return segments_.size(); }

  struct Stats {
    std::size_t segments = 0;
    std::size_t armed = 0;
    std::size_t dormant = 0;
    std::size_t subscribed = 0;  // segments with at least one subscriber
    double mean_multiplier = 0.0;
    std::uint64_t observations = 0;  // total (segment, trace) data points
  };
  Stats stats() const;

  struct SegmentInfo {
    std::size_t border_index = 0;
    std::size_t length = 0;
    bool armed = false;
    bool dormant = false;
    std::int64_t multiplier = 1;
    bool has_ratio = false;
    double last_ratio = 0.0;
  };
  // Diagnostic view of the segments monitoring `pair`.
  std::vector<SegmentInfo> segments_for(const tr::PairKey& pair) const;

  // Checkpoint support. Segments serialize sorted by potential id with
  // subscribers in list order; by_pair_/touched_ round-trip as ordered id
  // lists. by_first_ip_ is rebuilt in id order, which equals its original
  // insertion order (ensure_segment registers a segment the moment its id
  // is created, and ids are handed out monotonically). Map keys are
  // recomputed from segment contents.
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);

 private:
  // Subscriptions survive a refresh as "zombies" until the segment's
  // pending aggregate windows flush: a change detected by a slow window is
  // still a valid signal about the pair even if the corpus was refreshed
  // meanwhile.
  struct Subscriber {
    tr::PairKey pair;
    std::size_t border = 0;
    bool zombie = false;
  };
  struct Segment {
    PotentialId id = kNoPotential;
    std::vector<Ipv4> ips;  // ι_m .. ι_n
    detect::AdaptiveRatioSeries series;
    std::vector<Subscriber> subscribers;
    double baseline_ratio = -1.0;  // first armed ratio (for revocation)
    bool touched = false;          // data since last close sweep
    bool pending_drop = false;     // previous closed window was a drop
  };

  // Content hash identifying a segment.
  static std::uint64_t key_of(const std::vector<Ipv4>& ips);
  Segment* ensure_segment(const std::vector<Ipv4>& ips,
                          PotentialIndex& index);
  // Closes `segment`'s pending aggregate windows; returns the signals it
  // fired. Touches only `segment`, so distinct segments may be closed
  // concurrently (each parallel shard gets its own signal buffer).
  std::vector<StalenessSignal> close_segment(Segment* segment,
                                             std::int64_t window,
                                             TimePoint window_end);

  runtime::ThreadPool* pool_ = nullptr;
  SubpathParams params_;
  detect::ModifiedZScoreDetector prototype_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Segment>> segments_;
  std::unordered_map<Ipv4, std::vector<Segment*>> by_first_ip_;
  std::map<tr::PairKey, std::vector<Segment*>> by_pair_;
  std::unordered_map<PotentialId, Segment*> by_potential_;
  std::vector<Segment*> touched_;
  std::uint64_t observations_ = 0;
};

}  // namespace rrr::signals
