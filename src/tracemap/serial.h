// Binary checkpoint codec for processed traceroutes — the per-pair corpus
// view the staleness engine keeps (tracemap/processed.h). The raw
// traceroute is not stored: a watched pair's monitors consume only the
// processed form, and re-processing on load would double-count the hop
// patcher's triple observations.
#pragma once

#include "store/codec.h"
#include "tracemap/processed.h"

namespace rrr::tracemap {

inline void put_opt_city(store::Encoder& enc,
                         const std::optional<topo::CityId>& city) {
  enc.boolean(city.has_value());
  if (city) enc.u16(*city);
}

inline std::optional<topo::CityId> get_opt_city(store::Decoder& dec) {
  if (!dec.boolean()) return std::nullopt;
  return dec.u16();
}

inline void put_processed(store::Encoder& enc, const ProcessedTrace& trace) {
  enc.u64(trace.trace_id);
  enc.u32(trace.probe);
  store::put(enc, trace.src_ip);
  store::put(enc, trace.dst_ip);
  store::put(enc, trace.time);
  enc.boolean(trace.reached);
  enc.u64(trace.hops.size());
  for (const ProcessedHop& hop : trace.hops) {
    store::put(enc, hop.ip);
    store::put(enc, hop.asn);
    enc.boolean(hop.is_ixp);
    enc.u16(hop.ixp);
    enc.u64(hop.router.value);
    put_opt_city(enc, hop.city);
  }
  store::put(enc, trace.as_path);
  enc.boolean(trace.has_as_loop);
  enc.u64(trace.borders.size());
  for (const BorderView& border : trace.borders) {
    enc.u64(border.near_index);
    enc.u64(border.far_index);
    store::put(enc, border.near_as);
    store::put(enc, border.far_as);
    store::put(enc, border.near_ip);
    store::put(enc, border.far_ip);
    enc.u64(border.border_router.value);
    enc.boolean(border.via_ixp);
    put_opt_city(enc, border.near_city);
    put_opt_city(enc, border.far_city);
  }
}

inline ProcessedTrace get_processed(store::Decoder& dec) {
  ProcessedTrace trace;
  trace.trace_id = dec.u64();
  trace.probe = dec.u32();
  trace.src_ip = store::get_ipv4(dec);
  trace.dst_ip = store::get_ipv4(dec);
  trace.time = store::get_time(dec);
  trace.reached = dec.boolean();
  std::uint64_t hop_count = dec.u64();
  trace.hops.reserve(hop_count);
  for (std::uint64_t i = 0; i < hop_count; ++i) {
    ProcessedHop hop;
    hop.ip = store::get_opt_ipv4(dec);
    hop.asn = store::get_asn(dec);
    hop.is_ixp = dec.boolean();
    hop.ixp = dec.u16();
    hop.router.value = dec.u64();
    hop.city = get_opt_city(dec);
    trace.hops.push_back(hop);
  }
  trace.as_path = store::get_as_path(dec);
  trace.has_as_loop = dec.boolean();
  std::uint64_t border_count = dec.u64();
  trace.borders.reserve(border_count);
  for (std::uint64_t i = 0; i < border_count; ++i) {
    BorderView border;
    border.near_index = dec.u64();
    border.far_index = dec.u64();
    border.near_as = store::get_asn(dec);
    border.far_as = store::get_asn(dec);
    border.near_ip = store::get_ipv4(dec);
    border.far_ip = store::get_ipv4(dec);
    border.border_router.value = dec.u64();
    border.via_ixp = dec.boolean();
    border.near_city = get_opt_city(dec);
    border.far_city = get_opt_city(dec);
    trace.borders.push_back(border);
  }
  return trace;
}

}  // namespace rrr::tracemap
