// Convenience bundle wiring the whole Appendix-A processing pipeline
// together from the public-data equivalents an experiment has available.
#pragma once

#include <cstdint>
#include <memory>

#include "topology/builder.h"
#include "tracemap/alias.h"
#include "tracemap/geolocate.h"
#include "tracemap/ip2as.h"
#include "tracemap/patch.h"
#include "tracemap/processed.h"

namespace rrr::tracemap {

struct PipelineParams {
  // Fraction of IXP interface assignments present in the PeeringDB-like
  // dump (unknown IXP interfaces stay unmapped).
  double ixp_interface_coverage = 0.85;
  AliasParams alias;
  GeoParams geo;
  std::uint64_t seed = 29;
};

// Builds the IP-to-AS mapper from announced prefixes (what collector RIBs
// carry) plus IXP LAN/interface data (what a PeeringDB dump carries).
Ip2As build_ip2as(const topo::Topology& topology,
                  double ixp_interface_coverage, std::uint64_t seed);

// Owns every processing component plus a TraceProcessor bound to them.
class ProcessingContext {
 public:
  ProcessingContext(const topo::Topology& topology,
                    const PipelineParams& params)
      : ip2as_(build_ip2as(topology, params.ixp_interface_coverage,
                           params.seed)),
        aliases_(topology, params.alias),
        geo_(topology, params.geo),
        processor_(ip2as_, aliases_, geo_, &patcher_) {}

  const Ip2As& ip2as() const { return ip2as_; }
  const AliasResolver& aliases() const { return aliases_; }
  const Geolocator& geo() const { return geo_; }
  HopPatcher& patcher() { return patcher_; }

  // Learns patch triples from a measurement, then processes it.
  ProcessedTrace ingest(const tr::Traceroute& trace) {
    patcher_.observe(trace);
    return processor_.process(trace);
  }
  // Processes without learning (e.g. replaying archived data).
  ProcessedTrace process(const tr::Traceroute& trace) const {
    return processor_.process(trace);
  }

 private:
  Ip2As ip2as_;
  AliasResolver aliases_;
  Geolocator geo_;
  HopPatcher patcher_;
  TraceProcessor processor_;
};

}  // namespace rrr::tracemap
