// Unresponsive-hop patching (Appendix A): for a '*' flanked by responsive
// hops, if every observed traceroute with that (previous, next) pair shows a
// single responsive hop between them, fill the star with it. Remaining stars
// are wildcards that can never indicate a change.
#pragma once

#include <map>
#include <set>
#include <utility>

#include "netbase/ipv4.h"
#include "store/codec.h"
#include "traceroute/traceroute.h"

namespace rrr::tracemap {

class HopPatcher {
 public:
  // Learns (prev, middle, next) triples from a measurement.
  void observe(const tr::Traceroute& trace);

  // Returns a copy of `trace` with uniquely-determined stars filled in.
  tr::Traceroute patch(const tr::Traceroute& trace) const;

  // The unique middle hop for (prev, next), when exactly one was observed.
  std::optional<Ipv4> unique_middle(Ipv4 prev, Ipv4 next) const;

  std::size_t triple_count() const { return middles_.size(); }

  // Checkpoint support: the learned triple store round-trips verbatim.
  void save_state(store::Encoder& enc) const {
    enc.u64(middles_.size());
    for (const auto& [ends, mids] : middles_) {
      store::put(enc, ends.first);
      store::put(enc, ends.second);
      enc.u64(mids.size());
      for (Ipv4 mid : mids) store::put(enc, mid);
    }
  }
  void load_state(store::Decoder& dec) {
    middles_.clear();
    std::uint64_t n = dec.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Ipv4 prev = store::get_ipv4(dec);
      Ipv4 next = store::get_ipv4(dec);
      std::set<Ipv4>& mids = middles_[{prev, next}];
      std::uint64_t m = dec.u64();
      for (std::uint64_t j = 0; j < m; ++j) {
        mids.insert(store::get_ipv4(dec));
      }
    }
  }

 private:
  std::map<std::pair<Ipv4, Ipv4>, std::set<Ipv4>> middles_;
};

}  // namespace rrr::tracemap
