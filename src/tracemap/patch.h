// Unresponsive-hop patching (Appendix A): for a '*' flanked by responsive
// hops, if every observed traceroute with that (previous, next) pair shows a
// single responsive hop between them, fill the star with it. Remaining stars
// are wildcards that can never indicate a change.
#pragma once

#include <map>
#include <set>
#include <utility>

#include "netbase/ipv4.h"
#include "traceroute/traceroute.h"

namespace rrr::tracemap {

class HopPatcher {
 public:
  // Learns (prev, middle, next) triples from a measurement.
  void observe(const tr::Traceroute& trace);

  // Returns a copy of `trace` with uniquely-determined stars filled in.
  tr::Traceroute patch(const tr::Traceroute& trace) const;

  // The unique middle hop for (prev, next), when exactly one was observed.
  std::optional<Ipv4> unique_middle(Ipv4 prev, Ipv4 next) const;

  std::size_t triple_count() const { return middles_.size(); }

 private:
  std::map<std::pair<Ipv4, Ipv4>, std::set<Ipv4>> middles_;
};

}  // namespace rrr::tracemap
