#include "tracemap/geolocate.h"

#include "topology/city.h"

namespace rrr::tracemap {

const char* to_string(GeoMethod method) {
  switch (method) {
    case GeoMethod::kIpMap:
      return "ipmap";
    case GeoMethod::kShortestPing:
      return "shortest-ping";
    case GeoMethod::kCfs:
      return "cfs";
    case GeoMethod::kNone:
      return "none";
  }
  return "?";
}

Geolocator::Geolocator(const topo::Topology& topology,
                       const GeoParams& params) {
  for (const topo::Router& router : topology.routers()) {
    for (Ipv4 ip : router.interfaces) {
      // Per-IP deterministic draw: which technique (if any) locates it.
      Rng rng(hash_combine(params.seed, 0x6E0ull + ip.value()));
      Entry entry{router.city, GeoMethod::kNone};
      if (rng.bernoulli(params.ipmap_coverage)) {
        entry.method = GeoMethod::kIpMap;
      } else if (rng.bernoulli(params.shortest_ping_success)) {
        // A vantage point within 1 ms RTT pins the true city.
        entry.method = GeoMethod::kShortestPing;
      } else if (rng.bernoulli(params.cfs_success)) {
        entry.method = GeoMethod::kCfs;
        if (rng.bernoulli(params.cfs_error_prob)) {
          // Wrong facility: report the nearest *other* city of the owner AS,
          // or a uniformly random city when the AS has a single PoP.
          const topo::AsNode& owner = topology.as_at(router.owner);
          if (owner.pops.size() > 1) {
            topo::CityId wrong = owner.pops[rng.index(owner.pops.size())];
            if (wrong == router.city) wrong = owner.pops.front() == wrong
                                                  ? owner.pops.back()
                                                  : owner.pops.front();
            entry.city = wrong;
          } else {
            entry.city =
                static_cast<topo::CityId>(rng.index(topo::city_count()));
          }
        }
      }
      if (entry.method != GeoMethod::kNone) {
        located_.emplace(ip, entry);
      }
    }
  }
}

std::optional<topo::CityId> Geolocator::locate(Ipv4 ip) const {
  auto it = located_.find(ip);
  if (it == located_.end()) return std::nullopt;
  return it->second.city;
}

GeoMethod Geolocator::method(Ipv4 ip) const {
  auto it = located_.find(ip);
  return it == located_.end() ? GeoMethod::kNone : it->second.method;
}

}  // namespace rrr::tracemap
