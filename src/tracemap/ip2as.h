// IP-to-ASN mapping (Appendix A): longest prefix matching over BGP
// announcements, augmented with IXP LAN handling in the style of traIXroute.
//
// This is the *inference-side* view: it is built from the same public data a
// real deployment would use (collector RIBs plus a PeeringDB-like IXP dump),
// so it can be wrong in the same ways (IXP interfaces with unknown members,
// PNI addresses numbered from the neighbor's block, unannounced space).
#pragma once

#include <optional>
#include <unordered_map>

#include "netbase/asn.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"
#include "netbase/radix_trie.h"
#include "topology/types.h"

namespace rrr::tracemap {

struct MapResult {
  Asn asn;                       // invalid when unmapped
  bool is_ixp = false;           // address on an IXP LAN
  topo::IxpId ixp = topo::kNoIxp;

  bool mapped() const { return asn.is_valid(); }
};

class Ip2As {
 public:
  // Longest-prefix routes from BGP data.
  void add_route(const Prefix& prefix, Asn origin);
  // Registers an IXP LAN; addresses inside map to is_ixp=true.
  void add_ixp_lan(const Prefix& lan, topo::IxpId ixp);
  // Known IXP interface assignment (PeeringDB netixlan-style record).
  void add_ixp_interface(Ipv4 ip, Asn member);

  MapResult map(Ipv4 ip) const;

  std::size_t route_count() const { return routes_.size(); }

 private:
  RadixTrie<Asn> routes_;
  RadixTrie<topo::IxpId> ixp_lans_;
  std::unordered_map<Ipv4, Asn> ixp_interfaces_;
};

}  // namespace rrr::tracemap
