// The fully-processed traceroute view: each hop annotated with its AS,
// router, and city; the merged AS-level path; and the border-router path —
// the granularity at which the paper tracks changes (§3).
#pragma once

#include <optional>
#include <vector>

#include "netbase/asn.h"
#include "topology/types.h"
#include "tracemap/alias.h"
#include "tracemap/geolocate.h"
#include "tracemap/ip2as.h"
#include "tracemap/patch.h"
#include "traceroute/traceroute.h"

namespace rrr::tracemap {

struct ProcessedHop {
  std::optional<Ipv4> ip;  // after patching; nullopt = wildcard
  Asn asn;                 // invalid when unmapped
  bool is_ixp = false;
  topo::IxpId ixp = topo::kNoIxp;  // which LAN, when is_ixp
  RouterKey router;        // meaningful only when ip is set
  std::optional<topo::CityId> city;

  bool responded() const { return ip.has_value(); }
};

// One inter-AS boundary as inferred from the traceroute: the last hop mapped
// to the near AS and the first hop mapped to the far AS (Appendix A treats
// both IPs as part of the border when finer inference is unavailable).
struct BorderView {
  std::size_t near_index = 0;
  std::size_t far_index = 0;
  Asn near_as;
  Asn far_as;
  Ipv4 near_ip;
  Ipv4 far_ip;
  RouterKey border_router;  // the far-side (ingress) router
  bool via_ixp = false;
  std::optional<topo::CityId> near_city;
  std::optional<topo::CityId> far_city;

  friend bool operator==(const BorderView&, const BorderView&) = default;
};

struct ProcessedTrace {
  std::uint64_t trace_id = 0;
  tr::ProbeId probe = tr::kNoProbe;
  Ipv4 src_ip;
  Ipv4 dst_ip;
  TimePoint time;
  bool reached = false;

  std::vector<ProcessedHop> hops;
  // Merged AS-level path (consecutive duplicates collapsed, unmapped gaps
  // between identical ASes bridged). Empty when unusable.
  AsPath as_path;
  bool has_as_loop = false;
  std::vector<BorderView> borders;

  // The border-router path: the sequence of ingress border routers, the
  // paper's change granularity. Two traces with equal AS paths but different
  // border paths have experienced a border-level change.
  std::vector<RouterKey> border_router_path() const {
    std::vector<RouterKey> path;
    path.reserve(borders.size());
    for (const BorderView& b : borders) path.push_back(b.border_router);
    return path;
  }
};

// Classification of how two processed traces differ (§3's definitions: a
// border-level change requires the AS path to be unchanged).
enum class ChangeKind : std::uint8_t { kNone, kBorderLevel, kAsLevel };
ChangeKind classify_change(const ProcessedTrace& before,
                           const ProcessedTrace& after);

class TraceProcessor {
 public:
  // `patcher` may be null (no unresponsive-hop patching).
  TraceProcessor(const Ip2As& ip2as, const AliasResolver& aliases,
                 const Geolocator& geo, const HopPatcher* patcher = nullptr)
      : ip2as_(ip2as), aliases_(aliases), geo_(geo), patcher_(patcher) {}

  ProcessedTrace process(const tr::Traceroute& trace) const;

 private:
  const Ip2As& ip2as_;
  const AliasResolver& aliases_;
  const Geolocator& geo_;
  const HopPatcher* patcher_;
};

}  // namespace rrr::tracemap
