#include "tracemap/patch.h"

namespace rrr::tracemap {

void HopPatcher::observe(const tr::Traceroute& trace) {
  const auto& hops = trace.hops;
  for (std::size_t i = 1; i + 1 < hops.size(); ++i) {
    if (hops[i - 1].responded() && hops[i].responded() &&
        hops[i + 1].responded()) {
      middles_[{*hops[i - 1].ip, *hops[i + 1].ip}].insert(*hops[i].ip);
    }
  }
}

std::optional<Ipv4> HopPatcher::unique_middle(Ipv4 prev, Ipv4 next) const {
  auto it = middles_.find({prev, next});
  if (it == middles_.end() || it->second.size() != 1) return std::nullopt;
  return *it->second.begin();
}

tr::Traceroute HopPatcher::patch(const tr::Traceroute& trace) const {
  tr::Traceroute patched = trace;
  auto& hops = patched.hops;
  for (std::size_t i = 1; i + 1 < hops.size(); ++i) {
    if (!hops[i].responded() && hops[i - 1].responded() &&
        hops[i + 1].responded()) {
      if (auto middle = unique_middle(*hops[i - 1].ip, *hops[i + 1].ip)) {
        hops[i].ip = middle;
        // Interpolated latency: midway between the neighbors.
        hops[i].rtt_ms = (hops[i - 1].rtt_ms + hops[i + 1].rtt_ms) / 2.0;
      }
    }
  }
  return patched;
}

}  // namespace rrr::tracemap
