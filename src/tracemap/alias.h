// Alias resolution (Appendix A): grouping interface addresses into routers,
// modeled on MIDAR.
//
// Built from the simulator's ground truth with configurable incompleteness
// (MIDAR misses aliases for unresponsive or rate-limited routers), so the
// downstream border-router abstraction sees the same imperfections a real
// pipeline does. Unresolved interfaces become singleton routers keyed by
// their own address.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "netbase/ipv4.h"
#include "netbase/rng.h"
#include "topology/topology.h"

namespace rrr::tracemap {

// An inference-side router identity: either a resolved alias-set id or a
// singleton keyed by interface address.
struct RouterKey {
  // Resolved alias sets get (kResolvedBit | set id); singletons the IP value.
  std::uint64_t value = 0;

  static constexpr std::uint64_t kResolvedBit = 1ull << 40;

  bool resolved() const { return (value & kResolvedBit) != 0; }
  auto operator<=>(const RouterKey&) const = default;
};

struct AliasParams {
  // Probability an interface is covered by the alias-resolution campaign.
  double coverage = 0.85;
  std::uint64_t seed = 17;
};

class AliasResolver {
 public:
  AliasResolver(const topo::Topology& topology, const AliasParams& params);

  // The router key for `ip` (never fails: unresolved => singleton).
  RouterKey resolve(Ipv4 ip) const;

  // Whether two addresses are inferred to sit on the same router.
  bool same_router(Ipv4 a, Ipv4 b) const {
    return resolve(a) == resolve(b);
  }

  std::size_t resolved_interface_count() const { return resolved_.size(); }

 private:
  std::unordered_map<Ipv4, std::uint64_t> resolved_;  // ip -> alias-set id
};

}  // namespace rrr::tracemap

template <>
struct std::hash<rrr::tracemap::RouterKey> {
  std::size_t operator()(const rrr::tracemap::RouterKey& key) const noexcept {
    return static_cast<std::size_t>(key.value * 0x9E3779B97F4A7C15ULL);
  }
};
