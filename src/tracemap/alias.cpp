#include "tracemap/alias.h"

namespace rrr::tracemap {

AliasResolver::AliasResolver(const topo::Topology& topology,
                             const AliasParams& params) {
  Rng rng(Rng(params.seed).fork(0xA11A5));
  for (const topo::Router& router : topology.routers()) {
    // Routers with a single covered interface still resolve (trivially); a
    // router escapes resolution per-interface, matching MIDAR's behavior of
    // partially discovered alias sets.
    for (Ipv4 ip : router.interfaces) {
      if (rng.bernoulli(params.coverage)) {
        resolved_.emplace(ip, router.id);
      }
    }
  }
}

RouterKey AliasResolver::resolve(Ipv4 ip) const {
  auto it = resolved_.find(ip);
  if (it != resolved_.end()) {
    return RouterKey{RouterKey::kResolvedBit | it->second};
  }
  return RouterKey{ip.value()};
}

}  // namespace rrr::tracemap
