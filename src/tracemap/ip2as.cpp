#include "tracemap/ip2as.h"

namespace rrr::tracemap {

void Ip2As::add_route(const Prefix& prefix, Asn origin) {
  routes_.insert(prefix, origin);
}

void Ip2As::add_ixp_lan(const Prefix& lan, topo::IxpId ixp) {
  ixp_lans_.insert(lan, ixp);
}

void Ip2As::add_ixp_interface(Ipv4 ip, Asn member) {
  ixp_interfaces_.emplace(ip, member);
}

MapResult Ip2As::map(Ipv4 ip) const {
  MapResult result;
  if (const topo::IxpId* ixp = ixp_lans_.lookup(ip)) {
    result.is_ixp = true;
    result.ixp = *ixp;
    auto it = ixp_interfaces_.find(ip);
    if (it != ixp_interfaces_.end()) result.asn = it->second;
    return result;
  }
  if (const Asn* asn = routes_.lookup(ip)) result.asn = *asn;
  return result;
}

}  // namespace rrr::tracemap
