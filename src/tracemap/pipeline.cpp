#include "tracemap/pipeline.h"

#include "netbase/rng.h"

namespace rrr::tracemap {

Ip2As build_ip2as(const topo::Topology& topology,
                  double ixp_interface_coverage, std::uint64_t seed) {
  Ip2As ip2as;
  for (topo::AsIndex as = 0; as < topology.as_count(); ++as) {
    const topo::AsNode& node = topology.as_at(as);
    for (const Prefix& prefix : node.originated) {
      ip2as.add_route(prefix, node.asn);
    }
  }
  Rng rng(Rng(seed).fork(0x192A5));
  for (const topo::Ixp& ixp : topology.ixps()) {
    ip2as.add_ixp_lan(ixp.lan, ixp.id);
  }
  // IXP interface assignments: which member answers from which LAN address.
  for (const topo::Interconnect& ic : topology.interconnects()) {
    if (ic.ixp == topo::kNoIxp) continue;
    if (rng.bernoulli(ixp_interface_coverage)) {
      ip2as.add_ixp_interface(
          ic.ip_a,
          topology.as_at(topology.link_at(ic.link).a).asn);
    }
    if (rng.bernoulli(ixp_interface_coverage)) {
      ip2as.add_ixp_interface(
          ic.ip_b,
          topology.as_at(topology.link_at(ic.link).b).asn);
    }
  }
  return ip2as;
}

}  // namespace rrr::tracemap
