// IP geolocation (Appendix A): IPMap-style registry lookups, a simulated
// shortest-ping campaign, and a CFS-style facility fallback.
//
// Coverage and accuracy are configurable so the evaluation can reproduce the
// paper's validation numbers: the ping technique located 82% of border IPs,
// IPMap-style data is highly accurate, and fallback methods occasionally
// return a nearby-but-wrong city.
#pragma once

#include <optional>
#include <unordered_map>

#include "netbase/ipv4.h"
#include "netbase/rng.h"
#include "topology/topology.h"

namespace rrr::tracemap {

enum class GeoMethod : std::uint8_t {
  kIpMap,
  kShortestPing,
  kCfs,
  kNone,
};

const char* to_string(GeoMethod method);

struct GeoParams {
  double ipmap_coverage = 0.55;
  // Of addresses IPMap misses: shortest-ping success rate (paper: 82% of
  // border IPs overall; ~10% never answer pings, ~8% lack a close VP).
  double shortest_ping_success = 0.72;
  // Of the remainder: CFS fallback success rate and its error probability
  // (a wrong facility yields a wrong city).
  double cfs_success = 0.45;
  double cfs_error_prob = 0.18;
  std::uint64_t seed = 23;
};

class Geolocator {
 public:
  Geolocator(const topo::Topology& topology, const GeoParams& params);

  // City of `ip`, when any technique located it.
  std::optional<topo::CityId> locate(Ipv4 ip) const;
  // Which technique produced the answer (kNone when unlocated/unknown ip).
  GeoMethod method(Ipv4 ip) const;

  std::size_t located_count() const { return located_.size(); }

 private:
  struct Entry {
    topo::CityId city;
    GeoMethod method;
  };
  std::unordered_map<Ipv4, Entry> located_;
};

}  // namespace rrr::tracemap
