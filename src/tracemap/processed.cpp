#include "tracemap/processed.h"

#include <set>

namespace rrr::tracemap {

ChangeKind classify_change(const ProcessedTrace& before,
                           const ProcessedTrace& after) {
  if (before.as_path != after.as_path) return ChangeKind::kAsLevel;
  if (before.border_router_path() != after.border_router_path()) {
    return ChangeKind::kBorderLevel;
  }
  return ChangeKind::kNone;
}

ProcessedTrace TraceProcessor::process(const tr::Traceroute& raw) const {
  tr::Traceroute trace = patcher_ ? patcher_->patch(raw) : raw;

  ProcessedTrace out;
  out.trace_id = trace.id;
  out.probe = trace.probe;
  out.src_ip = trace.src_ip;
  out.dst_ip = trace.dst_ip;
  out.time = trace.time;
  out.reached = trace.reached;

  out.hops.reserve(trace.hops.size());
  for (const tr::Hop& hop : trace.hops) {
    ProcessedHop ph;
    if (hop.responded()) {
      ph.ip = hop.ip;
      MapResult mapped = ip2as_.map(*hop.ip);
      ph.asn = mapped.asn;
      ph.is_ixp = mapped.is_ixp;
      ph.ixp = mapped.ixp;
      ph.router = aliases_.resolve(*hop.ip);
      ph.city = geo_.locate(*hop.ip);
    }
    out.hops.push_back(std::move(ph));
  }

  // Merged AS path: collapse consecutive duplicates; bridge unmapped or
  // wildcard gaps between identical ASes (Appendix A). IXP hops with an
  // unknown member are treated as unmapped.
  Asn last_mapped;
  for (const ProcessedHop& hop : out.hops) {
    if (!hop.responded() || !hop.asn.is_valid()) continue;
    if (hop.asn != last_mapped) {
      out.as_path.push_back(hop.asn);
      last_mapped = hop.asn;
    }
  }
  // Loop check: an AS appearing twice non-consecutively after merging.
  std::set<Asn> seen;
  for (Asn asn : out.as_path) {
    if (!seen.insert(asn).second) {
      out.has_as_loop = true;
      break;
    }
  }
  if (out.has_as_loop) out.as_path.clear();

  // Border extraction: scan adjacent *mapped* hop pairs (skipping wildcards
  // and unmapped hops in between) for AS transitions.
  int prev = -1;
  for (std::size_t i = 0; i < out.hops.size(); ++i) {
    const ProcessedHop& hop = out.hops[i];
    if (!hop.responded() || !hop.asn.is_valid()) continue;
    if (prev >= 0) {
      const ProcessedHop& near = out.hops[static_cast<std::size_t>(prev)];
      if (near.asn != hop.asn) {
        BorderView border;
        border.near_index = static_cast<std::size_t>(prev);
        border.far_index = i;
        border.near_as = near.asn;
        border.far_as = hop.asn;
        border.near_ip = *near.ip;
        border.far_ip = *hop.ip;
        border.border_router = hop.router;
        border.via_ixp = hop.is_ixp || near.is_ixp;
        border.near_city = near.city;
        border.far_city = hop.city;
        out.borders.push_back(std::move(border));
      }
    }
    prev = static_cast<int>(i);
  }
  return out;
}

}  // namespace rrr::tracemap
