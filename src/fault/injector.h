// Deterministic, seeded fault injection for the BGP and public-traceroute
// feeds.
//
// The injector sits between the feed producer and the staleness engine —
// both feed points are serial in World (process_event / issue_public_trace)
// — and applies a FaultPlan record by record. Every stochastic decision is
// drawn from a per-stream `Rng::split` generator keyed by the record's
// vantage point (or the trace's probe): the draw sequence a stream sees
// depends only on (plan.seed, stream id, that stream's record order), never
// on how other streams interleave, so any (shards, threads, plan)
// combination replays bit-identically. Blackout membership is stateless —
// a hash of (plan.seed, collector/vp/probe id) against the configured
// fraction — so it can also be queried without consuming randomness.
//
// Field corruption is routed through the io::serialize text round-trip: the
// record is rendered with io::to_line, a few bytes are mangled, and the
// line is re-parsed with io::bgp_record_from_line. Corrupted lines the
// hardened parser rejects become counted drops; lines that survive carry
// genuinely corrupted fields into the engine, exactly like a damaged
// archive replay would.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bgp/record.h"
#include "fault/plan.h"
#include "netbase/rng.h"
#include "netbase/time.h"
#include "traceroute/traceroute.h"

namespace rrr::obs {
class Counter;
class MetricsRegistry;
class TraceRecorder;
}  // namespace rrr::obs

namespace rrr::fault {

class FaultInjector {
 public:
  // `t0` anchors window index 0 and `window_seconds` is the engine's base
  // window length; both must match the engine clock for blackout windows to
  // line up with engine windows.
  FaultInjector(const FaultPlan& plan, TimePoint t0,
                std::int64_t window_seconds);

  // Registers semantic fault counters (rrr_fault_*). Injection happens on
  // the serial feed path, so the counters are grid-invariant.
  void set_metrics(obs::MetricsRegistry& registry);

  // Attaches the flight recorder: activations become instant events on the
  // feed thread's track — one "fault_blackout_active" per window while a
  // blackout is dropping records, one "fault_replay_storm" when the
  // session-reset table dump fires. Tracing never consumes randomness, so
  // the injected stream is identical with it on or off.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  // Applies the plan to one BGP record: zero records for a dropped one, the
  // (possibly corrupted / re-timestamped) record plus any duplicates
  // otherwise. The session-reset replay — every blacked-out stream's
  // last-known table, dumped as duplicate announcements — is prepended to
  // the first record of any stream past the blackout, so the whole storm
  // lands in one window like a synchronized session re-establishment.
  std::vector<bgp::BgpRecord> on_bgp_record(const bgp::BgpRecord& record);

  // Applies the plan to one public traceroute (probe blackout + drop).
  std::optional<tr::Traceroute> on_public_trace(const tr::Traceroute& trace);

  const FaultPlan& plan() const { return plan_; }

  // Stateless blackout membership / schedule queries.
  bool collector_blacked(const std::string& collector) const;
  bool vp_blacked(bgp::VpId vp) const;
  bool probe_blacked(tr::ProbeId probe) const;
  bool blackout_active(std::int64_t window) const;
  std::int64_t window_of(TimePoint t) const;

  // Plain tallies mirroring the obs counters, for tests and harness logs.
  struct Stats {
    std::int64_t bgp_blackout_dropped = 0;
    std::int64_t bgp_dropped = 0;
    std::int64_t bgp_corrupt_dropped = 0;
    std::int64_t bgp_corrupted = 0;   // corrupted line still parsed
    std::int64_t bgp_duplicated = 0;  // extra copies emitted
    std::int64_t bgp_reordered = 0;
    std::int64_t bgp_replayed = 0;    // session-reset replay records
    std::int64_t trace_blackout_dropped = 0;
    std::int64_t trace_dropped = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Rng& bgp_stream(bgp::VpId vp);
  Rng& trace_stream(tr::ProbeId probe);
  // Remembers / forgets the last route the engine saw from (vp, prefix);
  // fuels the session-reset replay.
  void remember(const bgp::BgpRecord& record);
  std::optional<bgp::BgpRecord> corrupt(const bgp::BgpRecord& record,
                                        Rng& rng);

  FaultPlan plan_;
  TimePoint t0_;
  std::int64_t window_seconds_;

  std::map<bgp::VpId, Rng> bgp_streams_;
  std::map<tr::ProbeId, Rng> trace_streams_;
  // Last-known announcement per (vp, prefix-string) — what a re-established
  // session would dump back at the collector.
  std::map<bgp::VpId, std::map<std::string, bgp::BgpRecord>> last_routes_;
  // The synchronized post-blackout table dump fires exactly once.
  bool replay_done_ = false;

  Stats stats_;
  obs::TraceRecorder* tracer_ = nullptr;
  // Last window a blackout activation instant was recorded for (bounds the
  // event volume to one per window, not one per dropped record).
  std::int64_t last_traced_blackout_window_ = -1;
  obs::Counter* obs_bgp_dropped_blackout_ = nullptr;
  obs::Counter* obs_bgp_dropped_loss_ = nullptr;
  obs::Counter* obs_bgp_dropped_corrupt_ = nullptr;
  obs::Counter* obs_bgp_corrupted_ = nullptr;
  obs::Counter* obs_bgp_duplicated_ = nullptr;
  obs::Counter* obs_bgp_reordered_ = nullptr;
  obs::Counter* obs_bgp_replayed_ = nullptr;
  obs::Counter* obs_trace_dropped_blackout_ = nullptr;
  obs::Counter* obs_trace_dropped_loss_ = nullptr;
};

}  // namespace rrr::fault
