#include "fault/io_plan.h"

#include <charconv>
#include <cstdlib>
#include <sstream>

namespace rrr::fault {
namespace {

std::optional<double> parse_double(std::string_view text) {
  std::string buffer(text);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || buffer.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  std::int64_t value = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                 value);
  if (ec != std::errc{} || p != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

void emit(std::ostringstream& out, bool& first, std::string_view key,
          const std::string& value) {
  if (!first) out << ',';
  first = false;
  out << key << '=' << value;
}

std::string fmt(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

bool IoFaultPlan::enabled() const {
  return torn_write_rate > 0.0 || bit_flip_rate > 0.0 || enospc_rate > 0.0 ||
         eio_write_rate > 0.0 || eio_fsync_rate > 0.0 ||
         eio_rename_rate > 0.0 || eio_read_rate > 0.0 ||
         crash_rename_rate > 0.0;
}

std::string IoFaultPlan::spec() const {
  std::ostringstream out;
  bool first = true;
  if (torn_write_rate > 0.0) emit(out, first, "torn", fmt(torn_write_rate));
  if (bit_flip_rate > 0.0) emit(out, first, "bitflip", fmt(bit_flip_rate));
  if (enospc_rate > 0.0) emit(out, first, "enospc", fmt(enospc_rate));
  if (eio_write_rate > 0.0) emit(out, first, "eio", fmt(eio_write_rate));
  if (eio_fsync_rate > 0.0) {
    emit(out, first, "eio_fsync", fmt(eio_fsync_rate));
  }
  if (eio_rename_rate > 0.0) {
    emit(out, first, "eio_rename", fmt(eio_rename_rate));
  }
  if (eio_read_rate > 0.0) emit(out, first, "eio_read", fmt(eio_read_rate));
  if (crash_rename_rate > 0.0) {
    emit(out, first, "crash_rename", fmt(crash_rename_rate));
  }
  if (transient_fraction != 0.75) {
    emit(out, first, "transient", fmt(transient_fraction));
  }
  if (transient_clears_after != 2) {
    emit(out, first, "clears_after", std::to_string(transient_clears_after));
  }
  if (seed != 1) emit(out, first, "seed", std::to_string(seed));
  return out.str();
}

std::optional<IoFaultPlan> IoFaultPlan::parse(std::string_view spec) {
  IoFaultPlan plan;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t comma = spec.find(',', start);
    std::string_view clause = spec.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    start = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (clause.empty()) continue;
    std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    std::string_view key = clause.substr(0, eq);
    std::string_view value = clause.substr(eq + 1);

    auto set_rate = [&](double* field) {
      auto v = parse_double(value);
      if (!v || *v < 0.0 || *v > 1.0) return false;
      *field = *v;
      return true;
    };

    bool ok = false;
    if (key == "torn") {
      ok = set_rate(&plan.torn_write_rate);
    } else if (key == "bitflip") {
      ok = set_rate(&plan.bit_flip_rate);
    } else if (key == "enospc") {
      ok = set_rate(&plan.enospc_rate);
    } else if (key == "eio") {
      ok = set_rate(&plan.eio_write_rate);
    } else if (key == "eio_fsync") {
      ok = set_rate(&plan.eio_fsync_rate);
    } else if (key == "eio_rename") {
      ok = set_rate(&plan.eio_rename_rate);
    } else if (key == "eio_read") {
      ok = set_rate(&plan.eio_read_rate);
    } else if (key == "crash_rename") {
      ok = set_rate(&plan.crash_rename_rate);
    } else if (key == "transient") {
      ok = set_rate(&plan.transient_fraction);
    } else if (key == "clears_after") {
      auto v = parse_int(value);
      ok = v && *v >= 0;
      if (ok) plan.transient_clears_after = static_cast<int>(*v);
    } else if (key == "seed") {
      auto v = parse_int(value);
      ok = v && *v >= 0;
      if (ok) plan.seed = static_cast<std::uint64_t>(*v);
    }
    if (!ok) return std::nullopt;
  }
  return plan;
}

IoFaultInjector::IoFaultInjector(const IoFaultPlan& plan) : plan_(plan) {}

Rng& IoFaultInjector::stream(store::IoOp op) {
  int key = static_cast<int>(op);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    it = streams_
             .emplace(key, Rng(plan_.seed).split(0x1000 +
                                                 static_cast<std::uint64_t>(
                                                     key)))
             .first;
  }
  return it->second;
}

store::IoOutcome IoFaultInjector::draw(store::IoOp op, std::uint64_t size) {
  using Kind = store::IoOutcome::Kind;
  Rng& rng = stream(op);
  store::IoOutcome out;
  auto transient = [&] { return rng.bernoulli(plan_.transient_fraction); };
  switch (op) {
    case store::IoOp::kWrite:
    case store::IoOp::kAppend:
      // Reported errors first (they abort the attempt before bytes land),
      // then silent corruption of the bytes that do land.
      if (rng.bernoulli(plan_.enospc_rate)) {
        out.kind = Kind::kEnospc;
        out.transient = transient();
      } else if (rng.bernoulli(plan_.eio_write_rate)) {
        out.kind = Kind::kEio;
        out.transient = transient();
      } else if (rng.bernoulli(plan_.torn_write_rate)) {
        out.kind = Kind::kTornWrite;
        out.offset = size > 0 ? static_cast<std::uint64_t>(rng.uniform_int(
                                    0, static_cast<std::int64_t>(size) - 1))
                              : 0;
      } else if (rng.bernoulli(plan_.bit_flip_rate)) {
        out.kind = Kind::kBitFlip;
        out.offset = size > 0 ? static_cast<std::uint64_t>(rng.uniform_int(
                                    0, static_cast<std::int64_t>(size) - 1))
                              : 0;
        out.bit = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
      }
      break;
    case store::IoOp::kFsync:
      if (rng.bernoulli(plan_.eio_fsync_rate)) {
        out.kind = Kind::kEio;
        out.transient = transient();
      }
      break;
    case store::IoOp::kRename:
      if (rng.bernoulli(plan_.crash_rename_rate)) {
        out.kind = Kind::kCrashRename;
      } else if (rng.bernoulli(plan_.eio_rename_rate)) {
        out.kind = Kind::kEio;
        out.transient = transient();
      }
      break;
    case store::IoOp::kRead:
      // Read faults are always transient: flaky reads must never
      // permanently hide data that is on the disk.
      if (rng.bernoulli(plan_.eio_read_rate)) {
        out.kind = Kind::kEio;
        out.transient = true;
      }
      break;
  }
  return out;
}

store::IoOutcome IoFaultInjector::on_op(store::IoOp op, std::string_view path,
                                        std::uint64_t size, int attempt) {
  using Kind = store::IoOutcome::Kind;
  ++stats_.ops;
  auto key = std::make_pair(static_cast<int>(op), std::string(path));
  store::IoOutcome out;
  if (attempt == 0) {
    out = draw(op, size);
    decisions_[key] = out;
  } else {
    auto it = decisions_.find(key);
    out = it != decisions_.end() ? it->second : store::IoOutcome{};
    if (out.transient && attempt >= plan_.transient_clears_after) {
      // The disk "recovered": the retry loop's persistence paid off.
      out = store::IoOutcome{};
      decisions_[key] = out;
      ++stats_.cleared;
      return out;
    }
  }
  switch (out.kind) {
    case Kind::kOk: break;
    case Kind::kTornWrite: ++stats_.torn; break;
    case Kind::kBitFlip: ++stats_.bitflip; break;
    case Kind::kEnospc: ++stats_.enospc; break;
    case Kind::kEio: ++stats_.eio; break;
    case Kind::kCrashRename: ++stats_.crash_rename; break;
  }
  return out;
}

}  // namespace rrr::fault
