#include "fault/plan.h"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace rrr::fault {
namespace {

std::optional<double> parse_double(std::string_view text) {
  std::string buffer(text);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || buffer.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  std::int64_t value = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                 value);
  if (ec != std::errc{} || p != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

void emit(std::ostringstream& out, bool& first, std::string_view key,
          const std::string& value) {
  if (!first) out << ',';
  first = false;
  out << key << '=' << value;
}

std::string fmt(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

bool FaultPlan::enabled() const {
  bool blackout = blackout_windows > 0 &&
                  (collector_blackout_fraction > 0.0 ||
                   vp_blackout_fraction > 0.0);
  return blackout || drop_rate > 0.0 || trace_drop_rate > 0.0 ||
         duplicate_rate > 0.0 ||
         (reorder_rate > 0.0 && reorder_max_seconds > 0) ||
         corrupt_rate > 0.0;
}

std::string FaultPlan::spec() const {
  std::ostringstream out;
  bool first = true;
  if (collector_blackout_fraction > 0.0) {
    emit(out, first, "collector_blackout", fmt(collector_blackout_fraction));
  }
  if (vp_blackout_fraction > 0.0) {
    emit(out, first, "vp_blackout", fmt(vp_blackout_fraction));
  }
  if (blackout_start_window != 0) {
    emit(out, first, "blackout_start", std::to_string(blackout_start_window));
  }
  if (blackout_windows != 0) {
    emit(out, first, "blackout_windows", std::to_string(blackout_windows));
  }
  if (session_reset_replay) emit(out, first, "reset_replay", "1");
  if (drop_rate > 0.0) emit(out, first, "drop", fmt(drop_rate));
  if (trace_drop_rate > 0.0) {
    emit(out, first, "trace_drop", fmt(trace_drop_rate));
  }
  if (duplicate_rate > 0.0) emit(out, first, "dup", fmt(duplicate_rate));
  if (duplicate_burst_max != 3) {
    emit(out, first, "dup_burst", std::to_string(duplicate_burst_max));
  }
  if (reorder_rate > 0.0) emit(out, first, "reorder", fmt(reorder_rate));
  if (reorder_max_seconds != 0) {
    emit(out, first, "reorder_max", std::to_string(reorder_max_seconds));
  }
  if (corrupt_rate > 0.0) emit(out, first, "corrupt", fmt(corrupt_rate));
  if (seed != 1) emit(out, first, "seed", std::to_string(seed));
  return out.str();
}

std::optional<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t comma = spec.find(',', start);
    std::string_view clause = spec.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    start = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (clause.empty()) continue;
    std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    std::string_view key = clause.substr(0, eq);
    std::string_view value = clause.substr(eq + 1);

    auto set_rate = [&](double* field) {
      auto v = parse_double(value);
      if (!v || *v < 0.0 || *v > 1.0) return false;
      *field = *v;
      return true;
    };
    auto set_int = [&](std::int64_t* field, std::int64_t lo) {
      auto v = parse_int(value);
      if (!v || *v < lo) return false;
      *field = *v;
      return true;
    };

    bool ok = false;
    if (key == "collector_blackout") {
      ok = set_rate(&plan.collector_blackout_fraction);
    } else if (key == "vp_blackout") {
      ok = set_rate(&plan.vp_blackout_fraction);
    } else if (key == "blackout_start") {
      ok = set_int(&plan.blackout_start_window, 0);
    } else if (key == "blackout_windows") {
      ok = set_int(&plan.blackout_windows, 0);
    } else if (key == "reset_replay") {
      auto v = parse_int(value);
      ok = v && (*v == 0 || *v == 1);
      if (ok) plan.session_reset_replay = *v == 1;
    } else if (key == "drop") {
      ok = set_rate(&plan.drop_rate);
    } else if (key == "trace_drop") {
      ok = set_rate(&plan.trace_drop_rate);
    } else if (key == "dup") {
      ok = set_rate(&plan.duplicate_rate);
    } else if (key == "dup_burst") {
      ok = set_int(&plan.duplicate_burst_max, 1);
    } else if (key == "reorder") {
      ok = set_rate(&plan.reorder_rate);
    } else if (key == "reorder_max") {
      ok = set_int(&plan.reorder_max_seconds, 0);
    } else if (key == "corrupt") {
      ok = set_rate(&plan.corrupt_rate);
    } else if (key == "seed") {
      std::int64_t v = 0;
      ok = set_int(&v, 0);
      if (ok) plan.seed = static_cast<std::uint64_t>(v);
    }
    if (!ok) return std::nullopt;
  }
  return plan;
}

}  // namespace rrr::fault
