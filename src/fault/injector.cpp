#include "fault/injector.h"

#include <algorithm>
#include <cassert>

#include "io/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rrr::fault {
namespace {

// Distinct fork salts keep the per-feed split domains disjoint.
constexpr std::uint64_t kBgpStreamSalt = 0xB6FEEDull;
constexpr std::uint64_t kTraceStreamSalt = 0x7CAFEull;
// Stateless blackout-membership hash domains.
constexpr std::uint64_t kCollectorSalt = 0xC011EC7ull;
constexpr std::uint64_t kVpSalt = 0xB1AC0B7ull;
constexpr std::uint64_t kProbeSalt = 0x9E0B1ACull;
// A session table dump is bounded; so is the replay cache.
constexpr std::size_t kMaxCachedRoutesPerVp = 4096;

double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, TimePoint t0,
                             std::int64_t window_seconds)
    : plan_(plan), t0_(t0), window_seconds_(window_seconds) {
  assert(window_seconds_ > 0);
}

void FaultInjector::set_metrics(obs::MetricsRegistry& registry) {
  constexpr auto kSem = obs::Domain::kSemantic;
  obs_bgp_dropped_blackout_ = &registry.counter(
      "rrr_fault_bgp_records_dropped_total", {{"reason", "blackout"}}, kSem,
      "BGP records removed by the fault injector");
  obs_bgp_dropped_loss_ = &registry.counter(
      "rrr_fault_bgp_records_dropped_total", {{"reason", "loss"}}, kSem,
      "BGP records removed by the fault injector");
  obs_bgp_dropped_corrupt_ = &registry.counter(
      "rrr_fault_bgp_records_dropped_total", {{"reason", "corrupt"}}, kSem,
      "BGP records removed by the fault injector");
  obs_bgp_corrupted_ = &registry.counter(
      "rrr_fault_bgp_records_corrupted_total", {}, kSem,
      "BGP records whose corrupted line still parsed");
  obs_bgp_duplicated_ = &registry.counter(
      "rrr_fault_bgp_records_duplicated_total", {}, kSem,
      "extra duplicate copies emitted by the fault injector");
  obs_bgp_reordered_ = &registry.counter(
      "rrr_fault_bgp_records_reordered_total", {}, kSem,
      "BGP records whose timestamp was jittered");
  obs_bgp_replayed_ = &registry.counter(
      "rrr_fault_bgp_records_replayed_total", {}, kSem,
      "session-reset replay records emitted after a blackout");
  obs_trace_dropped_blackout_ = &registry.counter(
      "rrr_fault_traces_dropped_total", {{"reason", "blackout"}}, kSem,
      "public traceroutes removed by the fault injector");
  obs_trace_dropped_loss_ = &registry.counter(
      "rrr_fault_traces_dropped_total", {{"reason", "loss"}}, kSem,
      "public traceroutes removed by the fault injector");
}

std::int64_t FaultInjector::window_of(TimePoint t) const {
  std::int64_t delta = t.seconds() - t0_.seconds();
  if (delta < 0) delta -= window_seconds_ - 1;  // floor toward -inf
  return delta / window_seconds_;
}

bool FaultInjector::blackout_active(std::int64_t window) const {
  return plan_.blackout_windows > 0 &&
         window >= plan_.blackout_start_window &&
         window < plan_.blackout_start_window + plan_.blackout_windows;
}

bool FaultInjector::collector_blacked(const std::string& collector) const {
  if (plan_.collector_blackout_fraction <= 0.0) return false;
  std::uint64_t h =
      mix64(hash_combine(plan_.seed ^ kCollectorSalt, fnv1a(collector)));
  return to_unit(h) < plan_.collector_blackout_fraction;
}

bool FaultInjector::vp_blacked(bgp::VpId vp) const {
  if (plan_.vp_blackout_fraction <= 0.0) return false;
  std::uint64_t h = mix64(hash_combine(plan_.seed ^ kVpSalt, vp));
  return to_unit(h) < plan_.vp_blackout_fraction;
}

bool FaultInjector::probe_blacked(tr::ProbeId probe) const {
  if (plan_.vp_blackout_fraction <= 0.0) return false;
  std::uint64_t h = mix64(hash_combine(plan_.seed ^ kProbeSalt, probe));
  return to_unit(h) < plan_.vp_blackout_fraction;
}

Rng& FaultInjector::bgp_stream(bgp::VpId vp) {
  auto it = bgp_streams_.find(vp);
  if (it == bgp_streams_.end()) {
    it = bgp_streams_
             .emplace(vp, Rng(plan_.seed).fork(kBgpStreamSalt).split(vp))
             .first;
  }
  return it->second;
}

Rng& FaultInjector::trace_stream(tr::ProbeId probe) {
  auto it = trace_streams_.find(probe);
  if (it == trace_streams_.end()) {
    it = trace_streams_
             .emplace(probe,
                      Rng(plan_.seed).fork(kTraceStreamSalt).split(probe))
             .first;
  }
  return it->second;
}

void FaultInjector::remember(const bgp::BgpRecord& record) {
  if (!plan_.session_reset_replay) return;
  auto& routes = last_routes_[record.vp];
  std::string key = record.prefix.to_string();
  if (record.type == bgp::RecordType::kWithdrawal) {
    routes.erase(key);
    return;
  }
  if (record.as_path.empty()) return;
  if (routes.size() >= kMaxCachedRoutesPerVp && !routes.contains(key)) return;
  routes.insert_or_assign(std::move(key), record);
}

std::optional<bgp::BgpRecord> FaultInjector::corrupt(
    const bgp::BgpRecord& record, Rng& rng) {
  std::string line = io::to_line(record);
  std::int64_t edits = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < edits && !line.empty(); ++i) {
    std::size_t pos = rng.index(line.size());
    switch (rng.uniform_int(0, 3)) {
      case 0:  // byte stomp
        line[pos] = static_cast<char>(rng.uniform_int(0, 255));
        break;
      case 1:  // truncation
        line.resize(pos);
        break;
      case 2:  // NUL splice
        line.insert(line.begin() + static_cast<std::ptrdiff_t>(pos), '\0');
        break;
      default:  // byte loss
        line.erase(line.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
    }
  }
  return io::bgp_record_from_line(line);
}

std::vector<bgp::BgpRecord> FaultInjector::on_bgp_record(
    const bgp::BgpRecord& record) {
  std::vector<bgp::BgpRecord> out;
  const std::int64_t window = window_of(record.time);
  const bool stream_blacked =
      collector_blacked(record.collector) || vp_blacked(record.vp);

  if (stream_blacked && blackout_active(window)) {
    ++stats_.bgp_blackout_dropped;
    obs::inc(obs_bgp_dropped_blackout_);
    if (tracer_ != nullptr && window != last_traced_blackout_window_) {
      last_traced_blackout_window_ = window;
      tracer_->instant("fault_blackout_active", "fault", window);
    }
    return out;
  }

  // Session re-establishment: when the blackout ends, every blacked-out
  // session comes back at roughly the same moment and dumps its last-known
  // table as a burst of duplicate announcements. The dump is triggered by
  // the first record (from any stream) past the blackout, so every
  // replayed table lands in the same window — the synchronized
  // re-establishment storm a collector restart produces, and the hard case
  // for the burst monitor's independent-VP quorum.
  if (plan_.session_reset_replay && plan_.blackout_windows > 0 &&
      !replay_done_ &&
      window >= plan_.blackout_start_window + plan_.blackout_windows) {
    replay_done_ = true;
    const std::int64_t replayed_before = stats_.bgp_replayed;
    for (const auto& [vp, routes] : last_routes_) {
      if (routes.empty()) continue;
      if (!vp_blacked(vp) &&
          !collector_blacked(routes.begin()->second.collector)) {
        continue;
      }
      for (const auto& [prefix, cached] : routes) {
        bgp::BgpRecord dup = cached;
        dup.time = record.time;
        dup.type = bgp::RecordType::kAnnouncement;
        out.push_back(std::move(dup));
        ++stats_.bgp_replayed;
        obs::inc(obs_bgp_replayed_);
      }
    }
    if (tracer_ != nullptr) {
      tracer_->instant("fault_replay_storm", "fault", window, "records",
                       stats_.bgp_replayed - replayed_before);
    }
  }

  Rng& rng = bgp_stream(record.vp);
  if (plan_.drop_rate > 0.0 && rng.bernoulli(plan_.drop_rate)) {
    ++stats_.bgp_dropped;
    obs::inc(obs_bgp_dropped_loss_);
    return out;
  }

  bgp::BgpRecord current = record;
  if (plan_.corrupt_rate > 0.0 && rng.bernoulli(plan_.corrupt_rate)) {
    auto mangled = corrupt(current, rng);
    if (!mangled) {
      ++stats_.bgp_corrupt_dropped;
      obs::inc(obs_bgp_dropped_corrupt_);
      return out;
    }
    ++stats_.bgp_corrupted;
    obs::inc(obs_bgp_corrupted_);
    current = std::move(*mangled);
  }

  if (plan_.reorder_rate > 0.0 && plan_.reorder_max_seconds > 0 &&
      rng.bernoulli(plan_.reorder_rate)) {
    std::int64_t jitter =
        rng.uniform_int(-plan_.reorder_max_seconds, plan_.reorder_max_seconds);
    std::int64_t jittered =
        std::max<std::int64_t>(0, current.time.seconds() + jitter);
    if (jittered != current.time.seconds()) {
      current.time = TimePoint(jittered);
      ++stats_.bgp_reordered;
      obs::inc(obs_bgp_reordered_);
    }
  }

  remember(current);

  std::int64_t copies = 0;
  if (plan_.duplicate_rate > 0.0 && rng.bernoulli(plan_.duplicate_rate)) {
    copies = rng.uniform_int(
        1, std::max<std::int64_t>(1, plan_.duplicate_burst_max));
  }
  out.push_back(current);
  for (std::int64_t i = 0; i < copies; ++i) {
    out.push_back(current);
    ++stats_.bgp_duplicated;
    obs::inc(obs_bgp_duplicated_);
  }
  return out;
}

std::optional<tr::Traceroute> FaultInjector::on_public_trace(
    const tr::Traceroute& trace) {
  if (probe_blacked(trace.probe) && blackout_active(window_of(trace.time))) {
    ++stats_.trace_blackout_dropped;
    obs::inc(obs_trace_dropped_blackout_);
    return std::nullopt;
  }
  if (plan_.trace_drop_rate > 0.0 &&
      trace_stream(trace.probe).bernoulli(plan_.trace_drop_rate)) {
    ++stats_.trace_dropped;
    obs::inc(obs_trace_dropped_loss_);
    return std::nullopt;
  }
  return trace;
}

}  // namespace rrr::fault
