// Declarative fault plans for the feed-degradation harness.
//
// A `FaultPlan` describes, ahead of time, how the BGP and public-traceroute
// feeds misbehave during a run: which fraction of collectors / vantage
// points go dark and when, how many records are lost outright, how often a
// record is replayed as a duplicate burst (session-reset style), how far
// timestamps jitter out of order, and how often a record's wire line is
// corrupted byte-wise before re-parsing. The plan is pure data — the
// `FaultInjector` (injector.h) interprets it deterministically from
// `plan.seed`, so a (plan, seed) pair replays bit-identically regardless of
// engine sharding or threading.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rrr::fault {

struct FaultPlan {
  // Blackout: the chosen fraction of collectors (whole collectors, all
  // their VPs) and/or individual vantage points emit nothing during windows
  // [blackout_start_window, blackout_start_window + blackout_windows).
  // vp_blackout_fraction also silences that fraction of public-traceroute
  // probes over the same windows. A blackout with blackout_windows <= 0 is
  // inert.
  double collector_blackout_fraction = 0.0;
  double vp_blackout_fraction = 0.0;
  std::int64_t blackout_start_window = 0;
  std::int64_t blackout_windows = 0;
  // When a blacked-out BGP stream comes back, replay its last-known routes
  // as a burst of duplicate announcements — the signature of a BGP session
  // re-establishing and dumping its table.
  bool session_reset_replay = false;

  // Uniform record loss, applied per BGP record / public trace.
  double drop_rate = 0.0;
  double trace_drop_rate = 0.0;

  // Duplicate bursts: with probability duplicate_rate a record is re-emitted
  // 1..duplicate_burst_max extra times back-to-back.
  double duplicate_rate = 0.0;
  std::int64_t duplicate_burst_max = 3;

  // Bounded reordering: with probability reorder_rate a record's timestamp
  // jitters uniformly within ±reorder_max_seconds (clamped at 0).
  double reorder_rate = 0.0;
  std::int64_t reorder_max_seconds = 0;

  // Field corruption: with probability corrupt_rate a record is serialized
  // with io::to_line, a few bytes are mangled, and the line is re-parsed
  // through io::bgp_record_from_line. Lines the hardened parser rejects are
  // counted as drops; lines that still parse carry the corrupted fields.
  double corrupt_rate = 0.0;

  std::uint64_t seed = 1;

  // True when any clause can alter the stream; a default plan is a no-op
  // and costs nothing (the injector is not even constructed).
  bool enabled() const;

  // Canonical `key=value,...` spec, parseable by parse(). Only non-default
  // clauses are rendered; an inert plan renders "".
  std::string spec() const;

  // Parses a spec string ("collector_blackout=0.3,blackout_start=96,...").
  // Unknown keys or unparseable values yield nullopt. Empty spec = default
  // plan. Keys: collector_blackout, vp_blackout, blackout_start,
  // blackout_windows, reset_replay, drop, trace_drop, dup, dup_burst,
  // reorder, reorder_max, corrupt, seed.
  static std::optional<FaultPlan> parse(std::string_view spec);
};

}  // namespace rrr::fault
