// Declarative storage-fault plans, the disk-side sibling of FaultPlan.
//
// An `IoFaultPlan` describes how the state store's disk misbehaves: the
// probability that a snapshot/WAL write is torn at a random byte, that a
// bit flips on the way down, that write/fsync/rename/read report ENOSPC
// or EIO, or that the process "dies" between writing a temp file and the
// publishing rename. The plan is pure data — `IoFaultInjector` interprets
// it deterministically from `plan.seed` as a store::IoEnv, so a (plan,
// seed) pair replays bit-identically: store IO runs serially on the
// driver thread, and every decision is drawn from a per-op-kind
// `Rng::split` stream in call order.
//
// Fault taxonomy (matching store::IoOutcome):
//   silent    torn writes, bit flips, crash-renames — the store call
//             *succeeds*; the damage surfaces at read time through frame
//             checksums and is the RecoveryManager's problem.
//   reported  ENOSPC / EIO — thrown as StoreError(kIo), carrying a
//             transient flag drawn from `transient_fraction`; transient
//             faults clear after `transient_clears_after` retries, which
//             is what the RetryPolicy's backoff loop exercises.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "netbase/rng.h"
#include "store/io_env.h"

namespace rrr::fault {

struct IoFaultPlan {
  // Silent write-path corruption (writes and WAL appends).
  double torn_write_rate = 0.0;
  double bit_flip_rate = 0.0;
  // Reported write-path errors.
  double enospc_rate = 0.0;
  double eio_write_rate = 0.0;
  double eio_fsync_rate = 0.0;
  double eio_rename_rate = 0.0;
  // Reported read-path errors (always transient: a flaky read never
  // permanently hides data that is on the disk).
  double eio_read_rate = 0.0;
  // Silent crash between temp-file write and rename: the temp file is
  // fully written and stranded, nothing is published.
  double crash_rename_rate = 0.0;

  // Fraction of reported write-path errors classified transient, and how
  // many retries a transient fault survives before clearing.
  double transient_fraction = 0.75;
  int transient_clears_after = 2;

  std::uint64_t seed = 1;

  // True when any clause can fire; a default plan is a no-op and the
  // injector is not even constructed.
  bool enabled() const;

  // Canonical `key=value,...` spec / parser, FaultPlan-style: only
  // non-default clauses render; "" is the default plan. Keys: torn,
  // bitflip, enospc, eio, eio_fsync, eio_rename, eio_read, crash_rename,
  // transient, clears_after, seed.
  std::string spec() const;
  static std::optional<IoFaultPlan> parse(std::string_view spec);
};

// Deterministic store::IoEnv interpreting an IoFaultPlan.
//
// Attempt 0 of a logical op draws a fresh outcome from the op-kind's
// stream and caches it keyed by (op, path); retries (attempt > 0) replay
// the cached outcome without consuming randomness, except that a cached
// transient fault clears once `attempt >= transient_clears_after` — the
// disk "recovered", and the retry loop's persistence paid off.
class IoFaultInjector : public store::IoEnv {
 public:
  explicit IoFaultInjector(const IoFaultPlan& plan);

  store::IoOutcome on_op(store::IoOp op, std::string_view path,
                         std::uint64_t size, int attempt) override;

  const IoFaultPlan& plan() const { return plan_; }

  struct Stats {
    std::int64_t ops = 0;  // on_op consultations, all attempts
    std::int64_t torn = 0;
    std::int64_t bitflip = 0;
    std::int64_t enospc = 0;
    std::int64_t eio = 0;
    std::int64_t crash_rename = 0;
    std::int64_t cleared = 0;  // transient faults that cleared on retry
  };
  const Stats& stats() const { return stats_; }

 private:
  store::IoOutcome draw(store::IoOp op, std::uint64_t size);
  Rng& stream(store::IoOp op);

  IoFaultPlan plan_;
  std::map<int, Rng> streams_;  // one per IoOp kind
  // Last attempt-0 outcome per (op, path) — what retries replay.
  std::map<std::pair<int, std::string>, store::IoOutcome> decisions_;
  Stats stats_;
};

}  // namespace rrr::fault
