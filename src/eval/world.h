// World: one fully-wired experiment instance — topology, control plane,
// BGP feed, measurement platform, processing pipeline, staleness engine,
// and ground truth — plus the timeline runner every bench builds on.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "bgp/feed.h"
#include "eval/ground_truth.h"
#include "fault/injector.h"
#include "fault/io_plan.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "routing/control_plane.h"
#include "routing/events.h"
#include "signals/sharded_engine.h"
#include "store/checkpoint.h"
#include "store/io_env.h"
#include "topology/builder.h"
#include "tracemap/pipeline.h"
#include "traceroute/platform.h"

namespace rrr::serve {
class StalenessService;
}  // namespace rrr::serve

namespace rrr::eval {

struct WorldParams {
  topo::TopologyParams topology;
  routing::DynamicsParams dynamics;
  bgp::FeedParams feed;
  tr::ProberParams prober;
  tr::PlatformParams platform;
  tracemap::PipelineParams pipeline;
  signals::SubpathParams subpath;
  signals::BorderMonitorParams border;

  double peeringdb_completeness = 0.9;

  // Corpus shape (retrospective evaluation, §5.1): probes split into
  // P_public / P_corpus; anchors are the destinations.
  int corpus_pair_target = 2000;   // (probe, anchor) pairs monitored
  int corpus_dest_count = 40;      // anchors used as destinations

  // Public traceroute feed.
  int public_dest_count = 120;
  int public_traces_per_window = 200;

  int days = 30;
  int warmup_days = 2;  // BGP collection starts before corpus init (§5)
  // Retrospective mode (§5.1): the anchoring mesh remeasures every pair
  // every 900 s, so the engine gets refresh feedback (and the paper's
  // calibration, Appendix B) continuously at no modeled probing cost. We
  // model it every `recalibration_interval_windows` base windows (0 = off);
  // grading must be frequent relative to event durations or correct
  // signals about since-reverted changes are graded as false positives.
  int recalibration_interval_windows = 8;
  std::uint64_t seed = 42;
  // Parallelism degree of the staleness engine's window closing. Purely a
  // throughput knob: signal output is identical at any value (the engine's
  // determinism contract, DESIGN.md "Runtime & determinism").
  int engine_threads = 1;
  // Corpus partition count of the sharded engine (DESIGN.md "Sharded
  // engine"). Like engine_threads, a pure throughput knob: the signal
  // stream is bit-identical for any (shards, threads) combination.
  int engine_shards = 1;
  // Overlap the BGP-table absorb with the monitor closes via the epoch
  // table's shadow buffer (DESIGN.md §10 "Epoch pipeline"). Another pure
  // throughput knob: off recovers the exact serial schedule, and the signal
  // stream plus semantic telemetry are bit-identical either way.
  bool pipeline_absorb = true;
  // Enables the telemetry registry + per-window stats series (DESIGN.md
  // "Observability"). The RRR_STATS environment variable force-enables it
  // regardless of this flag; when off, the engine's instrumentation sites
  // degrade to null-pointer branches.
  bool telemetry = false;
  // Enables the flight recorder (DESIGN.md §13): structured trace spans of
  // the window-close machinery, drained at window boundaries and exported
  // via trace_json(). RRR_TRACE force-enables it the same way RRR_STATS
  // force-enables telemetry. Runtime-domain only: the semantic snapshot is
  // byte-identical with tracing on or off.
  bool trace = false;
  obs::TraceParams trace_params;
  // Slow-window watchdog (obs/watchdog.h): snapshots the flight recorder
  // and metrics when a window close exceeds the EWMA-derived deadline.
  // Off by default (watchdog.enabled).
  obs::WatchdogParams watchdog;
  // Fault plan applied at the feed boundary (DESIGN.md "Fault model &
  // degradation"). Inert by default; the injector is only constructed when
  // fault_plan.enabled().
  fault::FaultPlan fault_plan;
  // Feed-health quarantine parameters, forwarded to the engine. Off by
  // default (the tracker is not constructed).
  signals::FeedHealthParams feed_health;

  // --- durable checkpoint/resume (DESIGN.md §11) ---
  // Directory receiving periodic snapshots plus the exogenous-op WAL;
  // empty = checkpointing off.
  std::string checkpoint_dir;
  // Snapshot cadence in closed windows (clamped to >= 1). Windows between
  // snapshots are covered by the WAL: resume restores the newest snapshot
  // at or before the target and replays the tail live.
  int checkpoint_every = 1;
  // Checkpoint directory to resume from; empty = cold start. Construction
  // fast-forwards the world to `resume_window` (or, when -1, the furthest
  // state the directory can reconstruct) before the first run_until call.
  // The snapshot must have been written under the same world parameters
  // (fingerprint-checked); shard count must match too (the engine's own
  // check). Refresh-cycle ops are only replayable when they went through
  // World::plan_refreshes / World::refresh_pair rather than the engine
  // directly.
  std::string resume_from;
  std::int64_t resume_window = -1;

  // --- crash-fault tolerance (DESIGN.md §14) ---
  // Storage fault plan applied to every physical store IO (snapshot and
  // WAL reads/writes). Inert by default; like fault_plan it is a
  // robustness knob, deliberately excluded from the params fingerprint —
  // injected storage faults must never change the semantic timeline.
  fault::IoFaultPlan io_fault_plan;
  // Retry policy for transient-classified store IO errors. The default
  // (max_attempts = 1) disables retrying.
  store::RetryPolicy io_retry;
  // Run under the self-healing supervisor (eval/supervisor.h): a failed
  // window close scrubs the checkpoint directory, restores the last good
  // state, and replays. Read by run_supervised / the benches, not by
  // World itself.
  bool supervise = false;
};

class World {
 public:
  explicit World(const WorldParams& params);

  // --- components ---
  const WorldParams& params() const { return params_; }
  topo::Topology& topology() { return topology_; }
  routing::ControlPlane& control_plane() { return *cp_; }
  bgp::FeedSimulator& feed() { return *feed_; }
  tr::Platform& platform() { return *platform_; }
  tracemap::ProcessingContext& processing() { return *processing_; }
  signals::ShardedStalenessEngine& engine() { return *engine_; }
  GroundTruth& ground_truth() { return *ground_truth_; }
  Rng& rng() { return rng_; }
  // Null when WorldParams::fault_plan is inert.
  const fault::FaultInjector* fault_injector() const { return fault_.get(); }
  // Store IO context (retries + fault injection). Null unless
  // checkpointing or resume is configured.
  store::IoContext* io_context() { return io_.get(); }
  // Null when WorldParams::io_fault_plan is inert.
  const fault::IoFaultInjector* io_fault_injector() const {
    return io_fault_.get();
  }

  // --- timeline ---
  TimePoint start() const { return TimePoint(0); }
  TimePoint corpus_t0() const {
    return start() + params_.warmup_days * kSecondsPerDay;
  }
  TimePoint end() const {
    return corpus_t0() + params_.days * kSecondsPerDay;
  }

  const std::vector<tr::ProbeId>& corpus_probes() const {
    return corpus_probes_;
  }
  const std::vector<tr::ProbeId>& public_probes() const {
    return public_probes_;
  }
  const std::vector<Ipv4>& corpus_dests() const { return corpus_dests_; }
  const std::vector<Ipv4>& public_dests() const { return public_dests_; }

  // Issues the t0 traceroutes for the monitored (probe, anchor) pairs and
  // registers them with the engine and ground truth. Call after running the
  // warmup (so the BGP table view is populated). Returns the pair count.
  // Idempotent: a world resumed past corpus init returns the existing
  // count without re-issuing anything.
  std::size_t initialize_corpus();
  bool corpus_initialized() const { return corpus_initialized_; }

  // Issues (and tracks) one corpus refresh measurement right now.
  tr::Traceroute issue_corpus_traceroute(const tr::PairKey& pair,
                                         TimePoint t);

  // --- WAL-logged refresh cycle ---
  // Checkpoint-aware wrappers over the engine's refresh cycle: each call is
  // appended to the checkpoint WAL (when checkpointing is on) with the
  // window clock and replay point at which it ran, so a resumed run
  // re-applies it at exactly the same place in the timeline. Drivers that
  // want resumability must go through these, not world.engine() directly.
  std::vector<tr::PairKey> plan_refreshes(int budget);
  signals::RefreshOutcome refresh_pair(const tr::PairKey& pair, TimePoint t);

  // Remeasures every corpus pair and feeds the outcomes to the engine's
  // calibration (the daily_recalibration step).
  void recalibrate_all(TimePoint t);
  // Times at which recalibrate_all ran (for the staleness oracle).
  const std::vector<TimePoint>& recalibration_times() const {
    return recalibration_times_;
  }

  struct Hooks {
    // Signals generated in a closed window.
    std::function<void(std::int64_t window, TimePoint window_end,
                       std::vector<signals::StalenessSignal>&&)>
        on_signals;
    // End of a simulated day (relative to world start).
    std::function<void(int day_index, TimePoint day_end)> on_day;
  };

  // Attaches (or detaches, with null) the staleness query service: after
  // every closed window — in the serial section, before hooks.on_signals —
  // the world hands the service the engine's per-pair state and the
  // window's signals so it can publish a fresh ServingSnapshot. Borrowed;
  // must outlive every subsequent run_until call. The service only reads,
  // so attaching it never changes the semantic timeline (pinned by
  // tests/serve_test.cpp).
  void attach_serving(serve::StalenessService* service) { serving_ = service; }
  serve::StalenessService* serving() const { return serving_; }

  // Advances the world to `t`: applies routing events and public
  // measurements in time order, feeds the engine, closes windows.
  void run_until(TimePoint t, const Hooks& hooks = {});

  // Convenience: warmup + corpus init + full run.
  void run_all(const Hooks& hooks = {});

  std::int64_t window_seconds() const { return kBaseWindowSeconds; }
  // Number of fully closed base windows (the checkpoint clock).
  std::int64_t completed_windows() const {
    return (now_ - start()) / window_seconds();
  }

  // Digest of the parameters that shape the simulated timeline; snapshots
  // written under a different fingerprint must not feed a resume. The
  // supervisor passes this to RecoveryManager::scrub.
  static std::uint64_t fingerprint(const WorldParams& params);

  // --- telemetry (null/empty unless WorldParams::telemetry or RRR_STATS) ---
  const obs::MetricsRegistry* metrics() const { return metrics_.get(); }
  // Mutable registry access for the supervisor's rrr_recovery_* counters
  // (null when telemetry is off).
  obs::MetricsRegistry* metrics_mutable() { return metrics_.get(); }
  // Full cumulative snapshot as a JSON metric array.
  std::string stats_json() const {
    return metrics_ ? obs::to_json(metrics_->snapshot()) : "[]";
  }
  // Same registry in Prometheus text exposition format.
  std::string stats_prometheus() const {
    return metrics_ ? obs::to_prometheus(metrics_->snapshot()) : "";
  }
  // Semantic-domain-only snapshot: byte-identical across any
  // (shards, threads) grid point (the determinism contract).
  std::string semantic_stats_json() const {
    return metrics_ ? obs::to_json(metrics_->snapshot(obs::Domain::kSemantic))
                    : "[]";
  }
  // Per-window sparse series sampled after each closed window.
  std::string stats_series_json() const {
    return series_ ? series_->json() : "[]";
  }

  // --- tracing (null/empty unless WorldParams::trace or RRR_TRACE) ---
  obs::TraceRecorder* tracer() { return tracer_.get(); }
  // Chrome trace-event / Perfetto JSON of the flight recorder: everything
  // drained through the last closed window. Always a valid document, even
  // with tracing off. Safe from another thread (a live introspection
  // endpoint) concurrently with the run.
  std::string trace_json() const {
    return tracer_ ? tracer_->json()
                   : "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
  }
  // Null unless WorldParams::watchdog.enabled.
  const obs::Watchdog* watchdog() const { return watchdog_.get(); }
  std::string watchdog_reports_json() const {
    return watchdog_ ? watchdog_->reports_json() : "[]";
  }

 private:
  void process_event(const routing::Event& event);
  void issue_public_trace(TimePoint t);
  // Routes one producer record through the fault injector (when present)
  // into the engine.
  void feed_bgp(const bgp::BgpRecord& record);

  // --- checkpoint/resume machinery (DESIGN.md §11) ---
  // Where in a window an exogenous op ran — resume must replay it at the
  // same call site because platform/world RNG draws interleave with the
  // window's own work (recalibration, churn, the next window's feeds).
  enum class ReplayPoint : std::uint8_t {
    kHook = 0,      // inside the on_signals hook of a closing window
    kDay = 1,       // inside the on_day hook of a day boundary
    kBoundary = 2,  // between run_until calls
  };
  // Digest of the parameters that shape the simulated timeline (seed,
  // corpus/feed shape, fault plan, ...). Pure throughput knobs — threads,
  // pipeline_absorb — are excluded; shard count is verified separately by
  // the engine's own loader.
  std::uint64_t params_fingerprint() const;
  // Appends one op to the WAL at the current (clock, replay point). No-op
  // unless checkpointing is on, and always a no-op during replay.
  void log_op(const char* type, std::string payload);
  void apply_wal_op(const store::WalOp& op);
  // Writes a full snapshot (engine, patcher, semantic metrics) for the
  // current completed-window count.
  void write_checkpoint();
  void load_checkpoint(const store::SnapshotReader& reader);
  // Constructor tail for WorldParams::resume_from: re-simulates the world
  // side of the timeline with the engine suppressed up to the snapshot,
  // restores the engine there, then replays the remaining windows and WAL
  // ops live.
  void resume_from_checkpoint();

  WorldParams params_;
  Rng rng_;
  // Telemetry sink; declared before the engine, which holds instrument
  // pointers into it.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::StatsSeries> series_;
  // Flight recorder; declared before the engine, which holds the tracer
  // pointer (same lifetime rule as metrics_).
  std::unique_ptr<obs::TraceRecorder> tracer_;
  std::unique_ptr<obs::Watchdog> watchdog_;
  // Fault injector at the feed boundary; null when the plan is inert.
  std::unique_ptr<fault::FaultInjector> fault_;
  // Storage fault environment + retry context for every store IO this
  // world performs. io_fault_ is null when io_fault_plan is inert; io_ is
  // null unless checkpointing or resume is configured.
  std::unique_ptr<fault::IoFaultInjector> io_fault_;
  std::unique_ptr<store::IoContext> io_;
  topo::Topology topology_;
  std::unique_ptr<routing::ControlPlane> cp_;
  std::unique_ptr<bgp::FeedSimulator> feed_;
  std::unique_ptr<tr::Platform> platform_;
  std::unique_ptr<tracemap::ProcessingContext> processing_;
  std::unique_ptr<signals::ShardedStalenessEngine> engine_;
  std::unique_ptr<GroundTruth> ground_truth_;

  // Borrowed serving layer; null when no query service is attached.
  serve::StalenessService* serving_ = nullptr;

  std::vector<routing::Event> schedule_;
  std::size_t event_cursor_ = 0;
  TimePoint now_;
  std::int64_t next_public_trace_slot_ = 0;

  // Checkpoint/resume state. `suppress_engine_` marks the resume
  // fast-forward region before the snapshot: the world (events, platform,
  // fault injector, ground truth) re-simulates live to regenerate its RNG
  // streams and state, while every engine call is skipped — the engine's
  // state comes wholesale from the snapshot. `replaying_` covers the whole
  // fast-forward: WAL writes, snapshot writes, and per-window series
  // samples are suppressed while it is set.
  bool corpus_initialized_ = false;
  bool checkpoint_enabled_ = false;
  bool suppress_engine_ = false;
  bool replaying_ = false;
  ReplayPoint replay_point_ = ReplayPoint::kBoundary;
  // How far the checkpoint WAL has advanced (op count + chained digest).
  // Stamped into every snapshot as its "walpos" section: the world side of
  // a resume is regenerated by WAL replay, so a snapshot is only loadable
  // while the log still holds the exact op prefix it was written over.
  store::WalPosition wal_pos_;
  // rrr_checkpoint_* telemetry (runtime domain; null when telemetry is off
  // or checkpointing is off).
  obs::Counter* obs_snapshots_written_ = nullptr;
  obs::Counter* obs_wal_ops_ = nullptr;
  obs::Gauge* obs_snapshot_bytes_ = nullptr;
  obs::Histogram* obs_checkpoint_write_us_ = nullptr;
  obs::Gauge* obs_resumed_window_ = nullptr;

  std::vector<TimePoint> recalibration_times_;
  std::vector<tr::ProbeId> corpus_probes_;
  std::vector<tr::ProbeId> public_probes_;
  std::vector<Ipv4> corpus_dests_;
  std::vector<Ipv4> public_dests_;
  std::vector<topo::AsIndex> monitored_origins_;
};

}  // namespace rrr::eval
