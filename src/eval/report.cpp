#include "eval/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/export.h"

namespace rrr::eval {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TableWriter::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TableWriter::fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string TableWriter::fmt_pct(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, value * 100.0);
  return buf;
}

std::string TableWriter::fmt_int(std::int64_t value) {
  // Thousands separators for readability of signal counts.
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }
  auto print_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << cells[i];
      os << std::string(widths[i] - cells[i].size(), ' ');
    }
    os << " |\n";
  };
  auto print_sep = [&] {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      os << (i == 0 ? "+" : "+") << std::string(widths[i] + 2, '-');
    }
    os << "+\n";
  };
  print_sep();
  print_line(headers_);
  print_sep();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_sep();
    } else {
      print_line(row.cells);
    }
  }
  print_sep();
}

void print_banner(std::ostream& os, const std::string& id,
                  const std::string& title, const std::string& paper_note) {
  os << "\n=== " << id << ": " << title << " ===\n";
  if (!paper_note.empty()) os << "paper: " << paper_note << "\n";
  os << "\n";
}

void print_stats_summary(std::ostream& os, const obs::Snapshot& snapshot) {
  TableWriter table({"metric", "kind", "value/count", "sum", "p50", "p99"});
  for (const obs::MetricSnapshot& m : snapshot) {
    if (m.kind != obs::Kind::kHistogram) {
      table.add_row({m.key(),
                     m.kind == obs::Kind::kCounter ? "counter" : "gauge",
                     TableWriter::fmt_int(m.value), "", "", ""});
      continue;
    }
    auto quantile = [&](double q) {
      double value = obs::histogram_quantile(m, q);
      return std::isfinite(value) ? TableWriter::fmt(value, 0) : "inf";
    };
    table.add_row({m.key(), "histogram", TableWriter::fmt_int(m.count),
                   TableWriter::fmt(m.sum, 0), quantile(0.5),
                   quantile(0.99)});
  }
  table.print(os);
}

void print_cdf(std::ostream& os, const std::string& label, const Cdf& cdf) {
  os << label << " (n=" << cdf.size() << "): ";
  if (cdf.empty()) {
    os << "no data\n";
    return;
  }
  const double quantiles[] = {0.10, 0.25, 0.50, 0.75, 0.90, 1.0};
  for (double q : quantiles) {
    os << "p" << static_cast<int>(q * 100) << "="
       << TableWriter::fmt(cdf.quantile(q), 2) << " ";
  }
  os << "\n";
}

}  // namespace rrr::eval
