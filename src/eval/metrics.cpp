#include "eval/metrics.h"

#include <algorithm>

namespace rrr::eval {
namespace {

int tech_index(signals::Technique t) { return static_cast<int>(t); }

}  // namespace

bool StalenessOracle::stale(const tr::PairKey& pair, TimePoint t) const {
  TimePoint reference = corpus_t0;
  auto it = std::upper_bound(refresh_times.begin(), refresh_times.end(), t);
  if (it != refresh_times.begin()) reference = *(it - 1);
  return ground_truth->stale_at(pair, t, reference);
}

SignalMatcher::SignalMatcher(
    const std::vector<signals::StalenessSignal>& sigs,
    const std::vector<ChangeEvent>& changes, const MatchParams& params,
    const StalenessOracle* oracle)
    : signals_(sigs), changes_(changes), params_(params) {
  // Per-pair sorted change times and signal times.
  std::map<tr::PairKey, std::vector<std::pair<std::int64_t, std::size_t>>>
      changes_by_pair;
  for (std::size_t c = 0; c < changes_.size(); ++c) {
    changes_by_pair[changes_[c].pair].emplace_back(
        changes_[c].time.seconds(), c);
  }
  for (auto& [pair, list] : changes_by_pair) {
    std::sort(list.begin(), list.end());
  }

  matched_.assign(signals_.size(), false);
  correct_.assign(signals_.size(), false);
  change_mask_.assign(changes_.size(), 0u);

  for (std::size_t s = 0; s < signals_.size(); ++s) {
    const signals::StalenessSignal& signal = signals_[s];
    auto it = changes_by_pair.find(signal.pair);
    if (it != changes_by_pair.end()) {
      const auto& list = it->second;
      // The change the signal reports lies inside its generation window,
      // so the matching interval stretches back across the window's span
      // plus the tolerance (§5.3's 30-minute slack); the forward grace
      // credits signals that take a few windows to confirm a change.
      std::int64_t t = signal.time.seconds();
      std::int64_t from = t - signal.span_seconds -
                          params_.tolerance_seconds -
                          params_.forward_grace_seconds;
      auto lo = std::lower_bound(list.begin(), list.end(),
                                 std::make_pair(from, std::size_t{0}));
      for (auto iter = lo; iter != list.end(); ++iter) {
        if (iter->first > t + params_.tolerance_seconds) break;
        matched_[s] = true;
        change_mask_[iter->second] |= 1u << tech_index(signal.technique);
      }
    }
    // Precision: "the traceroute has actually changed" — when an oracle is
    // available, check whether the pair was genuinely stale when flagged.
    correct_[s] = oracle != nullptr
                      ? oracle->stale(signal.pair, signal.time)
                      : matched_[s];
  }
}

Table2Result SignalMatcher::table2(bool strict_precision) const {
  Table2Result result;
  result.total_changes = static_cast<std::int64_t>(changes_.size());
  for (const ChangeEvent& change : changes_) {
    if (change.kind == ChangeKind::kAsLevel) ++result.as_changes;
    if (change.kind == ChangeKind::kBorderLevel) ++result.border_changes;
  }

  std::array<std::int64_t, signals::kTechniqueCount> sig_count{};
  std::array<std::int64_t, signals::kTechniqueCount> sig_matched{};
  for (std::size_t s = 0; s < signals_.size(); ++s) {
    int t = tech_index(signals_[s].technique);
    ++sig_count[static_cast<std::size_t>(t)];
    bool good = strict_precision ? correct_[s] : matched_[s];
    if (good) ++sig_matched[static_cast<std::size_t>(t)];
  }

  constexpr unsigned kBgpMask =
      (1u << 0) | (1u << 1) | (1u << 2);  // aspath, community, burst
  constexpr unsigned kTraceMask = (1u << 3) | (1u << 4) | (1u << 5);

  // Per-category coverage counters: [technique] x {all, as, border}, plus
  // unique variants and the combined masks.
  auto coverage_rows = [&](auto include_change,
                           std::int64_t denom) {
    std::array<std::int64_t, signals::kTechniqueCount> covered{};
    std::array<std::int64_t, signals::kTechniqueCount> unique{};
    std::int64_t any = 0, bgp_any = 0, trace_any = 0;
    for (std::size_t c = 0; c < changes_.size(); ++c) {
      if (!include_change(changes_[c])) continue;
      unsigned mask = change_mask_[c];
      if (mask != 0) ++any;
      if (mask & kBgpMask) ++bgp_any;
      if (mask & kTraceMask) ++trace_any;
      for (int t = 0; t < signals::kTechniqueCount; ++t) {
        if (mask & (1u << t)) {
          ++covered[static_cast<std::size_t>(t)];
          if ((mask & ~(1u << t)) == 0) {
            ++unique[static_cast<std::size_t>(t)];
          }
        }
      }
    }
    struct Out {
      std::array<double, signals::kTechniqueCount> cov, uniq;
      double any, bgp, trace;
    } out{};
    double d = denom > 0 ? static_cast<double>(denom) : 1.0;
    for (int t = 0; t < signals::kTechniqueCount; ++t) {
      out.cov[static_cast<std::size_t>(t)] =
          static_cast<double>(covered[static_cast<std::size_t>(t)]) / d;
      out.uniq[static_cast<std::size_t>(t)] =
          static_cast<double>(unique[static_cast<std::size_t>(t)]) / d;
    }
    out.any = static_cast<double>(any) / d;
    out.bgp = static_cast<double>(bgp_any) / d;
    out.trace = static_cast<double>(trace_any) / d;
    return out;
  };

  auto all_cov = coverage_rows(
      [](const ChangeEvent& c) { return c.kind != ChangeKind::kNone; },
      result.total_changes);
  auto as_cov = coverage_rows(
      [](const ChangeEvent& c) { return c.kind == ChangeKind::kAsLevel; },
      result.as_changes);
  auto border_cov = coverage_rows(
      [](const ChangeEvent& c) {
        return c.kind == ChangeKind::kBorderLevel;
      },
      result.border_changes);

  auto precision_of = [&](std::int64_t matched, std::int64_t total) {
    return total > 0 ? static_cast<double>(matched) /
                           static_cast<double>(total)
                     : 0.0;
  };

  for (int t = 0; t < signals::kTechniqueCount; ++t) {
    auto ti = static_cast<std::size_t>(t);
    TechniqueRow row;
    row.name = signals::to_string(static_cast<signals::Technique>(t));
    row.signal_count = sig_count[ti];
    row.precision = precision_of(sig_matched[ti], sig_count[ti]);
    row.cov_all = all_cov.cov[ti];
    row.cov_all_unique = all_cov.uniq[ti];
    row.cov_as = as_cov.cov[ti];
    row.cov_as_unique = as_cov.uniq[ti];
    row.cov_border = border_cov.cov[ti];
    row.cov_border_unique = border_cov.uniq[ti];
    result.techniques.push_back(std::move(row));
  }

  auto total_row = [&](unsigned mask, const char* name, double cov_all,
                       double cov_as, double cov_border) {
    TechniqueRow row;
    row.name = name;
    std::int64_t count = 0, matched = 0;
    for (int t = 0; t < signals::kTechniqueCount; ++t) {
      if (mask & (1u << t)) {
        count += sig_count[static_cast<std::size_t>(t)];
        matched += sig_matched[static_cast<std::size_t>(t)];
      }
    }
    row.signal_count = count;
    row.precision = precision_of(matched, count);
    row.cov_all = cov_all;
    row.cov_as = cov_as;
    row.cov_border = cov_border;
    return row;
  };
  result.bgp_total = total_row(kBgpMask, "BGP Total", all_cov.bgp,
                               as_cov.bgp, border_cov.bgp);
  result.trace_total = total_row(kTraceMask, "Traceroute total",
                                 all_cov.trace, as_cov.trace,
                                 border_cov.trace);
  result.all = total_row(kBgpMask | kTraceMask, "All techniques",
                         all_cov.any, as_cov.any, border_cov.any);
  return result;
}

std::vector<SignalMatcher::DailyPoint> SignalMatcher::daily_series(
    TimePoint origin, int days) const {
  std::vector<DailyPoint> series(static_cast<std::size_t>(days));
  for (int d = 0; d < days; ++d) series[static_cast<std::size_t>(d)].day = d;

  std::vector<std::array<std::int64_t, 4>> sig_stats(
      static_cast<std::size_t>(days));  // {as_n, as_tp, b_n, b_tp}
  for (std::size_t s = 0; s < signals_.size(); ++s) {
    std::int64_t day = (signals_[s].time - origin) / kSecondsPerDay;
    if (day < 0 || day >= days) continue;
    bool as_level = signals_[s].border_index == signals::kWholePath &&
                    signals_[s].meta.as_level;
    auto& stats = sig_stats[static_cast<std::size_t>(day)];
    if (as_level) {
      ++stats[0];
      if (matched_[s]) ++stats[1];
    } else {
      ++stats[2];
      if (matched_[s]) ++stats[3];
    }
    ++series[static_cast<std::size_t>(day)].signals;
  }
  std::vector<std::array<std::int64_t, 4>> chg_stats(
      static_cast<std::size_t>(days));  // {as_n, as_cov, b_n, b_cov}
  for (std::size_t c = 0; c < changes_.size(); ++c) {
    std::int64_t day = (changes_[c].time - origin) / kSecondsPerDay;
    if (day < 0 || day >= days) continue;
    auto& stats = chg_stats[static_cast<std::size_t>(day)];
    bool covered = change_mask_[c] != 0;
    if (changes_[c].kind == ChangeKind::kAsLevel) {
      ++stats[0];
      if (covered) ++stats[1];
    } else if (changes_[c].kind == ChangeKind::kBorderLevel) {
      ++stats[2];
      if (covered) ++stats[3];
    }
    ++series[static_cast<std::size_t>(day)].changes;
  }
  for (int d = 0; d < days; ++d) {
    auto di = static_cast<std::size_t>(d);
    auto ratio = [](std::int64_t num, std::int64_t den) {
      return den > 0 ? static_cast<double>(num) / static_cast<double>(den)
                     : 0.0;
    };
    series[di].precision_as = ratio(sig_stats[di][1], sig_stats[di][0]);
    series[di].precision_border = ratio(sig_stats[di][3], sig_stats[di][2]);
    series[di].coverage_as = ratio(chg_stats[di][1], chg_stats[di][0]);
    series[di].coverage_border = ratio(chg_stats[di][3], chg_stats[di][2]);
  }
  return series;
}

double Cdf::quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  auto index = static_cast<std::size_t>(
      q * static_cast<double>(values_.size() - 1) + 0.5);
  return values_[index];
}

double Cdf::fraction_at_most(double x) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

}  // namespace rrr::eval
