// Self-healing supervisor loop around a checkpointed World run.
//
// A supervised run turns any classified store failure — a snapshot write
// that hits injected ENOSPC after the retry budget, a WAL append that
// dies, a resume that trips over a corrupted frame — into an automatic
// recovery instead of a process death:
//
//   1. The crashed incarnation is destroyed.
//   2. The checkpoint directory is scrubbed (store::RecoveryManager):
//      stray temp files and corrupt snapshots are quarantined into
//      corrupt/, the WAL is truncated at its first bad frame.
//   3. A fresh World is constructed with resume_from = checkpoint_dir and
//      resume_window = last_hook_window + 1 — the first window whose
//      on_signals hook did *not* complete — and the run continues.
//
// Exactly-once hook-op contract: hook ops of window w are logged with
// clock w + 1, and the resume path's WAL rewrite drops ops with clock
// beyond the resume target, so a window whose hook was interrupted
// mid-flight is re-delivered fresh and its ops re-log exactly once.
// The flip side is that hooks MAY be re-invoked for a window they already
// saw (the crash hit after the hook returned but before durable state
// caught up): hook state must be overwrite-idempotent per window — keyed
// by window index, not appended blindly.
//
// Because replay is deterministic and injected storage faults never alter
// the semantic timeline, a supervised run's semantic signal stream is
// byte-identical to the clean run's — the chaos harness's acceptance bar.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/world.h"
#include "store/recovery.h"

namespace rrr::eval {

struct SupervisorParams {
  // Recoveries allowed before the final StoreError propagates. The bound
  // exists for genuinely unrecoverable environments (a read-only disk),
  // not for injected faults, which always eventually clear or quarantine.
  int max_recoveries = 5;
  // Scrub the checkpoint directory before each resume (and before the
  // first construction when the run itself starts from resume_from).
  bool scrub_on_recovery = true;
};

// One recovery the supervisor performed, for harness logs and tests.
struct RecoveryEvent {
  int attempt = 0;                 // 0-based recovery index
  std::int64_t resume_window = 0;  // window the retry resumed at
  std::string error;               // what() of the triggering StoreError
  store::RecoveryReport report;    // what the pre-resume scrub found
};

class Supervisor {
 public:
  // `params` must have a non-empty checkpoint_dir (recovery restores from
  // it); throws std::invalid_argument otherwise. When params.resume_from
  // is set the directory is scrubbed up front, so a supervised restart
  // after a real crash never trips over the crash's debris.
  explicit Supervisor(WorldParams params, SupervisorParams sup = {});

  // Runs the world end to end (World::run_all), recovering as described
  // above. Throws the final StoreError once max_recoveries is exhausted.
  // `hooks` must follow the re-delivery contract in the header comment.
  void run(const World::Hooks& hooks = {});

  // The current incarnation: valid inside hooks during run() and after
  // run() returns. Asserts when no incarnation exists yet.
  World& world();
  // Releases the final incarnation (the supervisor becomes empty).
  std::unique_ptr<World> take_world();

  const std::vector<RecoveryEvent>& recoveries() const { return events_; }

 private:
  // Writes rrr_recovery_* counters and trace instants into the final
  // incarnation's registry, so recoveries are visible wherever the run's
  // stats land.
  void publish();

  WorldParams params_;
  SupervisorParams sup_;
  WorldParams next_params_;  // what the next incarnation is built from
  std::unique_ptr<World> world_;
  std::vector<RecoveryEvent> events_;
};

// Convenience: supervised when params.supervise is set (with default
// SupervisorParams), plain World::run_all otherwise. Returns the finished
// world for stats extraction, plus any recoveries via `events_out`.
std::unique_ptr<World> run_supervised(
    const WorldParams& params, const World::Hooks& hooks = {},
    std::vector<RecoveryEvent>* events_out = nullptr);

}  // namespace rrr::eval
