#include "eval/supervisor.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace rrr::eval {

namespace {

// The scrub runs under the same fault plan and retry policy as the run
// itself — recovery IO is not magically immune to the flaky disk.
store::RecoveryReport scrub_dir(const std::string& dir,
                                const WorldParams& params) {
  std::unique_ptr<fault::IoFaultInjector> env;
  if (params.io_fault_plan.enabled()) {
    env = std::make_unique<fault::IoFaultInjector>(params.io_fault_plan);
  }
  store::IoContext io(params.io_retry, env.get());
  store::RecoveryManager manager(dir, &io);
  return manager.scrub(World::fingerprint(params));
}

}  // namespace

Supervisor::Supervisor(WorldParams params, SupervisorParams sup)
    : params_(std::move(params)), sup_(sup), next_params_(params_) {
  if (params_.checkpoint_dir.empty()) {
    throw std::invalid_argument(
        "supervised runs require a checkpoint_dir to recover from");
  }
  // A supervised restart after a real crash (kill -9) begins by scrubbing
  // the directory it is about to read, so the crash's debris — a torn
  // snapshot, a severed WAL tail — never reaches the resume path.
  if (!params_.resume_from.empty() && sup_.scrub_on_recovery) {
    scrub_dir(params_.resume_from, params_);
  }
}

void Supervisor::run(const World::Hooks& hooks) {
  std::int64_t last_hook_window = -1;
  World::Hooks wrapped;
  wrapped.on_signals = [&](std::int64_t window, TimePoint window_end,
                           std::vector<signals::StalenessSignal>&& sigs) {
    if (hooks.on_signals) {
      hooks.on_signals(window, window_end, std::move(sigs));
    }
    // Only a hook that *returned* counts as delivered: when a WAL append
    // inside the hook dies, the whole window is re-delivered on recovery
    // and its ops re-log exactly once.
    last_hook_window = window;
  };
  wrapped.on_day = hooks.on_day;

  for (int attempt = 0;; ++attempt) {
    try {
      if (world_ == nullptr) {
        world_ = std::make_unique<World>(next_params_);
        // A resumed incarnation starts past the windows it replayed; user
        // hooks do not fire again for those.
        last_hook_window =
            std::max(last_hook_window, world_->completed_windows() - 1);
      }
      world_->run_all(wrapped);
      // A run can *succeed* while still having absorbed crash-rename
      // faults, each of which strands a `*.tmp`. Sweep them into corrupt/
      // so a finished supervised directory never holds live-looking
      // debris (cheap: no snapshot revalidation).
      store::RecoveryManager tidy(params_.checkpoint_dir);
      tidy.sweep_stray_tmp();
      break;
    } catch (const store::StoreError& error) {
      world_.reset();
      if (attempt >= sup_.max_recoveries) throw;
      RecoveryEvent event;
      event.attempt = attempt;
      event.error = error.what();
      event.resume_window = last_hook_window + 1;
      next_params_ = params_;
      next_params_.resume_from = params_.checkpoint_dir;
      next_params_.resume_window = last_hook_window + 1;
      // Re-derive the injected-fault seed per incarnation (still
      // deterministic). A fresh incarnation rebuilds its injector, whose
      // streams restart from position zero — with the original seed the
      // retry would replay the exact draw sequence that killed the last
      // incarnation and a permanent fault early in a stream would pin
      // every incarnation to the same death, a livelock no real flaky
      // disk exhibits. Robustness knobs are outside the fingerprint, so
      // the semantic timeline is unaffected.
      if (next_params_.io_fault_plan.enabled()) {
        next_params_.io_fault_plan.seed =
            Rng(params_.io_fault_plan.seed).split(0x5EEDu + attempt).seed();
      }
      if (sup_.scrub_on_recovery) {
        event.report = scrub_dir(params_.checkpoint_dir, next_params_);
      }
      events_.push_back(std::move(event));
    }
  }
  publish();
}

World& Supervisor::world() {
  assert(world_ != nullptr);
  return *world_;
}

std::unique_ptr<World> Supervisor::take_world() {
  return std::move(world_);
}

void Supervisor::publish() {
  assert(world_ != nullptr);
  if (obs::TraceRecorder* tracer = world_->tracer()) {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      tracer->instant("recovery", "supervisor");
    }
  }
  obs::MetricsRegistry* registry = world_->metrics_mutable();
  if (registry == nullptr) return;
  constexpr auto kRt = obs::Domain::kRuntime;
  std::int64_t quarantined = 0;
  std::int64_t truncations = 0;
  for (const RecoveryEvent& event : events_) {
    quarantined += static_cast<std::int64_t>(event.report.quarantined.size());
    if (event.report.wal_truncated) ++truncations;
  }
  registry
      ->counter("rrr_recovery_attempts_total", {}, kRt,
                "recoveries the supervisor performed this run")
      .set(static_cast<std::int64_t>(events_.size()));
  registry
      ->counter("rrr_recovery_quarantined_total", {}, kRt,
                "artifacts quarantined into corrupt/ across recoveries")
      .set(quarantined);
  registry
      ->counter("rrr_recovery_wal_truncations_total", {}, kRt,
                "recoveries that truncated a corrupt WAL tail")
      .set(truncations);
  registry
      ->gauge("rrr_recovery_last_resume_window", {}, kRt,
              "window the most recent recovery resumed at")
      .set(events_.empty() ? -1 : events_.back().resume_window);
}

std::unique_ptr<World> run_supervised(const WorldParams& params,
                                      const World::Hooks& hooks,
                                      std::vector<RecoveryEvent>* events_out) {
  if (!params.supervise) {
    auto world = std::make_unique<World>(params);
    world->run_all(hooks);
    return world;
  }
  Supervisor supervisor(params);
  supervisor.run(hooks);
  if (events_out != nullptr) *events_out = supervisor.recoveries();
  return supervisor.take_world();
}

}  // namespace rrr::eval
