#include "eval/ground_truth.h"

#include <climits>

#include "netbase/rng.h"

namespace rrr::eval {

std::uint64_t GroundTruth::flow_of(Ipv4 probe_ip, Ipv4 dst) {
  return hash_combine(hash_combine(probe_ip.value(), dst.value()), 0);
}

ChangeKind GroundTruth::classify(const routing::ForwardPath& before,
                                 const routing::ForwardPath& after) {
  if (before.as_path != after.as_path) return ChangeKind::kAsLevel;
  if (before.crossings != after.crossings) return ChangeKind::kBorderLevel;
  return ChangeKind::kNone;
}

std::uint64_t GroundTruth::border_sig_of(const routing::ForwardPath& path) {
  std::uint64_t h = 0xB04DE4;
  for (const routing::BorderCrossing& c : path.crossings) {
    h = hash_combine(h, (std::uint64_t{c.interconnect} << 1) |
                            (c.forward ? 1u : 0u));
  }
  return h;
}

std::uint64_t GroundTruth::as_sig_of(const routing::ForwardPath& path) {
  std::uint64_t h = 0xA5A5;
  for (topo::AsIndex as : path.as_path) h = hash_combine(h, as);
  return h;
}

std::uint64_t GroundTruth::border_signature_at(const tr::PairKey& pair,
                                               TimePoint t) const {
  const Tracked& tracked = tracked_.at(pair);
  std::uint64_t sig = 0;
  for (const HistoryPoint& point : tracked.history) {
    if (point.time > t) break;
    sig = point.border_sig;
  }
  return sig;
}

std::uint64_t GroundTruth::as_signature_at(const tr::PairKey& pair,
                                           TimePoint t) const {
  const Tracked& tracked = tracked_.at(pair);
  std::uint64_t sig = 0;
  for (const HistoryPoint& point : tracked.history) {
    if (point.time > t) break;
    sig = point.as_sig;
  }
  return sig;
}

routing::ForwardPath GroundTruth::resolve(const Tracked& tracked) const {
  return cp_.resolver().resolve(tracked.probe.as, tracked.probe.city,
                                tracked.dst,
                                flow_of(tracked.probe.ip, tracked.dst),
                                /*with_ip_hops=*/false);
}

void GroundTruth::track(const tr::Probe& probe, Ipv4 dst) {
  tr::PairKey key{probe.id, dst};
  Tracked tracked;
  tracked.probe = probe;
  tracked.dst = dst;
  // Warm the origin so later impacts report its route changes.
  topo::AsIndex origin = cp_.topology().announced_owner_of(dst);
  if (origin != topo::kNoAs) cp_.warm_origin(origin);
  tracked.initial = resolve(tracked);
  tracked.current = tracked.initial;
  tracked.history.push_back(HistoryPoint{TimePoint(INT64_MIN),
                                         border_sig_of(tracked.current),
                                         as_sig_of(tracked.current)});
  reindex(key, routing::ForwardPath{}, tracked.current);
  if (origin != topo::kNoAs) {
    by_route_[{probe.as, origin}].insert(key);
  }
  tracked_[key] = std::move(tracked);
}

void GroundTruth::reindex(const tr::PairKey& key,
                          const routing::ForwardPath& old_path,
                          const routing::ForwardPath& new_path) {
  const topo::Topology& topology = cp_.topology();
  for (const routing::BorderCrossing& c : old_path.crossings) {
    by_link_[topology.interconnect_at(c.interconnect).link].erase(key);
  }
  for (const routing::BorderCrossing& c : new_path.crossings) {
    by_link_[topology.interconnect_at(c.interconnect).link].insert(key);
  }
}

void GroundTruth::recheck(const tr::PairKey& key, TimePoint t,
                          std::uint64_t cause_event) {
  auto it = tracked_.find(key);
  if (it == tracked_.end()) return;
  Tracked& tracked = it->second;
  routing::ForwardPath fresh = resolve(tracked);
  ChangeKind kind = classify(tracked.current, fresh);
  if (kind == ChangeKind::kNone) return;
  std::vector<routing::BorderCrossing> before_crossings =
      tracked.current.crossings;
  reindex(key, tracked.current, fresh);
  tracked.current = std::move(fresh);
  tracked.history.push_back(HistoryPoint{t, border_sig_of(tracked.current),
                                         as_sig_of(tracked.current)});
  int changed_crossing = -1;
  std::size_t n = std::min(before_crossings.size(),
                           tracked.current.crossings.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(before_crossings[i] == tracked.current.crossings[i])) {
      changed_crossing = static_cast<int>(i);
      break;
    }
  }
  if (changed_crossing < 0 &&
      before_crossings.size() != tracked.current.crossings.size()) {
    changed_crossing = static_cast<int>(n);
  }
  changes_.push_back(ChangeEvent{key, t, kind, cause_event,
                                 changed_crossing});
}

void GroundTruth::on_impact(const routing::Event& event,
                            const routing::ControlPlane::Impact& impact) {
  std::set<tr::PairKey> candidates;
  for (const auto& [viewer, origin] : impact.as_route_changes) {
    auto it = by_route_.find({viewer, origin});
    if (it == by_route_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  for (topo::LinkId link : impact.touched_links) {
    auto it = by_link_.find(link);
    if (it == by_link_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  for (const tr::PairKey& key : candidates) {
    recheck(key, event.time, event.id);
  }
}

const routing::ForwardPath& GroundTruth::current(
    const tr::PairKey& pair) const {
  return tracked_.at(pair).current;
}

const routing::ForwardPath& GroundTruth::initial(
    const tr::PairKey& pair) const {
  return tracked_.at(pair).initial;
}

std::vector<tr::PairKey> GroundTruth::pairs() const {
  std::vector<tr::PairKey> out;
  out.reserve(tracked_.size());
  for (const auto& [key, tracked] : tracked_) out.push_back(key);
  return out;
}

}  // namespace rrr::eval
