// Evaluation metrics: matching staleness prediction signals against
// ground-truth path changes, and the precision/coverage accounting used by
// Table 2 and Figures 6-10.
//
// Definitions follow §5: precision = fraction of signals that identify a
// real change of their pair (within a matching tolerance, §5.3 uses 30
// minutes); coverage = fraction of changes for which at least one signal
// fired. "Unique" coverage counts changes detected by exactly one
// technique.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "eval/ground_truth.h"
#include "signals/signal.h"

namespace rrr::eval {

struct MatchParams {
  std::int64_t tolerance_seconds = 30 * kSecondsPerMinute;
  // Detection-delay allowance when crediting a change as covered: adaptive
  // traceroute windows and membership discovery report changes late.
  std::int64_t forward_grace_seconds = 12 * kSecondsPerHour;
};

// Answers "was this pair's true path, at time t, different from what its
// owner believes?" — the paper's precision semantics ("traceroutes that our
// techniques signal as stale have indeed changed"). Belief resets at the
// corpus initialization and at every recalibration round.
struct StalenessOracle {
  const GroundTruth* ground_truth = nullptr;
  TimePoint corpus_t0;
  std::vector<TimePoint> refresh_times;  // sorted

  bool stale(const tr::PairKey& pair, TimePoint t) const;
};

struct TechniqueRow {
  std::string name;
  std::int64_t signal_count = 0;
  double precision = 0.0;
  // Coverage over {all, AS-level, border-level} changes.
  double cov_all = 0.0, cov_all_unique = 0.0;
  double cov_as = 0.0, cov_as_unique = 0.0;
  double cov_border = 0.0, cov_border_unique = 0.0;
};

struct Table2Result {
  std::vector<TechniqueRow> techniques;     // the six techniques
  TechniqueRow bgp_total;                   // three BGP rows combined
  TechniqueRow trace_total;                 // three traceroute rows combined
  TechniqueRow all;                         // everything combined
  std::int64_t total_changes = 0;
  std::int64_t as_changes = 0;
  std::int64_t border_changes = 0;
};

class SignalMatcher {
 public:
  // Without an oracle, precision falls back to window matching (a signal is
  // precise when a change of its pair lies inside its window ± tolerance).
  SignalMatcher(const std::vector<signals::StalenessSignal>& sigs,
                const std::vector<ChangeEvent>& changes,
                const MatchParams& params = {},
                const StalenessOracle* oracle = nullptr);

  // `strict_precision` grades a signal by whether its pair was genuinely
  // stale relative to its owner's last refresh (needs the oracle);
  // otherwise precision follows the paper's construction — a signal is
  // correct when a change of its pair falls inside its window ± matching
  // slack (the anchoring mesh remeasures every round, so reverts count as
  // changes too).
  Table2Result table2(bool strict_precision = false) const;

  // Daily precision/coverage series (Figure 6); day 0 starts at `origin`.
  struct DailyPoint {
    int day = 0;
    double precision_as = 0.0;
    double precision_border = 0.0;
    double coverage_as = 0.0;
    double coverage_border = 0.0;
    std::int64_t signals = 0;
    std::int64_t changes = 0;
  };
  std::vector<DailyPoint> daily_series(TimePoint origin, int days) const;

  // Whether a particular signal matched a real change.
  bool signal_matched(std::size_t signal_index) const {
    return matched_[signal_index];
  }
  // Techniques that matched a particular change (bitmask by technique).
  unsigned change_matched_mask(std::size_t change_index) const {
    return change_mask_[change_index];
  }

 private:
  const std::vector<signals::StalenessSignal>& signals_;
  const std::vector<ChangeEvent>& changes_;
  MatchParams params_;
  std::vector<bool> matched_;        // per signal: window-matched a change
  std::vector<bool> correct_;        // per signal: precision verdict
  std::vector<unsigned> change_mask_;  // per change: bit i = technique i
};

// Simple accumulator for empirical CDFs (Figures 9, 10, 12, 14, 15).
class Cdf {
 public:
  void add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }
  void add(double value, std::int64_t count) {
    for (std::int64_t i = 0; i < count; ++i) values_.push_back(value);
    sorted_ = false;
  }
  double quantile(double q) const;
  double fraction_at_most(double x) const;
  double median() const { return quantile(0.5); }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace rrr::eval
