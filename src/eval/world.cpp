#include "eval/world.h"

#include <algorithm>
#include <cassert>

namespace rrr::eval {

World::World(const WorldParams& params)
    : params_(params),
      rng_(Rng(params.seed).fork(0x0E1D)),
      topology_([&] {
        topo::TopologyParams tp = params.topology;
        tp.seed = Rng(params.seed).fork(1).seed();
        return topo::build_topology(tp);
      }()),
      now_(start()) {
  cp_ = std::make_unique<routing::ControlPlane>(topology_,
                                                rng_.fork(2).seed());

  tr::ProberParams prober = params_.prober;
  prober.seed = rng_.fork(3).seed();
  tr::PlatformParams plat = params_.platform;
  plat.seed = rng_.fork(4).seed();
  platform_ = std::make_unique<tr::Platform>(*cp_, prober, plat);

  // Destinations: the first anchors are the corpus targets; public targets
  // are fresh host addresses scattered across ASes.
  for (int i = 0; i < params_.corpus_dest_count &&
                  i < static_cast<int>(platform_->anchors().size());
       ++i) {
    corpus_dests_.push_back(
        platform_->probe(platform_->anchors()[static_cast<std::size_t>(i)])
            .ip);
  }
  // Public targets: §5.1.2 excludes only the anchoring *targets*, not their
  // host networks, so half of the public feed probes other hosts inside the
  // corpus destination ASes (giving the traceroute techniques visibility of
  // destination-side borders) and half probes random ASes.
  for (int i = 0; i < params_.public_dest_count; ++i) {
    topo::AsIndex as;
    if (i % 2 == 0 && !corpus_dests_.empty()) {
      Ipv4 anchor = corpus_dests_[static_cast<std::size_t>(i / 2) %
                                  corpus_dests_.size()];
      as = topology_.announced_owner_of(anchor);
      if (as == topo::kNoAs) {
        as = static_cast<topo::AsIndex>(rng_.index(topology_.as_count()));
      }
    } else {
      as = static_cast<topo::AsIndex>(rng_.index(topology_.as_count()));
    }
    public_dests_.push_back(topology_.allocate_host_ip(as));
  }

  for (Ipv4 dst : corpus_dests_) {
    topo::AsIndex origin = topology_.announced_owner_of(dst);
    if (origin != topo::kNoAs) monitored_origins_.push_back(origin);
  }
  std::sort(monitored_origins_.begin(), monitored_origins_.end());
  monitored_origins_.erase(
      std::unique(monitored_origins_.begin(), monitored_origins_.end()),
      monitored_origins_.end());

  // BGP feed over all ASes as VP candidates.
  std::vector<topo::AsIndex> candidates(topology_.as_count());
  for (topo::AsIndex as = 0; as < topology_.as_count(); ++as) {
    candidates[as] = as;
  }
  bgp::FeedParams feed_params = params_.feed;
  feed_params.seed = rng_.fork(5).seed();
  feed_ = std::make_unique<bgp::FeedSimulator>(*cp_, feed_params, candidates,
                                               monitored_origins_);

  tracemap::PipelineParams pipeline = params_.pipeline;
  pipeline.seed = rng_.fork(6).seed();
  processing_ = std::make_unique<tracemap::ProcessingContext>(topology_,
                                                              pipeline);

  // Engine wiring: VP metadata, IXP route-server ASNs, relationships,
  // PeeringDB membership snapshot.
  std::vector<bgp::VantagePoint> vps = feed_->vantage_points();
  std::vector<topo::AsIndex> vp_as;
  std::vector<topo::CityId> vp_city;
  std::vector<topo::AsIndex> vp_as_for_schedule;
  for (const bgp::VantagePoint& vp : vps) {
    vp_as.push_back(vp.as_index);
    vp_city.push_back(topology_.as_at(vp.as_index).pops.front());
    vp_as_for_schedule.push_back(vp.as_index);
  }
  std::set<Asn> rs_asns;
  for (const topo::Ixp& ixp : topology_.ixps()) {
    rs_asns.insert(ixp.route_server_asn);
  }
  Rng pdb_rng = rng_.fork(7);
  topo::PeeringDbSnapshot pdb =
      topo::make_peeringdb(topology_, params_.peeringdb_completeness,
                           pdb_rng);
  std::map<topo::IxpId, std::set<Asn>> members;
  for (topo::IxpId i = 0; i < pdb.ixp_members.size(); ++i) {
    members[i] = std::set<Asn>(pdb.ixp_members[i].begin(),
                               pdb.ixp_members[i].end());
  }
  if (params_.telemetry || obs::env_enabled()) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    series_ = std::make_unique<obs::StatsSeries>();
  }

  if (params_.fault_plan.enabled()) {
    fault_ = std::make_unique<fault::FaultInjector>(
        params_.fault_plan, start(), kBaseWindowSeconds);
    if (metrics_) fault_->set_metrics(*metrics_);
  }

  signals::EngineParams engine_params;
  engine_params.t0 = start();
  engine_params.window_seconds = kBaseWindowSeconds;
  engine_params.subpath = params_.subpath;
  engine_params.border = params_.border;
  engine_params.seed = rng_.fork(8).seed();
  engine_params.threads = params_.engine_threads;
  engine_params.shards = params_.engine_shards;
  engine_params.pipeline_absorb = params_.pipeline_absorb;
  engine_params.metrics = metrics_.get();
  engine_params.feed_health = params_.feed_health;
  engine_ = std::make_unique<signals::ShardedStalenessEngine>(
      engine_params, *processing_, std::move(vps), std::move(vp_as),
      std::move(vp_city), std::move(rs_asns),
      signals::AsRelDb::from_topology(topology_), std::move(members));

  ground_truth_ = std::make_unique<GroundTruth>(*cp_);

  schedule_ = routing::generate_schedule(
      topology_, params_.dynamics, start(), end(), monitored_origins_,
      vp_as_for_schedule, rng_.fork(9).seed());

  // Probe split: half public, half corpus (§5.1.1).
  std::vector<tr::ProbeId> regular = platform_->regular_probes();
  rng_.shuffle(regular);
  for (std::size_t i = 0; i < regular.size(); ++i) {
    (i % 2 == 0 ? public_probes_ : corpus_probes_).push_back(regular[i]);
  }

  // Bootstrap the engine's table view from a RIB dump. The dump goes
  // through the injector too: a blacked-out stream contributes nothing to
  // the initial table, as a real collector outage at t0 would.
  for (bgp::BgpRecord& record : feed_->initial_rib(start())) {
    feed_bgp(record);
  }
}

void World::feed_bgp(const bgp::BgpRecord& record) {
  if (fault_ == nullptr) {
    engine_->on_bgp_record(record);
    return;
  }
  for (const bgp::BgpRecord& out : fault_->on_bgp_record(record)) {
    engine_->on_bgp_record(out);
  }
}

std::size_t World::initialize_corpus() {
  assert(now_ == corpus_t0());
  std::vector<std::pair<tr::ProbeId, Ipv4>> pairs;
  for (tr::ProbeId probe : corpus_probes_) {
    for (Ipv4 dst : corpus_dests_) {
      pairs.emplace_back(probe, dst);
    }
  }
  rng_.shuffle(pairs);
  std::size_t target = std::min<std::size_t>(
      pairs.size(), static_cast<std::size_t>(params_.corpus_pair_target));
  std::size_t created = 0;
  for (std::size_t i = 0; i < pairs.size() && created < target; ++i) {
    const auto& [probe_id, dst] = pairs[i];
    const tr::Probe& probe = platform_->probe(probe_id);
    tr::Traceroute trace = platform_->issue(probe_id, dst, now_, 0);
    if (!trace.reached && trace.hops.empty()) continue;  // unroutable
    engine_->watch(probe, trace);
    ground_truth_->track(probe, dst);
    ++created;
  }
  return created;
}

tr::Traceroute World::issue_corpus_traceroute(const tr::PairKey& pair,
                                              TimePoint t) {
  return platform_->issue(pair.probe, pair.dst, t, 0);
}

void World::recalibrate_all(TimePoint t) {
  recalibration_times_.push_back(t);
  for (const tr::PairKey& pair : ground_truth_->pairs()) {
    const tr::Probe& probe = platform_->probe(pair.probe);
    tr::Traceroute fresh = platform_->issue(pair.probe, pair.dst, t, 0);
    engine_->apply_refresh(probe, fresh);
  }
}

void World::process_event(const routing::Event& event) {
  routing::ControlPlane::Impact impact = cp_->apply(event);
  for (bgp::BgpRecord& record : feed_->on_event(event, impact)) {
    feed_bgp(record);
  }
  ground_truth_->on_impact(event, impact);
}

void World::issue_public_trace(TimePoint t) {
  if (public_probes_.empty() || public_dests_.empty()) return;
  // Retry a few times to find an active probe.
  for (int attempt = 0; attempt < 4; ++attempt) {
    tr::ProbeId probe_id = public_probes_[rng_.index(public_probes_.size())];
    if (!platform_->probe(probe_id).active) continue;
    Ipv4 dst = public_dests_[rng_.index(public_dests_.size())];
    int variant = static_cast<int>(rng_.uniform_int(0, 15));
    tr::Traceroute trace = platform_->issue(probe_id, dst, t, variant);
    if (fault_ != nullptr) {
      // The measurement was issued; whether the result reaches the engine
      // is the injector's call (probe blackout / result loss).
      std::optional<tr::Traceroute> kept = fault_->on_public_trace(trace);
      if (kept) engine_->on_public_trace(*kept);
    } else {
      engine_->on_public_trace(trace);
    }
    return;
  }
}

void World::run_until(TimePoint t, const Hooks& hooks) {
  const std::int64_t w = window_seconds();
  while (now_ + w <= t) {
    TimePoint window_end = now_ + w;
    std::int64_t window = (now_ - start()) / w;

    // Public measurement slots, evenly spaced through the window.
    int per_window = params_.public_traces_per_window;
    std::int64_t slot_spacing =
        per_window > 0 ? std::max<std::int64_t>(w / per_window, 1) : w;
    std::int64_t next_slot_offset = 0;
    int slots_done = 0;

    // Merge events and measurement slots in time order.
    while (true) {
      TimePoint next_event_time =
          event_cursor_ < schedule_.size() ? schedule_[event_cursor_].time
                                           : TimePoint(INT64_MAX);
      TimePoint next_slot_time = slots_done < per_window
                                     ? now_ + next_slot_offset
                                     : TimePoint(INT64_MAX);
      TimePoint next = std::min(next_event_time, next_slot_time);
      if (next >= window_end) break;
      if (next_event_time <= next_slot_time) {
        process_event(schedule_[event_cursor_++]);
      } else {
        issue_public_trace(next_slot_time);
        ++slots_done;
        next_slot_offset += slot_spacing;
      }
    }

    std::vector<signals::StalenessSignal> sigs =
        engine_->advance_to(window_end);
    if (hooks.on_signals) {
      hooks.on_signals(window, window_end, std::move(sigs));
    }

    if (params_.recalibration_interval_windows > 0 &&
        (window + 1) % params_.recalibration_interval_windows == 0 &&
        window_end > corpus_t0()) {
      recalibrate_all(window_end);
    }
    bool day_boundary = window_end.seconds() % kSecondsPerDay == 0;
    if (day_boundary) {
      platform_->advance_churn(window_end);
      if (hooks.on_day) {
        hooks.on_day(
            static_cast<int>(window_end.seconds() / kSecondsPerDay) - 1,
            window_end);
      }
    }
    if (series_) series_->sample(window, *metrics_);
    now_ = window_end;
  }
}

void World::run_all(const Hooks& hooks) {
  run_until(corpus_t0(), hooks);
  initialize_corpus();
  run_until(end(), hooks);
}

}  // namespace rrr::eval
