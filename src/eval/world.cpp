#include "eval/world.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <optional>

#include "serve/service.h"
#include "signals/serial.h"
#include "store/codec.h"
#include "store/framing.h"

namespace rrr::eval {
namespace {

// Snapshot section codec for the semantic metric values (counters and
// gauges only — no semantic metric is a histogram). Field order is fixed;
// see store/serial.h.
std::string encode_semantic_metrics(const obs::MetricsRegistry& registry) {
  obs::Snapshot snap = registry.snapshot(obs::Domain::kSemantic);
  store::Encoder enc;
  std::uint64_t count = 0;
  for (const obs::MetricSnapshot& m : snap) {
    if (m.kind != obs::Kind::kHistogram) ++count;
  }
  enc.u64(count);
  for (const obs::MetricSnapshot& m : snap) {
    if (m.kind == obs::Kind::kHistogram) continue;
    enc.str(m.name);
    enc.u8(static_cast<std::uint8_t>(m.kind));
    enc.u8(static_cast<std::uint8_t>(m.domain));
    enc.str(m.help);
    enc.u64(m.labels.size());
    for (const auto& [key, value] : m.labels) {
      enc.str(key);
      enc.str(value);
    }
    enc.i64(m.value);
  }
  return enc.take();
}

obs::Snapshot decode_semantic_metrics(std::string_view payload) {
  store::Decoder dec(payload);
  obs::Snapshot snap;
  std::uint64_t n = dec.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    obs::MetricSnapshot m;
    m.name = std::string(dec.str());
    std::uint8_t kind = dec.u8();
    std::uint8_t domain = dec.u8();
    if (kind > static_cast<std::uint8_t>(obs::Kind::kHistogram) ||
        domain > static_cast<std::uint8_t>(obs::Domain::kRuntime)) {
      throw store::StoreError(store::StoreError::Kind::kCorrupt,
                              "metrics section holds an impossible tag");
    }
    m.kind = static_cast<obs::Kind>(kind);
    m.domain = static_cast<obs::Domain>(domain);
    m.help = std::string(dec.str());
    std::uint64_t labels = dec.u64();
    for (std::uint64_t j = 0; j < labels; ++j) {
      std::string key(dec.str());
      std::string value(dec.str());
      m.labels.emplace_back(std::move(key), std::move(value));
    }
    m.value = dec.i64();
    snap.push_back(std::move(m));
  }
  dec.expect_done();
  return snap;
}

}  // namespace

World::World(const WorldParams& params)
    : params_(params),
      rng_(Rng(params.seed).fork(0x0E1D)),
      topology_([&] {
        topo::TopologyParams tp = params.topology;
        tp.seed = Rng(params.seed).fork(1).seed();
        return topo::build_topology(tp);
      }()),
      now_(start()) {
  cp_ = std::make_unique<routing::ControlPlane>(topology_,
                                                rng_.fork(2).seed());

  tr::ProberParams prober = params_.prober;
  prober.seed = rng_.fork(3).seed();
  tr::PlatformParams plat = params_.platform;
  plat.seed = rng_.fork(4).seed();
  platform_ = std::make_unique<tr::Platform>(*cp_, prober, plat);

  // Destinations: the first anchors are the corpus targets; public targets
  // are fresh host addresses scattered across ASes.
  for (int i = 0; i < params_.corpus_dest_count &&
                  i < static_cast<int>(platform_->anchors().size());
       ++i) {
    corpus_dests_.push_back(
        platform_->probe(platform_->anchors()[static_cast<std::size_t>(i)])
            .ip);
  }
  // Public targets: §5.1.2 excludes only the anchoring *targets*, not their
  // host networks, so half of the public feed probes other hosts inside the
  // corpus destination ASes (giving the traceroute techniques visibility of
  // destination-side borders) and half probes random ASes.
  for (int i = 0; i < params_.public_dest_count; ++i) {
    topo::AsIndex as;
    if (i % 2 == 0 && !corpus_dests_.empty()) {
      Ipv4 anchor = corpus_dests_[static_cast<std::size_t>(i / 2) %
                                  corpus_dests_.size()];
      as = topology_.announced_owner_of(anchor);
      if (as == topo::kNoAs) {
        as = static_cast<topo::AsIndex>(rng_.index(topology_.as_count()));
      }
    } else {
      as = static_cast<topo::AsIndex>(rng_.index(topology_.as_count()));
    }
    public_dests_.push_back(topology_.allocate_host_ip(as));
  }

  for (Ipv4 dst : corpus_dests_) {
    topo::AsIndex origin = topology_.announced_owner_of(dst);
    if (origin != topo::kNoAs) monitored_origins_.push_back(origin);
  }
  std::sort(monitored_origins_.begin(), monitored_origins_.end());
  monitored_origins_.erase(
      std::unique(monitored_origins_.begin(), monitored_origins_.end()),
      monitored_origins_.end());

  // BGP feed over all ASes as VP candidates.
  std::vector<topo::AsIndex> candidates(topology_.as_count());
  for (topo::AsIndex as = 0; as < topology_.as_count(); ++as) {
    candidates[as] = as;
  }
  bgp::FeedParams feed_params = params_.feed;
  feed_params.seed = rng_.fork(5).seed();
  feed_ = std::make_unique<bgp::FeedSimulator>(*cp_, feed_params, candidates,
                                               monitored_origins_);

  tracemap::PipelineParams pipeline = params_.pipeline;
  pipeline.seed = rng_.fork(6).seed();
  processing_ = std::make_unique<tracemap::ProcessingContext>(topology_,
                                                              pipeline);

  // Engine wiring: VP metadata, IXP route-server ASNs, relationships,
  // PeeringDB membership snapshot.
  std::vector<bgp::VantagePoint> vps = feed_->vantage_points();
  std::vector<topo::AsIndex> vp_as;
  std::vector<topo::CityId> vp_city;
  std::vector<topo::AsIndex> vp_as_for_schedule;
  for (const bgp::VantagePoint& vp : vps) {
    vp_as.push_back(vp.as_index);
    vp_city.push_back(topology_.as_at(vp.as_index).pops.front());
    vp_as_for_schedule.push_back(vp.as_index);
  }
  std::set<Asn> rs_asns;
  for (const topo::Ixp& ixp : topology_.ixps()) {
    rs_asns.insert(ixp.route_server_asn);
  }
  Rng pdb_rng = rng_.fork(7);
  topo::PeeringDbSnapshot pdb =
      topo::make_peeringdb(topology_, params_.peeringdb_completeness,
                           pdb_rng);
  std::map<topo::IxpId, std::set<Asn>> members;
  for (topo::IxpId i = 0; i < pdb.ixp_members.size(); ++i) {
    members[i] = std::set<Asn>(pdb.ixp_members[i].begin(),
                               pdb.ixp_members[i].end());
  }
  if (params_.telemetry || obs::env_enabled()) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    series_ = std::make_unique<obs::StatsSeries>();
  }
  if (params_.trace || obs::trace_env_enabled()) {
    tracer_ = std::make_unique<obs::TraceRecorder>(params_.trace_params);
    tracer_->name_this_thread("driver");
    if (metrics_) tracer_->set_metrics(*metrics_);
  }
  if (params_.watchdog.enabled) {
    watchdog_ = std::make_unique<obs::Watchdog>(params_.watchdog);
    if (metrics_) watchdog_->set_metrics(*metrics_);
  }

  if (params_.fault_plan.enabled()) {
    fault_ = std::make_unique<fault::FaultInjector>(
        params_.fault_plan, start(), kBaseWindowSeconds);
    if (metrics_) fault_->set_metrics(*metrics_);
    if (tracer_) fault_->set_tracer(tracer_.get());
  }

  signals::EngineParams engine_params;
  engine_params.t0 = start();
  engine_params.window_seconds = kBaseWindowSeconds;
  engine_params.subpath = params_.subpath;
  engine_params.border = params_.border;
  engine_params.seed = rng_.fork(8).seed();
  engine_params.threads = params_.engine_threads;
  engine_params.shards = params_.engine_shards;
  engine_params.pipeline_absorb = params_.pipeline_absorb;
  engine_params.metrics = metrics_.get();
  engine_params.tracer = tracer_.get();
  engine_params.feed_health = params_.feed_health;
  engine_ = std::make_unique<signals::ShardedStalenessEngine>(
      engine_params, *processing_, std::move(vps), std::move(vp_as),
      std::move(vp_city), std::move(rs_asns),
      signals::AsRelDb::from_topology(topology_), std::move(members));

  ground_truth_ = std::make_unique<GroundTruth>(*cp_);

  schedule_ = routing::generate_schedule(
      topology_, params_.dynamics, start(), end(), monitored_origins_,
      vp_as_for_schedule, rng_.fork(9).seed());

  // Probe split: half public, half corpus (§5.1.1).
  std::vector<tr::ProbeId> regular = platform_->regular_probes();
  rng_.shuffle(regular);
  for (std::size_t i = 0; i < regular.size(); ++i) {
    (i % 2 == 0 ? public_probes_ : corpus_probes_).push_back(regular[i]);
  }

  // Bootstrap the engine's table view from a RIB dump. The dump goes
  // through the injector too: a blacked-out stream contributes nothing to
  // the initial table, as a real collector outage at t0 would.
  for (bgp::BgpRecord& record : feed_->initial_rib(start())) {
    feed_bgp(record);
  }

  params_.checkpoint_every = std::max(params_.checkpoint_every, 1);
  if (!params_.checkpoint_dir.empty() || !params_.resume_from.empty()) {
    if (params_.io_fault_plan.enabled()) {
      io_fault_ = std::make_unique<fault::IoFaultInjector>(
          params_.io_fault_plan);
    }
    io_ = std::make_unique<store::IoContext>(params_.io_retry,
                                             io_fault_.get());
    if (metrics_) io_->set_metrics(*metrics_);
    if (tracer_) io_->set_tracer(tracer_.get());
  }
  if (metrics_ &&
      (!params_.checkpoint_dir.empty() || !params_.resume_from.empty())) {
    constexpr auto kRt = obs::Domain::kRuntime;
    obs_snapshots_written_ =
        &metrics_->counter("rrr_checkpoint_snapshots_written_total", {}, kRt,
                           "full snapshots written to the checkpoint dir");
    obs_wal_ops_ = &metrics_->counter("rrr_checkpoint_wal_ops_total", {}, kRt,
                                      "exogenous ops appended to the WAL");
    obs_snapshot_bytes_ =
        &metrics_->gauge("rrr_checkpoint_snapshot_bytes", {}, kRt,
                         "section payload bytes of the last snapshot");
    obs_checkpoint_write_us_ = &metrics_->histogram(
        "rrr_checkpoint_write_us", obs::duration_buckets_us(), {}, kRt,
        "snapshot assembly + atomic write wall time");
    obs_resumed_window_ =
        &metrics_->gauge("rrr_checkpoint_resumed_window", {}, kRt,
                         "window boundary this world resumed at");
  }
  if (!params_.resume_from.empty()) resume_from_checkpoint();
  if (!params_.checkpoint_dir.empty()) {
    store::ensure_dir(params_.checkpoint_dir);
    checkpoint_enabled_ = true;
  }
}

void World::feed_bgp(const bgp::BgpRecord& record) {
  // The injector runs even while the engine is suppressed (resume
  // fast-forward): its RNG draws and dedup/replay buffers are world-side
  // state that must advance exactly as in the original run.
  if (fault_ == nullptr) {
    if (!suppress_engine_) engine_->on_bgp_record(record);
    return;
  }
  for (const bgp::BgpRecord& out : fault_->on_bgp_record(record)) {
    if (!suppress_engine_) engine_->on_bgp_record(out);
  }
}

std::size_t World::initialize_corpus() {
  if (corpus_initialized_) return ground_truth_->pairs().size();
  assert(now_ == corpus_t0());
  corpus_initialized_ = true;
  log_op("init", {});
  std::vector<std::pair<tr::ProbeId, Ipv4>> pairs;
  for (tr::ProbeId probe : corpus_probes_) {
    for (Ipv4 dst : corpus_dests_) {
      pairs.emplace_back(probe, dst);
    }
  }
  rng_.shuffle(pairs);
  std::size_t target = std::min<std::size_t>(
      pairs.size(), static_cast<std::size_t>(params_.corpus_pair_target));
  std::size_t created = 0;
  for (std::size_t i = 0; i < pairs.size() && created < target; ++i) {
    const auto& [probe_id, dst] = pairs[i];
    const tr::Probe& probe = platform_->probe(probe_id);
    tr::Traceroute trace = platform_->issue(probe_id, dst, now_, 0);
    if (!trace.reached && trace.hops.empty()) continue;  // unroutable
    if (!suppress_engine_) engine_->watch(probe, trace);
    ground_truth_->track(probe, dst);
    ++created;
  }
  return created;
}

tr::Traceroute World::issue_corpus_traceroute(const tr::PairKey& pair,
                                              TimePoint t) {
  return platform_->issue(pair.probe, pair.dst, t, 0);
}

void World::recalibrate_all(TimePoint t) {
  recalibration_times_.push_back(t);
  for (const tr::PairKey& pair : ground_truth_->pairs()) {
    const tr::Probe& probe = platform_->probe(pair.probe);
    tr::Traceroute fresh = platform_->issue(pair.probe, pair.dst, t, 0);
    if (!suppress_engine_) engine_->apply_refresh(probe, fresh);
  }
}

std::vector<tr::PairKey> World::plan_refreshes(int budget) {
  store::Encoder enc;
  enc.i64(budget);
  log_op("plan", enc.take());
  return engine_->plan_refreshes(budget);
}

signals::RefreshOutcome World::refresh_pair(const tr::PairKey& pair,
                                            TimePoint t) {
  store::Encoder enc;
  signals::put_pair(enc, pair);
  store::put(enc, t);
  log_op("refresh", enc.take());
  tr::Traceroute fresh = issue_corpus_traceroute(pair, t);
  return engine_->apply_refresh(platform_->probe(pair.probe), fresh);
}

void World::process_event(const routing::Event& event) {
  routing::ControlPlane::Impact impact = cp_->apply(event);
  for (bgp::BgpRecord& record : feed_->on_event(event, impact)) {
    feed_bgp(record);
  }
  ground_truth_->on_impact(event, impact);
}

void World::issue_public_trace(TimePoint t) {
  if (public_probes_.empty() || public_dests_.empty()) return;
  // Retry a few times to find an active probe.
  for (int attempt = 0; attempt < 4; ++attempt) {
    tr::ProbeId probe_id = public_probes_[rng_.index(public_probes_.size())];
    if (!platform_->probe(probe_id).active) continue;
    Ipv4 dst = public_dests_[rng_.index(public_dests_.size())];
    int variant = static_cast<int>(rng_.uniform_int(0, 15));
    tr::Traceroute trace = platform_->issue(probe_id, dst, t, variant);
    if (fault_ != nullptr) {
      // The measurement was issued; whether the result reaches the engine
      // is the injector's call (probe blackout / result loss).
      std::optional<tr::Traceroute> kept = fault_->on_public_trace(trace);
      if (kept && !suppress_engine_) engine_->on_public_trace(*kept);
    } else if (!suppress_engine_) {
      engine_->on_public_trace(trace);
    }
    return;
  }
}

void World::run_until(TimePoint t, const Hooks& hooks) {
  const std::int64_t w = window_seconds();
  while (now_ + w <= t) {
    TimePoint window_end = now_ + w;
    std::int64_t window = (now_ - start()) / w;

    // Public measurement slots, evenly spaced through the window.
    int per_window = params_.public_traces_per_window;
    std::int64_t slot_spacing =
        per_window > 0 ? std::max<std::int64_t>(w / per_window, 1) : w;
    std::int64_t next_slot_offset = 0;
    int slots_done = 0;

    // Merge events and measurement slots in time order.
    while (true) {
      TimePoint next_event_time =
          event_cursor_ < schedule_.size() ? schedule_[event_cursor_].time
                                           : TimePoint(INT64_MAX);
      TimePoint next_slot_time = slots_done < per_window
                                     ? now_ + next_slot_offset
                                     : TimePoint(INT64_MAX);
      TimePoint next = std::min(next_event_time, next_slot_time);
      if (next >= window_end) break;
      if (next_event_time <= next_slot_time) {
        process_event(schedule_[event_cursor_++]);
      } else {
        issue_public_trace(next_slot_time);
        ++slots_done;
        next_slot_offset += slot_spacing;
      }
    }

    // The window is now closed: advance the clock before the hooks so WAL
    // ops logged from inside them carry clock == completed_windows().
    now_ = window_end;

    std::vector<signals::StalenessSignal> sigs;
    if (!suppress_engine_) {
      // One "window" span per closed window wraps the whole close; every
      // cat="close" span the engine emits for this window nests inside it
      // (asserted by tools/validate_trace.py).
      double close_us = -1.0;
      {
        obs::TraceSpan window_span(tracer_.get(), "window", "window",
                                   window);
        if (watchdog_ == nullptr) {
          sigs = engine_->advance_to(window_end);
        } else {
          const auto close_begin = obs::SpanClock::now();
          sigs = engine_->advance_to(window_end);
          close_us = std::chrono::duration<double, std::micro>(
                         obs::SpanClock::now() - close_begin)
                         .count();
        }
      }
      // Window boundary = the serial drain point: every thread's ring
      // moves into the flight recorder, so exports (and the watchdog
      // report below) see everything through this window.
      if (tracer_) tracer_->drain();
      if (watchdog_ != nullptr && close_us >= 0.0) {
        watchdog_->observe(
            window, close_us, [this] { return trace_json(); },
            [this] { return stats_json(); });
      }
    }
    // Serving materialization: still inside the serial section (no close
    // is in flight), so the engine read is race-free; the publish itself is
    // the release store HTTP readers synchronize with. Skipped while the
    // engine is suppressed (resume fast-forward) — its state is not live.
    if (serving_ != nullptr && !suppress_engine_) {
      serving_->on_window(*engine_, window, window_end, sigs);
    }
    if (hooks.on_signals) {
      replay_point_ = ReplayPoint::kHook;
      hooks.on_signals(window, window_end, std::move(sigs));
      replay_point_ = ReplayPoint::kBoundary;
    }

    if (params_.recalibration_interval_windows > 0 &&
        (window + 1) % params_.recalibration_interval_windows == 0 &&
        window_end > corpus_t0()) {
      recalibrate_all(window_end);
    }
    bool day_boundary = window_end.seconds() % kSecondsPerDay == 0;
    if (day_boundary) {
      platform_->advance_churn(window_end);
      if (hooks.on_day) {
        replay_point_ = ReplayPoint::kDay;
        hooks.on_day(
            static_cast<int>(window_end.seconds() / kSecondsPerDay) - 1,
            window_end);
        replay_point_ = ReplayPoint::kBoundary;
      }
    }
    if (series_ && !replaying_) series_->sample(window, *metrics_);
    if (checkpoint_enabled_ && !replaying_ &&
        (window + 1) % params_.checkpoint_every == 0) {
      write_checkpoint();
    }
  }
}

void World::run_all(const Hooks& hooks) {
  run_until(corpus_t0(), hooks);
  initialize_corpus();  // no-op when resumed past corpus init
  run_until(end(), hooks);
}

std::uint64_t World::fingerprint(const WorldParams& params) {
  // A coarse digest of the parameters that shape the simulated timeline.
  // It catches the common foot-guns (different seed, days, corpus or feed
  // shape, fault plan) — it is a guard, not a proof of identity. Pure
  // throughput knobs (threads, pipeline_absorb) and robustness knobs
  // (io_fault_plan, io_retry, supervise) are deliberately excluded; the
  // engine's loader verifies the shard count itself.
  store::Encoder enc;
  enc.u64(params.seed);
  enc.i64(params.days);
  enc.i64(params.warmup_days);
  enc.i64(params.corpus_pair_target);
  enc.i64(params.corpus_dest_count);
  enc.i64(params.public_dest_count);
  enc.i64(params.public_traces_per_window);
  enc.i64(params.recalibration_interval_windows);
  enc.f64(params.peeringdb_completeness);
  enc.i64(params.topology.num_tier1);
  enc.i64(params.topology.num_transit);
  enc.i64(params.topology.num_stub);
  enc.i64(params.topology.num_ixps);
  enc.i64(params.platform.num_probes);
  enc.i64(params.platform.num_anchors);
  enc.f64(params.platform.probe_death_per_day);
  enc.boolean(params.feed_health.enabled);
  enc.str(params.fault_plan.spec());
  return store::fnv1a64(enc.buffer());
}

std::uint64_t World::params_fingerprint() const {
  return fingerprint(params_);
}

void World::log_op(const char* type, std::string payload) {
  if (!checkpoint_enabled_ || replaying_) return;
  store::WalOp op;
  op.clock = completed_windows();
  op.point = static_cast<std::uint8_t>(replay_point_);
  op.type = type;
  op.payload = std::move(payload);
  store::wal_append(params_.checkpoint_dir, op, io_.get());
  wal_pos_.digest = store::chain_wal_digest(wal_pos_.digest, op);
  ++wal_pos_.count;
  obs::inc(obs_wal_ops_);
}

void World::apply_wal_op(const store::WalOp& op) {
  store::Decoder dec(op.payload);
  if (op.type == "init") {
    dec.expect_done();
    initialize_corpus();
  } else if (op.type == "plan") {
    std::int64_t budget = dec.i64();
    dec.expect_done();
    // Consumes only the engine's own RNG stream, which the snapshot
    // restores — nothing to do while the engine is suppressed.
    if (!suppress_engine_) {
      engine_->plan_refreshes(static_cast<int>(budget));
    }
  } else if (op.type == "refresh") {
    tr::PairKey pair = signals::get_pair(dec);
    TimePoint t = store::get_time(dec);
    dec.expect_done();
    tr::Traceroute fresh = issue_corpus_traceroute(pair, t);
    if (!suppress_engine_) {
      engine_->apply_refresh(platform_->probe(pair.probe), fresh);
    }
  } else {
    throw store::StoreError(store::StoreError::Kind::kCorrupt,
                            "wal.log contains unknown op '" + op.type + "'");
  }
}

void World::write_checkpoint() {
  obs::ScopedSpan span(obs_checkpoint_write_us_);
  obs::TraceSpan trace_span(tracer_.get(), "checkpoint_write", "checkpoint",
                            completed_windows());
  store::SnapshotWriter writer(completed_windows(), params_fingerprint());
  std::size_t bytes = 0;
  store::Encoder engine_enc;
  engine_->save_state(engine_enc);
  bytes += engine_enc.buffer().size();
  writer.add_section("engine", engine_enc.take());
  store::Encoder patch_enc;
  processing_->patcher().save_state(patch_enc);
  bytes += patch_enc.buffer().size();
  writer.add_section("patcher", patch_enc.take());
  if (metrics_) {
    std::string metrics = encode_semantic_metrics(*metrics_);
    bytes += metrics.size();
    writer.add_section("metrics", std::move(metrics));
  }
  // The WAL position this snapshot was written over: the world side of a
  // resume is regenerated by replaying exactly these ops, so a log that
  // can no longer produce this prefix makes the snapshot unusable.
  std::string walpos = store::encode_wal_position(wal_pos_);
  bytes += walpos.size();
  writer.add_section(store::kWalPositionSection, std::move(walpos));
  writer.write(params_.checkpoint_dir, io_.get());
  obs::inc(obs_snapshots_written_);
  obs::set(obs_snapshot_bytes_, static_cast<std::int64_t>(bytes));
}

void World::load_checkpoint(const store::SnapshotReader& reader) {
  obs::TraceSpan trace_span(tracer_.get(), "checkpoint_load", "checkpoint");
  {
    store::Decoder dec(reader.section("engine"));
    engine_->load_state(dec);
    dec.expect_done();
  }
  {
    store::Decoder dec(reader.section("patcher"));
    processing_->patcher().load_state(dec);
    dec.expect_done();
  }
  if (metrics_ && reader.has_section("metrics")) {
    metrics_->restore(decode_semantic_metrics(reader.section("metrics")));
  }
}

void World::resume_from_checkpoint() {
  namespace fs = std::filesystem;
  const std::string& dir = params_.resume_from;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw store::StoreError(store::StoreError::Kind::kIo,
                            "resume directory '" + dir + "' does not exist");
  }
  obs::Histogram* resume_us =
      metrics_ ? &metrics_->histogram("rrr_checkpoint_resume_us",
                                      obs::duration_buckets_us(), {},
                                      obs::Domain::kRuntime,
                                      "resume fast-forward wall time")
               : nullptr;
  obs::ScopedSpan span(resume_us);

  std::vector<store::WalOp> ops = store::wal_read(dir, io_.get());
  std::int64_t max_clock = 0;
  for (const store::WalOp& op : ops) {
    max_clock = std::max(max_clock, op.clock);
  }
  std::optional<std::int64_t> snap =
      store::latest_snapshot(dir, params_.resume_window);
  const std::int64_t k = params_.resume_window >= 0
                             ? params_.resume_window
                             : std::max(snap.value_or(0), max_clock);
  if (k > (end() - start()) / window_seconds()) {
    throw store::StoreError(store::StoreError::Kind::kCorrupt,
                            "resume window lies beyond this world's end");
  }

  // Map and validate the snapshot (framing, checksums, fingerprint) before
  // spending any time on re-simulation.
  std::optional<store::SnapshotReader> reader;
  if (snap) {
    reader.emplace(dir, *snap, io_.get());
    if (reader->fingerprint() != params_fingerprint()) {
      throw store::StoreError(
          store::StoreError::Kind::kCorrupt,
          "snapshot was written under different world parameters");
    }
    // The ops the snapshot was written over must still head the log: the
    // world side (corpus, platform, RNG streams) is regenerated by
    // replaying them, so a WAL whose head was lost to silent corruption
    // must not pair with this snapshot — that would resume a silently
    // wrong world, not a slightly older one.
    if (reader->has_section(store::kWalPositionSection)) {
      const store::WalPosition pos = store::decode_wal_position(
          reader->section(store::kWalPositionSection));
      if (!store::wal_position_consistent(pos, ops)) {
        throw store::StoreError(
            store::StoreError::Kind::kCorrupt,
            "snapshot depends on WAL ops the log no longer holds");
      }
    }
  }
  const std::int64_t r0 = snap.value_or(-1);

  // Phase 1, start..r0: the world side (events, platform, injector, ground
  // truth) re-simulates live to regenerate its RNG streams; every engine
  // call is suppressed because the snapshot carries the engine wholesale.
  // Phase 2, r0..k: fully live — the engine replays the WAL tail and
  // regenerates the already-delivered signals, which are discarded. The
  // WAL interpreter applies each op at its recorded (clock, point) so
  // platform draws interleave exactly as in the original run.
  replaying_ = true;
  suppress_engine_ = r0 > 0;
  std::size_t cursor = 0;
  auto apply_until = [&](std::int64_t clock, ReplayPoint point) {
    while (cursor < ops.size() && ops[cursor].clock == clock &&
           ops[cursor].point == static_cast<std::uint8_t>(point)) {
      apply_wal_op(ops[cursor]);
      ++cursor;
    }
  };
  Hooks replay;
  replay.on_signals = [&](std::int64_t window, TimePoint,
                          std::vector<signals::StalenessSignal>&&) {
    apply_until(window + 1, ReplayPoint::kHook);
  };
  replay.on_day = [&](int, TimePoint day_end) {
    apply_until((day_end - start()) / window_seconds(), ReplayPoint::kDay);
  };
  apply_until(0, ReplayPoint::kBoundary);
  for (std::int64_t c = 1; c <= k; ++c) {
    run_until(start() + c * window_seconds(), replay);
    if (c == r0) {
      load_checkpoint(*reader);
      suppress_engine_ = false;
    }
    apply_until(c, ReplayPoint::kBoundary);
  }
  replaying_ = false;
  obs::set(obs_resumed_window_, k);

  // When the run keeps checkpointing into the same directory, drop the
  // tail beyond the resume point: future appends must not interleave with
  // dead ops, and stale later snapshots must not shadow the rerun's.
  if (!params_.checkpoint_dir.empty() &&
      params_.checkpoint_dir == params_.resume_from) {
    std::vector<store::WalOp> kept;
    for (store::WalOp& op : ops) {
      if (op.clock <= k) kept.push_back(std::move(op));
    }
    if (kept.size() != ops.size()) store::wal_rewrite(dir, kept, io_.get());
    for (std::int64_t c : store::list_snapshots(dir)) {
      if (c > k) fs::remove(dir + "/" + store::snapshot_name(c), ec);
    }
    // Future appends and snapshots continue the kept prefix.
    wal_pos_ = store::wal_position_of(kept, kept.size());
  }
}

}  // namespace rrr::eval
