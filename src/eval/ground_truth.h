// Ground-truth tracking for evaluation: the simulator knows the exact
// border-level path of every monitored (probe, destination) pair at all
// times, so precision/coverage of staleness signals can be measured
// directly (§5.1's role of the repeated anchoring measurements).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "routing/control_plane.h"
#include "tracemap/processed.h"
#include "traceroute/corpus.h"
#include "traceroute/traceroute.h"

namespace rrr::eval {

using tracemap::ChangeKind;

struct ChangeEvent {
  tr::PairKey pair;
  TimePoint time;
  ChangeKind kind = ChangeKind::kNone;
  std::uint64_t cause_event = 0;  // routing event id (diagnostics)
  // Index of the first border crossing that differs (diagnostics; -1 when
  // the crossing count changed in a way that defies alignment).
  int changed_crossing = -1;
};

class GroundTruth {
 public:
  explicit GroundTruth(routing::ControlPlane& control_plane)
      : cp_(control_plane) {}

  // Starts tracking a pair; snapshots its current true path.
  void track(const tr::Probe& probe, Ipv4 dst);

  // Applies a routing event's impact: recomputes the true paths of affected
  // pairs and logs changes.
  void on_impact(const routing::Event& event,
                 const routing::ControlPlane::Impact& impact);

  // The pair's current true forward path (border-level).
  const routing::ForwardPath& current(const tr::PairKey& pair) const;
  // The path at tracking start.
  const routing::ForwardPath& initial(const tr::PairKey& pair) const;

  // Signatures of the pair's true path at time `t` (border-level signature
  // covers the crossing sequence; AS-level just the AS path). Signatures
  // differ iff the paths differ at that granularity.
  std::uint64_t border_signature_at(const tr::PairKey& pair,
                                    TimePoint t) const;
  std::uint64_t as_signature_at(const tr::PairKey& pair, TimePoint t) const;
  // Whether the pair's true border-level path at `t` differs from the one
  // at `reference` (reference < t: e.g. its last refresh time).
  bool stale_at(const tr::PairKey& pair, TimePoint t,
                TimePoint reference) const {
    return border_signature_at(pair, t) !=
           border_signature_at(pair, reference);
  }

  const std::vector<ChangeEvent>& changes() const { return changes_; }
  std::vector<tr::PairKey> pairs() const;

  // Classifies the difference between two forward paths (§3 definitions).
  static ChangeKind classify(const routing::ForwardPath& before,
                             const routing::ForwardPath& after);

  // Canonical flow id for a pair (matches Platform::issue variant 0).
  static std::uint64_t flow_of(Ipv4 probe_ip, Ipv4 dst);

 private:
  struct HistoryPoint {
    TimePoint time;
    std::uint64_t border_sig = 0;
    std::uint64_t as_sig = 0;
  };
  struct Tracked {
    tr::Probe probe;
    Ipv4 dst;
    routing::ForwardPath initial;
    routing::ForwardPath current;
    std::vector<HistoryPoint> history;  // appended on every change
  };

  static std::uint64_t border_sig_of(const routing::ForwardPath& path);
  static std::uint64_t as_sig_of(const routing::ForwardPath& path);

  routing::ForwardPath resolve(const Tracked& tracked) const;
  void reindex(const tr::PairKey& key, const routing::ForwardPath& old_path,
               const routing::ForwardPath& new_path);
  void recheck(const tr::PairKey& key, TimePoint t,
               std::uint64_t cause_event);

  routing::ControlPlane& cp_;
  std::map<tr::PairKey, Tracked> tracked_;
  // link -> pairs whose current path crosses it.
  std::map<topo::LinkId, std::set<tr::PairKey>> by_link_;
  // (src AS, origin AS) -> pairs.
  std::map<std::pair<topo::AsIndex, topo::AsIndex>, std::set<tr::PairKey>>
      by_route_;
  std::vector<ChangeEvent> changes_;
};

}  // namespace rrr::eval
