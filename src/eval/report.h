// Plain-text report rendering for the experiment harnesses: aligned tables
// with optional paper-reference columns, and CDF summaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "obs/metrics.h"

namespace rrr::eval {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void add_separator();
  void print(std::ostream& os) const;

  static std::string fmt(double value, int decimals = 2);
  static std::string fmt_pct(double value, int decimals = 0);
  static std::string fmt_int(std::int64_t value);

 private:
  std::vector<std::string> headers_;
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

// Prints a standard experiment banner: what is being reproduced and what
// the paper reported.
void print_banner(std::ostream& os, const std::string& id,
                  const std::string& title, const std::string& paper_note);

// Renders a CDF as quantile rows.
void print_cdf(std::ostream& os, const std::string& label, const Cdf& cdf);

// Renders a telemetry snapshot as an aligned table: counters/gauges show
// their value; histograms show count, sum, and approximate p50/p99.
void print_stats_summary(std::ostream& os, const obs::Snapshot& snapshot);

}  // namespace rrr::eval
