#include "routing/events.h"

#include <algorithm>

#include "netbase/rng.h"

namespace rrr::routing {
namespace {

using topo::AsIndex;
using topo::InterconnectId;
using topo::LinkId;
using topo::Topology;

class ScheduleBuilder {
 public:
  ScheduleBuilder(const Topology& topology, const DynamicsParams& params,
                  TimePoint t_begin, TimePoint t_end,
                  const std::vector<AsIndex>& origins,
                  const std::vector<AsIndex>& vp_ases, std::uint64_t seed)
      : topo_(topology),
        params_(params),
        t_begin_(t_begin),
        t_end_(t_end),
        origins_(origins),
        vp_ases_(vp_ases),
        rng_(Rng(seed).fork(0xE7E47)) {
    collect_targets();
  }

  std::vector<Event> build() {
    add_interconnect_flaps();
    add_egress_shifts();
    add_adjacency_flaps();
    add_preferred_link_shifts();
    add_te_churn();
    add_parrots();
    add_ixp_joins();
    std::sort(events_.begin(), events_.end(),
              [](const Event& a, const Event& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.id < b.id;
              });
    return std::move(events_);
  }

 private:
  void collect_targets() {
    // Interconnects safe to flap without severing the adjacency: those on
    // links with at least two interconnects.
    for (const topo::AsLink& link : topo_.links()) {
      if (link.interconnects.size() >= 2) {
        for (InterconnectId ic : link.interconnects) {
          flappable_ics_.push_back(ic);
          // Failures on the primary (carrying) interconnect are what
          // operators and measurements actually notice; bias toward them.
          if (topo_.interconnect_at(ic).base_weight == 0.0) {
            flappable_ics_.push_back(ic);
            flappable_ics_.push_back(ic);
          }
        }
        shiftable_links_.push_back(link.id);
      }
      // Adjacencies safe to fail without partitioning: both endpoints keep
      // at least one other adjacency.
      if (topo_.neighbors(link.a).size() >= 2 &&
          topo_.neighbors(link.b).size() >= 2) {
        failable_links_.push_back(link.id);
      }
    }
  }

  // Number of occurrences for a Poisson process of `per_day` over the run.
  int draw_count(double per_day) {
    double days =
        static_cast<double>(t_end_ - t_begin_) / double(kSecondsPerDay);
    double expected = per_day * days;
    if (expected <= 0.0) return 0;
    std::poisson_distribution<int> dist(expected);
    return dist(rng_.engine());
  }

  TimePoint random_time() {
    return TimePoint(t_begin_.seconds() +
                     rng_.uniform_int(0, t_end_ - t_begin_ - 1));
  }

  Event base(EventKind kind, TimePoint t) {
    Event e;
    e.id = next_id_++;
    e.kind = kind;
    e.time = t;
    return e;
  }

  void add_interconnect_flaps() {
    if (flappable_ics_.empty()) return;
    int n = draw_count(params_.interconnect_flap_per_day);
    for (int i = 0; i < n; ++i) {
      InterconnectId ic = flappable_ics_[rng_.index(flappable_ics_.size())];
      TimePoint down = random_time();
      auto outage = static_cast<std::int64_t>(
          rng_.exponential(1.0 / (params_.interconnect_outage_mean_hours *
                                  double(kSecondsPerHour))));
      Event e_down = base(EventKind::kInterconnectDown, down);
      e_down.interconnect = ic;
      e_down.link = topo_.interconnect_at(ic).link;
      events_.push_back(e_down);
      TimePoint up = down + std::max<std::int64_t>(outage, 3600);
      if (up < t_end_) {
        Event e_up = base(EventKind::kInterconnectUp, up);
        e_up.interconnect = ic;
        e_up.link = e_down.link;
        events_.push_back(e_up);
      }
    }
  }

  void add_egress_shifts() {
    if (shiftable_links_.empty()) return;
    int n = draw_count(params_.egress_shift_per_day);
    for (int i = 0; i < n; ++i) {
      LinkId link = shiftable_links_[rng_.index(shiftable_links_.size())];
      auto ics = topo_.link_interconnects(link);
      InterconnectId ic = ics[rng_.index(ics.size())];
      // Prefer the carrying interconnect: an IGP penalty on an idle backup
      // moves no traffic and no routes.
      for (int attempt = 0;
           attempt < 3 && topo_.interconnect_at(ic).base_weight != 0.0;
           ++attempt) {
        ic = ics[rng_.index(ics.size())];
      }
      TimePoint start = random_time();
      Event e_set = base(EventKind::kEgressWeightSet, start);
      e_set.interconnect = ic;
      e_set.link = link;
      e_set.weight = params_.egress_shift_weight;
      events_.push_back(e_set);
      if (!rng_.bernoulli(params_.egress_shift_permanent_prob)) {
        auto duration = static_cast<std::int64_t>(rng_.exponential(
            1.0 /
            (params_.egress_shift_mean_hours * double(kSecondsPerHour))));
        TimePoint end = start + std::max<std::int64_t>(duration, 1800);
        if (end < t_end_) {
          Event e_clear = base(EventKind::kEgressWeightSet, end);
          e_clear.interconnect = ic;
          e_clear.link = link;
          e_clear.weight = 0.0;
          events_.push_back(e_clear);
        }
      }
    }
  }

  void add_adjacency_flaps() {
    if (failable_links_.empty()) return;
    int n = draw_count(params_.adjacency_flap_per_day);
    for (int i = 0; i < n; ++i) {
      LinkId link = failable_links_[rng_.index(failable_links_.size())];
      TimePoint down = random_time();
      Event e_down = base(EventKind::kAdjacencyDown, down);
      e_down.link = link;
      events_.push_back(e_down);
      auto outage = static_cast<std::int64_t>(rng_.exponential(
          1.0 / (params_.adjacency_outage_mean_hours * double(kSecondsPerHour))));
      TimePoint up = down + std::max<std::int64_t>(outage, 1200);
      if (up < t_end_) {
        Event e_up = base(EventKind::kAdjacencyUp, up);
        e_up.link = link;
        events_.push_back(e_up);
      }
    }
  }

  void add_preferred_link_shifts() {
    if (origins_.empty()) return;
    int n = draw_count(params_.preferred_link_shift_per_day);
    for (int i = 0; i < n; ++i) {
      // A viewer with at least two neighbors can meaningfully re-prefer.
      AsIndex viewer =
          static_cast<AsIndex>(rng_.index(topo_.as_count()));
      auto neighbors = topo_.neighbors(viewer);
      if (neighbors.size() < 2) continue;
      const topo::Neighbor& nb = neighbors[rng_.index(neighbors.size())];
      AsIndex origin = origins_[rng_.index(origins_.size())];
      if (origin == viewer) continue;
      TimePoint start = random_time();
      Event e_set = base(EventKind::kPreferredLinkSet, start);
      e_set.as = viewer;
      e_set.origin = origin;
      e_set.link = nb.link;
      events_.push_back(e_set);
      auto duration = static_cast<std::int64_t>(rng_.exponential(
          1.0 / (params_.preferred_link_mean_hours * double(kSecondsPerHour))));
      TimePoint end = start + std::max<std::int64_t>(duration, 1800);
      if (end < t_end_) {
        Event e_clear = base(EventKind::kPreferredLinkClear, end);
        e_clear.as = viewer;
        e_clear.origin = origin;
        events_.push_back(e_clear);
      }
    }
  }

  void add_te_churn() {
    if (origins_.empty()) return;
    // TE churn concentrates in a minority of ASes that actively steer
    // traffic, each rotating among a couple of values; this is what lets
    // community calibration (Appendix B) converge on "that community is
    // noise" instead of facing a fresh community every event.
    std::vector<AsIndex> te_pool;
    int pool_size = std::max<int>(8, static_cast<int>(topo_.as_count()) / 15);
    for (int i = 0; i < pool_size; ++i) {
      te_pool.push_back(static_cast<AsIndex>(rng_.index(topo_.as_count())));
    }
    int n = draw_count(params_.te_community_churn_per_day);
    for (int i = 0; i < n; ++i) {
      Event e = base(EventKind::kTeCommunitySet, random_time());
      e.as = te_pool[rng_.index(te_pool.size())];
      e.origin = origins_[rng_.index(origins_.size())];
      e.value = static_cast<std::uint16_t>(rng_.uniform_int(1, 2));
      events_.push_back(e);
    }
  }

  void add_parrots() {
    if (vp_ases_.empty() || origins_.empty()) return;
    int n = draw_count(params_.parrot_update_per_day);
    for (int i = 0; i < n; ++i) {
      Event e = base(EventKind::kParrotUpdate, random_time());
      e.as = vp_ases_[rng_.index(vp_ases_.size())];
      e.origin = origins_[rng_.index(origins_.size())];
      events_.push_back(e);
    }
  }

  void add_ixp_joins() {
    if (topo_.ixps().empty()) return;
    int n = draw_count(params_.ixp_join_per_day);
    for (int i = 0; i < n; ++i) {
      const topo::Ixp& ixp = topo_.ixps()[rng_.index(topo_.ixps().size())];
      // Candidate joiners: ASes with a PoP at the IXP city, not yet members.
      std::vector<AsIndex> candidates;
      for (AsIndex as = 0; as < topo_.as_count(); ++as) {
        if (topo_.as_at(as).has_pop(ixp.city) && !ixp.has_member(as)) {
          candidates.push_back(as);
        }
      }
      if (candidates.empty()) continue;
      Event e = base(EventKind::kIxpJoin, random_time());
      e.as = candidates[rng_.index(candidates.size())];
      e.ixp = ixp.id;
      events_.push_back(e);
    }
  }

  const Topology& topo_;
  const DynamicsParams& params_;
  TimePoint t_begin_;
  TimePoint t_end_;
  const std::vector<AsIndex>& origins_;
  const std::vector<AsIndex>& vp_ases_;
  Rng rng_;
  std::vector<Event> events_;
  std::uint64_t next_id_ = 1;
  std::vector<InterconnectId> flappable_ics_;
  std::vector<LinkId> shiftable_links_;
  std::vector<LinkId> failable_links_;
};

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kInterconnectDown: return "interconnect-down";
    case EventKind::kInterconnectUp: return "interconnect-up";
    case EventKind::kEgressWeightSet: return "egress-weight-set";
    case EventKind::kAdjacencyDown: return "adjacency-down";
    case EventKind::kAdjacencyUp: return "adjacency-up";
    case EventKind::kPreferredLinkSet: return "preferred-link-set";
    case EventKind::kPreferredLinkClear: return "preferred-link-clear";
    case EventKind::kTeCommunitySet: return "te-community-set";
    case EventKind::kParrotUpdate: return "parrot-update";
    case EventKind::kIxpJoin: return "ixp-join";
  }
  return "unknown";
}

std::vector<Event> generate_schedule(const topo::Topology& topology,
                                     const DynamicsParams& params,
                                     TimePoint t_begin, TimePoint t_end,
                                     const std::vector<topo::AsIndex>& origins,
                                     const std::vector<topo::AsIndex>& vp_ases,
                                     std::uint64_t seed) {
  ScheduleBuilder builder(topology, params, t_begin, t_end, origins, vp_ases,
                          seed);
  return builder.build();
}

}  // namespace rrr::routing
