// Data-plane path resolution over the simulated topology.
//
// Given a source (AS, city), a destination IP, and a flow identifier, the
// resolver walks the control-plane AS path and materializes the actual
// forwarding path: which interconnect each AS-to-AS crossing uses (hot-potato
// egress selection perturbed by IGP weights, or flow-hashed across ECMP
// interconnect groups), which internal routers the packet visits (flow-hashed
// across load-balancer branches), and the IP address each hop would reveal to
// a traceroute (ingress interfaces; IXP crossings reveal IXP LAN addresses).
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/ipv4.h"
#include "routing/routes.h"
#include "routing/state.h"
#include "topology/topology.h"

namespace rrr::routing {

using topo::CityId;
using topo::RouterId;

// Supplies converged per-origin route tables; implemented with caching by
// the ControlPlane and with direct computation in tests.
class RouteProvider {
 public:
  virtual ~RouteProvider() = default;
  virtual const RouteTable& table_for(AsIndex origin) = 0;
};

struct BorderCrossing {
  InterconnectId interconnect = topo::kNoInterconnect;
  bool forward = true;  // true: crossing link.a -> link.b
  AsIndex from_as = topo::kNoAs;
  AsIndex to_as = topo::kNoAs;
  CityId city = topo::kNoCity;

  friend bool operator==(const BorderCrossing&, const BorderCrossing&) =
      default;
};

struct ForwardPath {
  bool reachable = false;
  // AS-level path, source first, origin last (by dense index).
  std::vector<AsIndex> as_path;
  // One crossing per AS-level hop (size = as_path.size() - 1). This is the
  // paper's "border router path" granularity: the sequence of border
  // interconnections, abstracting intra-AS hops.
  std::vector<BorderCrossing> crossings;
  // IP hops a traceroute would reveal, excluding the probe's own address,
  // ending with the destination.
  std::vector<Ipv4> hops;
  // Router revealing each hop (kNoRouter for the destination host).
  std::vector<RouterId> hop_routers;

  // True when the border-level path (AS path + crossings) equals `other`'s.
  bool same_border_path(const ForwardPath& other) const {
    return as_path == other.as_path && crossings == other.crossings;
  }
};

class ForwardingResolver {
 public:
  ForwardingResolver(const Topology& topology, const RoutingState& state,
                     RouteProvider& routes)
      : topology_(topology), state_(state), routes_(routes) {}

  // Resolves the path from (src_as, src_city) to dst_ip for the given flow.
  // `flow_id` drives every load-balancing decision; the same flow always
  // takes the same branches (Paris-traceroute semantics). `with_ip_hops`
  // skips hop materialization when only the border path is needed (ground
  // truth bookkeeping is ~3x faster without it).
  ForwardPath resolve(AsIndex src_as, CityId src_city, Ipv4 dst_ip,
                      std::uint64_t flow_id, bool with_ip_hops = true) const;

  // The interconnect AS `from_as` currently uses to reach `to_as` for flows
  // entering `from_as` at `ingress_city`. Exposed for the control plane's
  // canonical attribute computation.
  InterconnectId egress_choice(AsIndex from_as, AsIndex to_as,
                               CityId ingress_city,
                               std::uint64_t flow_id) const;

  // City where hosts of an AS live (its primary PoP).
  CityId host_city(AsIndex as) const {
    return topology_.as_at(as).pops.front();
  }

 private:
  void emit_internal_hop(ForwardPath& path, AsIndex as, CityId city,
                         std::uint64_t flow_id) const;
  void emit_border_hops(ForwardPath& path, const topo::Interconnect& ic,
                        bool forward) const;

  const Topology& topology_;
  const RoutingState& state_;
  RouteProvider& routes_;
};

}  // namespace rrr::routing
