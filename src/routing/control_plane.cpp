#include "routing/control_plane.h"

#include <algorithm>

namespace rrr::routing {
namespace {

int base_pref(topo::NeighborKind kind) {
  switch (kind) {
    case topo::NeighborKind::kCustomer:
      return 300;
    case topo::NeighborKind::kPeer:
      return 200;
    case topo::NeighborKind::kProvider:
      return 100;
  }
  return 0;
}

}  // namespace

ControlPlane::ControlPlane(topo::Topology& topology, std::uint64_t seed)
    : topology_(topology),
      state_(topology),
      resolver_(topology, state_, *this),
      rng_(Rng(seed).fork(0xC0117)) {}

const RouteTable& ControlPlane::table_for(AsIndex origin) {
  return cached(origin).table;
}

ControlPlane::CachedTable& ControlPlane::cached(AsIndex origin) {
  auto it = tables_.find(origin);
  if (it == tables_.end()) {
    CachedTable entry;
    entry.table = compute_routes(topology_, state_, origin);
    entry.used = used_links(entry.table);
    it = tables_.emplace(origin, std::move(entry)).first;
  }
  return it->second;
}

RouteAttributes ControlPlane::attributes(AsIndex vp_as, AsIndex origin) {
  RouteAttributes attrs;
  // Canonical control-plane view: the path the VP AS's primary PoP uses,
  // with flow id 0 (deterministic across calls).
  Ipv4 target = topology_.as_at(origin).originated.front().network();
  ForwardPath fwd = resolver_.resolve(
      vp_as, topology_.as_at(vp_as).pops.front(), target, /*flow_id=*/0,
      /*with_ip_hops=*/false);
  if (!fwd.reachable) return attrs;

  attrs.path.reserve(fwd.as_path.size());
  for (AsIndex as : fwd.as_path) attrs.path.push_back(topology_.as_at(as).asn);
  attrs.crossings.reserve(fwd.crossings.size());
  for (const BorderCrossing& c : fwd.crossings) {
    attrs.crossings.push_back(c.interconnect);
  }

  // Communities: AS i on the path (i = 0 at the VP) adds its geo community
  // where it learns the route; an AS that strips received communities
  // removes everything added farther along the path, but keeps its own
  // additions.
  //
  // The tagged location is the AS's *canonical* exit toward the next hop:
  // BGP selects one best route per prefix at the border and iBGP
  // distributes that route (with its communities) AS-wide, so every
  // external observer sees the same tag regardless of where their own
  // traffic would enter the AS.
  //
  // Walk from the origin side toward the VP maintaining the surviving set.
  CommunitySet surviving;
  for (std::size_t i = fwd.as_path.size(); i-- > 0;) {
    AsIndex as = fwd.as_path[i];
    const topo::AsNode& node = topology_.as_at(as);
    if (i < fwd.as_path.size() - 1) {
      // This AS re-exports the route toward the VP; if it strips, received
      // communities vanish before its own are added.
      if (node.strips_communities) surviving.clear();
    }
    if (i + 1 < fwd.as_path.size()) {
      if (node.adds_geo_communities) {
        topo::InterconnectId canonical = resolver_.egress_choice(
            as, fwd.as_path[i + 1], node.pops.front(), /*flow_id=*/0);
        if (canonical != topo::kNoInterconnect) {
          surviving.insert(topology_.geo_community(
              as, topology_.interconnect_at(canonical).city));
        }
      }
    }
    std::uint16_t te = state_.te_community_value(as, origin);
    if (te != 0) {
      surviving.insert(Community(
          node.asn,
          static_cast<std::uint16_t>(topo::kTeCommunityBase + te)));
    }
  }
  attrs.communities = std::move(surviving);
  return attrs;
}

std::vector<AsIndex> ControlPlane::origins_using_link(
    topo::LinkId link) const {
  std::vector<AsIndex> origins;
  for (const auto& [origin, entry] : tables_) {
    if (std::binary_search(entry.used.begin(), entry.used.end(), link)) {
      origins.push_back(origin);
    }
  }
  return origins;
}

std::vector<AsIndex> ControlPlane::cached_origins() const {
  std::vector<AsIndex> origins;
  origins.reserve(tables_.size());
  for (const auto& [origin, entry] : tables_) origins.push_back(origin);
  return origins;
}

void ControlPlane::recompute_origin(AsIndex origin, Impact& impact) {
  auto it = tables_.find(origin);
  if (it == tables_.end()) return;  // not monitored; stays lazy
  RouteTable fresh = compute_routes(topology_, state_, origin);
  const RouteTable& old = it->second.table;
  for (AsIndex viewer = 0; viewer < fresh.routes.size(); ++viewer) {
    // Only viewer count of the old table is comparable after topology
    // growth; new ASes have no old route.
    bool changed =
        viewer < old.routes.size()
            ? fresh.routes[viewer].path != old.routes[viewer].path
            : fresh.routes[viewer].reachable();
    if (changed) impact.as_route_changes.emplace_back(viewer, origin);
  }
  it->second.used = used_links(fresh);
  it->second.table = std::move(fresh);
  impact.recomputed_origins.push_back(origin);
}

bool ControlPlane::endpoint_improvement_possible(
    topo::LinkId link, const RouteTable& table) const {
  const topo::AsLink& l = topology_.link_at(link);
  // Check both directions: could endpoint X switch to a route via `link`?
  for (int dir = 0; dir < 2; ++dir) {
    AsIndex viewer = dir == 0 ? l.a : l.b;
    AsIndex neighbor = dir == 0 ? l.b : l.a;
    if (viewer == table.origin) continue;
    const Route& supplier = table.routes[neighbor];
    if (!supplier.reachable()) continue;
    // Export rule as in compute_routes.
    topo::NeighborKind viewer_sees = topo::NeighborKind::kPeer;
    for (const topo::Neighbor& nb : topology_.neighbors(viewer)) {
      if (nb.link == link) {
        viewer_sees = nb.kind;
        break;
      }
    }
    bool exported =
        neighbor == table.origin ||
        supplier.learned_from == topo::NeighborKind::kCustomer ||
        viewer_sees == topo::NeighborKind::kProvider;
    if (!exported) continue;
    if (contains(supplier.path, topology_.as_at(viewer).asn)) continue;

    int cand_pref =
        base_pref(viewer_sees) +
        (state_.preferred_link(viewer, table.origin) == link ? 50 : 0);
    std::size_t cand_len = supplier.path.size() + 1;
    const Route& incumbent = table.routes[viewer];
    if (!incumbent.reachable()) return true;
    // Incumbent metrics.
    topo::NeighborKind inc_kind = incumbent.learned_from;
    int inc_pref =
        base_pref(inc_kind) +
        (state_.preferred_link(viewer, table.origin) == incumbent.via_link
             ? 50
             : 0);
    if (cand_pref > inc_pref) return true;
    if (cand_pref == inc_pref) {
      if (cand_len < incumbent.path.size()) return true;
      if (cand_len == incumbent.path.size()) {
        // ASN / link-id tie-breaks could flip the choice; treat ties as
        // potentially affected (cheap false positives, never misses).
        return true;
      }
    }
  }
  return false;
}

ControlPlane::Impact ControlPlane::apply(const Event& event) {
  Impact impact;
  switch (event.kind) {
    case EventKind::kInterconnectDown: {
      bool was_usable = state_.adjacency_usable(topology_, event.link);
      state_.set_interconnect_active(event.interconnect, false);
      bool still_usable = state_.adjacency_usable(topology_, event.link);
      impact.touched_links.push_back(event.link);
      if (was_usable && !still_usable) {
        for (AsIndex origin : origins_using_link(event.link)) {
          recompute_origin(origin, impact);
        }
      }
      break;
    }
    case EventKind::kInterconnectUp: {
      bool was_usable = state_.adjacency_usable(topology_, event.link);
      state_.set_interconnect_active(event.interconnect, true);
      impact.touched_links.push_back(event.link);
      if (!was_usable) {
        for (AsIndex origin : cached_origins()) {
          if (endpoint_improvement_possible(event.link,
                                            cached(origin).table)) {
            recompute_origin(origin, impact);
          }
        }
      }
      break;
    }
    case EventKind::kEgressWeightSet: {
      state_.set_egress_weight(event.interconnect, event.weight);
      impact.touched_links.push_back(event.link);
      break;
    }
    case EventKind::kAdjacencyDown: {
      state_.set_adjacency_enabled(event.link, false);
      for (AsIndex origin : origins_using_link(event.link)) {
        recompute_origin(origin, impact);
      }
      break;
    }
    case EventKind::kAdjacencyUp: {
      state_.set_adjacency_enabled(event.link, true);
      for (AsIndex origin : cached_origins()) {
        if (endpoint_improvement_possible(event.link,
                                          cached(origin).table)) {
          recompute_origin(origin, impact);
        }
      }
      break;
    }
    case EventKind::kPreferredLinkSet: {
      state_.set_preferred_link(event.as, event.origin, event.link);
      recompute_origin(event.origin, impact);
      break;
    }
    case EventKind::kPreferredLinkClear: {
      state_.clear_preferred_link(event.as, event.origin);
      recompute_origin(event.origin, impact);
      break;
    }
    case EventKind::kTeCommunitySet: {
      state_.set_te_community_value(event.as, event.origin, event.value);
      impact.te_changes.emplace_back(event.as, event.origin);
      break;
    }
    case EventKind::kParrotUpdate: {
      // Pure feed-level noise; the BGP feed reads the event directly.
      break;
    }
    case EventKind::kIxpJoin: {
      impact.new_links =
          topo::ixp_join(topology_, event.ixp, event.as,
                         /*peer_prob=*/0.35, /*max_new_peers=*/5, rng_);
      state_.sync_sizes(topology_);
      for (topo::LinkId link : impact.new_links) {
        impact.touched_links.push_back(link);
        for (AsIndex origin : cached_origins()) {
          if (endpoint_improvement_possible(link, cached(origin).table)) {
            recompute_origin(origin, impact);
          }
        }
      }
      break;
    }
  }
  // Deduplicate (an origin can be recomputed once per new link above).
  auto& ro = impact.recomputed_origins;
  std::sort(ro.begin(), ro.end());
  ro.erase(std::unique(ro.begin(), ro.end()), ro.end());
  auto& rc = impact.as_route_changes;
  std::sort(rc.begin(), rc.end());
  rc.erase(std::unique(rc.begin(), rc.end()), rc.end());
  return impact;
}

}  // namespace rrr::routing
