// Control-plane route computation: per-origin BGP best paths under the
// Gao–Rexford policy model.
//
// Selection: higher local preference (customer 300 > peer 200 > provider
// 100, plus a +50 per-(viewer, origin) preferred-link boost), then shorter
// AS path, then lower neighbor ASN, then lower link id. Export follows the
// valley-free rule: routes learned from customers are exported to everyone;
// routes learned from peers or providers only to customers.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/asn.h"
#include "routing/state.h"
#include "topology/topology.h"

namespace rrr::routing {

struct Route {
  // AS-level path from the viewer to the origin, viewer first (matches the
  // AS_PATH a collector peer would announce). Empty => unreachable.
  AsPath path;
  // The adjacency over which the viewer learned the route (kNoLink for the
  // origin itself).
  LinkId via_link = topo::kNoLink;
  topo::NeighborKind learned_from = topo::NeighborKind::kCustomer;
  bool reachable() const { return !path.empty(); }
};

// Routes of every AS toward one origin; indexed by AsIndex.
struct RouteTable {
  AsIndex origin = topo::kNoAs;
  std::vector<Route> routes;

  const Route& at(AsIndex as) const { return routes[as]; }
};

// Computes the converged route table for `origin` under the current state.
// Deterministic: identical inputs yield identical tables.
RouteTable compute_routes(const Topology& topology, const RoutingState& state,
                          AsIndex origin);

// All adjacencies used by any best path in `table` (for event -> affected
// origin indexing).
std::vector<LinkId> used_links(const RouteTable& table);

}  // namespace rrr::routing
