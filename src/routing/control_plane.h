// The control plane: cached per-origin route tables, per-VP route
// attributes (AS path + communities + border crossings), and incremental
// event application.
//
// This is the simulator-side stand-in for "the Internet's routing system".
// Consumers never see it directly in the paper's pipeline: the BGP feed
// (src/bgp) renders its route-attribute diffs as collector updates, and the
// measurement platform (src/traceroute) samples its forwarding paths.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "netbase/community.h"
#include "netbase/rng.h"
#include "routing/events.h"
#include "routing/forwarding.h"
#include "routing/routes.h"
#include "routing/state.h"
#include "topology/builder.h"
#include "topology/topology.h"

namespace rrr::routing {

// What a BGP vantage point would see for one destination: the announced
// AS path, the communities surviving propagation, and (simulator-side
// ground truth, not visible to consumers) the interconnects the route
// crosses.
struct RouteAttributes {
  AsPath path;  // VP's AS first, origin last; empty = unreachable
  CommunitySet communities;
  std::vector<topo::InterconnectId> crossings;

  bool reachable() const { return !path.empty(); }
  friend bool operator==(const RouteAttributes&, const RouteAttributes&) =
      default;
};

class ControlPlane final : public RouteProvider {
 public:
  // The control plane mutates the topology on IXP-join events, hence the
  // non-const reference; it must outlive the control plane.
  ControlPlane(topo::Topology& topology, std::uint64_t seed);

  const topo::Topology& topology() const { return topology_; }
  topo::Topology& topology_mut() { return topology_; }
  const RoutingState& state() const { return state_; }
  RoutingState& state_mut() { return state_; }
  const ForwardingResolver& resolver() const { return resolver_; }

  // RouteProvider: converged table for `origin`, computed lazily and cached
  // until an event invalidates it.
  const RouteTable& table_for(AsIndex origin) override;

  // Pre-computes and pins `origin` in the cache so that later events report
  // its changes in their impact.
  void warm_origin(AsIndex origin) { (void)table_for(origin); }

  // Control-plane view of VP `vp_as`'s route toward `origin`.
  RouteAttributes attributes(AsIndex vp_as, AsIndex origin);

  // What an event changed. All origin lists refer to *cached* origins only:
  // warm the origins you monitor before applying events.
  struct Impact {
    // Origins whose tables were recomputed (superset of those that changed).
    std::vector<AsIndex> recomputed_origins;
    // (viewer AS, origin) pairs whose best AS path changed.
    std::vector<std::pair<AsIndex, AsIndex>> as_route_changes;
    // Links whose interconnect usage (egress choice) may have shifted
    // without any AS-path change.
    std::vector<topo::LinkId> touched_links;
    // Links created by an IXP join.
    std::vector<topo::LinkId> new_links;
    // (AS, origin) whose TE community value changed (pure attribute churn).
    std::vector<std::pair<AsIndex, AsIndex>> te_changes;
  };
  Impact apply(const Event& event);

 private:
  struct CachedTable {
    RouteTable table;
    std::vector<topo::LinkId> used;
  };

  CachedTable& cached(AsIndex origin);
  // Recomputes `origin`'s table, appending any per-viewer path diffs to
  // `impact`.
  void recompute_origin(AsIndex origin, Impact& impact);
  // True when bringing `link` up could change some route in `table`.
  bool endpoint_improvement_possible(topo::LinkId link,
                                     const RouteTable& table) const;
  std::vector<AsIndex> origins_using_link(topo::LinkId link) const;
  std::vector<AsIndex> cached_origins() const;

  topo::Topology& topology_;
  RoutingState state_;
  ForwardingResolver resolver_;
  Rng rng_;
  std::map<AsIndex, CachedTable> tables_;
};

}  // namespace rrr::routing
