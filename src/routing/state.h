// Mutable routing state layered over the static topology.
//
// Events (src/routing/events.h) perturb this state; the route computer and
// forwarding resolver read it. Keeping dynamics out of `Topology` makes the
// static structure shareable across experiment arms.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "topology/topology.h"

namespace rrr::routing {

using topo::AsIndex;
using topo::InterconnectId;
using topo::LinkId;
using topo::Topology;

class RoutingState {
 public:
  explicit RoutingState(const Topology& topology)
      : interconnect_active_(topology.interconnects().size(), true),
        adjacency_enabled_(topology.links().size(), true),
        egress_weight_(topology.interconnects().size(), 0.0) {}

  // --- interconnect (border) level ---
  bool interconnect_active(InterconnectId ic) const {
    return ic < interconnect_active_.size() ? interconnect_active_[ic] : true;
  }
  void set_interconnect_active(InterconnectId ic, bool active) {
    grow(ic);
    interconnect_active_[ic] = active;
    ++version_;
  }

  // Hot-potato egress penalty in km-equivalents: IGP weight changes shift
  // which interconnect wins without any AS-level effect.
  double egress_weight(InterconnectId ic) const {
    return ic < egress_weight_.size() ? egress_weight_[ic] : 0.0;
  }
  void set_egress_weight(InterconnectId ic, double weight) {
    grow(ic);
    egress_weight_[ic] = weight;
    ++version_;
  }

  // --- adjacency (AS) level ---
  bool adjacency_enabled(LinkId link) const {
    return link < adjacency_enabled_.size() ? adjacency_enabled_[link] : true;
  }
  void set_adjacency_enabled(LinkId link, bool enabled) {
    if (link >= adjacency_enabled_.size()) {
      adjacency_enabled_.resize(link + 1, true);
    }
    adjacency_enabled_[link] = enabled;
    ++version_;
  }

  // An adjacency is usable when enabled and at least one of its
  // interconnects is active.
  bool adjacency_usable(const Topology& topology, LinkId link) const {
    if (!adjacency_enabled(link)) return false;
    for (InterconnectId ic : topology.link_interconnects(link)) {
      if (interconnect_active(ic)) return true;
    }
    return false;
  }

  // --- policy overrides ---
  // A viewer AS boosts routes to `origin` learned over `link` (+50 local
  // pref: enough to win within a relationship class, never across classes).
  void set_preferred_link(AsIndex viewer, AsIndex origin, LinkId link) {
    preferred_link_[{viewer, origin}] = link;
    ++version_;
  }
  void clear_preferred_link(AsIndex viewer, AsIndex origin) {
    preferred_link_.erase({viewer, origin});
    ++version_;
  }
  LinkId preferred_link(AsIndex viewer, AsIndex origin) const {
    auto it = preferred_link_.find({viewer, origin});
    return it == preferred_link_.end() ? topo::kNoLink : it->second;
  }

  // --- per-(AS, origin) traffic-engineering community values ---
  // Unrelated to the traversed path; exercises the §4.1.3 suppression rules.
  void set_te_community_value(AsIndex as, AsIndex origin,
                              std::uint16_t value) {
    te_value_[{as, origin}] = value;
    ++version_;
  }
  std::uint16_t te_community_value(AsIndex as, AsIndex origin) const {
    auto it = te_value_.find({as, origin});
    return it == te_value_.end() ? 0 : it->second;
  }

  // Monotone counter bumped by every mutation; caches key off it.
  std::uint64_t version() const { return version_; }
  // New topology objects (IXP joins create links/interconnects) may appear
  // after construction; vectors grow on demand with neutral defaults.
  void sync_sizes(const Topology& topology) {
    if (interconnect_active_.size() < topology.interconnects().size()) {
      interconnect_active_.resize(topology.interconnects().size(), true);
      egress_weight_.resize(topology.interconnects().size(), 0.0);
    }
    if (adjacency_enabled_.size() < topology.links().size()) {
      adjacency_enabled_.resize(topology.links().size(), true);
    }
  }

 private:
  void grow(InterconnectId ic) {
    if (ic >= interconnect_active_.size()) {
      interconnect_active_.resize(ic + 1, true);
      egress_weight_.resize(ic + 1, 0.0);
    }
  }

  std::vector<bool> interconnect_active_;
  std::vector<bool> adjacency_enabled_;
  std::vector<double> egress_weight_;
  std::map<std::pair<AsIndex, AsIndex>, LinkId> preferred_link_;
  std::map<std::pair<AsIndex, AsIndex>, std::uint16_t> te_value_;
  std::uint64_t version_ = 0;
};

}  // namespace rrr::routing
