#include "routing/routes.h"

#include <algorithm>
#include <deque>

namespace rrr::routing {
namespace {

int base_local_pref(topo::NeighborKind kind) {
  switch (kind) {
    case topo::NeighborKind::kCustomer:
      return 300;
    case topo::NeighborKind::kPeer:
      return 200;
    case topo::NeighborKind::kProvider:
      return 100;
  }
  return 0;
}

struct Candidate {
  int local_pref = -1;
  std::size_t path_length = 0;
  std::uint32_t neighbor_asn = 0;
  LinkId link = topo::kNoLink;

  // True when this candidate is preferred over `other`.
  bool better_than(const Candidate& other) const {
    if (local_pref != other.local_pref) return local_pref > other.local_pref;
    if (path_length != other.path_length)
      return path_length < other.path_length;
    if (neighbor_asn != other.neighbor_asn)
      return neighbor_asn < other.neighbor_asn;
    return link < other.link;
  }
};

// Whether `u` (holding `route`) exports that route to neighbor `v`, where
// `u_kind_for_v` is how v sees u. Valley-free: customer-learned routes (and
// the origin's own) go to everyone; peer/provider routes only to customers,
// i.e. only when v sees u as its provider.
bool exports_to(const Route& route, bool u_is_origin,
                topo::NeighborKind u_kind_for_v) {
  if (u_is_origin) return true;
  if (route.learned_from == topo::NeighborKind::kCustomer) return true;
  return u_kind_for_v == topo::NeighborKind::kProvider;
}

}  // namespace

RouteTable compute_routes(const Topology& topology, const RoutingState& state,
                          AsIndex origin) {
  const std::size_t n = topology.as_count();
  RouteTable table;
  table.origin = origin;
  table.routes.assign(n, Route{});
  table.routes[origin].path = {topology.as_at(origin).asn};

  // Cached selection metadata mirroring table.routes, so re-selection does
  // not have to recompute preference of the incumbent.
  std::vector<Candidate> best(n);
  best[origin] = Candidate{.local_pref = 1 << 20,
                           .path_length = 0,
                           .neighbor_asn = 0,
                           .link = topo::kNoLink};

  std::deque<AsIndex> queue;
  std::vector<bool> queued(n, false);
  auto enqueue = [&](AsIndex as) {
    if (!queued[as]) {
      queued[as] = true;
      queue.push_back(as);
    }
  };
  for (const topo::Neighbor& nb : topology.neighbors(origin)) enqueue(nb.as);

  // Guard against livelock under adversarial preference settings; the
  // Gao-Rexford lattice converges far below this bound in practice.
  std::size_t budget = 50 * (n + 1) * 8;

  while (!queue.empty() && budget-- > 0) {
    AsIndex v = queue.front();
    queue.pop_front();
    queued[v] = false;
    if (v == origin) continue;

    // Full re-selection over all neighbors of v.
    Candidate chosen;
    const topo::Neighbor* chosen_nb = nullptr;
    for (const topo::Neighbor& nb : topology.neighbors(v)) {
      const Route& route = table.routes[nb.as];
      if (!route.reachable()) continue;
      if (!state.adjacency_usable(topology, nb.link)) continue;
      // How v's neighbor u sees v: invert the kind.
      topo::NeighborKind u_kind_for_v = nb.kind;  // how v sees u; export rule
      if (!exports_to(route, nb.as == origin, u_kind_for_v)) continue;
      if (contains(route.path, topology.as_at(v).asn)) continue;
      Candidate candidate{
          .local_pref = base_local_pref(nb.kind) +
                        (state.preferred_link(v, origin) == nb.link ? 50 : 0),
          .path_length = route.path.size() + 1,
          .neighbor_asn = topology.as_at(nb.as).asn.number(),
          .link = nb.link,
      };
      if (chosen_nb == nullptr || candidate.better_than(chosen)) {
        chosen = candidate;
        chosen_nb = &nb;
      }
    }

    Route updated;
    if (chosen_nb != nullptr) {
      updated.path.reserve(table.routes[chosen_nb->as].path.size() + 1);
      updated.path.push_back(topology.as_at(v).asn);
      const AsPath& tail = table.routes[chosen_nb->as].path;
      updated.path.insert(updated.path.end(), tail.begin(), tail.end());
      updated.via_link = chosen_nb->link;
      updated.learned_from = chosen_nb->kind;
    }

    if (updated.path != table.routes[v].path ||
        updated.via_link != table.routes[v].via_link) {
      table.routes[v] = std::move(updated);
      best[v] = chosen;
      for (const topo::Neighbor& nb : topology.neighbors(v)) enqueue(nb.as);
    }
  }
  return table;
}

std::vector<LinkId> used_links(const RouteTable& table) {
  std::vector<LinkId> links;
  for (const Route& route : table.routes) {
    if (route.reachable() && route.via_link != topo::kNoLink) {
      links.push_back(route.via_link);
    }
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

}  // namespace rrr::routing
