#include "routing/forwarding.h"

#include <limits>

#include "netbase/rng.h"
#include "topology/city.h"

namespace rrr::routing {

InterconnectId ForwardingResolver::egress_choice(AsIndex from_as,
                                                 AsIndex to_as,
                                                 CityId ingress_city,
                                                 std::uint64_t flow_id) const {
  LinkId link = topology_.link_between(from_as, to_as);
  if (link == topo::kNoLink) return topo::kNoInterconnect;

  // Egress selection: static per-interconnect preference dominates, with a
  // damped hot-potato distance term as tie-break — real ASes converge on a
  // consistent exit per neighbor, with ingress-dependent early exit only
  // among equally-preferred interconnects (§4.2.2's consistency argument).
  constexpr double kHotPotatoScale = 0.15;
  InterconnectId best = topo::kNoInterconnect;
  double best_cost = std::numeric_limits<double>::infinity();
  for (InterconnectId ic_id : topology_.link_interconnects(link)) {
    if (!state_.interconnect_active(ic_id)) continue;
    const topo::Interconnect& ic = topology_.interconnect_at(ic_id);
    double cost =
        kHotPotatoScale * topo::city_distance_km(ingress_city, ic.city) +
        ic.base_weight + state_.egress_weight(ic_id);
    if (cost < best_cost || (cost == best_cost && ic_id < best)) {
      best_cost = cost;
      best = ic_id;
    }
  }
  if (best == topo::kNoInterconnect) return best;

  // ECMP interconnect group: flows hash uniformly across the group's active
  // members instead of the pure hot-potato winner (interdomain diamonds).
  const topo::Interconnect& winner = topology_.interconnect_at(best);
  if (winner.ecmp_group >= 0) {
    std::vector<InterconnectId> members;
    for (InterconnectId ic_id : topology_.link_interconnects(link)) {
      if (!state_.interconnect_active(ic_id)) continue;
      if (topology_.interconnect_at(ic_id).ecmp_group == winner.ecmp_group) {
        members.push_back(ic_id);
      }
    }
    if (members.size() >= 2) {
      std::uint64_t h = hash_combine(flow_id, 0x1C0000ull + link);
      return members[h % members.size()];
    }
  }
  return best;
}

void ForwardingResolver::emit_internal_hop(ForwardPath& path, AsIndex as,
                                           CityId city,
                                           std::uint64_t flow_id) const {
  auto routers = topology_.internal_routers(as, city);
  if (routers.empty()) return;  // AS colocates there with border gear only
  std::uint64_t h = hash_combine(flow_id, hash_combine(as, city));
  RouterId r = routers[h % routers.size()];
  const topo::Router& router = topology_.router_at(r);
  if (router.interfaces.empty()) return;
  path.hops.push_back(router.interfaces.front());
  path.hop_routers.push_back(r);
}

void ForwardingResolver::emit_border_hops(ForwardPath& path,
                                          const topo::Interconnect& ic,
                                          bool forward) const {
  // The near-side border router replies with its internal-facing interface
  // (its first-attached address); the far side replies with its ingress
  // interface on the interconnect medium (an IXP LAN address for IXP
  // crossings).
  RouterId near = forward ? ic.router_a : ic.router_b;
  const topo::Router& near_router = topology_.router_at(near);
  if (!near_router.interfaces.empty()) {
    path.hops.push_back(near_router.interfaces.front());
    path.hop_routers.push_back(near);
  }
  RouterId far = forward ? ic.router_b : ic.router_a;
  path.hops.push_back(forward ? ic.ip_b : ic.ip_a);
  path.hop_routers.push_back(far);
}

ForwardPath ForwardingResolver::resolve(AsIndex src_as, CityId src_city,
                                        Ipv4 dst_ip, std::uint64_t flow_id,
                                        bool with_ip_hops) const {
  ForwardPath path;
  AsIndex dst_as = topology_.announced_owner_of(dst_ip);
  if (dst_as == topo::kNoAs) return path;

  const RouteTable& table = routes_.table_for(dst_as);
  const Route& route = table.at(src_as);
  if (!route.reachable()) return path;

  // Translate the ASN path into dense indices.
  path.as_path.reserve(route.path.size());
  for (Asn asn : route.path) {
    AsIndex idx = topology_.index_of(asn);
    if (idx == topo::kNoAs) return path;  // should not happen
    path.as_path.push_back(idx);
  }

  CityId current_city = src_city;
  for (std::size_t i = 0; i + 1 < path.as_path.size(); ++i) {
    AsIndex from = path.as_path[i];
    AsIndex to = path.as_path[i + 1];
    InterconnectId ic_id = egress_choice(from, to, current_city, flow_id);
    if (ic_id == topo::kNoInterconnect) return ForwardPath{};  // partitioned
    const topo::Interconnect& ic = topology_.interconnect_at(ic_id);
    bool forward = topology_.link_at(ic.link).a == from;
    if (with_ip_hops) {
      // Intra-AS travel inside `from`: a hop at the entry city and, when the
      // egress is elsewhere, a hop at the egress city.
      if (i == 0) emit_internal_hop(path, from, current_city, flow_id);
      if (ic.city != current_city) {
        emit_internal_hop(path, from, ic.city, flow_id);
      }
      emit_border_hops(path, ic, forward);
    }
    path.crossings.push_back(BorderCrossing{.interconnect = ic_id,
                                            .forward = forward,
                                            .from_as = from,
                                            .to_as = to,
                                            .city = ic.city});
    current_city = ic.city;
  }

  if (with_ip_hops) {
    AsIndex final_as = path.as_path.back();
    CityId dst_city = host_city(dst_as);
    if (path.as_path.size() == 1) {
      emit_internal_hop(path, final_as, current_city, flow_id);
    }
    if (dst_city != current_city) {
      emit_internal_hop(path, final_as, dst_city, flow_id);
    }
    path.hops.push_back(dst_ip);
    path.hop_routers.push_back(topo::kNoRouter);
  }
  path.reachable = true;
  return path;
}

}  // namespace rrr::routing
