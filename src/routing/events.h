// Routing dynamics: the events that change paths over time, and the
// generator that produces a deterministic Poisson schedule of them.
//
// Event kinds map onto the phenomena the paper's techniques detect:
//  * interconnect down/up and egress-weight shifts produce border-level
//    changes invisible in BGP AS paths (§4.1.3/§4.1.4 territory);
//  * adjacency down/up and preferred-link shifts produce AS-level changes
//    (§4.1.2 territory);
//  * TE-community churn and parrot updates are pure noise that the
//    suppression and calibration machinery must reject;
//  * IXP joins create new peering links (§4.2.3 territory).
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/time.h"
#include "topology/topology.h"

namespace rrr::routing {

enum class EventKind : std::uint8_t {
  kInterconnectDown,
  kInterconnectUp,
  kEgressWeightSet,    // weight -> Event::weight
  kAdjacencyDown,
  kAdjacencyUp,
  kPreferredLinkSet,   // (as=viewer, origin, link)
  kPreferredLinkClear,
  kTeCommunitySet,     // (as, origin, value)
  kParrotUpdate,       // (as=VP, origin): spurious duplicate, no state change
  kIxpJoin,            // (as, ixp)
};

const char* to_string(EventKind kind);

struct Event {
  std::uint64_t id = 0;
  EventKind kind = EventKind::kParrotUpdate;
  TimePoint time;
  topo::InterconnectId interconnect = topo::kNoInterconnect;
  topo::LinkId link = topo::kNoLink;
  topo::AsIndex as = topo::kNoAs;
  topo::AsIndex origin = topo::kNoAs;
  topo::IxpId ixp = topo::kNoIxp;
  double weight = 0.0;
  std::uint16_t value = 0;
};

// Expected number of events per day, by category. Rates are totals across
// the whole topology, tuned so that over 60 days roughly 28% of paths see a
// border-level change and 15% an AS-level change (paper Figure 1).
struct DynamicsParams {
  double interconnect_flap_per_day = 9.0;
  double interconnect_outage_mean_hours = 14.0;
  double egress_shift_per_day = 7.0;
  double egress_shift_mean_hours = 30.0;
  double egress_shift_permanent_prob = 0.35;
  double adjacency_flap_per_day = 4.0;
  double adjacency_outage_mean_hours = 16.0;
  double preferred_link_shift_per_day = 4.0;
  double preferred_link_mean_hours = 48.0;
  double te_community_churn_per_day = 12.0;
  double parrot_update_per_day = 40.0;
  double ixp_join_per_day = 0.25;
  // Weight applied by egress shifts, in km-equivalents; must exceed typical
  // inter-PoP distances to actually move the egress.
  double egress_shift_weight = 15000.0;
};

// Builds the full event schedule for [t_begin, t_end), sorted by time.
// Origin-targeted events draw from `origins` (the destination ASes the
// experiment monitors); parrot events draw VPs from `vp_ases`.
std::vector<Event> generate_schedule(const topo::Topology& topology,
                                     const DynamicsParams& params,
                                     TimePoint t_begin, TimePoint t_end,
                                     const std::vector<topo::AsIndex>& origins,
                                     const std::vector<topo::AsIndex>& vp_ases,
                                     std::uint64_t seed);

}  // namespace rrr::routing
