// Text serialization for measurement data: BGP records in an MRT-dump-like
// line format and traceroutes in a warts-inspired one. A deployment uses
// these to archive feeds, replay captured data through the engine, and
// interchange corpora between runs.
//
// Formats are line-oriented, one element per line, '#' comments allowed:
//
//   BGP:  <time>|<type A|W|R>|<collector>|<peer_asn>|<peer_ip>|<vp>|
//         <prefix>|<as path space-separated>|<communities space-separated>
//
//   TRR:  T|<id>|<probe>|<src>|<dst>|<time>|<flow>|<reached>
//         followed by one "H|<ttl>|<ip or *>|<rtt_ms>" line per hop.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "bgp/record.h"
#include "traceroute/traceroute.h"

namespace rrr::io {

// --- BGP records ---
std::string to_line(const bgp::BgpRecord& record);
// Parses one line; nullopt for malformed input (never throws: feed parsing
// sits on ingest paths where bad lines are skipped and counted). Malformed
// covers truncated/extra fields, out-of-range numbers, oversized lines
// (> 64 KiB), unbounded path/community/hop lists, and embedded NUL bytes.
std::optional<bgp::BgpRecord> bgp_record_from_line(std::string_view line);

void write_bgp_records(std::ostream& os,
                       const std::vector<bgp::BgpRecord>& records);
// Reads until EOF; `errors` (optional) counts skipped lines.
std::vector<bgp::BgpRecord> read_bgp_records(std::istream& is,
                                             std::size_t* errors = nullptr);

// --- traceroutes ---
void write_traceroute(std::ostream& os, const tr::Traceroute& trace);
void write_traceroutes(std::ostream& os,
                       const std::vector<tr::Traceroute>& traces);
std::vector<tr::Traceroute> read_traceroutes(std::istream& is,
                                             std::size_t* errors = nullptr);

}  // namespace rrr::io
