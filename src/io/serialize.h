// Text serialization for measurement data: BGP records in an MRT-dump-like
// line format and traceroutes in a warts-inspired one. A deployment uses
// these to archive feeds, replay captured data through the engine, and
// interchange corpora between runs.
//
// Formats are line-oriented, one element per line, '#' comments allowed:
//
//   BGP:  <time>|<type A|W|R>|<collector>|<peer_asn>|<peer_ip>|<vp>|
//         <prefix>|<as path space-separated>|<communities space-separated>
//
//   TRR:  T|<id>|<probe>|<src>|<dst>|<time>|<flow>|<reached>
//         followed by one "H|<ttl>|<ip or *>|<rtt_ms>" line per hop.
#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/record.h"
#include "traceroute/traceroute.h"

namespace rrr::io {

// --- archive format version ---
// write_bgp_records / write_traceroutes stamp every archive with a
// "#rrr-io v<N>" header line. Readers accept headerless (legacy) archives
// and any version <= kIoFormatVersion; a future version throws
// VersionMismatchError — a diagnosable error instead of silently skipping
// every line of a format this build cannot understand. Version bumps must
// stay backward-readable (mirroring store/framing.h's container rule).
inline constexpr int kIoFormatVersion = 1;

// The header line, without a trailing newline: "#rrr-io v1".
std::string version_header();

// Parses an archive header line; nullopt when `line` is not one (an
// ordinary '#' comment is not a header and stays skippable).
std::optional<int> parse_version_header(std::string_view line);

// Thrown by the archive readers on a future-version header.
class VersionMismatchError : public std::runtime_error {
 public:
  explicit VersionMismatchError(int found);
  int found() const { return found_; }

 private:
  int found_;
};

// --- BGP records ---
std::string to_line(const bgp::BgpRecord& record);
// Parses one line; nullopt for malformed input (never throws: feed parsing
// sits on ingest paths where bad lines are skipped and counted). Malformed
// covers truncated/extra fields, out-of-range numbers, oversized lines
// (> 64 KiB), unbounded path/community/hop lists, and embedded NUL bytes.
std::optional<bgp::BgpRecord> bgp_record_from_line(std::string_view line);

void write_bgp_records(std::ostream& os,
                       const std::vector<bgp::BgpRecord>& records);
// Reads until EOF; `errors` (optional) counts skipped lines.
std::vector<bgp::BgpRecord> read_bgp_records(std::istream& is,
                                             std::size_t* errors = nullptr);

// --- traceroutes ---
void write_traceroute(std::ostream& os, const tr::Traceroute& trace);
void write_traceroutes(std::ostream& os,
                       const std::vector<tr::Traceroute>& traces);
std::vector<tr::Traceroute> read_traceroutes(std::istream& is,
                                             std::size_t* errors = nullptr);

}  // namespace rrr::io
