#include "io/serialize.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace rrr::io {
namespace {

// Hard caps so a corrupted or adversarial archive line cannot drive
// unbounded allocation. Real MRT/warts elements are far smaller.
constexpr std::size_t kMaxLineBytes = 64 * 1024;
constexpr std::size_t kMaxPathHops = 1024;
constexpr std::size_t kMaxCommunities = 1024;
constexpr std::size_t kMaxTraceHops = 512;

// Oversized lines and embedded NULs are rejected up front: a NUL inside a
// text field (e.g. the collector name) would silently truncate downstream
// C-string consumers, and the length cap bounds split()'s allocation.
bool well_formed(std::string_view line) {
  return line.size() <= kMaxLineBytes &&
         line.find('\0') == std::string_view::npos;
}

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  std::int64_t value = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                 value);
  if (ec != std::errc{} || p != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  // from_chars for doubles is not universally available; strtod via string.
  std::string buffer(text);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;  // strtod accepts inf/nan
  return value;
}

// Integer constrained to [lo, hi]; the unchecked static_casts this replaces
// silently wrapped out-of-range values into valid-looking ids.
std::optional<std::int64_t> parse_ranged(std::string_view text,
                                         std::int64_t lo, std::int64_t hi) {
  auto value = parse_int(text);
  if (!value || *value < lo || *value > hi) return std::nullopt;
  return value;
}

constexpr std::int64_t kU32Max = std::numeric_limits<std::uint32_t>::max();

char type_char(bgp::RecordType type) {
  switch (type) {
    case bgp::RecordType::kAnnouncement:
      return 'A';
    case bgp::RecordType::kWithdrawal:
      return 'W';
    case bgp::RecordType::kRibEntry:
      return 'R';
  }
  return '?';
}

std::optional<bgp::RecordType> type_of(std::string_view text) {
  if (text == "A") return bgp::RecordType::kAnnouncement;
  if (text == "W") return bgp::RecordType::kWithdrawal;
  if (text == "R") return bgp::RecordType::kRibEntry;
  return std::nullopt;
}

// Skips comments; a header comment declaring a future version throws.
void check_comment(std::string_view line) {
  std::optional<int> version = parse_version_header(line);
  if (version && *version > kIoFormatVersion) {
    throw VersionMismatchError(*version);
  }
}

}  // namespace

std::string version_header() {
  return "#rrr-io v" + std::to_string(kIoFormatVersion);
}

std::optional<int> parse_version_header(std::string_view line) {
  constexpr std::string_view kPrefix = "#rrr-io v";
  if (line.rfind(kPrefix, 0) != 0) return std::nullopt;
  auto version = parse_ranged(line.substr(kPrefix.size()), 0,
                              std::numeric_limits<int>::max());
  if (!version) return std::nullopt;
  return static_cast<int>(*version);
}

VersionMismatchError::VersionMismatchError(int found)
    : std::runtime_error("io archive declares format version v" +
                         std::to_string(found) + "; this build reads up to v" +
                         std::to_string(kIoFormatVersion)),
      found_(found) {}

std::string to_line(const bgp::BgpRecord& record) {
  std::ostringstream out;
  out << record.time.seconds() << '|' << type_char(record.type) << '|'
      << record.collector << '|' << record.peer_asn.number() << '|'
      << record.peer_ip.to_string() << '|' << record.vp << '|'
      << record.prefix.to_string() << '|';
  for (std::size_t i = 0; i < record.as_path.size(); ++i) {
    if (i) out << ' ';
    out << record.as_path[i].number();
  }
  out << '|';
  bool first = true;
  for (Community c : record.communities) {
    if (!first) out << ' ';
    first = false;
    out << c.to_string();
  }
  return out.str();
}

std::optional<bgp::BgpRecord> bgp_record_from_line(std::string_view line) {
  if (!well_formed(line)) return std::nullopt;
  auto fields = split(line, '|');
  if (fields.size() != 9) return std::nullopt;
  bgp::BgpRecord record;
  auto time = parse_ranged(fields[0], 0,
                           std::numeric_limits<std::int64_t>::max());
  auto type = type_of(fields[1]);
  auto peer_asn = parse_ranged(fields[3], 0, kU32Max);
  auto peer_ip = Ipv4::parse(fields[4]);
  auto vp = parse_ranged(fields[5], 0, kU32Max);
  auto prefix = Prefix::parse(fields[6]);
  if (!time || !type || !peer_asn || !peer_ip || !vp || !prefix) {
    return std::nullopt;
  }
  record.time = TimePoint(*time);
  record.type = *type;
  record.collector = fields[2];
  record.peer_asn = Asn(static_cast<std::uint32_t>(*peer_asn));
  record.peer_ip = *peer_ip;
  record.vp = static_cast<bgp::VpId>(*vp);
  record.prefix = *prefix;
  // Attributes are parsed into plain containers and interned once at the
  // end, so a rejected line never touches the intern tables.
  if (!fields[7].empty()) {
    AsPath path;
    for (std::string_view hop : split(fields[7], ' ')) {
      auto asn = parse_ranged(hop, 0, kU32Max);
      if (!asn) return std::nullopt;
      if (path.size() >= kMaxPathHops) return std::nullopt;
      path.push_back(Asn(static_cast<std::uint32_t>(*asn)));
    }
    record.as_path = path;
  }
  if (!fields[8].empty()) {
    CommunitySet communities;
    for (std::string_view text : split(fields[8], ' ')) {
      auto community = Community::parse(text);
      if (!community) return std::nullopt;
      if (communities.size() >= kMaxCommunities) return std::nullopt;
      communities.insert(*community);
    }
    record.communities = communities;
  }
  return record;
}

void write_bgp_records(std::ostream& os,
                       const std::vector<bgp::BgpRecord>& records) {
  os << version_header() << '\n';
  for (const bgp::BgpRecord& record : records) {
    os << to_line(record) << '\n';
  }
}

std::vector<bgp::BgpRecord> read_bgp_records(std::istream& is,
                                             std::size_t* errors) {
  std::vector<bgp::BgpRecord> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      check_comment(line);
      continue;
    }
    if (auto record = bgp_record_from_line(line)) {
      out.push_back(std::move(*record));
    } else if (errors != nullptr) {
      ++*errors;
    }
  }
  return out;
}

void write_traceroute(std::ostream& os, const tr::Traceroute& trace) {
  os << "T|" << trace.id << '|' << trace.probe << '|'
     << trace.src_ip.to_string() << '|' << trace.dst_ip.to_string() << '|'
     << trace.time.seconds() << '|' << trace.flow_id << '|'
     << (trace.reached ? 1 : 0) << '\n';
  int ttl = 1;
  for (const tr::Hop& hop : trace.hops) {
    os << "H|" << ttl++ << '|';
    if (hop.responded()) {
      char rtt[32];
      std::snprintf(rtt, sizeof rtt, "%.3f", hop.rtt_ms);
      os << hop.ip->to_string() << '|' << rtt;
    } else {
      os << "*|0";
    }
    os << '\n';
  }
}

void write_traceroutes(std::ostream& os,
                       const std::vector<tr::Traceroute>& traces) {
  os << version_header() << '\n';
  for (const tr::Traceroute& trace : traces) write_traceroute(os, trace);
}

std::vector<tr::Traceroute> read_traceroutes(std::istream& is,
                                             std::size_t* errors) {
  std::vector<tr::Traceroute> out;
  std::string line;
  auto fail = [&] {
    if (errors != nullptr) ++*errors;
  };
  constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      check_comment(line);
      continue;
    }
    if (!well_formed(line)) {
      fail();
      continue;
    }
    auto fields = split(line, '|');
    if (fields[0] == "T") {
      if (fields.size() != 8) {
        fail();
        continue;
      }
      auto id = parse_ranged(fields[1], 0, kI64Max);
      auto probe = parse_ranged(fields[2], 0, kU32Max);
      auto src = Ipv4::parse(fields[3]);
      auto dst = Ipv4::parse(fields[4]);
      auto time = parse_ranged(fields[5], 0, kI64Max);
      auto flow = parse_ranged(fields[6], 0, kI64Max);
      auto reached = parse_ranged(fields[7], 0, 1);
      if (!id || !probe || !src || !dst || !time || !flow || !reached) {
        fail();
        continue;
      }
      tr::Traceroute trace;
      trace.id = static_cast<std::uint64_t>(*id);
      trace.probe = static_cast<tr::ProbeId>(*probe);
      trace.src_ip = *src;
      trace.dst_ip = *dst;
      trace.time = TimePoint(*time);
      trace.flow_id = static_cast<std::uint64_t>(*flow);
      trace.reached = *reached != 0;
      out.push_back(std::move(trace));
    } else if (fields[0] == "H") {
      if (out.empty() || fields.size() != 4 ||
          out.back().hops.size() >= kMaxTraceHops) {
        fail();
        continue;
      }
      // The TTL column is positional on write but still validated on read:
      // a corrupted TTL is the tell for a truncated/merged line.
      auto ttl = parse_ranged(fields[1], 1,
                              static_cast<std::int64_t>(kMaxTraceHops));
      if (!ttl) {
        fail();
        continue;
      }
      tr::Hop hop;
      if (fields[2] != "*") {
        auto ip = Ipv4::parse(fields[2]);
        auto rtt = parse_double(fields[3]);
        if (!ip || !rtt || *rtt < 0.0) {
          fail();
          continue;
        }
        hop.ip = *ip;
        hop.rtt_ms = *rtt;
      }
      out.back().hops.push_back(hop);
    } else {
      fail();
    }
  }
  return out;
}

}  // namespace rrr::io
