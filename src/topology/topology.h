// The simulated Internet: ASes, PoPs, routers, interconnections, and IXPs.
//
// This module is the static substrate underneath the routing simulator. It
// stands in for the real-world topology that the paper observes through
// RouteViews/RIS and RIPE Atlas: ASes with business relationships, multiple
// interconnection points per AS pair (so border-level changes can happen
// without AS-level changes), IXP LANs with member ASes, and routers with
// multiple interface addresses (so alias resolution is meaningful).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/asn.h"
#include "netbase/community.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"
#include "netbase/radix_trie.h"
#include "topology/city.h"
#include "topology/types.h"

namespace rrr::topo {

// Community value conventions used by the generated ASes. Geo communities
// mirror the paper's Figure 3 example (e.g. 13030:51701 = Telehouse LON-1):
// value = kGeoCommunityBase + city id. TE communities are unrelated to the
// traversed path and exercise the false-signal suppression of §4.1.3.
inline constexpr std::uint16_t kGeoCommunityBase = 51000;
inline constexpr std::uint16_t kTeCommunityBase = 7000;

inline bool is_geo_community_value(std::uint16_t v) {
  return v >= kGeoCommunityBase && v < kGeoCommunityBase + 1000;
}

struct AsNode {
  Asn asn;
  AsTier tier = AsTier::kStub;
  // Cities where the AS has a point of presence; pops[0] is the primary
  // (headquarters) city used for canonical control-plane egress selection.
  std::vector<CityId> pops;
  // Prefixes this AS originates in BGP; the first covers its whole block.
  std::vector<Prefix> originated;
  // Border routers tag routes with a geo community for the ingress PoP.
  bool adds_geo_communities = false;
  // Strips all communities from routes it propagates (optional transitive
  // attribute handling, §4.1.3).
  bool strips_communities = false;
  // Number of parallel intra-domain ECMP branches (1 = no load balancing).
  int lb_branches = 1;

  bool has_pop(CityId c) const {
    for (CityId p : pops)
      if (p == c) return true;
    return false;
  }
};

struct Router {
  RouterId id = kNoRouter;
  AsIndex owner = kNoAs;
  CityId city = kNoCity;
  bool is_border = false;
  // All interface addresses of this router (alias set).
  std::vector<Ipv4> interfaces;
};

// One physical interconnection point between the two ASes of a link.
struct Interconnect {
  InterconnectId id = kNoInterconnect;
  LinkId link = kNoLink;
  CityId city = kNoCity;
  IxpId ixp = kNoIxp;  // kNoIxp => private interconnect (PNI)
  // Interfaces on each side. When a packet crosses a->b, the traceroute
  // reveals ip_b (the ingress interface of b's border router); for IXP
  // interconnects ip_b is drawn from the IXP LAN prefix.
  Ipv4 ip_a;
  Ipv4 ip_b;
  RouterId router_a = kNoRouter;
  RouterId router_b = kNoRouter;
  // Interconnects of the same link sharing an ecmp_group >= 0 hash flows
  // across each other, forming an interdomain diamond (§5.4).
  int ecmp_group = -1;
  // Static egress preference in km-equivalents: the primary interconnect of
  // a link carries 0, backups increasing penalties. Real egress selection
  // is mostly policy with a hot-potato tie-break, not pure geography.
  double base_weight = 0.0;
};

struct AsLink {
  LinkId id = kNoLink;
  AsIndex a = kNoAs;
  AsIndex b = kNoAs;
  RelType rel = RelType::kPeerPeer;  // kCustomerProvider: a is customer of b
  std::vector<InterconnectId> interconnects;
};

struct Ixp {
  IxpId id = kNoIxp;
  std::string name;
  CityId city = kNoCity;
  // The route-server ASN that §4.1.1 strips from AS paths.
  Asn route_server_asn;
  // The IXP LAN; member router interfaces on the LAN come from here.
  Prefix lan;
  std::vector<AsIndex> members;

  bool has_member(AsIndex as) const {
    for (AsIndex m : members)
      if (m == as) return true;
    return false;
  }
};

// How an adjacency looks from one endpoint.
enum class NeighborKind : std::uint8_t { kCustomer, kPeer, kProvider };

struct Neighbor {
  AsIndex as = kNoAs;
  LinkId link = kNoLink;
  NeighborKind kind = NeighborKind::kPeer;
};

class Topology {
 public:
  // --- construction (used by TopologyBuilder and the event engine) ---
  AsIndex add_as(AsNode node);
  RouterId add_router(Router router);
  IxpId add_ixp(Ixp ixp);
  LinkId add_link(AsIndex a, AsIndex b, RelType rel);
  InterconnectId add_interconnect(Interconnect ic);
  // Registers `ip` as an interface of `router` (updates alias indices).
  void attach_interface(RouterId router, Ipv4 ip);

  // --- read access ---
  std::span<const AsNode> ases() const { return ases_; }
  std::span<const Router> routers() const { return routers_; }
  std::span<const AsLink> links() const { return links_; }
  std::span<const Interconnect> interconnects() const {
    return interconnects_;
  }
  std::span<const Ixp> ixps() const { return ixps_; }

  const AsNode& as_at(AsIndex i) const { return ases_[i]; }
  AsNode& as_at(AsIndex i) { return ases_[i]; }
  const Router& router_at(RouterId r) const { return routers_[r]; }
  const AsLink& link_at(LinkId l) const { return links_[l]; }
  const Interconnect& interconnect_at(InterconnectId i) const {
    return interconnects_[i];
  }
  Interconnect& interconnect_mut(InterconnectId i) {
    return interconnects_[i];
  }
  Ixp& ixp_at(IxpId i) { return ixps_[i]; }
  const Ixp& ixp_at(IxpId i) const { return ixps_[i]; }

  // Dense index of an ASN, or kNoAs.
  AsIndex index_of(Asn asn) const;

  // Adjacency list of `as` with per-endpoint relationship view.
  std::span<const Neighbor> neighbors(AsIndex as) const;

  // The link between two ASes, or kNoLink.
  LinkId link_between(AsIndex a, AsIndex b) const;

  // Router owning interface `ip`, or kNoRouter.
  RouterId router_of_interface(Ipv4 ip) const;

  // True AS owning `ip` (ground truth: interface owner's AS; IXP LAN
  // addresses map to the member router's AS).
  AsIndex true_owner_of(Ipv4 ip) const;

  // IXP whose LAN contains `ip`, or kNoIxp.
  IxpId ixp_of_ip(Ipv4 ip) const;

  // Longest-prefix match over *originated* prefixes: the AS a control-plane
  // observer would map `ip` to. Returns kNoAs when unrouted (e.g. IXP LANs).
  AsIndex announced_owner_of(Ipv4 ip) const;

  // Internal (non-border) routers of an AS in a city.
  std::span<const RouterId> internal_routers(AsIndex as, CityId city) const;

  // Border routers of an AS in a city.
  std::span<const RouterId> border_routers(AsIndex as, CityId city) const;

  // Every interconnect of `link` in construction order.
  std::span<const InterconnectId> link_interconnects(LinkId link) const;

  // Geo community an AS attaches for routes ingressing at `city`.
  Community geo_community(AsIndex as, CityId city) const {
    return Community(as_at(as).asn,
                     static_cast<std::uint16_t>(kGeoCommunityBase + city));
  }

  // --- address allocation (builder/event-engine use) ---
  // Next unused infrastructure address of an AS (router interfaces, PNIs).
  Ipv4 allocate_infra_ip(AsIndex as);
  // Next unused address on an IXP LAN.
  Ipv4 allocate_ixp_ip(IxpId ixp);
  // The LAN address of a member on an IXP: one per (member, IXP), shared by
  // all its peerings over that fabric (why IXP border IPs serve many AS
  // pairs — Appendix C / Figure 14). Allocates on first use and binds it to
  // `router` (subsequent calls may pass kNoRouter).
  Ipv4 member_ixp_ip(IxpId ixp, AsIndex member, RouterId router);
  // Next unused host address inside an AS's announced space (probes,
  // anchors, traceroute targets).
  Ipv4 allocate_host_ip(AsIndex as);

  std::size_t as_count() const { return ases_.size(); }

 private:
  std::vector<AsNode> ases_;
  std::vector<Router> routers_;
  std::vector<AsLink> links_;
  std::vector<Interconnect> interconnects_;
  std::vector<Ixp> ixps_;

  std::unordered_map<std::uint32_t, AsIndex> asn_index_;
  std::vector<std::vector<Neighbor>> neighbors_;
  std::map<std::pair<AsIndex, AsIndex>, LinkId> link_index_;
  std::unordered_map<Ipv4, RouterId> interface_router_;
  std::map<std::pair<AsIndex, CityId>, std::vector<RouterId>>
      internal_routers_;
  std::map<std::pair<AsIndex, CityId>, std::vector<RouterId>>
      border_routers_;
  RadixTrie<AsIndex> announced_;
  std::map<std::pair<IxpId, AsIndex>, Ipv4> member_ixp_ips_;
  std::vector<std::uint32_t> next_infra_offset_;
  std::vector<std::uint32_t> next_host_offset_;
  std::vector<std::uint32_t> next_ixp_offset_;
};

// Address-plan constants: AS i owns the /16 with network (i+1)<<16; the top
// /20 of the block is infrastructure space; IXP j owns a /22 at
// 0xF0000000 + (j<<16).
Prefix as_block(AsIndex as);
Prefix as_infra_block(AsIndex as);
Prefix ixp_block(IxpId ixp);

}  // namespace rrr::topo
