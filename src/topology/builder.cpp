#include "topology/builder.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace rrr::topo {
namespace {

// Builder-internal scratch state.
class Builder {
 public:
  explicit Builder(const TopologyParams& params)
      : params_(params), rng_(Rng(params.seed).fork(/*salt=*/0xB01D)) {}

  Topology build();

 private:
  // --- AS creation -------------------------------------------------------
  AsIndex make_as(AsTier tier, int min_pops, int max_pops);
  std::vector<CityId> sample_pops(int count);
  void make_internal_routers(AsIndex as);

  // --- edges --------------------------------------------------------------
  void connect_tier1_clique();
  void attach_transit(AsIndex as);
  void attach_stub(AsIndex as);
  void build_ixps();
  void multilateral_peering();

  LinkId connect(AsIndex customer_or_a, AsIndex provider_or_b, RelType rel,
                 IxpId via_ixp = kNoIxp);
  InterconnectId make_interconnect(LinkId link, CityId city, IxpId ixp);
  RouterId border_router(AsIndex as, CityId city);
  CityId ensure_common_city(AsIndex a, AsIndex b);
  AsIndex pick_weighted_by_degree(const std::vector<AsIndex>& candidates);

  const TopologyParams& params_;
  Rng rng_;
  Topology topo_;
  std::vector<AsIndex> tier1_;
  std::vector<AsIndex> transit_;
  std::vector<AsIndex> stubs_;
  std::vector<int> degree_;
  // (as, city) -> border routers created there.
  std::map<std::pair<AsIndex, CityId>, std::vector<RouterId>> borders_;
};

Topology Builder::build() {
  for (int i = 0; i < params_.num_tier1; ++i) {
    tier1_.push_back(make_as(AsTier::kTier1, 10, 16));
  }
  for (int i = 0; i < params_.num_transit; ++i) {
    transit_.push_back(make_as(AsTier::kTransit, 2, 6));
  }
  for (int i = 0; i < params_.num_stub; ++i) {
    stubs_.push_back(make_as(AsTier::kStub, 1, 2));
  }
  degree_.assign(topo_.as_count(), 0);

  connect_tier1_clique();
  for (AsIndex as : transit_) attach_transit(as);
  for (AsIndex as : stubs_) attach_stub(as);
  build_ixps();
  multilateral_peering();
  return std::move(topo_);
}

AsIndex Builder::make_as(AsTier tier, int min_pops, int max_pops) {
  AsNode node;
  node.asn = Asn(static_cast<std::uint32_t>(101 + topo_.as_count()));
  node.tier = tier;
  node.pops = sample_pops(
      static_cast<int>(rng_.uniform_int(min_pops, max_pops)));
  node.adds_geo_communities = rng_.bernoulli(params_.geo_community_prob);
  node.strips_communities = rng_.bernoulli(params_.strip_communities_prob);
  if (rng_.bernoulli(params_.lb_as_prob)) {
    node.lb_branches =
        static_cast<int>(rng_.uniform_int(2, params_.max_lb_branches));
  }
  AsIndex index = static_cast<AsIndex>(topo_.as_count());
  // Announce the whole /16 plus a few more-specifics (so "most specific
  // prefix per VP", §4.1.1, has something to choose between).
  node.originated.push_back(as_block(index));
  int extras = static_cast<int>(rng_.uniform_int(0, params_.max_extra_prefixes));
  for (int i = 0; i < extras; ++i) {
    auto len = static_cast<std::uint8_t>(rng_.uniform_int(18, 24));
    std::uint32_t span = Prefix::mask_for(16) ^ Prefix::mask_for(len);
    std::uint32_t offset =
        static_cast<std::uint32_t>(rng_.uniform_int(0, span)) &
        Prefix::mask_for(len);
    node.originated.push_back(
        Prefix(Ipv4(as_block(index).network().value() | offset), len));
  }
  AsIndex created = topo_.add_as(std::move(node));
  assert(created == index);
  (void)index;
  make_internal_routers(created);
  return created;
}

std::vector<CityId> Builder::sample_pops(int count) {
  count = std::min<int>(count, city_count());
  std::vector<CityId> all(city_count());
  for (CityId c = 0; c < city_count(); ++c) all[c] = c;
  rng_.shuffle(all);
  all.resize(static_cast<std::size_t>(count));
  return all;
}

void Builder::make_internal_routers(AsIndex as) {
  const AsNode& node = topo_.as_at(as);
  for (CityId c : node.pops) {
    // One router per ECMP branch: traceroute flows hash across them,
    // producing intra-domain diamonds for load-balancing ASes.
    for (int b = 0; b < node.lb_branches; ++b) {
      Router r;
      r.owner = as;
      r.city = c;
      r.is_border = false;
      RouterId id = topo_.add_router(std::move(r));
      int n_ifaces = static_cast<int>(rng_.uniform_int(1, 2));
      for (int i = 0; i < n_ifaces; ++i) {
        topo_.attach_interface(id, topo_.allocate_infra_ip(as));
      }
    }
  }
}

void Builder::connect_tier1_clique() {
  for (std::size_t i = 0; i < tier1_.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1_.size(); ++j) {
      connect(tier1_[i], tier1_[j], RelType::kPeerPeer);
    }
  }
}

AsIndex Builder::pick_weighted_by_degree(
    const std::vector<AsIndex>& candidates) {
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (AsIndex as : candidates) weights.push_back(1.0 + degree_[as]);
  return candidates[rng_.weighted_index(weights)];
}

void Builder::attach_transit(AsIndex as) {
  std::vector<AsIndex> candidates = tier1_;
  for (AsIndex t : transit_) {
    if (t == as) break;  // only earlier transits, keeps the hierarchy acyclic
    candidates.push_back(t);
  }
  int n_providers = static_cast<int>(rng_.uniform_int(
      params_.min_transit_providers, params_.max_transit_providers));
  std::set<AsIndex> chosen;
  for (int i = 0; i < n_providers && chosen.size() < candidates.size(); ++i) {
    AsIndex provider = pick_weighted_by_degree(candidates);
    if (chosen.insert(provider).second) {
      connect(as, provider, RelType::kCustomerProvider);
    }
  }
  // Bilateral peering with other transits.
  for (AsIndex t : transit_) {
    if (t == as) break;
    if (chosen.contains(t)) continue;
    if (rng_.bernoulli(params_.transit_peer_prob)) {
      connect(std::min(as, t), std::max(as, t), RelType::kPeerPeer);
      chosen.insert(t);
    }
  }
}

void Builder::attach_stub(AsIndex as) {
  int n_providers = static_cast<int>(rng_.uniform_int(
      params_.min_stub_providers, params_.max_stub_providers));
  std::set<AsIndex> chosen;
  for (int i = 0; i < n_providers; ++i) {
    // Mostly transit providers, occasionally direct tier-1 transit.
    AsIndex provider = rng_.bernoulli(0.12)
                           ? pick_weighted_by_degree(tier1_)
                           : pick_weighted_by_degree(transit_);
    if (chosen.insert(provider).second) {
      connect(as, provider, RelType::kCustomerProvider);
    }
  }
}

void Builder::build_ixps() {
  int n = std::min<int>(params_.num_ixps, city_count());
  for (int i = 0; i < n; ++i) {
    Ixp ixp;
    ixp.city = static_cast<CityId>(i);  // the first cities are the hubs
    ixp.name = std::string(city(ixp.city).name) + "-IX";
    ixp.route_server_asn = Asn(59001u + static_cast<std::uint32_t>(i));
    IxpId id = topo_.add_ixp(std::move(ixp));
    topo_.ixp_at(id).lan = ixp_block(id);
  }
  // Membership: ASes join IXPs in cities where they have a PoP.
  for (AsIndex as = 0; as < topo_.as_count(); ++as) {
    const AsNode& node = topo_.as_at(as);
    double join_prob = node.tier == AsTier::kTier1
                           ? params_.ixp_join_prob_tier1
                           : node.tier == AsTier::kTransit
                                 ? params_.ixp_join_prob_transit
                                 : params_.ixp_join_prob_stub;
    for (const Ixp& ixp : topo_.ixps()) {
      if (node.has_pop(ixp.city) && rng_.bernoulli(join_prob)) {
        topo_.ixp_at(ixp.id).members.push_back(as);
      }
    }
  }
}

void Builder::multilateral_peering() {
  for (const Ixp& ixp : topo_.ixps()) {
    std::vector<AsIndex> members = ixp.members;
    std::vector<int> new_peers(members.size(), 0);
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (new_peers[i] >= params_.max_ixp_peers_per_member ||
            new_peers[j] >= params_.max_ixp_peers_per_member) {
          continue;
        }
        AsIndex a = members[i];
        AsIndex b = members[j];
        if (topo_.link_between(a, b) != kNoLink) continue;
        if (!rng_.bernoulli(params_.ixp_peer_prob)) continue;
        connect(std::min(a, b), std::max(a, b), RelType::kPeerPeer, ixp.id);
        ++new_peers[i];
        ++new_peers[j];
      }
    }
  }
}

CityId Builder::ensure_common_city(AsIndex a, AsIndex b) {
  const AsNode& na = topo_.as_at(a);
  const AsNode& nb = topo_.as_at(b);
  std::vector<CityId> common;
  for (CityId c : na.pops) {
    if (nb.has_pop(c)) common.push_back(c);
  }
  if (!common.empty()) return common[rng_.index(common.size())];
  // No shared PoP: the customer colocates at the provider city nearest its
  // primary PoP (how interconnection works in practice).
  CityId primary = na.pops.front();
  CityId best = nb.pops.front();
  double best_dist = city_distance_km(primary, best);
  for (CityId c : nb.pops) {
    double d = city_distance_km(primary, c);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  topo_.as_at(a).pops.push_back(best);
  // Give the newly present AS an internal router there too.
  Router r;
  r.owner = a;
  r.city = best;
  r.is_border = false;
  RouterId id = topo_.add_router(std::move(r));
  topo_.attach_interface(id, topo_.allocate_infra_ip(a));
  return best;
}

RouterId Builder::border_router(AsIndex as, CityId city) {
  auto& existing = borders_[{as, city}];
  if (!existing.empty() && rng_.bernoulli(params_.reuse_border_router_prob)) {
    return existing[rng_.index(existing.size())];
  }
  Router r;
  r.owner = as;
  r.city = city;
  r.is_border = true;
  RouterId id = topo_.add_router(std::move(r));
  // Internal-facing interface: the address a traceroute reveals just before
  // leaving the AS.
  topo_.attach_interface(id, topo_.allocate_infra_ip(as));
  existing.push_back(id);
  return id;
}

InterconnectId Builder::make_interconnect(LinkId link, CityId city,
                                          IxpId ixp) {
  const AsLink& l = topo_.link_at(link);
  Interconnect ic;
  ic.link = link;
  ic.city = city;
  ic.ixp = ixp;
  if (ixp != kNoIxp) {
    // One LAN address per (member, IXP), shared by all its peerings there
    // and bound to a single fabric-facing router.
    ic.ip_a = topo_.member_ixp_ip(ixp, l.a, border_router(l.a, city));
    ic.router_a = topo_.router_of_interface(ic.ip_a);
    ic.ip_b = topo_.member_ixp_ip(ixp, l.b, border_router(l.b, city));
    ic.router_b = topo_.router_of_interface(ic.ip_b);
    return topo_.add_interconnect(ic);
  }
  ic.router_a = border_router(l.a, city);
  ic.router_b = border_router(l.b, city);
  ic.ip_a = topo_.allocate_infra_ip(l.a);
  // Most PNIs number both ends from distinct blocks; some use the near
  // side's block for both, the messy case border inference must survive.
  ic.ip_b = rng_.bernoulli(params_.messy_pni_prob)
                ? topo_.allocate_infra_ip(l.a)
                : topo_.allocate_infra_ip(l.b);
  InterconnectId id = topo_.add_interconnect(ic);
  topo_.attach_interface(ic.router_a, ic.ip_a);
  topo_.attach_interface(ic.router_b, ic.ip_b);
  return id;
}

LinkId Builder::connect(AsIndex a, AsIndex b, RelType rel, IxpId via_ixp) {
  LinkId link = topo_.add_link(a, b, rel);
  degree_[a] += 1;
  degree_[b] += 1;
  if (via_ixp != kNoIxp) {
    make_interconnect(link, topo_.ixp_at(via_ixp).city, via_ixp);
    return link;
  }
  CityId first_city = ensure_common_city(a, b);
  make_interconnect(link, first_city, kNoIxp);
  // Additional interconnection points in other (preferably distinct) common
  // cities: these are what make border-level changes possible without
  // AS-level changes. Backup interconnects carry increasing static egress
  // penalties so that, absent IGP events, most traffic converges on the
  // primary.
  std::vector<CityId> common;
  for (CityId c : topo_.as_at(a).pops) {
    if (topo_.as_at(b).has_pop(c) && c != first_city) common.push_back(c);
  }
  int extras = 0;
  for (int i = 0; i < params_.max_extra_interconnects; ++i) {
    if (!rng_.bernoulli(params_.extra_interconnect_prob)) break;
    // Some backups terminate in the same city on distinct routers: the
    // router-level border changes §4.2.2 detects.
    CityId c = (common.empty() || rng_.bernoulli(0.4))
                   ? first_city
                   : common[rng_.index(common.size())];
    InterconnectId ic = make_interconnect(link, c, kNoIxp);
    topo_.interconnect_mut(ic).base_weight =
        3000.0 * (extras + 1) * (rng_.bernoulli(0.05) ? 0.0 : 1.0);
    ++extras;
  }
  // Interdomain diamond: flows hash across two parallel interconnects
  // instead of deterministic hot-potato selection (§5.4).
  const AsLink& l = topo_.link_at(link);
  if (l.interconnects.size() >= 2 &&
      rng_.bernoulli(params_.interdomain_diamond_prob)) {
    topo_.interconnect_mut(l.interconnects[0]).ecmp_group = 0;
    topo_.interconnect_mut(l.interconnects[1]).ecmp_group = 0;
  }
  return link;
}

}  // namespace

Topology build_topology(const TopologyParams& params) {
  Builder builder(params);
  return builder.build();
}

namespace {

// Shared with Builder::border_router in spirit: reuse an existing border
// router at (as, city) or create one with an internal-facing interface.
RouterId runtime_border_router(Topology& topology, AsIndex as, CityId city,
                               Rng& rng, double reuse_prob) {
  auto existing = topology.border_routers(as, city);
  if (!existing.empty() && rng.bernoulli(reuse_prob)) {
    return existing[rng.index(existing.size())];
  }
  Router r;
  r.owner = as;
  r.city = city;
  r.is_border = true;
  RouterId id = topology.add_router(std::move(r));
  topology.attach_interface(id, topology.allocate_infra_ip(as));
  return id;
}

}  // namespace

std::vector<LinkId> ixp_join(Topology& topology, IxpId ixp_id, AsIndex joiner,
                             double peer_prob, int max_new_peers, Rng& rng) {
  std::vector<LinkId> created;
  Ixp& ixp = topology.ixp_at(ixp_id);
  if (ixp.has_member(joiner)) return created;
  // Ensure the joiner has a PoP at the IXP city (colocation).
  if (!topology.as_at(joiner).has_pop(ixp.city)) {
    topology.as_at(joiner).pops.push_back(ixp.city);
  }
  std::vector<AsIndex> members = ixp.members;  // copy: we mutate below
  ixp.members.push_back(joiner);
  int added = 0;
  for (AsIndex member : members) {
    if (added >= max_new_peers) break;
    if (topology.link_between(joiner, member) != kNoLink) continue;
    if (!rng.bernoulli(peer_prob)) continue;
    AsIndex a = std::min(joiner, member);
    AsIndex b = std::max(joiner, member);
    LinkId link = topology.add_link(a, b, RelType::kPeerPeer);
    Interconnect ic;
    ic.link = link;
    ic.city = ixp.city;
    ic.ixp = ixp_id;
    ic.ip_a = topology.member_ixp_ip(
        ixp_id, a, runtime_border_router(topology, a, ixp.city, rng, 0.7));
    ic.router_a = topology.router_of_interface(ic.ip_a);
    ic.ip_b = topology.member_ixp_ip(
        ixp_id, b, runtime_border_router(topology, b, ixp.city, rng, 0.7));
    ic.router_b = topology.router_of_interface(ic.ip_b);
    topology.add_interconnect(ic);
    created.push_back(link);
    ++added;
  }
  return created;
}

PeeringDbSnapshot make_peeringdb(const Topology& topology, double completeness,
                                 Rng& rng) {
  PeeringDbSnapshot snapshot;
  snapshot.ixp_members.resize(topology.ixps().size());
  snapshot.as_presence.resize(topology.as_count());
  for (const Ixp& ixp : topology.ixps()) {
    for (AsIndex m : ixp.members) {
      if (rng.bernoulli(completeness)) {
        snapshot.ixp_members[ixp.id].push_back(topology.as_at(m).asn);
      }
    }
  }
  for (AsIndex as = 0; as < topology.as_count(); ++as) {
    for (CityId c : topology.as_at(as).pops) {
      if (rng.bernoulli(completeness)) {
        snapshot.as_presence[as].push_back(c);
      }
    }
  }
  return snapshot;
}

}  // namespace rrr::topo
