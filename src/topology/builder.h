// Deterministic generator for the simulated Internet topology.
//
// Produces an AS-level graph with the structural properties the paper's
// techniques depend on: a tier-1 clique, transit and stub tiers attached via
// customer-provider links with preferential attachment, settlement-free
// peering (bilateral and via IXP route servers), multiple interconnection
// points per AS pair in distinct cities, shared border routers across AS
// pairs (Appendix C, Figure 14), intra- and inter-domain load-balancer
// diamonds (§5.4), and per-AS BGP community policies (§4.1.3).
#pragma once

#include <cstdint>

#include "netbase/rng.h"
#include "topology/topology.h"

namespace rrr::topo {

struct TopologyParams {
  int num_tier1 = 8;
  int num_transit = 56;
  int num_stub = 240;
  int num_ixps = 10;

  // Degree / attachment knobs.
  int min_transit_providers = 1;
  int max_transit_providers = 3;
  int min_stub_providers = 1;
  int max_stub_providers = 3;
  double transit_peer_prob = 0.06;  // bilateral peering between transit pairs

  // IXP knobs.
  double ixp_join_prob_tier1 = 0.35;
  double ixp_join_prob_transit = 0.5;
  double ixp_join_prob_stub = 0.22;
  double ixp_peer_prob = 0.25;  // peering with a co-located member
  int max_ixp_peers_per_member = 8;

  // Interconnection richness.
  int max_extra_interconnects = 2;     // beyond the first, per link
  double extra_interconnect_prob = 0.55;
  double reuse_border_router_prob = 0.7;  // share border routers across pairs
  double messy_pni_prob = 0.2;  // far-side PNI address from near side's block

  // Policy / attribute knobs.
  double geo_community_prob = 0.45;
  double strip_communities_prob = 0.15;

  // Load balancing (§5.4).
  double lb_as_prob = 0.25;  // AS runs intra-domain ECMP
  int max_lb_branches = 3;
  double interdomain_diamond_prob = 0.06;  // link hashes across interconnects

  // Addressing.
  int max_extra_prefixes = 3;  // sub-prefixes announced beyond the /16

  std::uint64_t seed = 1;
};

// Builds a topology; identical params (including seed) yield an identical
// topology object graph.
Topology build_topology(const TopologyParams& params);

// A PeeringDB-like snapshot: IXP membership and AS city presence as an
// external database would (incompletely) record them. `completeness` is the
// probability that any individual fact is present.
struct PeeringDbSnapshot {
  std::vector<std::vector<Asn>> ixp_members;  // indexed by IxpId
  std::vector<std::vector<CityId>> as_presence;  // indexed by AsIndex
};
PeeringDbSnapshot make_peeringdb(const Topology& topology,
                                 double completeness, Rng& rng);

// Adds `joiner` to `ixp` at runtime (the §4.2.3 membership-change scenario):
// records membership and creates peer links over the IXP to existing members
// with probability `peer_prob` (capped at `max_new_peers`). Returns the new
// link ids; no links are created to ASes already adjacent to the joiner.
std::vector<LinkId> ixp_join(Topology& topology, IxpId ixp, AsIndex joiner,
                             double peer_prob, int max_new_peers, Rng& rng);

}  // namespace rrr::topo
