// Shared identifier and enum types for the simulated Internet topology.
#pragma once

#include <cstdint>

namespace rrr::topo {

using AsIndex = std::uint32_t;        // dense index into Topology::ases()
using CityId = std::uint16_t;         // dense index into the city table
using RouterId = std::uint32_t;       // dense index into Topology::routers()
using InterconnectId = std::uint32_t; // dense index into Topology::interconnects()
using LinkId = std::uint32_t;         // dense index into Topology::links()
using IxpId = std::uint16_t;          // dense index into Topology::ixps()

inline constexpr AsIndex kNoAs = 0xFFFFFFFFu;
inline constexpr RouterId kNoRouter = 0xFFFFFFFFu;
inline constexpr InterconnectId kNoInterconnect = 0xFFFFFFFFu;
inline constexpr LinkId kNoLink = 0xFFFFFFFFu;
inline constexpr CityId kNoCity = 0xFFFFu;
inline constexpr IxpId kNoIxp = 0xFFFFu;

// Position of an AS in the (simplified) Internet hierarchy; drives degree,
// PoP footprint, and policy defaults in the builder.
enum class AsTier : std::uint8_t { kTier1, kTransit, kStub };

// Business relationship between two adjacent ASes (Gao–Rexford model).
enum class RelType : std::uint8_t {
  kCustomerProvider,  // link.a is a customer of link.b
  kPeerPeer,          // settlement-free peers
};

}  // namespace rrr::topo
