// Built-in world city table used for PoP placement and geolocation.
#pragma once

#include <span>
#include <string_view>

#include "netbase/geo.h"
#include "topology/types.h"

namespace rrr::topo {

struct City {
  std::string_view name;
  GeoPoint location;
};

// The full built-in table (48 major interconnection cities).
std::span<const City> world_cities();

// Name/location of a city id; asserts on out-of-range ids.
const City& city(CityId id);

// Number of cities in the table.
CityId city_count();

// Distance between two cities in km.
double city_distance_km(CityId a, CityId b);

// Id of the named city, or kNoCity.
CityId find_city(std::string_view name);

}  // namespace rrr::topo
