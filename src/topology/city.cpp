#include "topology/city.h"

#include <array>
#include <cassert>

namespace rrr::topo {
namespace {

// Major interconnection hubs; coordinates are approximate city centers.
constexpr std::array<City, 48> kCities = {{
    {"London", {51.51, -0.13}},
    {"Frankfurt", {50.11, 8.68}},
    {"Amsterdam", {52.37, 4.90}},
    {"Paris", {48.86, 2.35}},
    {"Stockholm", {59.33, 18.07}},
    {"Madrid", {40.42, -3.70}},
    {"Milan", {45.46, 9.19}},
    {"Vienna", {48.21, 16.37}},
    {"Warsaw", {52.23, 21.01}},
    {"Zurich", {47.37, 8.54}},
    {"Dublin", {53.35, -6.26}},
    {"Moscow", {55.76, 37.62}},
    {"Istanbul", {41.01, 28.98}},
    {"New York", {40.71, -74.01}},
    {"Ashburn", {39.04, -77.49}},
    {"Miami", {25.76, -80.19}},
    {"Chicago", {41.88, -87.63}},
    {"Dallas", {32.78, -96.80}},
    {"Denver", {39.74, -104.99}},
    {"Los Angeles", {34.05, -118.24}},
    {"San Jose", {37.34, -121.89}},
    {"Seattle", {47.61, -122.33}},
    {"Toronto", {43.65, -79.38}},
    {"Montreal", {45.50, -73.57}},
    {"Mexico City", {19.43, -99.13}},
    {"Sao Paulo", {-23.55, -46.63}},
    {"Buenos Aires", {-34.60, -58.38}},
    {"Santiago", {-33.45, -70.67}},
    {"Bogota", {4.71, -74.07}},
    {"Tokyo", {35.68, 139.69}},
    {"Osaka", {34.69, 135.50}},
    {"Seoul", {37.57, 126.98}},
    {"Hong Kong", {22.32, 114.17}},
    {"Singapore", {1.35, 103.82}},
    {"Taipei", {25.03, 121.57}},
    {"Mumbai", {19.08, 72.88}},
    {"Chennai", {13.08, 80.27}},
    {"Sydney", {-33.87, 151.21}},
    {"Melbourne", {-37.81, 144.96}},
    {"Auckland", {-36.85, 174.76}},
    {"Johannesburg", {-26.20, 28.05}},
    {"Cape Town", {-33.92, 18.42}},
    {"Nairobi", {-1.29, 36.82}},
    {"Lagos", {6.52, 3.38}},
    {"Cairo", {30.04, 31.24}},
    {"Dubai", {25.20, 55.27}},
    {"Tel Aviv", {32.09, 34.78}},
    {"Jakarta", {-6.21, 106.85}},
}};

}  // namespace

std::span<const City> world_cities() { return kCities; }

const City& city(CityId id) {
  assert(id < kCities.size());
  return kCities[id];
}

CityId city_count() { return static_cast<CityId>(kCities.size()); }

double city_distance_km(CityId a, CityId b) {
  if (a == b) return 0.0;
  return distance_km(city(a).location, city(b).location);
}

CityId find_city(std::string_view name) {
  for (CityId i = 0; i < kCities.size(); ++i) {
    if (kCities[i].name == name) return i;
  }
  return kNoCity;
}

}  // namespace rrr::topo
