#include "topology/topology.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rrr::topo {

Prefix as_block(AsIndex as) {
  return Prefix(Ipv4((as + 1u) << 16), 16);
}

Prefix as_infra_block(AsIndex as) {
  // Top /20 of the AS's /16: x.y.240.0/20.
  return Prefix(Ipv4(((as + 1u) << 16) | 0xF000u), 20);
}

Prefix ixp_block(IxpId ixp) {
  return Prefix(Ipv4(0xF0000000u | (std::uint32_t{ixp} << 16)), 22);
}

AsIndex Topology::add_as(AsNode node) {
  if (node.pops.empty()) {
    throw std::invalid_argument("AS must have at least one PoP");
  }
  auto index = static_cast<AsIndex>(ases_.size());
  if (asn_index_.contains(node.asn.number())) {
    throw std::invalid_argument("duplicate ASN " + node.asn.to_string());
  }
  asn_index_.emplace(node.asn.number(), index);
  for (const Prefix& p : node.originated) announced_.insert(p, index);
  ases_.push_back(std::move(node));
  neighbors_.emplace_back();
  next_infra_offset_.push_back(0);
  next_host_offset_.push_back(0);
  return index;
}

RouterId Topology::add_router(Router router) {
  auto id = static_cast<RouterId>(routers_.size());
  router.id = id;
  if (!router.is_border) {
    internal_routers_[{router.owner, router.city}].push_back(id);
  } else {
    border_routers_[{router.owner, router.city}].push_back(id);
  }
  std::vector<Ipv4> interfaces = std::move(router.interfaces);
  router.interfaces.clear();
  routers_.push_back(std::move(router));
  for (Ipv4 ip : interfaces) attach_interface(id, ip);
  return id;
}

IxpId Topology::add_ixp(Ixp ixp) {
  auto id = static_cast<IxpId>(ixps_.size());
  ixp.id = id;
  ixps_.push_back(std::move(ixp));
  next_ixp_offset_.push_back(2);  // .0/.1 reserved for the LAN itself
  return id;
}

LinkId Topology::add_link(AsIndex a, AsIndex b, RelType rel) {
  assert(a < ases_.size() && b < ases_.size() && a != b);
  auto key = std::minmax(a, b);
  if (link_index_.contains({key.first, key.second})) {
    throw std::invalid_argument("duplicate AS link");
  }
  auto id = static_cast<LinkId>(links_.size());
  links_.push_back(AsLink{.id = id, .a = a, .b = b, .rel = rel,
                          .interconnects = {}});
  link_index_.emplace(std::pair{key.first, key.second}, id);
  NeighborKind a_sees, b_sees;
  if (rel == RelType::kCustomerProvider) {
    a_sees = NeighborKind::kProvider;  // a is the customer, sees provider b
    b_sees = NeighborKind::kCustomer;
  } else {
    a_sees = b_sees = NeighborKind::kPeer;
  }
  neighbors_[a].push_back(Neighbor{.as = b, .link = id, .kind = a_sees});
  neighbors_[b].push_back(Neighbor{.as = a, .link = id, .kind = b_sees});
  return id;
}

InterconnectId Topology::add_interconnect(Interconnect ic) {
  assert(ic.link < links_.size());
  auto id = static_cast<InterconnectId>(interconnects_.size());
  ic.id = id;
  links_[ic.link].interconnects.push_back(id);
  interconnects_.push_back(ic);
  return id;
}

void Topology::attach_interface(RouterId router, Ipv4 ip) {
  assert(router < routers_.size());
  routers_[router].interfaces.push_back(ip);
  interface_router_.emplace(ip, router);
}

AsIndex Topology::index_of(Asn asn) const {
  auto it = asn_index_.find(asn.number());
  return it == asn_index_.end() ? kNoAs : it->second;
}

std::span<const Neighbor> Topology::neighbors(AsIndex as) const {
  assert(as < neighbors_.size());
  return neighbors_[as];
}

LinkId Topology::link_between(AsIndex a, AsIndex b) const {
  auto key = std::minmax(a, b);
  auto it = link_index_.find({key.first, key.second});
  return it == link_index_.end() ? kNoLink : it->second;
}

RouterId Topology::router_of_interface(Ipv4 ip) const {
  auto it = interface_router_.find(ip);
  return it == interface_router_.end() ? kNoRouter : it->second;
}

AsIndex Topology::true_owner_of(Ipv4 ip) const {
  RouterId r = router_of_interface(ip);
  if (r == kNoRouter) return kNoAs;
  return routers_[r].owner;
}

IxpId Topology::ixp_of_ip(Ipv4 ip) const {
  for (const Ixp& ixp : ixps_) {
    if (ixp.lan.contains(ip)) return ixp.id;
  }
  return kNoIxp;
}

AsIndex Topology::announced_owner_of(Ipv4 ip) const {
  const AsIndex* as = announced_.lookup(ip);
  return as == nullptr ? kNoAs : *as;
}

std::span<const RouterId> Topology::internal_routers(AsIndex as,
                                                     CityId city) const {
  auto it = internal_routers_.find({as, city});
  if (it == internal_routers_.end()) return {};
  return it->second;
}

std::span<const RouterId> Topology::border_routers(AsIndex as,
                                                   CityId city) const {
  auto it = border_routers_.find({as, city});
  if (it == border_routers_.end()) return {};
  return it->second;
}

std::span<const InterconnectId> Topology::link_interconnects(
    LinkId link) const {
  return links_[link].interconnects;
}

Ipv4 Topology::allocate_infra_ip(AsIndex as) {
  Prefix block = as_infra_block(as);
  std::uint32_t offset = next_infra_offset_[as]++;
  if (offset >= block.size()) {
    throw std::runtime_error("infrastructure block exhausted for AS index " +
                             std::to_string(as));
  }
  return Ipv4(block.network().value() + offset + 1);
}

Ipv4 Topology::allocate_ixp_ip(IxpId ixp) {
  Prefix block = ixp_block(ixp);
  std::uint32_t offset = next_ixp_offset_[ixp]++;
  if (offset >= block.size()) {
    throw std::runtime_error("IXP LAN exhausted for IXP " +
                             std::to_string(ixp));
  }
  return Ipv4(block.network().value() + offset);
}

Ipv4 Topology::member_ixp_ip(IxpId ixp, AsIndex member, RouterId router) {
  auto it = member_ixp_ips_.find({ixp, member});
  if (it != member_ixp_ips_.end()) return it->second;
  Ipv4 ip = allocate_ixp_ip(ixp);
  member_ixp_ips_.emplace(std::pair{ixp, member}, ip);
  if (router != kNoRouter) attach_interface(router, ip);
  return ip;
}

Ipv4 Topology::allocate_host_ip(AsIndex as) {
  Prefix block = as_block(as);
  // Host addresses grow from the bottom of the /16 (infra uses the top /20).
  std::uint32_t offset = next_host_offset_[as]++;
  if (offset >= block.size() - as_infra_block(as).size()) {
    throw std::runtime_error("host space exhausted for AS index " +
                             std::to_string(as));
  }
  return Ipv4(block.network().value() + offset + 1);
}

}  // namespace rrr::topo
