#include "obs/watchdog.h"

#include <algorithm>

#include "obs/export.h"

namespace rrr::obs {

Watchdog::Watchdog(WatchdogParams params) : params_(params) {}

double Watchdog::deadline_us() const {
  if (observed_ < params_.warmup_windows) return 0.0;
  return std::max(params_.min_deadline_us,
                  ewma_us_ * params_.deadline_factor);
}

bool Watchdog::observe(std::int64_t window, double duration_us,
                       const std::function<std::string()>& trace_snapshot,
                       const std::function<std::string()>& stats_snapshot) {
  if (!params_.enabled) return false;
  // Judge against the deadline derived from *prior* windows: a stalled
  // window must not dilute the baseline it is measured against.
  const double deadline = deadline_us();
  bool tripped = deadline > 0.0 && duration_us > deadline;
  if (tripped) {
    ++trips_;
    if (obs_trips_ != nullptr) obs_trips_->inc();
    if (reports_.size() < params_.max_reports) {
      Report report;
      report.window = window;
      report.duration_us = duration_us;
      report.deadline_us = deadline;
      report.ewma_us = ewma_us_;
      if (trace_snapshot) report.trace_json = trace_snapshot();
      if (stats_snapshot) report.stats_json = stats_snapshot();
      reports_.push_back(std::move(report));
    }
  }
  if (observed_ == 0) {
    ewma_us_ = duration_us;
  } else {
    ewma_us_ += params_.ewma_alpha * (duration_us - ewma_us_);
  }
  ++observed_;
  return tripped;
}

std::string Watchdog::reports_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < reports_.size(); ++i) {
    const Report& report = reports_[i];
    if (i > 0) out += ',';
    out += "{\"window\":" + std::to_string(report.window);
    out += ",\"duration_us\":" + format_number(report.duration_us);
    out += ",\"deadline_us\":" + format_number(report.deadline_us);
    out += ",\"ewma_us\":" + format_number(report.ewma_us);
    // Both payloads are already JSON documents; embed them verbatim so
    // consumers get objects, not double-encoded strings.
    out += ",\"trace\":";
    out += report.trace_json.empty() ? "null" : report.trace_json;
    out += ",\"stats\":";
    out += report.stats_json.empty() ? "null" : report.stats_json;
    out += '}';
  }
  out += ']';
  return out;
}

void Watchdog::set_metrics(MetricsRegistry& registry) {
  obs_trips_ = &registry.counter(
      "rrr_watchdog_trips_total", {}, Domain::kRuntime,
      "Window closes that exceeded the slow-window deadline");
}

}  // namespace rrr::obs
