#include "obs/http_export.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace rrr::obs {
namespace {

// One full response; Content-Length + Connection: close keeps the
// protocol stateless — no keep-alive, no chunking.
void write_response(int fd, const char* status, const char* content_type,
                    const std::string& body) {
  std::string response = "HTTP/1.1 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

const char* http_status_phrase(int status) {
  switch (status) {
    case 200: return "200 OK";
    case 400: return "400 Bad Request";
    case 404: return "404 Not Found";
    case 405: return "405 Method Not Allowed";
    case 408: return "408 Request Timeout";
    case 431: return "431 Request Header Fields Too Large";
    default: return "500 Internal Server Error";
  }
}

HttpServer::HttpServer(int port, HttpHandlers handlers, HttpLimits limits)
    : handlers_(std::move(handlers)), limits_(limits) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("obs: socket() failed");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  // Loopback only: an introspection hatch, never an external service.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("obs: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("obs: pipe() failed");
  }
  thread_ = std::thread([this] { serve_loop(); });
}

HttpServer::~HttpServer() {
  // Self-pipe wake: poll returns, the loop sees the readable wake fd and
  // exits; no signal games, no accept() to interrupt.
  const char byte = 'q';
  (void)!::write(wake_fds_[1], &byte, 1);
  thread_.join();
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
}

std::int64_t HttpServer::requests_served() const {
  return requests_.load(std::memory_order_relaxed);
}

void HttpServer::serve_loop() {
  pollfd fds[2];
  fds[0].fd = listen_fd_;
  fds[0].events = POLLIN;
  fds[1].fd = wake_fds_[0];
  fds[1].events = POLLIN;
  for (;;) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // shutdown wake
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // Receive the request head (a GET carries no body) under the
  // connection's abuse guards: each recv waits only for the remainder of
  // the read deadline, so a slow-loris client dribbling one byte at a
  // time cannot hold the single serving thread hostage, and a head that
  // outgrows the size cap is rejected instead of half-parsed.
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(limits_.read_deadline_ms);
  std::string request;
  bool timed_out = false;
  bool too_large = false;
  char buf[1024];
  while (true) {
    // Size cap first: an oversize head is rejected even when it arrived
    // complete in one read, not just while it is still dribbling in.
    if (request.size() > limits_.max_request_bytes) {
      too_large = true;
      break;
    }
    if (request.find("\r\n\r\n") != std::string::npos) break;
    const auto remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              Clock::now())
            .count();
    if (remaining_ms <= 0) {
      timed_out = true;
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      timed_out = true;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed or errored; answer whatever arrived
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  if (timed_out) {
    write_response(fd, "408 Request Timeout", "text/plain",
                   "request head not received before the read deadline\n");
    return;
  }
  if (too_large) {
    write_response(fd, "431 Request Header Fields Too Large", "text/plain",
                   "request head exceeds " +
                       std::to_string(limits_.max_request_bytes) +
                       " bytes\n");
    return;
  }

  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line.compare(0, 4, "GET ") != 0) {
    write_response(fd, "405 Method Not Allowed", "text/plain",
                   "GET only\n");
    return;
  }
  const std::size_t path_end = line.find(' ', 4);
  // `target` keeps the query string (the api handler parses it); the fixed
  // routes match on the bare path, so "/stats.json?x=1" still resolves.
  const std::string target =
      path_end == std::string::npos ? line.substr(4)
                                    : line.substr(4, path_end - 4);
  const std::string path = target.substr(0, target.find('?'));

  if (handlers_.api) {
    std::optional<HttpResponse> routed = handlers_.api(target);
    if (routed) {
      write_response(fd, http_status_phrase(routed->status),
                     routed->content_type.c_str(), routed->body);
      return;
    }
  }
  if (path == "/healthz") {
    write_response(fd, "200 OK", "text/plain",
                   handlers_.healthz ? handlers_.healthz() : "ok\n");
  } else if (path == "/metrics" && handlers_.metrics_text) {
    write_response(fd, "200 OK",
                   "text/plain; version=0.0.4; charset=utf-8",
                   handlers_.metrics_text());
  } else if (path == "/stats.json" && handlers_.stats_json) {
    write_response(fd, "200 OK", "application/json",
                   handlers_.stats_json());
  } else if (path == "/trace.json" && handlers_.trace_json) {
    write_response(fd, "200 OK", "application/json",
                   handlers_.trace_json());
  } else {
    write_response(fd, "404 Not Found", "text/plain",
                   "unknown path: " + path + "\n");
  }
}

}  // namespace rrr::obs
