// Structured trace spans for the staleness engine: an always-compiled,
// runtime-gated flight recorder that turns one run into a browsable
// timeline (Chrome trace-event / Perfetto JSON).
//
// Recording model
// ---------------
//   * Every recording thread owns a lock-free single-producer/single-
//     consumer ring of fixed-size POD TraceEvent slots. The hot path is:
//     two steady-clock reads (span begin/end), one relaxed index load, one
//     slot store, one release index store — zero allocation, zero locks.
//     When tracing is off, instrumentation sites hold a *null*
//     TraceRecorder pointer and the whole path is one branch (the same
//     cost model as obs/metrics.h).
//   * A serial drain point — the window boundary — moves ring contents
//     into a bounded in-memory flight recorder. A full ring drops the
//     newest events, an over-capacity flight recorder evicts the oldest;
//     both are counted (`rrr_trace_events_dropped_total{reason=...}`), so
//     a timeline is never silently partial.
//   * Event names, categories, and arg names must be string *literals*
//     (static storage): the ring stores the pointers, not copies. That is
//     what keeps the recording path allocation-free.
//
// Clock discipline: every span duration is measured on SpanClock
// (std::chrono::steady_clock — see obs/metrics.h); wall time enters only
// as the single exported-timestamp anchor captured at recorder
// construction, so exported `ts` values line up with wall-clock logs while
// durations stay monotonic.
//
// Determinism: tracing is kRuntime-domain only. It reads clocks and writes
// its own buffers; it never touches RNG streams, semantic counters, or
// engine state, so the semantic snapshot stays byte-identical across the
// (shards × threads × pipeline × fault) grid with tracing on — asserted by
// tests/determinism_test.cpp and tests/trace_test.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rrr::obs {

// What kind of mark a TraceEvent is on the timeline.
enum class TracePhase : std::uint8_t {
  kSpan = 0,     // complete slice: [t_start, t_start + dur)
  kInstant = 1,  // point event (dur ignored)
};

// One recorded event. POD on purpose: ring slots are reused in place.
// `name` / `category` / `arg_name` must point at string literals.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  TracePhase phase = TracePhase::kSpan;
  std::int64_t start_ns = 0;  // since the recorder's steady-clock epoch
  std::int64_t dur_ns = 0;
  // The engine window the event belongs to, -1 when not window-scoped.
  std::int64_t window = -1;
  // Optional numeric payload, rendered as {arg_name: arg} in the export.
  const char* arg_name = nullptr;
  std::int64_t arg = 0;
};

struct TraceParams {
  // Per-thread ring capacity in events (rounded up to a power of two).
  // Sized so one window's worth of spans — phases, per-shard closes, pool
  // tasks — fits between two boundary drains with a wide margin.
  std::size_t ring_capacity = 8192;
  // Flight-recorder bound: total retained events across all threads. At
  // ~64 bytes/event the default keeps the recorder under ~16 MiB.
  std::size_t recorder_capacity = 1 << 18;
  // Exported-timestamp anchor in wall-clock microseconds; -1 captures
  // system_clock::now() at construction. Tests pin it for golden output.
  std::int64_t wall_anchor_us = -1;
};

// Lock-free SPSC ring of TraceEvents: the owning thread pushes, the drain
// point (serialized by the recorder's mutex) consumes. Capacity is a power
// of two; a full ring rejects the push (the caller counts the drop).
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity_pow2);

  // Producer side (owning thread only).
  bool try_push(const TraceEvent& event);

  // Consumer side (one drainer at a time). Invokes `fn(event)` for every
  // buffered event in push order; returns how many were consumed.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t n = static_cast<std::size_t>(head - tail);
    for (; tail != head; ++tail) {
      fn(slots_[static_cast<std::size_t>(tail) & mask_]);
    }
    // Release: slot reads above happen-before the producer's reuse of them
    // (the producer acquire-loads tail_ before overwriting a slot).
    tail_.store(tail, std::memory_order_release);
    return n;
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};  // next write index (producer)
  std::atomic<std::uint64_t> tail_{0};  // next read index (consumer)
};

// The per-run trace sink. Construct one per World (alongside the
// MetricsRegistry); instrumentation sites hold a pointer that is null when
// tracing is off.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceParams params = {});
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- hot path (any thread) ---
  // Buffers one event into the calling thread's ring; start_ns/dur_ns must
  // already be filled in (TraceSpan does this). Drops, counted, when the
  // ring is full.
  void record(const TraceEvent& event);
  // Convenience: a point event stamped "now".
  void instant(const char* name, const char* category,
               std::int64_t window = -1, const char* arg_name = nullptr,
               std::int64_t arg = 0);
  // Nanoseconds since the recorder's steady-clock epoch.
  std::int64_t now_ns() const;

  // --- serial/maintenance path ---
  // Names the calling thread's track in the export (e.g. "driver",
  // "shard-worker"). Allocates; call at setup time, not per event.
  void name_this_thread(const std::string& name);
  // Drain point: moves every ring's buffered events into the bounded
  // flight recorder and rolls drop counts into the metrics. Thread-safe
  // (serialized internally); the engine calls it at window boundaries.
  void drain();
  // Chrome trace-event JSON of the flight recorder contents (one
  // {"traceEvents": [...]} document, events sorted by timestamp). Does NOT
  // drain first, so a live introspection endpoint can call it mid-run and
  // see everything through the last window boundary.
  std::string json() const;

  // --- accounting ---
  std::size_t event_count() const;  // events currently retained
  // Total events dropped so far (full rings + flight-recorder evictions).
  std::int64_t dropped() const;
  // Registers rrr_trace_* series (runtime domain) and keeps them updated
  // at every drain.
  void set_metrics(MetricsRegistry& registry);

 private:
  struct ThreadTrack {
    explicit ThreadTrack(std::size_t capacity) : ring(capacity) {}
    TraceRing ring;
    std::uint32_t tid = 0;
    std::string name;
    // Push failures, owned by the producer thread; drained with the ring.
    std::atomic<std::int64_t> dropped{0};
    std::int64_t dropped_drained = 0;  // consumer-side watermark
  };
  struct StoredEvent {
    TraceEvent event;
    std::uint32_t tid;
  };

  // Slow path of record(): registers (or re-binds) the calling thread.
  ThreadTrack* bind_this_thread();

  const TraceParams params_;
  const std::uint64_t id_;  // process-unique, for the thread-local cache
  SpanClock::time_point epoch_;
  std::int64_t wall_anchor_us_;

  mutable std::mutex mu_;  // guards tracks_, store_, and drop tallies
  std::vector<std::unique_ptr<ThreadTrack>> tracks_;
  std::deque<StoredEvent> store_;
  std::int64_t dropped_ring_ = 0;
  std::int64_t dropped_store_ = 0;
  std::int64_t events_total_ = 0;
  Counter* obs_events_ = nullptr;
  Counter* obs_dropped_ring_ = nullptr;
  Counter* obs_dropped_store_ = nullptr;
};

// RAII span: stamps begin on construction, records on destruction. A null
// recorder skips the clock reads entirely (one branch, like ScopedSpan).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name, const char* category,
            std::int64_t window = -1, const char* arg_name = nullptr,
            std::int64_t arg = 0)
      : recorder_(recorder) {
    if (recorder_ == nullptr) return;
    event_.name = name;
    event_.category = category;
    event_.window = window;
    event_.arg_name = arg_name;
    event_.arg = arg;
    event_.start_ns = recorder_->now_ns();
  }
  ~TraceSpan() {
    if (recorder_ == nullptr) return;
    event_.dur_ns = recorder_->now_ns() - event_.start_ns;
    recorder_->record(event_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Updates the numeric payload before the span closes (e.g. a work size
  // known only after the phase ran).
  void set_arg(std::int64_t arg) { event_.arg = arg; }

 private:
  TraceRecorder* recorder_;
  TraceEvent event_;
};

// True when the RRR_TRACE environment variable asks for tracing (set and
// neither empty nor "0") — the force-enable knob mirroring RRR_STATS.
bool trace_env_enabled();

}  // namespace rrr::obs
