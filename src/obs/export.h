// Exposition formats for telemetry snapshots: structured JSON (bench
// artifacts, `--stats-json`) and the Prometheus text format (scrape-style
// consumers), plus the per-window stats time series the bench harnesses
// emit alongside their figures.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rrr::obs {

// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& text);

// Deterministic number rendering shared by both exporters: integers render
// without a decimal point, everything else via %g.
std::string format_number(double value);

// Renders a snapshot as a JSON array of metric objects (sorted by key, so
// equal snapshots produce equal bytes).
std::string to_json(const Snapshot& snapshot);

// Prometheus text exposition format 0.0.4: one # HELP / # TYPE header per
// family, histograms as cumulative _bucket{le=...} plus _sum / _count.
// Label values are escaped per the format (backslash, double quote,
// newline); metric families whose names violate the exposition grammar
// are skipped (registration already rejects them — see MetricsRegistry —
// so a skip here only defends against snapshots from older checkpoints).
std::string to_prometheus(const Snapshot& snapshot);

// Exposition grammar for metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
// MetricsRegistry rejects registrations that fail this.
bool prometheus_valid_name(const std::string& name);

// Escapes a label *value* for the text format: \ -> \\, " -> \", and
// newline -> \n. (Label names share the metric-name grammar minus ':'.)
std::string prometheus_escape_label(const std::string& value);

// Approximate quantile from histogram buckets: the smallest upper bound
// whose cumulative count reaches q * count (+Inf when only the overflow
// bucket reaches it). Returns 0 for an empty histogram.
double histogram_quantile(const MetricSnapshot& metric, double q);

// True when the RRR_STATS environment variable asks for telemetry (set and
// neither empty nor "0") — the force-enable knob documented in README.
bool env_enabled();

// Per-window stats time series: after each closed window, `sample` records
// every metric whose cumulative value changed since the previous sample
// (counters/gauges by value, histograms by observation count). Sparse by
// construction: quiet metrics cost nothing, so a long run's series stays
// proportional to activity, not to windows x metrics. Thread-safe: the
// run thread samples while a live introspection endpoint reads json().
class StatsSeries {
 public:
  void sample(std::int64_t window, const MetricsRegistry& registry);

  std::size_t window_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return windows_.size();
  }

  // JSON array of {"window": N, "metrics": {key: value | histogram}}
  // objects; histogram entries carry cumulative count/sum/buckets.
  std::string json() const;

 private:
  mutable std::mutex mu_;
  // Last seen change-detection fingerprint per metric key.
  std::map<std::string, std::int64_t> last_;
  std::vector<std::string> windows_;  // pre-rendered JSON objects
};

}  // namespace rrr::obs
