// Minimal in-tree HTTP introspection server — the first crack in the
// batch-only wall. A running bench passes `--serve-obs PORT` and gets a
// live, loopback-only endpoint:
//
//   GET /metrics     Prometheus text exposition 0.0.4 (scrape target)
//   GET /healthz     "ok\n" while the process is serving
//   GET /stats.json  the same rrr-stats JSON the batch artifact gets
//   GET /trace.json  the flight recorder (everything through the last
//                    window-boundary drain)
//
// Deliberately tiny: POSIX sockets + poll, one thread, one request per
// connection ("Connection: close"), GET only, bound to 127.0.0.1. No
// external dependencies, no TLS, no keep-alive — it is an introspection
// hatch, not a web server. Handlers are std::functions evaluated per
// request on the server thread, so everything they touch must be
// thread-safe against the run thread (MetricsRegistry snapshots and
// TraceRecorder::json both lock internally).
//
// Because connections are served serially, one misbehaving client could
// otherwise starve every other scraper. Two guards bound each request
// (HttpLimits): a per-connection read deadline — a client that dribbles
// bytes slower than the deadline (slow-loris) gets "408 Request Timeout"
// and the socket back — and a maximum request-head size, past which the
// client gets "431 Request Header Fields Too Large" instead of a parse of
// whatever half-request fit the old fixed buffer.
//
// Port 0 asks the kernel for an ephemeral port (tests); `port()` reports
// the bound one. The destructor wakes the poll loop via a self-pipe and
// joins — no orphaned threads, no blocking accept to interrupt.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>

namespace rrr::obs {

// One routed response: status code, content type, body. The server maps
// the code to its reason phrase when writing the status line.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

// Reason phrase for the status codes this server emits (200, 400, 404,
// 405, 408, 431, 500; anything else answers as 500).
const char* http_status_phrase(int status);

// Content callbacks for each route; an empty function 404s the route.
struct HttpHandlers {
  std::function<std::string()> metrics_text;  // GET /metrics
  std::function<std::string()> stats_json;    // GET /stats.json
  std::function<std::string()> trace_json;    // GET /trace.json
  std::function<std::string()> healthz;       // GET /healthz (default "ok\n")
  // Generic routed handler, consulted before the fixed routes with the
  // full request target (path plus any ?query). Returning nullopt falls
  // through to the fixed routes above; any HttpResponse — including an
  // error status — is written as-is. This is how the staleness query
  // service (src/serve) mounts its /v1 family without obs depending on it.
  std::function<std::optional<HttpResponse>(const std::string& target)> api;
};

// Abuse guards for one connection. The defaults are far above anything a
// legitimate scraper produces; tests shrink them to exercise the 408/431
// paths without waiting.
struct HttpLimits {
  // Total budget for receiving the request head, in milliseconds. A
  // client still mid-request when it expires gets 408.
  int read_deadline_ms = 2000;
  // Maximum request-head bytes before "\r\n\r\n". Exceeding it gets 431.
  std::size_t max_request_bytes = 8192;
};

class HttpServer {
 public:
  // Binds 127.0.0.1:port (0 = ephemeral) and starts the serving thread.
  // Throws std::runtime_error when the socket cannot be bound.
  HttpServer(int port, HttpHandlers handlers, HttpLimits limits = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  int port() const { return port_; }
  // Requests served so far (any route, including 404s).
  std::int64_t requests_served() const;

 private:
  void serve_loop();
  void handle_connection(int fd);

  HttpHandlers handlers_;
  HttpLimits limits_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written to stop
  int port_ = 0;
  std::thread thread_;
  std::atomic<std::int64_t> requests_{0};
};

}  // namespace rrr::obs
