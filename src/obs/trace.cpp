#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace rrr::obs {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Process-unique recorder ids. The thread-local ring cache is keyed on the
// id, not the recorder address, so a recorder destroyed and another
// allocated at the same address can never alias a stale cache entry.
std::atomic<std::uint64_t> g_next_recorder_id{1};

struct TlsCache {
  std::uint64_t recorder_id = 0;
  void* track = nullptr;  // TraceRecorder::ThreadTrack*, owned by recorder
};
thread_local TlsCache t_cache;

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity_pow2)
    : slots_(round_up_pow2(std::max<std::size_t>(capacity_pow2, 2))),
      mask_(slots_.size() - 1) {}

bool TraceRing::try_push(const TraceEvent& event) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  // Acquire pairs with the drainer's release store: once tail_ has moved
  // past a slot, its prior contents have been fully read and the slot may
  // be overwritten.
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) return false;  // full: caller counts
  slots_[static_cast<std::size_t>(head) & mask_] = event;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

TraceRecorder::TraceRecorder(TraceParams params)
    : params_(params),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(SpanClock::now()) {
  // The single wall-clock read in the tracing layer: anchors exported
  // timestamps to wall time so traces line up with logs. Durations are
  // steady-clock throughout (see SpanClock in metrics.h).
  wall_anchor_us_ =
      params_.wall_anchor_us >= 0
          ? params_.wall_anchor_us
          : std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
}

std::int64_t TraceRecorder::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SpanClock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadTrack* TraceRecorder::bind_this_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  tracks_.push_back(std::make_unique<ThreadTrack>(params_.ring_capacity));
  ThreadTrack* track = tracks_.back().get();
  track->tid = static_cast<std::uint32_t>(tracks_.size());
  t_cache.recorder_id = id_;
  t_cache.track = track;
  return track;
}

void TraceRecorder::record(const TraceEvent& event) {
  ThreadTrack* track = t_cache.recorder_id == id_
                           ? static_cast<ThreadTrack*>(t_cache.track)
                           : bind_this_thread();
  if (!track->ring.try_push(event)) {
    track->dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void TraceRecorder::instant(const char* name, const char* category,
                            std::int64_t window, const char* arg_name,
                            std::int64_t arg) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = TracePhase::kInstant;
  event.start_ns = now_ns();
  event.window = window;
  event.arg_name = arg_name;
  event.arg = arg;
  record(event);
}

void TraceRecorder::name_this_thread(const std::string& name) {
  ThreadTrack* track = t_cache.recorder_id == id_
                           ? static_cast<ThreadTrack*>(t_cache.track)
                           : bind_this_thread();
  std::lock_guard<std::mutex> lock(mu_);
  track->name = name;
}

void TraceRecorder::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t drained = 0;
  for (auto& track : tracks_) {
    const std::uint32_t tid = track->tid;
    drained += static_cast<std::int64_t>(
        track->ring.drain([&](const TraceEvent& event) {
          store_.push_back(StoredEvent{event, tid});
        }));
    // Fold producer-side push failures into the recorder tally exactly
    // once per drop.
    const std::int64_t dropped =
        track->dropped.load(std::memory_order_relaxed);
    dropped_ring_ += dropped - track->dropped_drained;
    track->dropped_drained = dropped;
  }
  events_total_ += drained;
  // Flight-recorder bound: keep the newest events, evict the oldest.
  while (store_.size() > params_.recorder_capacity) {
    store_.pop_front();
    ++dropped_store_;
  }
  if (obs_events_ != nullptr) {
    obs_events_->set(events_total_);
    obs_dropped_ring_->set(dropped_ring_);
    obs_dropped_store_->set(dropped_store_);
  }
}

std::string TraceRecorder::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const StoredEvent*> ordered;
  ordered.reserve(store_.size());
  for (const StoredEvent& stored : store_) ordered.push_back(&stored);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const StoredEvent* a, const StoredEvent* b) {
                     return a->event.start_ns < b->event.start_ns;
                   });
  std::string out;
  out.reserve(ordered.size() * 128 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata events so Perfetto/chrome://tracing label tracks.
  for (const auto& track : tracks_) {
    if (track->name.empty()) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(track->tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(out, track->name.c_str());
    out += "}}";
  }
  for (const StoredEvent* stored : ordered) {
    const TraceEvent& event = stored->event;
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += event.phase == TracePhase::kInstant ? 'i' : 'X';
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(stored->tid);
    out += ",\"ts\":";
    // Chrome trace timestamps are microseconds. Floor the start and the
    // *endpoint* (not the duration): flooring both ends monotonically
    // preserves span nesting, whereas independently floored durations can
    // push an inner span 1 us past its parent.
    out += std::to_string(wall_anchor_us_ + event.start_ns / 1000);
    if (event.phase == TracePhase::kSpan) {
      out += ",\"dur\":";
      out += std::to_string((event.start_ns + event.dur_ns) / 1000 -
                            event.start_ns / 1000);
    } else {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    out += ",\"name\":";
    append_json_string(out, event.name != nullptr ? event.name : "?");
    out += ",\"cat\":";
    append_json_string(out,
                       event.category != nullptr ? event.category : "?");
    const bool has_window = event.window >= 0;
    const bool has_arg = event.arg_name != nullptr;
    if (has_window || has_arg) {
      out += ",\"args\":{";
      if (has_window) {
        out += "\"window\":";
        out += std::to_string(event.window);
      }
      if (has_arg) {
        if (has_window) out += ',';
        append_json_string(out, event.arg_name);
        out += ':';
        out += std::to_string(event.arg);
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.size();
}

std::int64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_ring_ + dropped_store_;
}

void TraceRecorder::set_metrics(MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mu_);
  obs_events_ = &registry.counter(
      "rrr_trace_events_total", {}, Domain::kRuntime,
      "Trace events drained into the flight recorder");
  obs_dropped_ring_ = &registry.counter(
      "rrr_trace_events_dropped_total", {{"reason", "ring"}},
      Domain::kRuntime, "Trace events lost before export");
  obs_dropped_store_ = &registry.counter(
      "rrr_trace_events_dropped_total", {{"reason", "recorder"}},
      Domain::kRuntime, "Trace events lost before export");
}

bool trace_env_enabled() {
  const char* v = std::getenv("RRR_TRACE");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

}  // namespace rrr::obs
