#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace rrr::obs {
namespace {

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

const char* domain_name(Domain domain) {
  return domain == Domain::kSemantic ? "semantic" : "runtime";
}

std::string labels_json(const LabelList& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(labels[i].first) + "\":\"" +
           json_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

std::string labels_prometheus(const LabelList& labels,
                              const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + prometheus_escape_label(labels[i].second) +
           "\"";
  }
  if (!extra.empty()) {
    if (!labels.empty()) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string histogram_json(const MetricSnapshot& m) {
  std::string out = "{\"count\":" + std::to_string(m.count) +
                    ",\"sum\":" + format_number(m.sum) + ",\"bounds\":[";
  for (std::size_t i = 0; i < m.bounds.size(); ++i) {
    if (i > 0) out += ",";
    out += format_number(m.bounds[i]);
  }
  out += "],\"buckets\":[";
  for (std::size_t i = 0; i < m.buckets.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(m.buckets[i]);
  }
  out += "]}";
  return out;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const MetricSnapshot& m = snapshot[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + json_escape(m.name) + "\",\"labels\":" +
           labels_json(m.labels) + ",\"kind\":\"" + kind_name(m.kind) +
           "\",\"domain\":\"" + domain_name(m.domain) + "\",";
    if (m.kind == Kind::kHistogram) {
      out += "\"histogram\":" + histogram_json(m);
    } else {
      out += "\"value\":" + std::to_string(m.value);
    }
    out += "}";
  }
  out += "]";
  return out;
}

bool prometheus_valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : snapshot) {
    if (!prometheus_valid_name(m.name)) continue;
    if (m.name != last_family) {
      if (!m.help.empty()) {
        out += "# HELP " + m.name + " " + m.help + "\n";
      }
      out += "# TYPE " + m.name + " " + kind_name(m.kind) + "\n";
      last_family = m.name;
    }
    if (m.kind != Kind::kHistogram) {
      out += m.name + labels_prometheus(m.labels) + " " +
             std::to_string(m.value) + "\n";
      continue;
    }
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < m.buckets.size(); ++b) {
      cumulative += m.buckets[b];
      std::string le = b < m.bounds.size()
                           ? "le=\"" + format_number(m.bounds[b]) + "\""
                           : std::string("le=\"+Inf\"");
      out += m.name + "_bucket" + labels_prometheus(m.labels, le) + " " +
             std::to_string(cumulative) + "\n";
    }
    out += m.name + "_sum" + labels_prometheus(m.labels) + " " +
           format_number(m.sum) + "\n";
    out += m.name + "_count" + labels_prometheus(m.labels) + " " +
           std::to_string(m.count) + "\n";
  }
  return out;
}

double histogram_quantile(const MetricSnapshot& metric, double q) {
  if (metric.count <= 0) return 0.0;
  double target = q * static_cast<double>(metric.count);
  std::int64_t cumulative = 0;
  for (std::size_t b = 0; b < metric.buckets.size(); ++b) {
    cumulative += metric.buckets[b];
    if (static_cast<double>(cumulative) >= target) {
      return b < metric.bounds.size()
                 ? metric.bounds[b]
                 : std::numeric_limits<double>::infinity();
    }
  }
  return std::numeric_limits<double>::infinity();
}

bool env_enabled() {
  const char* value = std::getenv("RRR_STATS");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

void StatsSeries::sample(std::int64_t window,
                         const MetricsRegistry& registry) {
  Snapshot snapshot = registry.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  std::string body;
  for (const MetricSnapshot& m : snapshot) {
    // Change fingerprint: observation count for histograms (sum is derived
    // from the same observations), raw value otherwise.
    std::int64_t fingerprint =
        m.kind == Kind::kHistogram ? m.count : m.value;
    auto it = last_.find(m.key());
    if (it != last_.end() && it->second == fingerprint) continue;
    last_[m.key()] = fingerprint;
    if (!body.empty()) body += ",";
    body += "\"" + json_escape(m.key()) + "\":";
    body += m.kind == Kind::kHistogram ? histogram_json(m)
                                       : std::to_string(m.value);
  }
  if (body.empty()) return;
  windows_.push_back("{\"window\":" + std::to_string(window) +
                     ",\"metrics\":{" + body + "}}");
}

std::string StatsSeries::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    if (i > 0) out += ",";
    out += windows_[i];
  }
  out += "]";
  return out;
}

}  // namespace rrr::obs
