// Slow-window watchdog: learns what "normal" window-close latency looks
// like (an EWMA over observed durations), and when one window blows past
// an EWMA-derived deadline, captures a diagnostic report — the flight
// recorder's trace JSON and a metrics snapshot — at the moment of the
// stall, not minutes later when a human looks.
//
// Policy: deadline = max(min_deadline_us, ewma_us * deadline_factor),
// evaluated *before* the observation is folded into the EWMA (the slow
// window must not raise its own bar). The first `warmup_windows`
// observations only train the EWMA — cold caches and first-window table
// absorption would otherwise trip it on every run. Reports are capped at
// `max_reports`: the first stalls are the diagnostic ones, and an
// unbounded pile of trace snapshots is its own memory incident.
//
// The watchdog is driven with explicit durations (`observe(window,
// duration_us, ...)`) rather than reading a clock, so tests feed it a fake
// clock and production feeds it the same steady-clock span the window
// histogram sees. Runtime-domain by construction: it only consumes
// measurements, never engine state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rrr::obs {

struct WatchdogParams {
  bool enabled = false;
  // EWMA smoothing: ewma += alpha * (x - ewma).
  double ewma_alpha = 0.2;
  // A window is slow when it exceeds ewma * deadline_factor.
  double deadline_factor = 4.0;
  // Floor under the deadline so microsecond-scale windows (tiny test
  // corpora) don't trip on scheduler jitter.
  double min_deadline_us = 2000.0;
  // Observations that train the EWMA before tripping is armed.
  int warmup_windows = 8;
  // Retained reports; further trips only bump the counter.
  std::size_t max_reports = 4;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogParams params = {});

  // One diagnostic capture: everything known at the moment of the stall.
  struct Report {
    std::int64_t window = 0;
    double duration_us = 0.0;
    double deadline_us = 0.0;
    double ewma_us = 0.0;  // the EWMA the deadline was derived from
    std::string trace_json;
    std::string stats_json;
  };

  // Feeds one window-close duration. Returns true when the window tripped
  // the deadline; on a trip that still fits under max_reports, the
  // snapshot callbacks (either may be empty) are invoked to capture the
  // report payloads.
  bool observe(std::int64_t window, double duration_us,
               const std::function<std::string()>& trace_snapshot = {},
               const std::function<std::string()>& stats_snapshot = {});

  const std::vector<Report>& reports() const { return reports_; }
  std::int64_t trips() const { return trips_; }
  double ewma_us() const { return ewma_us_; }
  // Current deadline (what the *next* observation is judged against), or
  // 0 while still warming up.
  double deadline_us() const;

  // JSON array of report objects (trace_json embedded as an object, not a
  // string), for `--serve-obs` consumers and post-run dumps.
  std::string reports_json() const;

  // Registers rrr_watchdog_trips_total (runtime domain).
  void set_metrics(MetricsRegistry& registry);

 private:
  const WatchdogParams params_;
  double ewma_us_ = 0.0;
  int observed_ = 0;
  std::int64_t trips_ = 0;
  std::vector<Report> reports_;
  Counter* obs_trips_ = nullptr;
};

}  // namespace rrr::obs
