// Telemetry primitives for the staleness engine: a registry of named
// counters, gauges, and fixed-bucket histograms, plus scoped wall-clock
// spans.
//
// Hot-path cost model: metric objects are updated with relaxed atomics (one
// fetch_add for a counter, one bucket lookup plus two fetch_adds for a
// histogram), and every instrumentation site holds a *pointer* that is null
// when telemetry is off — the disabled path is a single branch on a pointer
// the caller already has in cache. Registration and snapshotting take a
// mutex; they happen at construction and reporting time, never per window.
//
// Determinism split: every metric belongs to a `Domain`. `kSemantic` metrics
// count facts of the signal stream (signals emitted, potentials opened,
// refreshes graded, …) that the engine's determinism contract makes
// invariant across any (shards, threads) grid point — a semantic snapshot
// must therefore be byte-identical across the grid, which
// tests/determinism_test.cpp asserts. `kRuntime` metrics carry wall-clock
// durations, queue depths, and partition-dependent work sizes; they differ
// run to run by design and are never part of the determinism contract.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rrr::obs {

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
enum class Domain : std::uint8_t { kSemantic, kRuntime };

// Clock discipline for the whole observability layer: every span and
// duration measurement (ScopedSpan, pool wait timers, trace spans) reads
// SpanClock — monotonic, immune to wall-clock steps. Wall time
// (system_clock) is allowed only as an exported-timestamp anchor
// (obs/trace.cpp), never for measuring elapsed time.
using SpanClock = std::chrono::steady_clock;

// Label key/value pairs, e.g. {{"technique", "aspath"}}. Part of a metric's
// identity: the same name with different labels is a different time series.
using LabelList = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  // Overwrites the running total. Only checkpoint restore may call this:
  // a resumed run must report the same cumulative semantic counts as an
  // uninterrupted one, so the saved totals are re-seated wholesale.
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds; an
// implicit +Inf bucket catches the rest. Bucket counts are per-bucket (not
// cumulative); exporters cumulate where the format demands it.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket counts, size bounds().size() + 1 (last = overflow bucket).
  std::vector<std::int64_t> bucket_counts() const;
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Null-safe update helpers: instrumentation sites hold pointers that are
// null when telemetry is off, so the disabled path is one branch.
inline void inc(Counter* counter, std::int64_t delta = 1) {
  if (counter != nullptr) counter->inc(delta);
}
inline void set(Gauge* gauge, std::int64_t value) {
  if (gauge != nullptr) gauge->set(value);
}
inline void observe(Histogram* histogram, double value) {
  if (histogram != nullptr) histogram->observe(value);
}

// Records the enclosing scope's wall time (microseconds) into a histogram;
// a null histogram skips the clock reads entirely.
class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) begin_ = SpanClock::now();
  }
  ~ScopedSpan() {
    if (histogram_ == nullptr) return;
    histogram_->observe(std::chrono::duration<double, std::micro>(
                            SpanClock::now() - begin_)
                            .count());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Histogram* histogram_;
  SpanClock::time_point begin_;
};

// Standard bucket ladders (1-2-5 decades): microsecond durations up to 5 s,
// and work-item sizes up to 500k.
std::vector<double> duration_buckets_us();
std::vector<double> size_buckets();

// Point-in-time copy of one metric, used by exporters and tests.
struct MetricSnapshot {
  std::string name;
  LabelList labels;
  Kind kind = Kind::kCounter;
  Domain domain = Domain::kSemantic;
  std::string help;
  std::int64_t value = 0;             // counter / gauge
  std::int64_t count = 0;             // histogram
  double sum = 0.0;                   // histogram
  std::vector<double> bounds;         // histogram upper bounds (no +Inf)
  std::vector<std::int64_t> buckets;  // per-bucket counts, bounds+1 long

  // Canonical flattened identity, `name{k="v",...}` — also the Prometheus
  // series name and the key of the per-window stats series.
  std::string key() const;
};

// Snapshots are sorted by key(), so two registries holding the same values
// render byte-identical exports.
using Snapshot = std::vector<MetricSnapshot>;

// Owns every metric it hands out; references stay valid for the registry's
// lifetime. Asking for an existing (name, labels) returns the same object
// (the kind must match). Thread-safe for registration and snapshotting;
// metric updates themselves never touch the registry lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, LabelList labels = {},
                   Domain domain = Domain::kSemantic, std::string help = "");
  Gauge& gauge(const std::string& name, LabelList labels = {},
               Domain domain = Domain::kRuntime, std::string help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       LabelList labels = {},
                       Domain domain = Domain::kRuntime,
                       std::string help = "");

  Snapshot snapshot() const;
  Snapshot snapshot(Domain domain) const;
  std::size_t size() const;

  // Checkpoint restore: re-seats counter/gauge values from a previously
  // taken snapshot, registering any series the restoring process has not
  // touched yet (so early-run counters survive a resume even if their
  // instrumentation site has not fired). Histograms are skipped — no
  // semantic metric is a histogram, and runtime series restart by design.
  void restore(const Snapshot& snapshot);

 private:
  struct Entry {
    std::string name;
    LabelList labels;
    Kind kind;
    Domain domain;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(const std::string& name, LabelList&& labels, Kind kind,
                   Domain domain, std::string&& help);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::map<std::string, Entry*> by_key_;
};

}  // namespace rrr::obs
