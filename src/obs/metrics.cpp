#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "obs/export.h"

namespace rrr::obs {
namespace {

std::string flatten(const std::string& name, const LabelList& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ",";
    key += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  key += "}";
  return key;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ =
      std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double value) {
  // First bucket whose upper bound admits the value; +Inf bucket otherwise.
  std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(),
                                                bounds_.end(), value) -
                               bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<double> duration_buckets_us() {
  return {1,    2,    5,    10,   20,    50,    100,   200,   500,  1000,
          2000, 5000, 1e4,  2e4,  5e4,   1e5,   2e5,   5e5,   1e6,  2e6,
          5e6};
}

std::vector<double> size_buckets() {
  return {1,    2,    5,    10,  20,  50,  100, 200, 500, 1000,
          2000, 5000, 1e4,  2e4, 5e4, 1e5, 2e5, 5e5};
}

std::string MetricSnapshot::key() const { return flatten(name, labels); }

MetricsRegistry::Entry& MetricsRegistry::entry_for(const std::string& name,
                                                   LabelList&& labels,
                                                   Kind kind, Domain domain,
                                                   std::string&& help) {
  // Registration is the one place a bad name can enter the registry, so
  // enforce the exposition grammar here rather than silently emitting a
  // series every scraper rejects.
  if (!prometheus_valid_name(name)) {
    throw std::invalid_argument("obs: invalid metric name: " + name);
  }
  std::string key = flatten(name, labels);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    assert(it->second->kind == kind && "metric re-registered as other kind");
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(labels);
  entry->kind = kind;
  entry->domain = domain;
  entry->help = std::move(help);
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  by_key_[std::move(key)] = raw;
  return *raw;
}

Counter& MetricsRegistry::counter(const std::string& name, LabelList labels,
                                  Domain domain, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entry_for(name, std::move(labels), Kind::kCounter, domain,
                           std::move(help));
  if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, LabelList labels,
                              Domain domain, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entry_for(name, std::move(labels), Kind::kGauge, domain,
                           std::move(help));
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      LabelList labels, Domain domain,
                                      std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entry_for(name, std::move(labels), Kind::kHistogram, domain,
                           std::move(help));
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *entry.histogram;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSnapshot m;
    m.name = entry->name;
    m.labels = entry->labels;
    m.kind = entry->kind;
    m.domain = entry->domain;
    m.help = entry->help;
    switch (entry->kind) {
      case Kind::kCounter:
        m.value = entry->counter->value();
        break;
      case Kind::kGauge:
        m.value = entry->gauge->value();
        break;
      case Kind::kHistogram:
        m.count = entry->histogram->count();
        m.sum = entry->histogram->sum();
        m.bounds = entry->histogram->bounds();
        m.buckets = entry->histogram->bucket_counts();
        break;
    }
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.key() < b.key();
            });
  return out;
}

Snapshot MetricsRegistry::snapshot(Domain domain) const {
  Snapshot all = snapshot();
  Snapshot out;
  for (MetricSnapshot& m : all) {
    if (m.domain == domain) out.push_back(std::move(m));
  }
  return out;
}

void MetricsRegistry::restore(const Snapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind == Kind::kHistogram) continue;
    LabelList labels = m.labels;
    std::string help = m.help;
    Entry& entry =
        entry_for(m.name, std::move(labels), m.kind, m.domain, std::move(help));
    switch (m.kind) {
      case Kind::kCounter:
        if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
        entry.counter->set(m.value);
        break;
      case Kind::kGauge:
        if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
        entry.gauge->set(m.value);
        break;
      case Kind::kHistogram:
        break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace rrr::obs
