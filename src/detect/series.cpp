#include "detect/series.h"

namespace rrr::detect {

Judgement LazySeries::feed(std::int64_t window, double value) {
  if (has_last_ && window <= last_window_) return {};
  std::int64_t gap = has_last_ ? window - last_window_ - 1 : 0;
  if (gap > 0) {
    switch (gap_) {
      case GapPolicy::kCarryLast:
        detector_->backfill(last_value_, static_cast<std::size_t>(gap));
        break;
      case GapPolicy::kZero:
        detector_->backfill(0.0, static_cast<std::size_t>(gap));
        break;
      case GapPolicy::kMissing:
        break;
    }
  }
  Judgement judgement = detector_->update(value);
  last_window_ = window;
  last_value_ = value;
  has_last_ = true;
  return judgement;
}

void AdaptiveRatioSeries::escalate() {
  std::int64_t next = std::min(multiplier_ * 2, max_multiplier_);
  bool exact_double = next == multiplier_ * 2;
  consecutive_ = 0;
  detector_->reset();
  if (current_agg_ != std::numeric_limits<std::int64_t>::min()) {
    if (exact_double) {
      current_agg_ /= 2;  // pending counts fold into the doubled window
    } else {
      // Capped, non-integral growth: window boundaries shift; drop the
      // partial bucket rather than misfile it.
      current_agg_ = std::numeric_limits<std::int64_t>::min();
      pending_num_ = 0;
      pending_den_ = 0;
    }
  }
  multiplier_ = next;
}

void AdaptiveRatioSeries::add(std::int64_t base_window, std::int64_t match,
                              std::int64_t intersect) {
  // Contract: callers close windows in order; closing here keeps the series
  // correct even when they do not.
  (void)close_through(base_window);
  std::int64_t agg = base_window / multiplier_;
  if (next_agg_init_) {
    if (agg < next_agg_) return;  // late data for an already-closed window
  } else {
    next_agg_ = agg;
    next_agg_init_ = true;
  }
  if (current_agg_ == std::numeric_limits<std::int64_t>::min()) {
    current_agg_ = agg;
  }
  if (agg != current_agg_) {
    // close_through above guarantees current_agg_ >= next_agg_; data can
    // only belong to the (single) open aggregate window.
    if (agg < current_agg_) return;
    current_agg_ = agg;
    pending_num_ = 0;
    pending_den_ = 0;
  }
  pending_num_ += match;
  pending_den_ += intersect;
}

std::vector<ClosedRatioWindow> AdaptiveRatioSeries::close_through(
    std::int64_t through) {
  std::vector<ClosedRatioWindow> out;
  if (!next_agg_init_) return out;  // no data has ever arrived
  while (true) {
    std::int64_t final_agg = through / multiplier_ - 1;
    if (next_agg_ > final_agg) break;
    bool populated = current_agg_ == next_agg_ && pending_den_ > 0;
    if (populated) {
      double ratio = static_cast<double>(pending_num_) /
                     static_cast<double>(pending_den_);
      Judgement judgement = detector_->update(ratio);
      ++consecutive_;
      if (!armed_ && consecutive_ >= kMinConsecutive) armed_ = true;
      if (armed_) {
        out.push_back(ClosedRatioWindow{next_agg_, multiplier_,
                                        pending_den_, ratio, judgement});
      }
      last_ratio_ = ratio;
      has_ratio_ = true;
      pending_num_ = 0;
      pending_den_ = 0;
      current_agg_ = std::numeric_limits<std::int64_t>::min();
      ++next_agg_;
      continue;
    }
    // Empty aggregate window.
    if (armed_) {
      // Missing value: skipped, not an outlier (§4.1.2 / §4.2.1).
      ++next_agg_;
      continue;
    }
    // Not yet armed: the consecutive run restarts; repeated misses at this
    // window size mean it is too small (three strikes, then escalate —
    // escalating on every isolated miss overshoots the paper's "minimum
    // window size that allows 20 consecutive windows" by a large factor).
    consecutive_ = 0;
    ++misses_at_level_;
    if (misses_at_level_ >= 3) {
      misses_at_level_ = 0;
      if (multiplier_ < max_multiplier_) {
        escalate();
        // Indices changed; restart the scan at the (possibly folded)
        // pending window or at the present.
        next_agg_ = current_agg_ != std::numeric_limits<std::int64_t>::min()
                        ? current_agg_
                        : through / multiplier_;
        continue;
      }
      // At maximum window size and still gappy.
      dormant_ = true;
      detector_->reset();
    }
    ++next_agg_;
  }
  return out;
}

}  // namespace rrr::detect
