// Streaming outlier detection for signal time series.
//
// The paper uses two detectors: the Bitmap algorithm (Wei et al., SSDBM
// 2005) for BGP-derived series (§4.1.2) and the modified z-score
// (Iglewicz & Hoaglin) for the noisier traceroute-derived series (§4.2.1).
// Both are wrapped behind a streaming interface that (a) withholds
// judgement until a minimum history exists (20 observations, the
// recommended floor for robust outlier detection) and (b) removes flagged
// windows from the history so persistent changes keep registering as
// outliers instead of becoming the new normal (§4.1.2's stationarity
// maintenance).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>

#include "store/serial.h"

namespace rrr::detect {

struct Judgement {
  bool outlier = false;
  double score = 0.0;  // detector-specific magnitude (z-score / distance)
};

class Detector {
 public:
  virtual ~Detector() = default;
  // Feeds the next observed value (missing windows are simply not fed).
  virtual Judgement update(double value) = 0;
  // Fast path for long runs of an identical value: appends `count`
  // repetitions to the history without computing judgements. Signal series
  // are constant in the vast majority of windows, so callers batch those
  // windows and only pay for judgement when the value moves.
  virtual void backfill(double value, std::size_t count) = 0;
  // Fresh detector with the same configuration.
  virtual std::unique_ptr<Detector> clone_config() const = 0;
  // Drops all state, keeping configuration.
  virtual void reset() = 0;

  virtual std::size_t history_size() const = 0;

  // Checkpoint support: dynamic state only (configuration is supplied by
  // the owner at construction, exactly as in a fresh run). A loaded
  // detector judges subsequent observations bit-identically.
  virtual void save_state(store::Encoder& enc) const = 0;
  virtual void load_state(store::Decoder& dec) = 0;
};

// Shared helpers for the detectors' double-deque state.
void save_deque(store::Encoder& enc, const std::deque<double>& values);
void load_deque(store::Decoder& dec, std::deque<double>& values);

// Modified z-score: M = 0.6745 (x - median) / MAD, outlier when |M| exceeds
// the threshold (3.5 by convention). When the MAD degenerates to zero the
// mean absolute deviation fallback from Iglewicz & Hoaglin is used.
struct ZScoreParams {
  double threshold = 3.5;
  std::size_t min_history = 20;
  std::size_t max_history = 96;
  bool drop_outliers_from_history = true;
  // Outliers must also deviate from the median by at least this much. For
  // ratio series built from small per-window samples the MAD degenerates
  // toward zero and routine binomial wobble would otherwise produce huge
  // z-scores; a real path change moves the ratio by a large step.
  double min_abs_deviation = 0.0;
};

class ModifiedZScoreDetector final : public Detector {
 public:
  explicit ModifiedZScoreDetector(const ZScoreParams& params = {})
      : params_(params) {}

  Judgement update(double value) override;
  void backfill(double value, std::size_t count) override;
  std::unique_ptr<Detector> clone_config() const override {
    return std::make_unique<ModifiedZScoreDetector>(params_);
  }
  void reset() override { history_.clear(); }
  std::size_t history_size() const override { return history_.size(); }
  void save_state(store::Encoder& enc) const override {
    save_deque(enc, history_);
  }
  void load_state(store::Decoder& dec) override {
    load_deque(dec, history_);
  }

 private:
  ZScoreParams params_;
  std::deque<double> history_;
};

// Bitmap anomaly detection: SAX-discretize the series, build chaos-game
// bitmaps of subword frequencies over a lag (past) and lead (recent)
// window, and score the current point by the normalized squared distance
// between the two bitmaps. An observation is an outlier when its score
// exceeds mean + threshold_sigmas * stddev of previous scores.
struct BitmapParams {
  std::size_t alphabet = 4;      // SAX symbols (fixed breakpoints for N(0,1))
  std::size_t word_length = 2;   // subword size -> alphabet^word bitmap cells
  std::size_t lag_window = 32;   // model of "normal" behaviour
  std::size_t lead_window = 8;   // recent behaviour under test
  double threshold_sigmas = 3.0;
  std::size_t min_history = 20;
  bool drop_outliers_from_history = true;
};

class BitmapDetector final : public Detector {
 public:
  explicit BitmapDetector(const BitmapParams& params = {});

  Judgement update(double value) override;
  void backfill(double value, std::size_t count) override;
  std::unique_ptr<Detector> clone_config() const override {
    return std::make_unique<BitmapDetector>(params_);
  }
  void reset() override {
    values_.clear();
    scores_.clear();
  }
  std::size_t history_size() const override { return values_.size(); }
  void save_state(store::Encoder& enc) const override {
    save_deque(enc, values_);
    save_deque(enc, scores_);
  }
  void load_state(store::Decoder& dec) override {
    load_deque(dec, values_);
    load_deque(dec, scores_);
  }

 private:
  int discretize(double value) const;
  double bitmap_distance() const;

  BitmapParams params_;
  std::deque<double> values_;   // lag + lead raw values (outliers dropped)
  std::deque<double> scores_;   // past anomaly scores for thresholding
};

enum class DetectorKind : std::uint8_t { kBitmap, kModifiedZScore };

std::unique_ptr<Detector> make_detector(DetectorKind kind);

}  // namespace rrr::detect
