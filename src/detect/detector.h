// Streaming outlier detection for signal time series.
//
// The paper uses two detectors: the Bitmap algorithm (Wei et al., SSDBM
// 2005) for BGP-derived series (§4.1.2) and the modified z-score
// (Iglewicz & Hoaglin) for the noisier traceroute-derived series (§4.2.1).
// Both are wrapped behind a streaming interface that (a) withholds
// judgement until a minimum history exists (20 observations, the
// recommended floor for robust outlier detection) and (b) removes flagged
// windows from the history so persistent changes keep registering as
// outliers instead of becoming the new normal (§4.1.2's stationarity
// maintenance).
#pragma once

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <memory>

#include "store/serial.h"

namespace rrr::detect {

// Bounded history of doubles backed by one flat allocation. The detectors'
// histories have small, configuration-known caps (tens of values), but the
// engine holds one detector per watched (pair, suffix) entry — tens of
// thousands at 10x corpus scale — and a std::deque<double> pre-allocates a
// ~512-byte node plus its pointer map even when empty, which dominated the
// monitors' resident set. The ring grows geometrically and clamps its
// capacity to the expected cap, so a full history costs exactly its
// payload. Push/pop semantics and iteration order match the deque it
// replaced; hitting the expected cap is not an error, growth just resumes
// doubling (load_state may momentarily hold more than the cap).
class Ring {
 public:
  explicit Ring(std::size_t expected_cap)
      : hint_(expected_cap == 0 ? 1 : expected_cap) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  double operator[](std::size_t i) const { return data_[slot(i)]; }
  double front() const { return data_[head_]; }
  double back() const { return data_[slot(size_ - 1)]; }

  void push_back(double value) {
    if (size_ == cap_) grow();
    data_[slot(size_)] = value;
    ++size_;
  }
  void pop_front() {
    head_ = head_ + 1 == cap_ ? 0 : head_ + 1;
    --size_;
  }
  void pop_back() { --size_; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = double;
    using difference_type = std::ptrdiff_t;
    using pointer = const double*;
    using reference = double;

    const_iterator(const Ring* ring, std::size_t i) : ring_(ring), i_(i) {}
    double operator*() const { return (*ring_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++i_;
      return copy;
    }
    bool operator==(const const_iterator& other) const {
      return i_ == other.i_;
    }
    bool operator!=(const const_iterator& other) const {
      return i_ != other.i_;
    }

   private:
    const Ring* ring_;
    std::size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  std::size_t slot(std::size_t i) const {
    std::size_t s = head_ + i;
    return s >= cap_ ? s - cap_ : s;
  }
  void grow() {
    std::size_t next = cap_ == 0 ? std::min<std::size_t>(hint_, 8) : cap_ * 2;
    if (cap_ < hint_ && next > hint_) next = hint_;
    auto fresh = std::make_unique<double[]>(next);
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = data_[slot(i)];
    data_ = std::move(fresh);
    cap_ = next;
    head_ = 0;
  }

  std::unique_ptr<double[]> data_;
  std::size_t hint_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

struct Judgement {
  bool outlier = false;
  double score = 0.0;  // detector-specific magnitude (z-score / distance)
};

class Detector {
 public:
  virtual ~Detector() = default;
  // Feeds the next observed value (missing windows are simply not fed).
  virtual Judgement update(double value) = 0;
  // Fast path for long runs of an identical value: appends `count`
  // repetitions to the history without computing judgements. Signal series
  // are constant in the vast majority of windows, so callers batch those
  // windows and only pay for judgement when the value moves.
  virtual void backfill(double value, std::size_t count) = 0;
  // Fresh detector with the same configuration.
  virtual std::unique_ptr<Detector> clone_config() const = 0;
  // Drops all state, keeping configuration.
  virtual void reset() = 0;

  virtual std::size_t history_size() const = 0;

  // Checkpoint support: dynamic state only (configuration is supplied by
  // the owner at construction, exactly as in a fresh run). A loaded
  // detector judges subsequent observations bit-identically.
  virtual void save_state(store::Encoder& enc) const = 0;
  virtual void load_state(store::Decoder& dec) = 0;
};

// Shared helpers for the detectors' history-ring state. The byte format
// (u64 count + f64 values in order) is unchanged from the deque-backed
// representation these replaced, so existing snapshots load as-is.
void save_ring(store::Encoder& enc, const Ring& values);
void load_ring(store::Decoder& dec, Ring& values);

// Modified z-score: M = 0.6745 (x - median) / MAD, outlier when |M| exceeds
// the threshold (3.5 by convention). When the MAD degenerates to zero the
// mean absolute deviation fallback from Iglewicz & Hoaglin is used.
struct ZScoreParams {
  double threshold = 3.5;
  std::size_t min_history = 20;
  std::size_t max_history = 96;
  bool drop_outliers_from_history = true;
  // Outliers must also deviate from the median by at least this much. For
  // ratio series built from small per-window samples the MAD degenerates
  // toward zero and routine binomial wobble would otherwise produce huge
  // z-scores; a real path change moves the ratio by a large step.
  double min_abs_deviation = 0.0;
};

class ModifiedZScoreDetector final : public Detector {
 public:
  explicit ModifiedZScoreDetector(const ZScoreParams& params = {})
      : params_(params), history_(params.max_history) {}

  Judgement update(double value) override;
  void backfill(double value, std::size_t count) override;
  std::unique_ptr<Detector> clone_config() const override {
    return std::make_unique<ModifiedZScoreDetector>(params_);
  }
  void reset() override { history_.clear(); }
  std::size_t history_size() const override { return history_.size(); }
  void save_state(store::Encoder& enc) const override {
    save_ring(enc, history_);
  }
  void load_state(store::Decoder& dec) override {
    load_ring(dec, history_);
  }

 private:
  ZScoreParams params_;
  Ring history_;
};

// Bitmap anomaly detection: SAX-discretize the series, build chaos-game
// bitmaps of subword frequencies over a lag (past) and lead (recent)
// window, and score the current point by the normalized squared distance
// between the two bitmaps. An observation is an outlier when its score
// exceeds mean + threshold_sigmas * stddev of previous scores.
struct BitmapParams {
  std::size_t alphabet = 4;      // SAX symbols (fixed breakpoints for N(0,1))
  std::size_t word_length = 2;   // subword size -> alphabet^word bitmap cells
  std::size_t lag_window = 32;   // model of "normal" behaviour
  std::size_t lead_window = 8;   // recent behaviour under test
  double threshold_sigmas = 3.0;
  std::size_t min_history = 20;
  bool drop_outliers_from_history = true;
};

class BitmapDetector final : public Detector {
 public:
  explicit BitmapDetector(const BitmapParams& params = {});

  Judgement update(double value) override;
  void backfill(double value, std::size_t count) override;
  std::unique_ptr<Detector> clone_config() const override {
    return std::make_unique<BitmapDetector>(params_);
  }
  void reset() override {
    values_.clear();
    scores_.clear();
  }
  std::size_t history_size() const override { return values_.size(); }
  void save_state(store::Encoder& enc) const override {
    save_ring(enc, values_);
    save_ring(enc, scores_);
  }
  void load_state(store::Decoder& dec) override {
    load_ring(dec, values_);
    load_ring(dec, scores_);
  }

  // Retained past anomaly scores for the adaptive threshold.
  static constexpr std::size_t kScoreHistoryCap = 128;

 private:
  int discretize(double value) const;
  double bitmap_distance() const;

  BitmapParams params_;
  Ring values_;   // lag + lead raw values (outliers dropped)
  Ring scores_;   // past anomaly scores for thresholding
};

enum class DetectorKind : std::uint8_t { kBitmap, kModifiedZScore };

std::unique_ptr<Detector> make_detector(DetectorKind kind);

}  // namespace rrr::detect
