// Windowed signal series on top of the detectors.
//
// Two concerns live here. First, signal series are constant in almost every
// window (routes rarely change), so `LazySeries` run-length-compresses the
// constant stretches: a monitor only touches a series in windows where its
// value could have moved, and gaps are reconstructed according to a gap
// policy (carry the last value, fill zeroes, or treat as missing).
//
// Second, public-traceroute series have wildly varying densities per
// subpath. §4.2.1 requires at least 20 consecutive windows with data and
// picks the smallest window duration (15 minutes to 24 hours) achieving
// that; `AdaptiveRatioSeries` implements exactly that escalation.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "detect/detector.h"

namespace rrr::detect {

enum class GapPolicy : std::uint8_t {
  kCarryLast,  // value persists through unfed windows (standing BGP routes)
  kZero,       // unfed windows are zeroes (update counts)
  kMissing,    // unfed windows carry no information (sparse traceroutes)
};

class LazySeries {
 public:
  LazySeries(std::unique_ptr<Detector> detector, GapPolicy gap)
      : detector_(std::move(detector)), gap_(gap) {}

  // Feeds the value for `window`; windows must be fed in increasing order.
  // Returns the detector's judgement of this value (never of gap filler).
  Judgement feed(std::int64_t window, double value);

  // Initializes the series as if `value` had been observed for `history`
  // windows ending at `window` (monitoring data predates the watch: §5
  // starts BGP collection two days before the corpus).
  void seed(std::int64_t window, double value, std::size_t history) {
    detector_->backfill(value, history);
    last_window_ = window;
    last_value_ = value;
    has_last_ = true;
  }

  bool has_last() const { return has_last_; }
  double last_value() const { return last_value_; }
  std::int64_t last_window() const { return last_window_; }
  std::size_t history_size() const { return detector_->history_size(); }

  // Checkpoint support: dynamic state only. The owner reconstructs the
  // series with its usual detector/gap configuration, then loads.
  void save_state(store::Encoder& enc) const {
    detector_->save_state(enc);
    enc.i64(last_window_);
    enc.f64(last_value_);
    enc.boolean(has_last_);
  }
  void load_state(store::Decoder& dec) {
    detector_->load_state(dec);
    last_window_ = dec.i64();
    last_value_ = dec.f64();
    has_last_ = dec.boolean();
  }

 private:
  std::unique_ptr<Detector> detector_;
  GapPolicy gap_;
  std::int64_t last_window_ = std::numeric_limits<std::int64_t>::min();
  double last_value_ = 0.0;
  bool has_last_ = false;
};

// One closed aggregate window of an adaptive ratio series.
struct ClosedRatioWindow {
  std::int64_t aggregate_window = 0;  // in units of `multiplier` base windows
  std::int64_t multiplier = 1;        // base windows per aggregate window
  std::int64_t intersect = 0;         // denominator observed in the window
  double ratio = 0.0;
  Judgement judgement;
};

class AdaptiveRatioSeries {
 public:
  // `prototype` supplies detector configuration; `max_multiplier` caps the
  // window escalation (96 base windows of 15 min = 24 h, the paper's cap).
  AdaptiveRatioSeries(const Detector& prototype,
                      std::int64_t max_multiplier = 96)
      : detector_(prototype.clone_config()), max_multiplier_(max_multiplier) {}

  // Accumulates counts observed in `base_window`.
  void add(std::int64_t base_window, std::int64_t match,
           std::int64_t intersect);

  // Closes every aggregate window that ends at or before `through` (in base
  // windows), escalating the window size while the series cannot sustain 20
  // consecutive populated windows. Emits judgements for populated windows
  // once armed.
  std::vector<ClosedRatioWindow> close_through(std::int64_t through);

  std::int64_t multiplier() const { return multiplier_; }
  bool armed() const { return armed_; }
  bool dormant() const { return dormant_; }
  // Most recently closed populated ratio (for revocation checks).
  double last_ratio() const { return last_ratio_; }
  bool has_ratio() const { return has_ratio_; }

  static constexpr std::int64_t kMinConsecutive = 20;

  // Checkpoint support: dynamic state only (max_multiplier_ is
  // configuration, re-supplied at construction).
  void save_state(store::Encoder& enc) const {
    detector_->save_state(enc);
    enc.i64(multiplier_);
    enc.i64(consecutive_);
    enc.i64(misses_at_level_);
    enc.boolean(armed_);
    enc.boolean(dormant_);
    enc.i64(pending_num_);
    enc.i64(pending_den_);
    enc.i64(current_agg_);
    enc.i64(next_agg_);
    enc.boolean(next_agg_init_);
    enc.f64(last_ratio_);
    enc.boolean(has_ratio_);
  }
  void load_state(store::Decoder& dec) {
    detector_->load_state(dec);
    multiplier_ = dec.i64();
    consecutive_ = dec.i64();
    misses_at_level_ = dec.i64();
    armed_ = dec.boolean();
    dormant_ = dec.boolean();
    pending_num_ = dec.i64();
    pending_den_ = dec.i64();
    current_agg_ = dec.i64();
    next_agg_ = dec.i64();
    next_agg_init_ = dec.boolean();
    last_ratio_ = dec.f64();
    has_ratio_ = dec.boolean();
  }

 private:
  void escalate();

  std::unique_ptr<Detector> detector_;
  std::int64_t max_multiplier_;
  std::int64_t multiplier_ = 1;
  std::int64_t consecutive_ = 0;
  std::int64_t misses_at_level_ = 0;
  bool armed_ = false;
  // True when even the maximum window size cannot accumulate data; the
  // series stops escalating and waits for data silently.
  bool dormant_ = false;

  std::int64_t pending_num_ = 0;
  std::int64_t pending_den_ = 0;
  std::int64_t current_agg_ = std::numeric_limits<std::int64_t>::min();
  std::int64_t next_agg_ = 0;
  bool next_agg_init_ = false;
  double last_ratio_ = 0.0;
  bool has_ratio_ = false;
};

}  // namespace rrr::detect
