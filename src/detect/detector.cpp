#include "detect/detector.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace rrr::detect {
namespace {

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  std::nth_element(values.begin(), values.begin() + mid - 1,
                   values.begin() + mid);
  return (values[mid - 1] + upper) / 2.0;
}

}  // namespace

Judgement ModifiedZScoreDetector::update(double value) {
  Judgement judgement;
  if (history_.size() >= params_.min_history) {
    std::vector<double> h(history_.begin(), history_.end());
    double med = median_of(h);
    std::vector<double> abs_dev;
    abs_dev.reserve(h.size());
    for (double v : h) abs_dev.push_back(std::abs(v - med));
    double mad = median_of(abs_dev);
    double m = 0.0;
    if (mad > 1e-12) {
      m = 0.6745 * (value - med) / mad;
    } else {
      // Degenerate MAD: fall back to the mean absolute deviation.
      double mean_ad = 0.0;
      for (double d : abs_dev) mean_ad += d;
      mean_ad /= static_cast<double>(abs_dev.size());
      if (mean_ad > 1e-12) {
        m = (value - med) / (1.253314 * mean_ad);
      } else {
        // Perfectly constant history: any deviation is an outlier, signed
        // by its direction (one-sided consumers rely on the sign).
        m = value == med
                ? 0.0
                : (value < med ? -2.0 : 2.0) * params_.threshold;
      }
    }
    judgement.score = m;
    judgement.outlier = std::abs(m) > params_.threshold &&
                        std::abs(value - med) >= params_.min_abs_deviation;
  }
  if (!(judgement.outlier && params_.drop_outliers_from_history)) {
    history_.push_back(value);
    if (history_.size() > params_.max_history) history_.pop_front();
  }
  return judgement;
}

void ModifiedZScoreDetector::backfill(double value, std::size_t count) {
  count = std::min(count, params_.max_history);
  for (std::size_t i = 0; i < count; ++i) history_.push_back(value);
  while (history_.size() > params_.max_history) history_.pop_front();
}

BitmapDetector::BitmapDetector(const BitmapParams& params)
    : params_(params),
      values_(params.lag_window + params.lead_window),
      scores_(kScoreHistoryCap) {}

void BitmapDetector::backfill(double value, std::size_t count) {
  std::size_t cap = params_.lag_window + params_.lead_window;
  count = std::min(count, cap);
  for (std::size_t i = 0; i < count; ++i) values_.push_back(value);
  while (values_.size() > cap) values_.pop_front();
  // Constant stretches produce zero-distance scores; reflect a few of them
  // in the score history so the adaptive threshold stays calibrated.
  std::size_t score_fill = std::min<std::size_t>(count, 8);
  for (std::size_t i = 0; i < score_fill; ++i) {
    if (values_.size() >= params_.min_history) {
      scores_.push_back(bitmap_distance());
      if (scores_.size() > kScoreHistoryCap) scores_.pop_front();
    }
  }
}

int BitmapDetector::discretize(double value) const {
  // z-normalize against the retained window, then apply the standard SAX
  // breakpoints for a 4-symbol alphabet: -0.6745, 0, 0.6745.
  double mean = 0.0;
  for (double v : values_) mean += v;
  mean /= static_cast<double>(values_.size());
  double var = 0.0;
  for (double v : values_) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values_.size());
  double sd = std::sqrt(var);
  double z = sd > 1e-12 ? (value - mean) / sd : 0.0;
  if (params_.alphabet == 4) {
    if (z < -0.6745) return 0;
    if (z < 0.0) return 1;
    if (z < 0.6745) return 2;
    return 3;
  }
  // General equiprobable breakpoints via the probit approximation.
  double cdf = 0.5 * (1.0 + std::erf(z / std::sqrt(2.0)));
  int symbol = static_cast<int>(cdf * static_cast<double>(params_.alphabet));
  return std::clamp(symbol, 0, static_cast<int>(params_.alphabet) - 1);
}

double BitmapDetector::bitmap_distance() const {
  const std::size_t alphabet = params_.alphabet;
  const std::size_t word = params_.word_length;
  std::size_t cells = 1;
  for (std::size_t i = 0; i < word; ++i) cells *= alphabet;

  // Discretize the full retained window once.
  std::vector<int> symbols;
  symbols.reserve(values_.size());
  for (double v : values_) symbols.push_back(discretize(v));

  std::size_t lead = std::min(params_.lead_window, symbols.size());
  std::size_t lag_begin = 0;
  std::size_t lag_end = symbols.size() - lead;  // [lag_begin, lag_end)
  if (lag_end - lag_begin < word || lead < word) return 0.0;

  auto fill_bitmap = [&](std::size_t begin, std::size_t end) {
    std::vector<double> bitmap(cells, 0.0);
    double max_count = 0.0;
    for (std::size_t i = begin; i + word <= end; ++i) {
      std::size_t cell = 0;
      for (std::size_t j = 0; j < word; ++j) {
        cell = cell * alphabet + static_cast<std::size_t>(symbols[i + j]);
      }
      bitmap[cell] += 1.0;
      max_count = std::max(max_count, bitmap[cell]);
    }
    if (max_count > 0.0) {
      for (double& c : bitmap) c /= max_count;
    }
    return bitmap;
  };

  std::vector<double> lag_bitmap = fill_bitmap(lag_begin, lag_end);
  std::vector<double> lead_bitmap = fill_bitmap(lag_end, symbols.size());
  double distance = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    double d = lag_bitmap[i] - lead_bitmap[i];
    distance += d * d;
  }
  return distance;
}

Judgement BitmapDetector::update(double value) {
  Judgement judgement;
  values_.push_back(value);
  std::size_t cap = params_.lag_window + params_.lead_window;
  if (values_.size() > cap) values_.pop_front();

  if (values_.size() >= params_.min_history) {
    double score = bitmap_distance();
    judgement.score = score;
    if (scores_.size() >= 8) {
      double mean = 0.0;
      for (double s : scores_) mean += s;
      mean /= static_cast<double>(scores_.size());
      double var = 0.0;
      for (double s : scores_) var += (s - mean) * (s - mean);
      var /= static_cast<double>(scores_.size());
      double sd = std::sqrt(var);
      double threshold = mean + params_.threshold_sigmas * std::max(sd, 1e-6);
      judgement.outlier = score > threshold && score > 1e-9;
    }
    if (!judgement.outlier) {
      scores_.push_back(score);
      if (scores_.size() > kScoreHistoryCap) scores_.pop_front();
    }
  }

  if (judgement.outlier && params_.drop_outliers_from_history) {
    values_.pop_back();
  }
  return judgement;
}

void save_ring(store::Encoder& enc, const Ring& values) {
  enc.u64(values.size());
  for (double v : values) enc.f64(v);
}

void load_ring(store::Decoder& dec, Ring& values) {
  values.clear();
  std::uint64_t n = dec.u64();
  for (std::uint64_t i = 0; i < n; ++i) values.push_back(dec.f64());
}

std::unique_ptr<Detector> make_detector(DetectorKind kind) {
  if (kind == DetectorKind::kBitmap) {
    return std::make_unique<BitmapDetector>();
  }
  return std::make_unique<ModifiedZScoreDetector>();
}

}  // namespace rrr::detect
