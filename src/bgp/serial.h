// Binary checkpoint codec for BGP records. The io library's text format
// (io/serialize.h) is the archive/interchange representation; this one is
// the state store's internal framing payload, used for the engine's
// pending-record backlog. Field order is fixed — see store/serial.h for
// the determinism rationale.
#pragma once

#include "bgp/record.h"
#include "store/codec.h"

namespace rrr::bgp {

// Interned attributes are resolved to content on write and re-interned on
// read, so the byte format is identical to the pre-interning one and never
// leaks intern-id values (which are free to differ across runs). The
// `canonical_path` stamp is deliberately not stored: a loaded backlog
// re-canonicalizes through the table view's own memo.
inline void put_record(store::Encoder& enc, const BgpRecord& record) {
  store::put(enc, record.time);
  enc.u8(static_cast<std::uint8_t>(record.type));
  enc.u32(record.vp);
  store::put(enc, record.peer_asn);
  store::put(enc, record.peer_ip);
  enc.str(record.collector.str());
  store::put(enc, record.prefix);
  store::put(enc, record.as_path);
  store::put(enc, record.communities);
}

inline BgpRecord get_record(store::Decoder& dec) {
  BgpRecord record;
  record.time = store::get_time(dec);
  record.type = static_cast<RecordType>(dec.u8());
  record.vp = dec.u32();
  record.peer_asn = store::get_asn(dec);
  record.peer_ip = store::get_ipv4(dec);
  record.collector = dec.str();
  record.prefix = store::get_prefix(dec);
  record.as_path = store::get_as_path(dec);
  record.communities = store::get_community_set(dec);
  return record;
}

}  // namespace rrr::bgp
