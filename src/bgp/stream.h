// A BGPStream-like pull interface over record sources, with the filter
// vocabulary libBGPStream exposes (time interval, collectors, prefixes,
// peers, element type).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bgp/record.h"
#include "netbase/prefix.h"

namespace rrr::bgp {

struct StreamFilter {
  std::optional<TimePoint> from;
  std::optional<TimePoint> until;  // exclusive
  std::vector<std::string> collectors;   // empty = all
  std::vector<Prefix> prefixes;          // match records covered by any
  std::vector<Asn> peer_asns;            // empty = all
  std::optional<RecordType> type;

  bool matches(const BgpRecord& record) const;
};

// Accumulates records (from the feed simulator or hand-built in tests) and
// replays them in timestamp order through an optional filter.
class BgpStream {
 public:
  void push(BgpRecord record);
  void push_batch(std::vector<BgpRecord> records);

  void set_filter(StreamFilter filter) { filter_ = std::move(filter); }
  const StreamFilter& filter() const { return filter_; }

  // Next matching record, or nullopt at end of stream. Records pushed after
  // the cursor passed their timestamp are still delivered (the stream sorts
  // lazily on first pull after a push), mirroring BGPStream's batching.
  // Already-delivered records are never re-sorted: a late push is merged
  // into the undelivered suffix only, so no record is skipped or delivered
  // twice by a push that lands "before" the cursor.
  std::optional<BgpRecord> next();

  // Restart iteration from the beginning. The whole stream is re-sorted on
  // the next pull, so a replay after late pushes delivers every record —
  // including ones pushed after the cursor had passed their timestamp — in
  // full timestamp order.
  void rewind() {
    cursor_ = 0;
    dirty_ = true;
  }

  std::size_t size() const { return records_.size(); }

 private:
  void ensure_sorted();

  std::vector<BgpRecord> records_;
  std::size_t cursor_ = 0;
  bool dirty_ = false;
  StreamFilter filter_;
};

}  // namespace rrr::bgp
