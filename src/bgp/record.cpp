#include "bgp/record.h"

#include <sstream>

namespace rrr::bgp {

const char* to_string(RecordType type) {
  switch (type) {
    case RecordType::kRibEntry:
      return "RIB";
    case RecordType::kAnnouncement:
      return "A";
    case RecordType::kWithdrawal:
      return "W";
  }
  return "?";
}

std::string BgpRecord::to_string() const {
  std::ostringstream out;
  out << "TIME: " << time.to_string() << "\n"
      << "TYPE: " << bgp::to_string(type) << "\n"
      << "FROM: " << peer_ip.to_string() << " " << peer_asn.to_string()
      << "\n";
  if (type != RecordType::kWithdrawal) {
    out << "ASPATH: " << rrr::to_string(as_path) << "\n";
    out << "COMMUNITY:";
    for (Community c : communities) out << " " << c.to_string();
    out << "\n";
    out << "ANNOUNCE: " << prefix.to_string() << "\n";
  } else {
    out << "WITHDRAW: " << prefix.to_string() << "\n";
  }
  return out.str();
}

}  // namespace rrr::bgp
