// The BGP feed simulator: renders control-plane changes as the update
// stream RouteViews/RIS collectors would expose.
//
// This is where the paper's key observation about BGP data is materialized:
// routers issue updates when they change *anything* about a route — not just
// the AS path. The feed emits:
//  * announcements with a new AS path (AS-level changes),
//  * announcements with the same path but different communities (§4.1.3),
//  * duplicate announcements — identical transitive attributes — when the
//    underlying egress/IGP situation changed (§4.1.4, Park et al.), with
//    probability decaying in the AS-hop distance between the VP and the
//    change site, and
//  * parrot duplicates unrelated to any change (noise).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "bgp/record.h"
#include "netbase/rng.h"
#include "routing/control_plane.h"

namespace rrr::bgp {

using routing::ControlPlane;
using topo::AsIndex;

struct FeedParams {
  // Fraction of candidate ASes hosting a collector peer.
  double vp_as_fraction = 0.2;
  double full_table_fraction = 0.84;
  // Probability that a VP adjacent to a border change (distance 0) emits a
  // duplicate update; decays by `duplicate_decay` per AS hop of distance.
  double duplicate_prob_adjacent = 0.9;
  double duplicate_decay = 0.45;
  // Probability of a duplicate when an event touched a link on the VP's
  // path but the canonical attributes did not change at all (MED-style
  // churn).
  double duplicate_prob_untouched = 0.06;
  // Update timestamp jitter: exponential mean in seconds, capped.
  double jitter_mean_seconds = 45.0;
  std::int64_t jitter_cap_seconds = 420;
  std::uint64_t seed = 7;
};

class FeedSimulator {
 public:
  // Chooses VPs among `candidate_ases` (typically tier-1/transit ASes) and
  // initializes attribute caches for `origins`.
  FeedSimulator(ControlPlane& control_plane, const FeedParams& params,
                const std::vector<AsIndex>& candidate_ases,
                const std::vector<AsIndex>& origins);

  const std::vector<VantagePoint>& vantage_points() const { return vps_; }

  // RIB snapshot of every (VP, origin prefix) at `t` (feed bootstrap).
  std::vector<BgpRecord> initial_rib(TimePoint t);

  // Applies one routing event's impact, returning the updates it provoked,
  // sorted by timestamp.
  std::vector<BgpRecord> on_event(const routing::Event& event,
                                  const ControlPlane::Impact& impact);

  // Ground-truth accessor for tests: the cached attributes for (vp, origin).
  const routing::RouteAttributes* cached_attributes(VpId vp,
                                                    AsIndex origin) const;

  struct Stats {
    std::int64_t candidates = 0;
    std::int64_t path_changes = 0;       // announcements with a new AS path
    std::int64_t community_changes = 0;  // same path, new communities
    std::int64_t duplicates = 0;         // identical attributes re-announced
    std::int64_t withdrawals = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Key {
    VpId vp;
    AsIndex origin;
    auto operator<=>(const Key&) const = default;
  };

  void emit_route(std::vector<BgpRecord>& out, const VantagePoint& vp,
                  AsIndex origin, const routing::RouteAttributes& attrs,
                  TimePoint t, RecordType type);
  TimePoint jittered(TimePoint t);
  void reindex(const Key& key, const routing::RouteAttributes& old_attrs,
               const routing::RouteAttributes& new_attrs);

  ControlPlane& cp_;
  FeedParams params_;
  Rng rng_;
  std::vector<VantagePoint> vps_;
  std::vector<AsIndex> origins_;
  std::map<AsIndex, std::vector<VpId>> vps_by_as_;
  std::map<Key, routing::RouteAttributes> cache_;
  // link -> keys whose cached crossings traverse it.
  std::map<topo::LinkId, std::set<Key>> by_link_;
  Stats stats_;
};

}  // namespace rrr::bgp
