// Consumer-side BGP table maintenance and feed preprocessing (§4.1.1).
//
// The paper initializes its BGP monitoring by maintaining per-vantage-point
// table views from BGPStream, excluding prefixes more specific than /24,
// stripping IXP route-server ASNs from paths, and finding the most specific
// prefix each VP advertises toward every monitored destination.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "bgp/record.h"
#include "netbase/intern.h"
#include "netbase/radix_trie.h"
#include "store/codec.h"

namespace rrr::bgp {

// §4.1.1: prefixes more specific than /24 generally do not propagate and
// may indicate misconfiguration or blackholing; exclude them.
bool acceptable_prefix(const Prefix& prefix);

// §4.1.1: remove IXP route-server ASNs so paths link IXP members directly.
// `sorted_ixp_asns` must be sorted ascending — the per-hop membership test
// is a binary search over a flat array (the per-record hot path; the old
// std::set walked a node-based tree per hop).
AsPath strip_ixp_asns(const AsPath& path,
                      const std::vector<Asn>& sorted_ixp_asns);

// Collapse prepending (consecutive identical ASNs) into a single hop.
AsPath collapse_prepending(const AsPath& path);

// Memoized raw-path → table-canonical-path (IXP-strip + prepend-collapse)
// id mapping. Most updates repeat a path already seen, so canonicalization
// amortizes to one hash lookup instead of two vector rebuilds per record.
//
// Single-writer: the cache has no locking. Each owner (an engine's serial
// feed boundary, a VpTableView's absorb writer) keeps its own instance.
// With an empty IXP list this memoizes plain prepend-collapse — the
// dispatch-path normalization.
class PathCanonicalizer {
 public:
  PathCanonicalizer() = default;
  explicit PathCanonicalizer(const std::set<Asn>& ixp_asns)
      : ixp_asns_(ixp_asns.begin(), ixp_asns.end()) {}

  PathId canonical(PathId raw);

  const std::vector<Asn>& ixp_asns() const { return ixp_asns_; }

 private:
  std::vector<Asn> ixp_asns_;  // sorted (std::set iteration order)
  std::unordered_map<PathId, PathId> cache_;
};

// The route a VP currently holds for a prefix. Interned: copying a route or
// comparing paths/community sets is integer work.
struct VpRoute {
  InternedPath path;  // already IXP-stripped and prepending-collapsed
  InternedCommunities communities;
  TimePoint updated;
};

// Maintains each vantage point's table from a stream of records.
//
// Concurrency: a VpTableView has no internal synchronization. The engines
// never expose one directly — they wrap two of them in a bgp::EpochTableView
// and hand readers the *published* buffer, which is immutable for the whole
// window close, while the absorb writer mutates the *shadow* buffer. A
// VpTableView is therefore either (a) the published epoch: read-only, safe
// from any thread, or (b) the shadow: owned by exactly one writer task, read
// by nobody. Standalone uses (tests, offline tools) may mutate one freely on
// a single thread.
class VpTableView {
 public:
  explicit VpTableView(std::set<Asn> ixp_asns = {}) : canon_(ixp_asns) {}

  // Applies one record (RIB entries and updates are treated alike; the
  // latest information wins). Records with unacceptable prefixes are
  // dropped; returns whether the record was applied.
  //
  // When `record.canonical_path` is stamped (the engines do it at the
  // serial feed boundary) the stored route is a pure id copy — no interner
  // write, no path rebuild; otherwise the view canonicalizes through its
  // own single-writer memo.
  bool apply(const BgpRecord& record);

  // Absorbs the first `count` records of `records` in order; returns how
  // many were applied. This is the once-per-window batch absorption of the
  // staleness engine: monitors dispatch against the pre-batch table (the
  // immutable start-of-window epoch shared across engine shards) while
  // EpochTableView::absorb advances the shadow copy here; the flip at the
  // window boundary is what makes the batch visible to readers.
  std::size_t apply_all(const std::vector<BgpRecord>& records,
                        std::size_t count);

  // The VP's route for the most specific prefix covering `ip`, if any.
  const VpRoute* route(VpId vp, Ipv4 ip) const;

  // §4.1.1: the most specific prefix VP `vp` advertises covering `ip`.
  std::optional<Prefix> most_specific_prefix(VpId vp, Ipv4 ip) const;

  // All VPs with at least one route installed.
  std::vector<VpId> vps() const;

  std::size_t route_count(VpId vp) const;

  // Checkpoint support. save_state writes one local dictionary section —
  // every distinct path / community set once, in first-appearance order —
  // followed by the routes as dictionary indices (VP ascending, prefixes in
  // trie order), so snapshot bytes are a pure function of table *content*
  // (global intern ids never reach the disk) and repeated attributes cost
  // four bytes per route. restore_route reinstalls one route verbatim (no
  // preprocessing — stored routes were already stripped/collapsed when
  // first applied).
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);
  void restore_route(VpId vp, const Prefix& prefix, VpRoute route);

 private:
  PathCanonicalizer canon_;
  std::map<VpId, RadixTrie<VpRoute>> tables_;
};

}  // namespace rrr::bgp
