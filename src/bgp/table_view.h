// Consumer-side BGP table maintenance and feed preprocessing (§4.1.1).
//
// The paper initializes its BGP monitoring by maintaining per-vantage-point
// table views from BGPStream, excluding prefixes more specific than /24,
// stripping IXP route-server ASNs from paths, and finding the most specific
// prefix each VP advertises toward every monitored destination.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bgp/record.h"
#include "netbase/radix_trie.h"
#include "store/codec.h"

namespace rrr::bgp {

// §4.1.1: prefixes more specific than /24 generally do not propagate and
// may indicate misconfiguration or blackholing; exclude them.
bool acceptable_prefix(const Prefix& prefix);

// §4.1.1: remove IXP route-server ASNs so paths link IXP members directly.
AsPath strip_ixp_asns(const AsPath& path, const std::set<Asn>& ixp_asns);

// Collapse prepending (consecutive identical ASNs) into a single hop.
AsPath collapse_prepending(const AsPath& path);

// The route a VP currently holds for a prefix.
struct VpRoute {
  AsPath path;  // already IXP-stripped and prepending-collapsed
  CommunitySet communities;
  TimePoint updated;
};

// Maintains each vantage point's table from a stream of records.
//
// Concurrency: a VpTableView has no internal synchronization. The engines
// never expose one directly — they wrap two of them in a bgp::EpochTableView
// and hand readers the *published* buffer, which is immutable for the whole
// window close, while the absorb writer mutates the *shadow* buffer. A
// VpTableView is therefore either (a) the published epoch: read-only, safe
// from any thread, or (b) the shadow: owned by exactly one writer task, read
// by nobody. Standalone uses (tests, offline tools) may mutate one freely on
// a single thread.
class VpTableView {
 public:
  explicit VpTableView(std::set<Asn> ixp_asns = {})
      : ixp_asns_(std::move(ixp_asns)) {}

  // Applies one record (RIB entries and updates are treated alike; the
  // latest information wins). Records with unacceptable prefixes are
  // dropped; returns whether the record was applied.
  bool apply(const BgpRecord& record);

  // Absorbs the first `count` records of `records` in order; returns how
  // many were applied. This is the once-per-window batch absorption of the
  // staleness engine: monitors dispatch against the pre-batch table (the
  // immutable start-of-window epoch shared across engine shards) while
  // EpochTableView::absorb advances the shadow copy here; the flip at the
  // window boundary is what makes the batch visible to readers.
  std::size_t apply_all(const std::vector<BgpRecord>& records,
                        std::size_t count);

  // The VP's route for the most specific prefix covering `ip`, if any.
  const VpRoute* route(VpId vp, Ipv4 ip) const;

  // §4.1.1: the most specific prefix VP `vp` advertises covering `ip`.
  std::optional<Prefix> most_specific_prefix(VpId vp, Ipv4 ip) const;

  // All VPs with at least one route installed.
  std::vector<VpId> vps() const;

  std::size_t route_count(VpId vp) const;

  // Checkpoint support. save_state enumerates every (vp, prefix, route) in
  // a deterministic order (VP ascending, prefixes in trie order);
  // restore_route reinstalls one saved route verbatim (no preprocessing —
  // stored routes were already stripped/collapsed when first applied).
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);
  void restore_route(VpId vp, const Prefix& prefix, VpRoute route);

 private:
  std::set<Asn> ixp_asns_;
  std::map<VpId, RadixTrie<VpRoute>> tables_;
};

}  // namespace rrr::bgp
