#include "bgp/feed.h"

#include <algorithm>

namespace rrr::bgp {
namespace {

// Index of the first position where the crossing lists differ, or -1 when
// equal (used for duplicate-probability distance decay).
int first_crossing_diff(const std::vector<topo::InterconnectId>& a,
                        const std::vector<topo::InterconnectId>& b) {
  std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return static_cast<int>(i);
  }
  if (a.size() != b.size()) return static_cast<int>(n);
  return -1;
}

}  // namespace

FeedSimulator::FeedSimulator(ControlPlane& control_plane,
                             const FeedParams& params,
                             const std::vector<AsIndex>& candidate_ases,
                             const std::vector<AsIndex>& origins)
    : cp_(control_plane),
      params_(params),
      rng_(Rng(params.seed).fork(0xFEED)),
      origins_(origins) {
  const topo::Topology& topology = cp_.topology();
  int collector_round_robin = 0;
  for (AsIndex as : candidate_ases) {
    if (!rng_.bernoulli(params_.vp_as_fraction)) continue;
    VantagePoint vp;
    vp.id = static_cast<VpId>(vps_.size());
    vp.as_index = as;
    vp.asn = topology.as_at(as).asn;
    // Peer address: an infrastructure address of the host AS.
    vp.peer_ip = Ipv4(topo::as_infra_block(as).last_address().value() -
                      vp.id % 16);
    vp.collector = (collector_round_robin++ % 2 == 0)
                       ? "route-views" + std::to_string(vp.id % 6)
                       : "rrc" + std::to_string(vp.id % 10);
    vp.full_table = rng_.bernoulli(params_.full_table_fraction);
    vps_by_as_[as].push_back(vp.id);
    vps_.push_back(std::move(vp));
  }
  // Warm attribute caches: partial-table VPs only cover a subset of origins
  // (they announce customer/peer routes only; approximated by sampling).
  for (const VantagePoint& vp : vps_) {
    for (AsIndex origin : origins_) {
      if (!vp.full_table && rng_.bernoulli(0.6)) continue;
      Key key{vp.id, origin};
      routing::RouteAttributes attrs = cp_.attributes(vp.as_index, origin);
      reindex(key, routing::RouteAttributes{}, attrs);
      cache_.emplace(key, std::move(attrs));
    }
  }
}

const routing::RouteAttributes* FeedSimulator::cached_attributes(
    VpId vp, AsIndex origin) const {
  auto it = cache_.find(Key{vp, origin});
  return it == cache_.end() ? nullptr : &it->second;
}

void FeedSimulator::reindex(const Key& key,
                            const routing::RouteAttributes& old_attrs,
                            const routing::RouteAttributes& new_attrs) {
  const topo::Topology& topology = cp_.topology();
  for (topo::InterconnectId ic : old_attrs.crossings) {
    by_link_[topology.interconnect_at(ic).link].erase(key);
  }
  for (topo::InterconnectId ic : new_attrs.crossings) {
    by_link_[topology.interconnect_at(ic).link].insert(key);
  }
}

TimePoint FeedSimulator::jittered(TimePoint t) {
  auto jitter = static_cast<std::int64_t>(
      rng_.exponential(1.0 / params_.jitter_mean_seconds));
  return t + std::min(jitter, params_.jitter_cap_seconds);
}

void FeedSimulator::emit_route(std::vector<BgpRecord>& out,
                               const VantagePoint& vp, AsIndex origin,
                               const routing::RouteAttributes& attrs,
                               TimePoint t, RecordType type) {
  const topo::Topology& topology = cp_.topology();
  for (const Prefix& prefix : topology.as_at(origin).originated) {
    BgpRecord record;
    record.time = t;
    record.type = type;
    record.vp = vp.id;
    record.peer_asn = vp.asn;
    record.peer_ip = vp.peer_ip;
    record.collector = vp.collector;
    record.prefix = prefix;
    if (type != RecordType::kWithdrawal) {
      record.as_path = attrs.path;
      record.communities = attrs.communities;
    }
    out.push_back(std::move(record));
  }
}

std::vector<BgpRecord> FeedSimulator::initial_rib(TimePoint t) {
  std::vector<BgpRecord> out;
  for (const auto& [key, attrs] : cache_) {
    if (!attrs.reachable()) continue;
    emit_route(out, vps_[key.vp], key.origin, attrs, t,
               RecordType::kRibEntry);
  }
  return out;
}

std::vector<BgpRecord> FeedSimulator::on_event(
    const routing::Event& event, const ControlPlane::Impact& impact) {
  std::vector<BgpRecord> out;

  // Parrot noise: re-announce the cached route unchanged.
  if (event.kind == routing::EventKind::kParrotUpdate) {
    auto vps_it = vps_by_as_.find(event.as);
    if (vps_it != vps_by_as_.end()) {
      for (VpId vp : vps_it->second) {
        auto it = cache_.find(Key{vp, event.origin});
        if (it != cache_.end() && it->second.reachable()) {
          emit_route(out, vps_[vp], event.origin, it->second,
                     jittered(event.time), RecordType::kAnnouncement);
        }
      }
    }
    return out;
  }

  // Candidate (vp, origin) pairs whose view may have changed.
  std::set<Key> candidates;
  for (const auto& [viewer, origin] : impact.as_route_changes) {
    auto vps_it = vps_by_as_.find(viewer);
    if (vps_it == vps_by_as_.end()) continue;
    for (VpId vp : vps_it->second) candidates.insert(Key{vp, origin});
  }
  for (topo::LinkId link : impact.touched_links) {
    auto it = by_link_.find(link);
    if (it == by_link_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  for (const auto& [as, origin] : impact.te_changes) {
    // Any cached route for `origin` whose path contains `as` may now carry
    // a different TE community.
    Asn asn = cp_.topology().as_at(as).asn;
    for (const auto& [key, attrs] : cache_) {
      if (key.origin == origin && contains(attrs.path, asn)) {
        candidates.insert(key);
      }
    }
  }

  for (const Key& key : candidates) {
    auto it = cache_.find(key);
    if (it == cache_.end()) continue;
    ++stats_.candidates;
    const routing::RouteAttributes old_attrs = it->second;
    routing::RouteAttributes new_attrs =
        cp_.attributes(vps_[key.vp].as_index, key.origin);

    if (new_attrs == old_attrs) {
      // Nothing visible changed, but if the event touched a link this VP's
      // route crosses, iBGP/MED churn may still leak a duplicate update.
      bool touches = false;
      for (topo::InterconnectId ic : old_attrs.crossings) {
        topo::LinkId l = cp_.topology().interconnect_at(ic).link;
        if (std::find(impact.touched_links.begin(),
                      impact.touched_links.end(),
                      l) != impact.touched_links.end()) {
          touches = true;
          break;
        }
      }
      if (touches && old_attrs.reachable() &&
          rng_.bernoulli(params_.duplicate_prob_untouched)) {
        ++stats_.duplicates;
        emit_route(out, vps_[key.vp], key.origin, old_attrs,
                   jittered(event.time), RecordType::kAnnouncement);
      }
      continue;
    }

    if (!new_attrs.reachable()) {
      ++stats_.withdrawals;
      emit_route(out, vps_[key.vp], key.origin, new_attrs,
                 jittered(event.time), RecordType::kWithdrawal);
    } else if (new_attrs.path != old_attrs.path ||
               new_attrs.communities != old_attrs.communities) {
      // Visible attribute change: always announced.
      if (new_attrs.path != old_attrs.path) {
        ++stats_.path_changes;
      } else {
        ++stats_.community_changes;
      }
      emit_route(out, vps_[key.vp], key.origin, new_attrs,
                 jittered(event.time), RecordType::kAnnouncement);
    } else {
      // Only the (invisible) crossings changed: duplicate update with
      // probability decaying in distance from the VP to the change site.
      int diff = first_crossing_diff(new_attrs.crossings,
                                     old_attrs.crossings);
      double p = params_.duplicate_prob_adjacent;
      for (int i = 0; i < diff; ++i) p *= params_.duplicate_decay;
      if (diff >= 0 && rng_.bernoulli(p)) {
        ++stats_.duplicates;
        emit_route(out, vps_[key.vp], key.origin, new_attrs,
                   jittered(event.time), RecordType::kAnnouncement);
      }
    }

    reindex(key, old_attrs, new_attrs);
    it->second = std::move(new_attrs);
  }

  std::sort(out.begin(), out.end(),
            [](const BgpRecord& a, const BgpRecord& b) {
              return a.time < b.time;
            });
  return out;
}

}  // namespace rrr::bgp
