// BGP record types modeled on libBGPStream's elem interface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/asn.h"
#include "netbase/community.h"
#include "netbase/intern.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"
#include "netbase/time.h"

namespace rrr::bgp {

using VpId = std::uint32_t;
inline constexpr VpId kNoVp = 0xFFFFFFFFu;

enum class RecordType : std::uint8_t {
  kRibEntry,      // TABLE_DUMP_V2 snapshot entry
  kAnnouncement,  // UPDATE announce
  kWithdrawal,    // UPDATE withdraw
};

const char* to_string(RecordType type);

// One BGP element as a collector exposes it: who said it (peer), when, and
// the route attributes. `vp` is a dense index assigned by the feed for fast
// per-VP bookkeeping (real BGPStream users derive it from peer address).
//
// Attributes are interned (netbase/intern.h): `as_path`, `communities`, and
// `collector` are 32-bit handles whose assignment interns and whose
// comparison is one integer compare, so copying a record around the backlog
// and epoch-table carryover buffers touches no heap.
struct BgpRecord {
  TimePoint time;
  RecordType type = RecordType::kAnnouncement;
  VpId vp = kNoVp;
  Asn peer_asn;
  Ipv4 peer_ip;
  InternedCollector collector;
  Prefix prefix;
  InternedPath as_path;  // empty for withdrawals
  InternedCommunities communities;
  // Table-canonical form of `as_path` (IXP-strip + prepend-collapse),
  // stamped by the engine's serial feed boundary so the epoch-table absorb
  // never interns on a pool thread. kInvalidInternId = not stamped; the
  // table view then canonicalizes on its own (single-writer) cache.
  PathId canonical_path = kInvalidInternId;

  // A human-readable dump in the style of the paper's Figure 3.
  std::string to_string() const;
};

// A BGP vantage point: a router peering with a route collector.
struct VantagePoint {
  VpId id = kNoVp;
  std::uint32_t as_index = 0;  // topo::AsIndex of the host AS
  Asn asn;
  Ipv4 peer_ip;
  InternedCollector collector;
  bool full_table = true;  // 84% of RouteViews/RIS peers send full tables
};

}  // namespace rrr::bgp
