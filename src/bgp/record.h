// BGP record types modeled on libBGPStream's elem interface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/asn.h"
#include "netbase/community.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"
#include "netbase/time.h"

namespace rrr::bgp {

using VpId = std::uint32_t;
inline constexpr VpId kNoVp = 0xFFFFFFFFu;

enum class RecordType : std::uint8_t {
  kRibEntry,      // TABLE_DUMP_V2 snapshot entry
  kAnnouncement,  // UPDATE announce
  kWithdrawal,    // UPDATE withdraw
};

const char* to_string(RecordType type);

// One BGP element as a collector exposes it: who said it (peer), when, and
// the route attributes. `vp` is a dense index assigned by the feed for fast
// per-VP bookkeeping (real BGPStream users derive it from peer address).
struct BgpRecord {
  TimePoint time;
  RecordType type = RecordType::kAnnouncement;
  VpId vp = kNoVp;
  Asn peer_asn;
  Ipv4 peer_ip;
  std::string collector;
  Prefix prefix;
  AsPath as_path;        // empty for withdrawals
  CommunitySet communities;

  // A human-readable dump in the style of the paper's Figure 3.
  std::string to_string() const;
};

// A BGP vantage point: a router peering with a route collector.
struct VantagePoint {
  VpId id = kNoVp;
  std::uint32_t as_index = 0;  // topo::AsIndex of the host AS
  Asn asn;
  Ipv4 peer_ip;
  std::string collector;
  bool full_table = true;  // 84% of RouteViews/RIS peers send full tables
};

}  // namespace rrr::bgp
