#include "bgp/stream.h"

#include <algorithm>

namespace rrr::bgp {

bool StreamFilter::matches(const BgpRecord& record) const {
  if (from && record.time < *from) return false;
  if (until && record.time >= *until) return false;
  if (type && record.type != *type) return false;
  if (!collectors.empty() &&
      std::find(collectors.begin(), collectors.end(), record.collector) ==
          collectors.end()) {
    return false;
  }
  if (!peer_asns.empty() &&
      std::find(peer_asns.begin(), peer_asns.end(), record.peer_asn) ==
          peer_asns.end()) {
    return false;
  }
  if (!prefixes.empty()) {
    bool any = false;
    for (const Prefix& p : prefixes) {
      if (p.covers(record.prefix)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

void BgpStream::push(BgpRecord record) {
  records_.push_back(std::move(record));
  dirty_ = true;
}

void BgpStream::push_batch(std::vector<BgpRecord> records) {
  for (BgpRecord& r : records) records_.push_back(std::move(r));
  dirty_ = true;
}

void BgpStream::ensure_sorted() {
  if (!dirty_) return;
  // Sort only the undelivered suffix: the prefix [0, cursor_) has already
  // been handed out, and re-sorting it would either hide a late push behind
  // the cursor or shift delivered records across it (double delivery).
  // rewind() resets the cursor AND marks the stream dirty, so a replay sees
  // one full-stream sort.
  std::stable_sort(records_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                   records_.end(),
                   [](const BgpRecord& a, const BgpRecord& b) {
                     return a.time < b.time;
                   });
  dirty_ = false;
}

std::optional<BgpRecord> BgpStream::next() {
  ensure_sorted();
  while (cursor_ < records_.size()) {
    const BgpRecord& record = records_[cursor_++];
    if (filter_.matches(record)) return record;
  }
  return std::nullopt;
}

}  // namespace rrr::bgp
