#include "bgp/stream.h"

#include <algorithm>

namespace rrr::bgp {

bool StreamFilter::matches(const BgpRecord& record) const {
  if (from && record.time < *from) return false;
  if (until && record.time >= *until) return false;
  if (type && record.type != *type) return false;
  if (!collectors.empty() &&
      std::find(collectors.begin(), collectors.end(), record.collector) ==
          collectors.end()) {
    return false;
  }
  if (!peer_asns.empty() &&
      std::find(peer_asns.begin(), peer_asns.end(), record.peer_asn) ==
          peer_asns.end()) {
    return false;
  }
  if (!prefixes.empty()) {
    bool any = false;
    for (const Prefix& p : prefixes) {
      if (p.covers(record.prefix)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

void BgpStream::push(BgpRecord record) {
  records_.push_back(std::move(record));
  dirty_ = true;
}

void BgpStream::push_batch(std::vector<BgpRecord> records) {
  for (BgpRecord& r : records) records_.push_back(std::move(r));
  dirty_ = true;
}

void BgpStream::ensure_sorted() {
  if (!dirty_) return;
  std::stable_sort(records_.begin(), records_.end(),
                   [](const BgpRecord& a, const BgpRecord& b) {
                     return a.time < b.time;
                   });
  dirty_ = false;
}

std::optional<BgpRecord> BgpStream::next() {
  ensure_sorted();
  while (cursor_ < records_.size()) {
    const BgpRecord& record = records_[cursor_++];
    if (filter_.matches(record)) return record;
  }
  return std::nullopt;
}

}  // namespace rrr::bgp
