#include "bgp/table_view.h"

#include <algorithm>

namespace rrr::bgp {

bool acceptable_prefix(const Prefix& prefix) { return prefix.length() <= 24; }

AsPath strip_ixp_asns(const AsPath& path,
                      const std::vector<Asn>& sorted_ixp_asns) {
  AsPath out;
  out.reserve(path.size());
  for (Asn asn : path) {
    if (!std::binary_search(sorted_ixp_asns.begin(), sorted_ixp_asns.end(),
                            asn)) {
      out.push_back(asn);
    }
  }
  return out;
}

AsPath collapse_prepending(const AsPath& path) {
  AsPath out;
  out.reserve(path.size());
  for (Asn asn : path) {
    if (out.empty() || out.back() != asn) out.push_back(asn);
  }
  return out;
}

PathId PathCanonicalizer::canonical(PathId raw) {
  auto it = cache_.find(raw);
  if (it != cache_.end()) return it->second;
  const AsPath& path = Interner::global().path(raw);
  PathId id = Interner::global().path_id(
      collapse_prepending(strip_ixp_asns(path, ixp_asns_)));
  cache_.emplace(raw, id);
  return id;
}

bool VpTableView::apply(const BgpRecord& record) {
  if (!acceptable_prefix(record.prefix)) return false;
  RadixTrie<VpRoute>& table = tables_[record.vp];
  if (record.type == RecordType::kWithdrawal) {
    return table.erase(record.prefix);
  }
  VpRoute route;
  route.path = InternedPath::from_id(record.canonical_path != kInvalidInternId
                                         ? record.canonical_path
                                         : canon_.canonical(record.as_path.id()));
  route.communities = record.communities;
  route.updated = record.time;
  table.insert(record.prefix, std::move(route));
  return true;
}

std::size_t VpTableView::apply_all(const std::vector<BgpRecord>& records,
                                   std::size_t count) {
  std::size_t applied = 0;
  for (std::size_t i = 0; i < count && i < records.size(); ++i) {
    if (apply(records[i])) ++applied;
  }
  return applied;
}

const VpRoute* VpTableView::route(VpId vp, Ipv4 ip) const {
  auto it = tables_.find(vp);
  if (it == tables_.end()) return nullptr;
  return it->second.lookup(ip);
}

std::optional<Prefix> VpTableView::most_specific_prefix(VpId vp,
                                                        Ipv4 ip) const {
  auto it = tables_.find(vp);
  if (it == tables_.end()) return std::nullopt;
  auto match = it->second.lookup_match(ip);
  if (!match) return std::nullopt;
  return match->prefix;
}

std::vector<VpId> VpTableView::vps() const {
  std::vector<VpId> out;
  out.reserve(tables_.size());
  for (const auto& [vp, table] : tables_) {
    if (table.size() > 0) out.push_back(vp);
  }
  return out;
}

std::size_t VpTableView::route_count(VpId vp) const {
  auto it = tables_.find(vp);
  return it == tables_.end() ? 0 : it->second.size();
}

void VpTableView::save_state(store::Encoder& enc) const {
  // Pass 1: collect the distinct attribute ids in first-appearance order
  // (VP ascending, prefixes in trie order — the same walk pass 2 takes), so
  // the local indices, and therefore the snapshot bytes, depend only on
  // table content, never on global intern-id assignment history.
  std::vector<PathId> dict_paths;
  std::vector<CommSetId> dict_comms;
  std::unordered_map<PathId, std::uint32_t> path_index;
  std::unordered_map<CommSetId, std::uint32_t> comm_index;
  for (const auto& [vp, table] : tables_) {
    table.for_each([&](const Prefix&, const VpRoute& route) {
      if (path_index.try_emplace(route.path.id(),
                                 static_cast<std::uint32_t>(dict_paths.size()))
              .second) {
        dict_paths.push_back(route.path.id());
      }
      if (comm_index.try_emplace(route.communities.id(),
                                 static_cast<std::uint32_t>(dict_comms.size()))
              .second) {
        dict_comms.push_back(route.communities.id());
      }
    });
  }
  const Interner& interner = Interner::global();
  enc.u32(static_cast<std::uint32_t>(dict_paths.size()));
  for (PathId id : dict_paths) store::put(enc, interner.path(id));
  enc.u32(static_cast<std::uint32_t>(dict_comms.size()));
  for (CommSetId id : dict_comms) store::put(enc, interner.commset(id));

  enc.u64(tables_.size());
  for (const auto& [vp, table] : tables_) {
    enc.u32(vp);
    enc.u64(table.size());
    table.for_each([&](const Prefix& prefix, const VpRoute& route) {
      store::put(enc, prefix);
      enc.u32(path_index.at(route.path.id()));
      enc.u32(comm_index.at(route.communities.id()));
      store::put(enc, route.updated);
    });
  }
}

void VpTableView::load_state(store::Decoder& dec) {
  tables_.clear();
  std::vector<InternedPath> dict_paths;
  std::uint32_t path_count = dec.u32();
  dict_paths.reserve(path_count);
  for (std::uint32_t i = 0; i < path_count; ++i) {
    dict_paths.emplace_back(store::get_as_path(dec));
  }
  std::vector<InternedCommunities> dict_comms;
  std::uint32_t comm_count = dec.u32();
  dict_comms.reserve(comm_count);
  for (std::uint32_t i = 0; i < comm_count; ++i) {
    dict_comms.emplace_back(store::get_community_set(dec));
  }
  std::uint64_t vp_count = dec.u64();
  for (std::uint64_t i = 0; i < vp_count; ++i) {
    VpId vp = dec.u32();
    std::uint64_t routes = dec.u64();
    for (std::uint64_t j = 0; j < routes; ++j) {
      Prefix prefix = store::get_prefix(dec);
      std::uint32_t path_at = dec.u32();
      std::uint32_t comm_at = dec.u32();
      if (path_at >= dict_paths.size() || comm_at >= dict_comms.size()) {
        throw store::StoreError(
            store::StoreError::Kind::kCorrupt,
            "table snapshot route references a dictionary entry that does "
            "not exist");
      }
      VpRoute route;
      route.path = dict_paths[path_at];
      route.communities = dict_comms[comm_at];
      route.updated = store::get_time(dec);
      restore_route(vp, prefix, std::move(route));
    }
  }
}

void VpTableView::restore_route(VpId vp, const Prefix& prefix,
                                VpRoute route) {
  tables_[vp].insert(prefix, std::move(route));
}

}  // namespace rrr::bgp
