#include "bgp/table_view.h"

namespace rrr::bgp {

bool acceptable_prefix(const Prefix& prefix) { return prefix.length() <= 24; }

AsPath strip_ixp_asns(const AsPath& path, const std::set<Asn>& ixp_asns) {
  AsPath out;
  out.reserve(path.size());
  for (Asn asn : path) {
    if (!ixp_asns.contains(asn)) out.push_back(asn);
  }
  return out;
}

AsPath collapse_prepending(const AsPath& path) {
  AsPath out;
  out.reserve(path.size());
  for (Asn asn : path) {
    if (out.empty() || out.back() != asn) out.push_back(asn);
  }
  return out;
}

bool VpTableView::apply(const BgpRecord& record) {
  if (!acceptable_prefix(record.prefix)) return false;
  RadixTrie<VpRoute>& table = tables_[record.vp];
  if (record.type == RecordType::kWithdrawal) {
    return table.erase(record.prefix);
  }
  VpRoute route;
  route.path = collapse_prepending(strip_ixp_asns(record.as_path, ixp_asns_));
  route.communities = record.communities;
  route.updated = record.time;
  table.insert(record.prefix, std::move(route));
  return true;
}

std::size_t VpTableView::apply_all(const std::vector<BgpRecord>& records,
                                   std::size_t count) {
  std::size_t applied = 0;
  for (std::size_t i = 0; i < count && i < records.size(); ++i) {
    if (apply(records[i])) ++applied;
  }
  return applied;
}

const VpRoute* VpTableView::route(VpId vp, Ipv4 ip) const {
  auto it = tables_.find(vp);
  if (it == tables_.end()) return nullptr;
  return it->second.lookup(ip);
}

std::optional<Prefix> VpTableView::most_specific_prefix(VpId vp,
                                                        Ipv4 ip) const {
  auto it = tables_.find(vp);
  if (it == tables_.end()) return std::nullopt;
  auto match = it->second.lookup_match(ip);
  if (!match) return std::nullopt;
  return match->prefix;
}

std::vector<VpId> VpTableView::vps() const {
  std::vector<VpId> out;
  out.reserve(tables_.size());
  for (const auto& [vp, table] : tables_) {
    if (table.size() > 0) out.push_back(vp);
  }
  return out;
}

std::size_t VpTableView::route_count(VpId vp) const {
  auto it = tables_.find(vp);
  return it == tables_.end() ? 0 : it->second.size();
}

}  // namespace rrr::bgp
