#include "bgp/table_view.h"

namespace rrr::bgp {

bool acceptable_prefix(const Prefix& prefix) { return prefix.length() <= 24; }

AsPath strip_ixp_asns(const AsPath& path, const std::set<Asn>& ixp_asns) {
  AsPath out;
  out.reserve(path.size());
  for (Asn asn : path) {
    if (!ixp_asns.contains(asn)) out.push_back(asn);
  }
  return out;
}

AsPath collapse_prepending(const AsPath& path) {
  AsPath out;
  out.reserve(path.size());
  for (Asn asn : path) {
    if (out.empty() || out.back() != asn) out.push_back(asn);
  }
  return out;
}

bool VpTableView::apply(const BgpRecord& record) {
  if (!acceptable_prefix(record.prefix)) return false;
  RadixTrie<VpRoute>& table = tables_[record.vp];
  if (record.type == RecordType::kWithdrawal) {
    return table.erase(record.prefix);
  }
  VpRoute route;
  route.path = collapse_prepending(strip_ixp_asns(record.as_path, ixp_asns_));
  route.communities = record.communities;
  route.updated = record.time;
  table.insert(record.prefix, std::move(route));
  return true;
}

std::size_t VpTableView::apply_all(const std::vector<BgpRecord>& records,
                                   std::size_t count) {
  std::size_t applied = 0;
  for (std::size_t i = 0; i < count && i < records.size(); ++i) {
    if (apply(records[i])) ++applied;
  }
  return applied;
}

const VpRoute* VpTableView::route(VpId vp, Ipv4 ip) const {
  auto it = tables_.find(vp);
  if (it == tables_.end()) return nullptr;
  return it->second.lookup(ip);
}

std::optional<Prefix> VpTableView::most_specific_prefix(VpId vp,
                                                        Ipv4 ip) const {
  auto it = tables_.find(vp);
  if (it == tables_.end()) return std::nullopt;
  auto match = it->second.lookup_match(ip);
  if (!match) return std::nullopt;
  return match->prefix;
}

std::vector<VpId> VpTableView::vps() const {
  std::vector<VpId> out;
  out.reserve(tables_.size());
  for (const auto& [vp, table] : tables_) {
    if (table.size() > 0) out.push_back(vp);
  }
  return out;
}

std::size_t VpTableView::route_count(VpId vp) const {
  auto it = tables_.find(vp);
  return it == tables_.end() ? 0 : it->second.size();
}

void VpTableView::save_state(store::Encoder& enc) const {
  enc.u64(tables_.size());
  for (const auto& [vp, table] : tables_) {
    enc.u32(vp);
    enc.u64(table.size());
    table.for_each([&](const Prefix& prefix, const VpRoute& route) {
      store::put(enc, prefix);
      store::put(enc, route.path);
      store::put(enc, route.communities);
      store::put(enc, route.updated);
    });
  }
}

void VpTableView::load_state(store::Decoder& dec) {
  tables_.clear();
  std::uint64_t vp_count = dec.u64();
  for (std::uint64_t i = 0; i < vp_count; ++i) {
    VpId vp = dec.u32();
    std::uint64_t routes = dec.u64();
    for (std::uint64_t j = 0; j < routes; ++j) {
      Prefix prefix = store::get_prefix(dec);
      VpRoute route;
      route.path = store::get_as_path(dec);
      route.communities = store::get_community_set(dec);
      route.updated = store::get_time(dec);
      restore_route(vp, prefix, std::move(route));
    }
  }
}

void VpTableView::restore_route(VpId vp, const Prefix& prefix,
                                VpRoute route) {
  tables_[vp].insert(prefix, std::move(route));
}

}  // namespace rrr::bgp
