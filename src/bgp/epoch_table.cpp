#include "bgp/epoch_table.h"

#include <algorithm>

namespace rrr::bgp {

EpochTableView::EpochTableView(std::set<Asn> ixp_asns)
    : buffers_{VpTableView(ixp_asns), VpTableView(std::move(ixp_asns))},
      published_(&buffers_[0]),
      shadow_(&buffers_[1]) {}

bool EpochTableView::apply(const BgpRecord& record) {
  bool applied = published_.load(std::memory_order_relaxed)->apply(record);
  shadow_->apply(record);
  return applied;
}

std::size_t EpochTableView::absorb(const std::vector<BgpRecord>& records,
                                   std::size_t count) {
  // Replay the batch the shadow missed while it was published; only then is
  // it at the same state the published buffer had before this window.
  {
    obs::TraceSpan replay_span(tracer_, "carryover_replay", "table", -1,
                               "records",
                               static_cast<std::int64_t>(carryover_.size()));
    shadow_->apply_all(carryover_, carryover_.size());
  }
  obs::TraceSpan apply_span(tracer_, "absorb_apply", "table", -1, "records",
                            static_cast<std::int64_t>(count));
  std::size_t applied = shadow_->apply_all(records, count);
  carryover_.assign(records.begin(),
                    records.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(count, records.size())));
  return applied;
}

void EpochTableView::flip() {
  VpTableView* fresh = shadow_;
  shadow_ = published_.load(std::memory_order_relaxed);
  published_.store(fresh, std::memory_order_release);
  const std::uint64_t epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (tracer_ != nullptr) {
    tracer_->instant("epoch_flip", "table", -1, "epoch",
                     static_cast<std::int64_t>(epoch));
  }
}

void EpochTableView::save_state(store::Encoder& enc) const {
  enc.u64(epoch_.load(std::memory_order_acquire));
  published_.load(std::memory_order_acquire)->save_state(enc);
}

void EpochTableView::load_state(store::Decoder& dec) {
  epoch_.store(dec.u64(), std::memory_order_release);
  VpTableView* published = published_.load(std::memory_order_relaxed);
  published->load_state(dec);
  // Copy the published contents into the shadow by re-serializing: the
  // buffers must start content-equal so the next absorb() (whose carryover
  // is empty after a restore) advances both identically.
  store::Encoder copy;
  published->save_state(copy);
  store::Decoder again(copy.buffer());
  shadow_->load_state(again);
  carryover_.clear();
}

}  // namespace rrr::bgp
