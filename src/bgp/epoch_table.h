// EpochTableView: a double-buffered, epoch-flipped wrapper around
// VpTableView that lets the window-close pipeline overlap table absorption
// with monitor evaluation (ROADMAP "lock-free table view").
//
// Reader-writer protocol
// ----------------------
//   * Readers (shard dispatch, the BGP monitors via BgpContext, revocation
//     sweeps) always see the *published* epoch: an immutable VpTableView
//     reached through one atomic acquire-load per read() call. They never
//     observe a half-applied batch.
//   * Exactly one writer task per window calls absorb(), which mutates only
//     the *shadow* buffer: it first catches the shadow up with the previous
//     window's carryover batch, then applies the just-closed window's
//     records. absorb() may run concurrently with any number of readers —
//     the two buffers are disjoint objects.
//   * flip() publishes the shadow with a single atomic pointer swap
//     (release), bumping the epoch. The caller must have joined the writer
//     task first; flip() itself is a serial-section operation.
//
// After a flip the new shadow is exactly one batch behind the published
// buffer; the batch is retained in `carryover_` and replayed at the start
// of the next absorb() instead of being applied twice on the critical
// path. The published buffer therefore always holds the state through the
// last flipped window, and the shadow converges one absorb later.
//
// Both the pipelined and the serial engine schedules use the same
// absorb()/flip() pair — they differ only in *where* absorb runs (a pool
// task overlapping the monitor closes vs. inline in the serial section), so
// the buffer mechanics are exercised identically and the output is
// bit-identical either way (see docs/ARCHITECTURE.md, "Determinism
// contract").
#pragma once

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "bgp/table_view.h"
#include "obs/trace.h"

namespace rrr::bgp {

class EpochTableView {
 public:
  explicit EpochTableView(std::set<Asn> ixp_asns = {});

  // Not movable/copyable: readers hold the address of the published buffer
  // across phases.
  EpochTableView(const EpochTableView&) = delete;
  EpochTableView& operator=(const EpochTableView&) = delete;

  // The published (immutable) epoch. One acquire-load; safe from any thread
  // concurrently with absorb(). The reference is stable until the next
  // flip(), which only happens in serial sections between reader phases.
  const VpTableView& read() const {
    return *published_.load(std::memory_order_acquire);
  }

  // Number of flips so far; epoch N publishes the state through the N-th
  // absorbed batch.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // --- convenience readers (forward to the published epoch) ---
  // These keep BgpContext call sites (`context.table->route(...)`) source-
  // compatible with the plain VpTableView they used to borrow.
  const VpRoute* route(VpId vp, Ipv4 ip) const { return read().route(vp, ip); }
  std::optional<Prefix> most_specific_prefix(VpId vp, Ipv4 ip) const {
    return read().most_specific_prefix(vp, ip);
  }
  std::vector<VpId> vps() const { return read().vps(); }
  std::size_t route_count(VpId vp) const { return read().route_count(vp); }

  // Serial convenience (tests, bootstrap): applies one record to *both*
  // buffers so it is immediately visible to readers and survives future
  // flips. Must not run concurrently with absorb() or readers.
  bool apply(const BgpRecord& record);

  // Writer side: catches the shadow up with the previous batch, then
  // applies the first `count` records of `records` in order. Returns how
  // many of *this* batch were applied. Safe concurrently with read();
  // `records[0, count)` must stay unchanged until the writer is joined.
  std::size_t absorb(const std::vector<BgpRecord>& records, std::size_t count);

  // Publishes the shadow (atomic swap + epoch bump). Serial-section only:
  // the caller must have joined the absorb() writer, and no reader may be
  // mid-lookup in a parallel phase.
  void flip();

  // Checkpoint support (serial-section only). save_state captures the
  // published epoch's contents plus the epoch counter; the shadow and the
  // carryover batch are *not* stored — the restored view loads the
  // published contents into both buffers with an empty carryover, which is
  // behaviourally identical: a fresh run's next absorb() replays the
  // carryover into a shadow that is exactly that batch behind, so both
  // paths hand the next flip the same table (asserted mid-carryover by
  // tests/epoch_table_test.cpp).
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);

  // Attaches (or detaches, with nullptr) the flight recorder: absorb emits
  // carryover-replay and batch-apply spans on whatever thread runs the
  // writer task, flip emits an "epoch_flip" instant. Null-pointer cost
  // model as everywhere else in obs.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

 private:
  VpTableView buffers_[2];
  std::atomic<VpTableView*> published_;
  VpTableView* shadow_;
  // The batch absorbed into the shadow before the last flip(), replayed
  // into the new shadow at the start of the next absorb().
  std::vector<BgpRecord> carryover_;
  std::atomic<std::uint64_t> epoch_{0};
  obs::TraceRecorder* tracer_ = nullptr;
};

}  // namespace rrr::bgp
