#include "netbase/asn.h"

#include <algorithm>
#include <ostream>

namespace rrr {

std::ostream& operator<<(std::ostream& os, Asn asn) {
  return os << asn.to_string();
}

std::string to_string(const AsPath& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += std::to_string(path[i].number());
  }
  return out;
}

bool contains(const AsPath& haystack, Asn needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

int index_of(const AsPath& path, Asn needle) {
  auto it = std::find(path.begin(), path.end(), needle);
  return it == path.end() ? -1 : static_cast<int>(it - path.begin());
}

bool suffix_matches(const AsPath& path, std::size_t from_index,
                    const AsPath& reference) {
  if (from_index >= path.size()) return false;
  int ref_index = index_of(reference, path[from_index]);
  if (ref_index < 0) return false;
  std::size_t path_rest = path.size() - from_index;
  std::size_t ref_rest = reference.size() - static_cast<std::size_t>(ref_index);
  if (path_rest != ref_rest) return false;
  return std::equal(path.begin() + static_cast<std::ptrdiff_t>(from_index),
                    path.end(), reference.begin() + ref_index);
}

}  // namespace rrr
