#include "netbase/geo.h"

#include <cmath>

namespace rrr {
namespace {

constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
// Speed of light in fiber, one-way, km per millisecond.
constexpr double kFiberKmPerMs = 200.0;

}  // namespace

double distance_km(const GeoPoint& a, const GeoPoint& b) {
  double lat1 = a.latitude_deg * kDegToRad;
  double lat2 = b.latitude_deg * kDegToRad;
  double dlat = (b.latitude_deg - a.latitude_deg) * kDegToRad;
  double dlon = (b.longitude_deg - a.longitude_deg) * kDegToRad;
  double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                 std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double min_rtt_ms(const GeoPoint& a, const GeoPoint& b) {
  return 2.0 * distance_km(a, b) / kFiberKmPerMs;
}

double max_distance_km_for_rtt(double rtt_ms) {
  return rtt_ms * kFiberKmPerMs / 2.0;
}

}  // namespace rrr
