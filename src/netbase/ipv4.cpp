#include "netbase/ipv4.h"

#include <array>
#include <charconv>
#include <ostream>

namespace rrr {

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  const char* cursor = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
    auto [next, ec] = std::from_chars(cursor, end, octets[i]);
    if (ec != std::errc{} || next == cursor || octets[i] > 255) {
      return std::nullopt;
    }
    cursor = next;
  }
  if (cursor != end) return std::nullopt;
  return from_octets(static_cast<std::uint8_t>(octets[0]),
                     static_cast<std::uint8_t>(octets[1]),
                     static_cast<std::uint8_t>(octets[2]),
                     static_cast<std::uint8_t>(octets[3]));
}

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xFF);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Ipv4 ip) {
  return os << ip.to_string();
}

}  // namespace rrr
