// BGP community attribute value (RFC 1997 style "ASN:value").
//
// The paper's §4.1.3 monitors changes in the communities attached to routes:
// by convention the top 16 bits identify the AS that defines the community
// and the bottom 16 bits carry the AS-specific meaning (e.g. the PoP where a
// route was learned).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "netbase/asn.h"

namespace rrr {

class Community {
 public:
  constexpr Community() = default;
  constexpr explicit Community(std::uint32_t raw) : raw_(raw) {}
  constexpr Community(Asn definer, std::uint16_t value)
      : raw_((definer.number() << 16) | value) {}

  // Parses "13030:51701".
  static std::optional<Community> parse(std::string_view text);

  constexpr std::uint32_t raw() const { return raw_; }
  // The AS that defines this community (top 16 bits, by convention).
  constexpr Asn definer() const { return Asn(raw_ >> 16); }
  constexpr std::uint16_t value() const {
    return static_cast<std::uint16_t>(raw_ & 0xFFFF);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(Community, Community) = default;

 private:
  std::uint32_t raw_ = 0;
};

std::ostream& operator<<(std::ostream& os, Community community);

// Routes carry an ordered set of communities; set semantics make the
// add/remove diffing in the community monitor straightforward.
using CommunitySet = std::set<Community>;

// Communities in `after` but not `before` (added) and vice versa (removed),
// restricted to those defined by `definer` when it is valid.
struct CommunityDiff {
  CommunitySet added;
  CommunitySet removed;
  bool empty() const { return added.empty() && removed.empty(); }
};
CommunityDiff diff_communities(const CommunitySet& before,
                               const CommunitySet& after,
                               Asn definer = Asn());

}  // namespace rrr

template <>
struct std::hash<rrr::Community> {
  std::size_t operator()(rrr::Community c) const noexcept {
    return static_cast<std::size_t>(c.raw()) * 0x9E3779B97F4A7C15ULL;
  }
};
