// IPv4 address value type.
//
// A small strong type around a host-order 32-bit value. Used pervasively by
// the topology, routing, and traceroute layers; kept trivially copyable and
// hashable so it can be stored in flat containers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace rrr {

class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t host_order) : value_(host_order) {}

  // Builds an address from dotted-quad octets, most significant first.
  static constexpr Ipv4 from_octets(std::uint8_t a, std::uint8_t b,
                                    std::uint8_t c, std::uint8_t d) {
    return Ipv4((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  // Parses "a.b.c.d". Returns nullopt on malformed input (no exceptions: the
  // parser sits on hot data-ingest paths).
  static std::optional<Ipv4> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_zero() const { return value_ == 0; }

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4 ip);

}  // namespace rrr

template <>
struct std::hash<rrr::Ipv4> {
  std::size_t operator()(rrr::Ipv4 ip) const noexcept {
    // Fibonacci multiplicative scramble: addresses are assigned in dense
    // blocks by the simulator, so identity hashing would cluster buckets.
    return static_cast<std::size_t>(ip.value()) * 0x9E3779B97F4A7C15ULL;
  }
};
