#include "netbase/prefix.h"

#include <charconv>
#include <ostream>

namespace rrr {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto ip = Ipv4::parse(text.substr(0, slash));
  if (!ip) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  unsigned length = 0;
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(),
                      length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      length > 32) {
    return std::nullopt;
  }
  return Prefix(*ip, static_cast<std::uint8_t>(length));
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Prefix& prefix) {
  return os << prefix.to_string();
}

}  // namespace rrr
