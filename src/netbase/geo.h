// Geographic coordinates and distance, used by PoP placement, hot-potato
// egress selection, and the shortest-ping geolocation technique (Appendix A).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace rrr {

struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;

  friend constexpr auto operator<=>(const GeoPoint&, const GeoPoint&) =
      default;
};

// Great-circle distance in kilometres (haversine).
double distance_km(const GeoPoint& a, const GeoPoint& b);

// Lower bound on the round-trip time between two points over fiber, in
// milliseconds. Light in fiber travels ~200 km/ms one way; the paper's
// shortest-ping rule "RTT <= 1 ms implies <= 100 km" follows from this.
double min_rtt_ms(const GeoPoint& a, const GeoPoint& b);

// Distance implied by an RTT measurement: the farthest two points can be.
double max_distance_km_for_rtt(double rtt_ms);

}  // namespace rrr
