// Binary radix trie keyed by IPv4 prefixes, supporting longest-prefix match.
//
// This is the lookup structure behind IP-to-AS mapping (Appendix A) and the
// per-VP "most specific prefix" selection of §4.1.1. The trie is a plain
// (uncompressed) binary trie over at most 32 levels; nodes are stored in a
// contiguous arena with index links, which keeps memory local and avoids
// pointer ownership concerns entirely.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/prefix.h"

namespace rrr {

template <typename Value>
class RadixTrie {
 public:
  RadixTrie() { nodes_.push_back(Node{}); }

  // Inserts or overwrites the value at `prefix`.
  void insert(const Prefix& prefix, Value value) {
    std::uint32_t index = walk_to(prefix, /*create=*/true);
    Node& node = nodes_[index];
    if (!node.has_value) ++size_;
    node.has_value = true;
    node.value = std::move(value);
  }

  // Removes the value at exactly `prefix`. Returns whether a value existed.
  bool erase(const Prefix& prefix) {
    std::uint32_t index = walk_to(prefix, /*create=*/false);
    if (index == kInvalid || !nodes_[index].has_value) return false;
    nodes_[index].has_value = false;
    --size_;
    return true;
  }

  // Exact-match lookup.
  const Value* find(const Prefix& prefix) const {
    std::uint32_t index = walk_to(prefix, /*create=*/false);
    if (index == kInvalid || !nodes_[index].has_value) return nullptr;
    return &nodes_[index].value;
  }

  // Longest-prefix match for `ip`; nullptr when no covering prefix exists.
  const Value* lookup(Ipv4 ip) const {
    const Value* best = nullptr;
    std::uint32_t index = 0;
    std::uint32_t bits = ip.value();
    for (int depth = 0;; ++depth) {
      const Node& node = nodes_[index];
      if (node.has_value) best = &node.value;
      if (depth == 32) break;
      bool bit = (bits >> (31 - depth)) & 1u;
      std::uint32_t next = bit ? node.one : node.zero;
      if (next == kInvalid) break;
      index = next;
    }
    return best;
  }

  // Longest-prefix match returning the matched prefix as well.
  struct Match {
    Prefix prefix;
    const Value* value = nullptr;
  };
  std::optional<Match> lookup_match(Ipv4 ip) const {
    std::optional<Match> best;
    std::uint32_t index = 0;
    std::uint32_t bits = ip.value();
    for (int depth = 0;; ++depth) {
      const Node& node = nodes_[index];
      if (node.has_value) {
        best = Match{Prefix(ip, static_cast<std::uint8_t>(depth)),
                     &node.value};
      }
      if (depth == 32) break;
      bool bit = (bits >> (31 - depth)) & 1u;
      std::uint32_t next = bit ? node.one : node.zero;
      if (next == kInvalid) break;
      index = next;
    }
    return best;
  }

  // Visits every (prefix, value) pair in lexicographic order of prefixes.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for_each_from(0, 0u, 0, visit);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  struct Node {
    std::uint32_t zero = kInvalid;
    std::uint32_t one = kInvalid;
    bool has_value = false;
    Value value{};
  };

  std::uint32_t walk_to(const Prefix& prefix, bool create) {
    std::uint32_t index = 0;
    std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      bool bit = (bits >> (31 - depth)) & 1u;
      std::uint32_t next = bit ? nodes_[index].one : nodes_[index].zero;
      if (next == kInvalid) {
        if (!create) return kInvalid;
        next = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(Node{});
        // nodes_ may have reallocated: re-index.
        (bit ? nodes_[index].one : nodes_[index].zero) = next;
      }
      index = next;
    }
    return index;
  }

  std::uint32_t walk_to(const Prefix& prefix, bool create) const {
    // const overload never creates.
    (void)create;
    std::uint32_t index = 0;
    std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      bool bit = (bits >> (31 - depth)) & 1u;
      std::uint32_t next = bit ? nodes_[index].one : nodes_[index].zero;
      if (next == kInvalid) return kInvalid;
      index = next;
    }
    return index;
  }

  template <typename Visitor>
  void for_each_from(std::uint32_t index, std::uint32_t bits, int depth,
                     Visitor& visit) const {
    const Node& node = nodes_[index];
    if (node.has_value) {
      visit(Prefix(Ipv4(bits), static_cast<std::uint8_t>(depth)), node.value);
    }
    if (depth == 32) return;
    if (node.zero != kInvalid) {
      for_each_from(node.zero, bits, depth + 1, visit);
    }
    if (node.one != kInvalid) {
      for_each_from(node.one, bits | (1u << (31 - depth)), depth + 1, visit);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace rrr
