// Autonomous System Number strong type and AS-path alias.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace rrr {

class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t number) : number_(number) {}

  constexpr std::uint32_t number() const { return number_; }
  constexpr bool is_valid() const { return number_ != 0; }

  std::string to_string() const { return "AS" + std::to_string(number_); }

  friend constexpr auto operator<=>(Asn, Asn) = default;

 private:
  std::uint32_t number_ = 0;  // 0 = invalid / unmapped
};

std::ostream& operator<<(std::ostream& os, Asn asn);

// An AS-level path, nearest hop first (like a BGP AS_PATH read left to
// right: path.front() is the AS closest to the vantage point, path.back()
// the origin).
using AsPath = std::vector<Asn>;

// Renders "1299 2914 18747".
std::string to_string(const AsPath& path);

// True when `needle` occurs in `haystack`.
bool contains(const AsPath& haystack, Asn needle);

// Index of `needle` in `path`, or -1.
int index_of(const AsPath& path, Asn needle);

// True when the suffix of `path` starting at `from_index` equals the suffix
// of `reference` starting at the position where `reference` holds the same
// AS as `path[from_index]`.
bool suffix_matches(const AsPath& path, std::size_t from_index,
                    const AsPath& reference);

}  // namespace rrr

template <>
struct std::hash<rrr::Asn> {
  std::size_t operator()(rrr::Asn asn) const noexcept {
    return static_cast<std::size_t>(asn.number()) * 0x9E3779B97F4A7C15ULL;
  }
};
