// Deterministic random number generation.
//
// Every stochastic decision in the simulator flows from an explicit seed so
// that experiments are exactly reproducible. `Rng` wraps a mersenne twister
// with the handful of draws the codebase needs; `fork` derives independent
// sub-streams so modules do not perturb each other's sequences when the
// call order changes.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace rrr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  // Derives an independent generator; `salt` distinguishes sibling forks.
  Rng fork(std::uint64_t salt) const {
    // splitmix-style mixing of (seed, salt) into a fresh seed.
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

  // Derives the i-th shard stream for parallel work. Like fork() this is
  // const and does not touch the parent's engine state, so shards can be
  // pre-split before a parallel section and no Rng is ever shared across
  // threads. A distinct mixing domain keeps split(i) disjoint from fork(i):
  // modules that already fork by small salts cannot collide with shard ids.
  Rng split(std::uint64_t shard) const {
    std::uint64_t z = (seed_ ^ 0xA5A5A5A55A5A5A5AULL) +
                      0xD1B54A32D192ED03ULL * (shard + 1);
    z = (z ^ (z >> 32)) * 0xDABA0B6EB09322E3ULL;
    z = (z ^ (z >> 29)) * 0xC6A4A7935BD1E995ULL;
    return Rng(z ^ (z >> 32));
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  double exponential(double rate) {
    assert(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Pareto-ish heavy-tailed integer in [1, cap]: used for degree
  // distributions and burst sizes.
  std::int64_t heavy_tailed(double alpha, std::int64_t cap) {
    assert(alpha > 0.0 && cap >= 1);
    double u = uniform();
    double x = 1.0 / std::pow(1.0 - u, 1.0 / alpha);
    auto v = static_cast<std::int64_t>(x);
    return v < 1 ? 1 : (v > cap ? cap : v);
  }

  // Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights) {
    assert(!weights.empty());
    std::discrete_distribution<std::size_t> dist(weights.begin(),
                                                 weights.end());
    return dist(engine_);
  }

  // Uniformly chosen element index of a container size.
  std::size_t index(std::size_t size) {
    assert(size > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  // Exact generator state as a portable text blob (mt19937_64's standard
  // stream representation), for the checkpoint store. load_state restores
  // the draw sequence bit-identically.
  std::string save_state() const;
  void load_state(const std::string& state);

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

inline std::string Rng::save_state() const {
  std::ostringstream out;
  out << seed_ << ' ' << engine_;
  return out.str();
}

inline void Rng::load_state(const std::string& state) {
  std::istringstream in(state);
  in >> seed_ >> engine_;
}

// Stateless mixing hash used for per-flow load-balancer decisions: the same
// 5-tuple must map to the same diamond branch every time, independent of any
// generator state.
inline std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 33)) * 0xFF51AFD7ED558CCDULL;
  x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53ULL;
  return x ^ (x >> 33);
}

inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace rrr
