// Simulation time and measurement-window arithmetic.
//
// All libraries in this project run on simulated time: an integral number of
// seconds from an arbitrary epoch. Nothing reads the wall clock, keeping
// every experiment deterministic and replayable.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <string>

namespace rrr {

// Seconds since the simulation epoch.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t seconds) : seconds_(seconds) {}

  constexpr std::int64_t seconds() const { return seconds_; }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  constexpr TimePoint operator+(std::int64_t delta_seconds) const {
    return TimePoint(seconds_ + delta_seconds);
  }
  constexpr TimePoint operator-(std::int64_t delta_seconds) const {
    return TimePoint(seconds_ - delta_seconds);
  }
  constexpr std::int64_t operator-(TimePoint other) const {
    return seconds_ - other.seconds_;
  }

  // "d02 07:45:00" style rendering for logs and reports.
  std::string to_string() const;

 private:
  std::int64_t seconds_ = 0;
};

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;

// The paper's base signal-generation window: 15 minutes, the duration of a
// RouteViews dump cycle (§4.1.2 footnote 1).
inline constexpr std::int64_t kBaseWindowSeconds = 15 * kSecondsPerMinute;

// Maps time points onto consecutive fixed-duration windows [t_i, t_{i+1}).
class WindowClock {
 public:
  WindowClock(TimePoint origin, std::int64_t window_seconds)
      : origin_(origin), window_seconds_(window_seconds) {
    assert(window_seconds > 0);
  }

  std::int64_t window_seconds() const { return window_seconds_; }
  TimePoint origin() const { return origin_; }

  // Index of the window containing `t`; negative for t < origin.
  std::int64_t index_of(TimePoint t) const {
    std::int64_t delta = t - origin_;
    // Floor division so pre-origin times land in negative windows instead of
    // all collapsing into window 0.
    std::int64_t q = delta / window_seconds_;
    if (delta % window_seconds_ != 0 && delta < 0) --q;
    return q;
  }

  TimePoint window_start(std::int64_t index) const {
    return origin_ + index * window_seconds_;
  }
  TimePoint window_end(std::int64_t index) const {
    return window_start(index + 1);
  }

 private:
  TimePoint origin_;
  std::int64_t window_seconds_;
};

}  // namespace rrr
