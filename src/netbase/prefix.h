// IPv4 prefix (CIDR block) value type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ipv4.h"

namespace rrr {

class Prefix {
 public:
  constexpr Prefix() = default;

  // Constructs the prefix covering `ip` with the given length; host bits are
  // masked off so equal blocks compare equal regardless of the address used
  // to name them.
  constexpr Prefix(Ipv4 ip, std::uint8_t length)
      : network_(Ipv4(ip.value() & mask_for(length))), length_(length) {}

  // Parses "a.b.c.d/len". Returns nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  constexpr Ipv4 network() const { return network_; }
  constexpr std::uint8_t length() const { return length_; }

  // Bitmask with the top `length` bits set, e.g. /24 -> 0xFFFFFF00.
  static constexpr std::uint32_t mask_for(std::uint8_t length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }
  constexpr std::uint32_t mask() const { return mask_for(length_); }

  constexpr bool contains(Ipv4 ip) const {
    return (ip.value() & mask()) == network_.value();
  }
  // True when `other` is fully inside this block (including equality).
  constexpr bool covers(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.network_);
  }

  // First / last address of the block.
  constexpr Ipv4 first_address() const { return network_; }
  constexpr Ipv4 last_address() const {
    return Ipv4(network_.value() | ~mask());
  }
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4 network_;
  std::uint8_t length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Prefix& prefix);

}  // namespace rrr

template <>
struct std::hash<rrr::Prefix> {
  std::size_t operator()(const rrr::Prefix& p) const noexcept {
    std::uint64_t key =
        (std::uint64_t{p.network().value()} << 8) | p.length();
    return static_cast<std::size_t>(key * 0x9E3779B97F4A7C15ULL);
  }
};
