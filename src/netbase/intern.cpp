#include "netbase/intern.h"

#include <ostream>

#include "store/serial.h"

namespace rrr {

namespace {

Interner* default_instance() {
  static Interner instance;
  return &instance;
}

}  // namespace

// Constant-initialized to null so no cross-TU static-init order can observe
// an uninitialized pointer; global() falls back to the default singleton.
std::atomic<Interner*> Interner::current_{nullptr};

Interner& Interner::global() {
  Interner* p = current_.load(std::memory_order_acquire);
  return p != nullptr ? *p : *default_instance();
}

void Interner::save_state(store::Encoder& enc) const {
  const std::uint32_t paths = path_count();
  enc.u32(paths);
  for (std::uint32_t id = 0; id < paths; ++id) {
    const AsPath& p = path(id);
    enc.u32(static_cast<std::uint32_t>(p.size()));
    for (Asn asn : p) enc.u32(asn.number());
  }
  const std::uint32_t commsets = commset_count();
  enc.u32(commsets);
  for (std::uint32_t id = 0; id < commsets; ++id) {
    const CommunitySet& set = commset(id);
    enc.u32(static_cast<std::uint32_t>(set.size()));
    for (Community c : set) enc.u32(c.raw());
  }
  const std::uint32_t names = collector_count();
  enc.u32(names);
  for (std::uint32_t id = 0; id < names; ++id) enc.str(collector(id));
}

void Interner::load_state(store::Decoder& dec) {
  // Loading re-interns in id order, so the dump must target a fresh
  // instance: anything already interned would shift every subsequent id.
  if (path_count() != 1 || commset_count() != 1 || collector_count() != 1) {
    throw store::StoreError(store::StoreError::Kind::kCorrupt,
                            "interner dictionary loaded into a non-empty "
                            "instance");
  }
  auto expect_id = [](std::uint32_t want, std::uint32_t got) {
    if (want != got) {
      // A duplicate entry re-interns to an earlier id: the dump was not a
      // bijection, so the ids of everything after it would be shifted.
      throw store::StoreError(store::StoreError::Kind::kCorrupt,
                              "interner dictionary is not a bijection");
    }
  };
  const std::uint32_t paths = dec.u32();
  if (paths < 1) {
    throw store::StoreError(store::StoreError::Kind::kCorrupt,
                            "interner dictionary missing the empty path");
  }
  for (std::uint32_t id = 0; id < paths; ++id) {
    AsPath p;
    std::uint32_t hops = dec.u32();
    p.reserve(hops);
    for (std::uint32_t i = 0; i < hops; ++i) p.push_back(Asn(dec.u32()));
    expect_id(id, path_id(p));
  }
  const std::uint32_t commsets = dec.u32();
  if (commsets < 1) {
    throw store::StoreError(store::StoreError::Kind::kCorrupt,
                            "interner dictionary missing the empty set");
  }
  for (std::uint32_t id = 0; id < commsets; ++id) {
    CommunitySet set;
    std::uint32_t count = dec.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      if (!set.insert(Community(dec.u32())).second) {
        throw store::StoreError(store::StoreError::Kind::kCorrupt,
                                "interner community set holds duplicates");
      }
    }
    expect_id(id, commset_id(set));
  }
  const std::uint32_t names = dec.u32();
  if (names < 1) {
    throw store::StoreError(store::StoreError::Kind::kCorrupt,
                            "interner dictionary missing the empty collector");
  }
  for (std::uint32_t id = 0; id < names; ++id) {
    expect_id(id, collector_id(dec.str()));
  }
}

std::ostream& operator<<(std::ostream& os, const InternedPath& path) {
  return os << to_string(path.view());
}

std::ostream& operator<<(std::ostream& os, const InternedCollector& name) {
  return os << name.str();
}

}  // namespace rrr
