#include "netbase/community.h"

#include <charconv>
#include <ostream>

namespace rrr {

std::optional<Community> Community::parse(std::string_view text) {
  auto colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  unsigned definer = 0;
  unsigned value = 0;
  auto head = text.substr(0, colon);
  auto tail = text.substr(colon + 1);
  auto [p1, e1] = std::from_chars(head.data(), head.data() + head.size(),
                                  definer);
  auto [p2, e2] = std::from_chars(tail.data(), tail.data() + tail.size(),
                                  value);
  if (e1 != std::errc{} || e2 != std::errc{} ||
      p1 != head.data() + head.size() || p2 != tail.data() + tail.size() ||
      definer > 0xFFFF || value > 0xFFFF) {
    return std::nullopt;
  }
  return Community(Asn(definer), static_cast<std::uint16_t>(value));
}

std::string Community::to_string() const {
  return std::to_string(definer().number()) + ":" + std::to_string(value());
}

std::ostream& operator<<(std::ostream& os, Community community) {
  return os << community.to_string();
}

CommunityDiff diff_communities(const CommunitySet& before,
                               const CommunitySet& after, Asn definer) {
  CommunityDiff diff;
  auto relevant = [&](Community c) {
    return !definer.is_valid() || c.definer() == definer;
  };
  for (Community c : after) {
    if (relevant(c) && !before.contains(c)) diff.added.insert(c);
  }
  for (Community c : before) {
    if (relevant(c) && !after.contains(c)) diff.removed.insert(c);
  }
  return diff;
}

}  // namespace rrr
