// Global intern tables for the BGP ingest hot path.
//
// Real update feeds repeat a small dictionary: the same AS paths, community
// sets, and collector names arrive millions of times. Interning maps each
// distinct value to a dense 32-bit id so records, table routes, and monitor
// state carry one word instead of a heap-allocated vector/set/string, and
// equality in the monitors becomes an integer compare. The id space is
// append-only and ids are assigned in first-sight order, so as long as every
// *insert* happens on a serial path (the feed boundary, the absorb writer)
// the id→content dictionary is identical at every point of the
// (shards × threads × pipeline × fault) determinism grid — asserted by
// tests/determinism_test.cpp.
//
// Invariants:
//  * id equality ⇔ content equality (within one Interner instance);
//  * id 0 of every domain is the empty value ("" / {} / empty path);
//  * resolved references are stable forever — storage is chunked and
//    append-only, entries never move or die before the Interner does.
//
// Concurrency: resolution (id → content) is lock-free — one acquire-load of
// a chunk pointer. Content → id lookup takes a shared lock; only the first
// sight of a *new* value takes the exclusive lock, which is rare by design
// and, in the engine, confined to serial code (see DESIGN.md §12). Id
// *values* never appear in signals, semantic telemetry, or snapshot bytes;
// everything durable resolves to content first.
//
// Handles (InternedPath / InternedCommunities / InternedCollector) wrap an
// id with value semantics: constructing or assigning from content interns,
// comparing two handles compares ids, and an implicit conversion back to
// `const AsPath&` / `const CommunitySet&` / `const std::string&` keeps
// element-wise call sites compiling unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netbase/asn.h"
#include "netbase/community.h"

namespace rrr::store {
class Encoder;
class Decoder;
}  // namespace rrr::store

namespace rrr {

using PathId = std::uint32_t;
using CommSetId = std::uint32_t;
using CollectorId = std::uint32_t;

// Id 0 of every domain is the empty value.
inline constexpr std::uint32_t kEmptyInternId = 0;
// Sentinel for "no id assigned" (e.g. BgpRecord::canonical_path before the
// serial feed boundary stamps it). Never a valid id.
inline constexpr std::uint32_t kInvalidInternId = 0xFFFFFFFFu;

namespace detail {

struct PathHash {
  std::size_t operator()(const AsPath& path) const noexcept {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (Asn asn : path) {
      h ^= asn.number();
      h *= 0x100000001B3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct CommSetHash {
  std::size_t operator()(const CommunitySet& set) const noexcept {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (Community c : set) {
      h ^= c.raw();
      h *= 0x100000001B3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
struct StringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

// One intern domain: content→id map under a shared_mutex, id→content via a
// fixed two-level chunk table whose slots are published with release stores
// so resolution never takes the lock. Chunks are allocated on demand and
// never freed or moved, which is what makes `resolve()`'s returned reference
// stable for the Interner's lifetime.
template <class T, class Hash, class Eq = std::equal_to<T>>
class Domain {
 public:
  static constexpr std::size_t kChunkBits = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  // 4096 chunks × 1024 entries = 4M distinct values per domain; far above
  // any real feed dictionary, and hitting it is a hard error (not UB).
  static constexpr std::size_t kMaxChunks = 4096;

  Domain() { (void)intern(T{}); }  // id 0 = empty value

  template <class U>
  std::uint32_t intern(const U& value) {
    {
      std::shared_lock lock(mutex_);
      auto it = ids_.find(value);
      if (it != ids_.end()) return it->second;
    }
    std::unique_lock lock(mutex_);
    auto it = ids_.find(value);
    if (it != ids_.end()) return it->second;  // lost the race
    std::uint32_t id = size_.load(std::memory_order_relaxed);
    std::size_t chunk_index = id >> kChunkBits;
    if (chunk_index >= kMaxChunks) {
      throw std::length_error("intern domain exhausted (4M distinct values)");
    }
    T* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new T[kChunkSize];
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    chunk[id & (kChunkSize - 1)] = T(value);
    ids_.emplace(T(value), id);
    // Release so a reader that learns `id` through any synchronizing handoff
    // (or through this counter) also sees the entry bytes.
    size_.store(id + 1, std::memory_order_release);
    return id;
  }

  const T& resolve(std::uint32_t id) const {
    // Callers hold only valid ids (handles are constructed by interning);
    // the chunk pointer was published before the id escaped.
    return chunks_[id >> kChunkBits].load(std::memory_order_acquire)
        [id & (kChunkSize - 1)];
  }

  std::uint32_t size() const { return size_.load(std::memory_order_acquire); }

  ~Domain() {
    for (auto& slot : chunks_) {
      delete[] slot.load(std::memory_order_acquire);
    }
  }
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<T, std::uint32_t, Hash, Eq> ids_;
  std::atomic<T*> chunks_[kMaxChunks] = {};
  std::atomic<std::uint32_t> size_{0};
};

}  // namespace detail

class Interner {
 public:
  Interner() = default;

  // The process-wide instance every handle resolves against. Tests that
  // need a fresh id space swap it with ScopedInstance; production code and
  // the benches use the default singleton for the process lifetime.
  static Interner& global();

  // Swaps a fresh Interner in as the global instance for the scope's
  // lifetime (restores the previous one on destruction). Handles created
  // inside the scope must not outlive it. Not for concurrent use — intended
  // for test fixtures that assert id-assignment determinism.
  class ScopedInstance {
   public:
    ScopedInstance();
    ~ScopedInstance();
    ScopedInstance(const ScopedInstance&) = delete;
    ScopedInstance& operator=(const ScopedInstance&) = delete;
    Interner& get() { return *own_; }

   private:
    // Fully constructed before publication (see the constructor).
    std::unique_ptr<Interner> own_;
    Interner* prev_ = nullptr;
  };

  PathId path_id(const AsPath& path) { return paths_.intern(path); }
  CommSetId commset_id(const CommunitySet& set) { return commsets_.intern(set); }
  CollectorId collector_id(std::string_view name) {
    return collectors_.intern(name);
  }

  const AsPath& path(PathId id) const { return paths_.resolve(id); }
  const CommunitySet& commset(CommSetId id) const {
    return commsets_.resolve(id);
  }
  const std::string& collector(CollectorId id) const {
    return collectors_.resolve(id);
  }

  std::uint32_t path_count() const { return paths_.size(); }
  std::uint32_t commset_count() const { return commsets_.size(); }
  std::uint32_t collector_count() const { return collectors_.size(); }

  // Serializes the full dictionaries (content, in id order) as one section;
  // load re-interns into an empty instance and rejects a dump that is not a
  // bijection (duplicate content) or that targets a non-empty instance, so
  // ids always come back dense and first-sight ordered.
  void save_state(store::Encoder& enc) const;
  void load_state(store::Decoder& dec);

 private:
  static std::atomic<Interner*> current_;

  detail::Domain<AsPath, detail::PathHash> paths_;
  detail::Domain<CommunitySet, detail::CommSetHash> commsets_;
  detail::Domain<std::string, detail::StringHash, detail::StringEq>
      collectors_;
};

inline Interner::ScopedInstance::ScopedInstance()
    : own_(std::make_unique<Interner>()) {
  prev_ = current_.exchange(own_.get());
}

inline Interner::ScopedInstance::~ScopedInstance() { current_.store(prev_); }

// --- handles -------------------------------------------------------------

class InternedPath {
 public:
  InternedPath() = default;  // empty path (id 0)
  InternedPath(const AsPath& path)  // NOLINT(google-explicit-constructor)
      : id_(Interner::global().path_id(path)) {}
  static InternedPath from_id(PathId id) {
    InternedPath p;
    p.id_ = id;
    return p;
  }

  InternedPath& operator=(const AsPath& path) {
    id_ = Interner::global().path_id(path);
    return *this;
  }

  PathId id() const { return id_; }
  const AsPath& view() const { return Interner::global().path(id_); }
  operator const AsPath&() const {  // NOLINT(google-explicit-constructor)
    return view();
  }

  bool empty() const { return id_ == kEmptyInternId; }
  std::size_t size() const { return view().size(); }
  Asn operator[](std::size_t i) const { return view()[i]; }
  auto begin() const { return view().begin(); }
  auto end() const { return view().end(); }
  Asn front() const { return view().front(); }
  Asn back() const { return view().back(); }

  // Id compare: equal ids ⇔ equal contents (the interning invariant).
  friend bool operator==(const InternedPath& a, const InternedPath& b) {
    return a.id_ == b.id_;
  }
  friend bool operator==(const InternedPath& a, const AsPath& b) {
    return a.view() == b;
  }

 private:
  PathId id_ = kEmptyInternId;
};

std::ostream& operator<<(std::ostream& os, const InternedPath& path);

class InternedCommunities {
 public:
  InternedCommunities() = default;  // empty set (id 0)
  InternedCommunities(const CommunitySet& set)  // NOLINT
      : id_(Interner::global().commset_id(set)) {}
  static InternedCommunities from_id(CommSetId id) {
    InternedCommunities c;
    c.id_ = id;
    return c;
  }

  InternedCommunities& operator=(const CommunitySet& set) {
    id_ = Interner::global().commset_id(set);
    return *this;
  }

  CommSetId id() const { return id_; }
  const CommunitySet& view() const { return Interner::global().commset(id_); }
  operator const CommunitySet&() const { return view(); }  // NOLINT

  bool empty() const { return id_ == kEmptyInternId; }
  std::size_t size() const { return view().size(); }
  bool contains(Community c) const { return view().contains(c); }
  auto begin() const { return view().begin(); }
  auto end() const { return view().end(); }

  friend bool operator==(const InternedCommunities& a,
                         const InternedCommunities& b) {
    return a.id_ == b.id_;
  }
  friend bool operator==(const InternedCommunities& a, const CommunitySet& b) {
    return a.view() == b;
  }

 private:
  CommSetId id_ = kEmptyInternId;
};

class InternedCollector {
 public:
  InternedCollector() = default;  // "" (id 0)
  InternedCollector(std::string_view name)  // NOLINT
      : id_(Interner::global().collector_id(name)) {}

  InternedCollector& operator=(std::string_view name) {
    id_ = Interner::global().collector_id(name);
    return *this;
  }

  CollectorId id() const { return id_; }
  const std::string& str() const { return Interner::global().collector(id_); }
  operator const std::string&() const { return str(); }  // NOLINT
  std::string_view view() const { return str(); }

  bool empty() const { return id_ == kEmptyInternId; }

  friend bool operator==(const InternedCollector& a,
                         const InternedCollector& b) {
    return a.id_ == b.id_;
  }
  friend bool operator==(const InternedCollector& a, std::string_view b) {
    return a.view() == b;
  }

 private:
  CollectorId id_ = kEmptyInternId;
};

std::ostream& operator<<(std::ostream& os, const InternedCollector& name);

}  // namespace rrr
