#include "netbase/time.h"

#include <cstdio>

namespace rrr {

std::string TimePoint::to_string() const {
  std::int64_t s = seconds_;
  bool negative = s < 0;
  if (negative) s = -s;
  std::int64_t days = s / kSecondsPerDay;
  std::int64_t rem = s % kSecondsPerDay;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%sd%02lld %02lld:%02lld:%02lld",
                negative ? "-" : "", static_cast<long long>(days),
                static_cast<long long>(rem / kSecondsPerHour),
                static_cast<long long>((rem / kSecondsPerMinute) % 60),
                static_cast<long long>(rem % 60));
  return buf;
}

}  // namespace rrr
