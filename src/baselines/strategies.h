// Corpus-refresh strategies compared in §5.3: periodic round-robin
// traceroutes, Sibyl's corpus patching, and DTRACK's predictive
// change-detection probing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "baselines/oracle.h"
#include "netbase/rng.h"

namespace rrr::baselines {

// Shared per-path state: the last measured border path and the set of
// ground-truth-distinct states already credited as detected.
class CorpusTracker {
 public:
  CorpusTracker(const PathOracle& oracle, TimePoint t0);

  // Remeasures `path` at `t`: updates stored state; returns whether the
  // measurement revealed a change relative to the stored state.
  bool remeasure(std::size_t path, TimePoint t);

  const std::vector<std::uint64_t>& stored(std::size_t path) const {
    return stored_[path];
  }
  void overwrite(std::size_t path, std::vector<std::uint64_t> tokens,
                 TimePoint t) {
    stored_[path] = std::move(tokens);
    notify(path, t);
  }
  const PathOracle& oracle() const { return oracle_; }

  // Observer invoked whenever a strategy captures a change on a path
  // (measured or patched); the evaluation harness matches these against the
  // ground-truth change log.
  using ChangeCallback = std::function<void(std::size_t path, TimePoint t)>;
  void set_on_change(ChangeCallback callback) {
    on_change_ = std::move(callback);
  }

 private:
  void notify(std::size_t path, TimePoint t) {
    if (on_change_) on_change_(path, t);
  }

  const PathOracle& oracle_;
  std::vector<std::vector<std::uint64_t>> stored_;
  ChangeCallback on_change_;
};

// Periodic round-robin refresh (Ark / Atlas built-in campaign style).
class RoundRobinStrategy {
 public:
  RoundRobinStrategy(CorpusTracker& tracker, const ProbeBudget& budget)
      : tracker_(tracker), budget_(budget) {}

  // Advances to `now`, spending the accumulated budget on the next paths in
  // cyclic order.
  void advance(TimePoint now, EmulationStats& stats);

 private:
  CorpusTracker& tracker_;
  ProbeBudget budget_;
  double credit_ = 0.0;
  TimePoint last_{};
  bool started_ = false;
  std::size_t cursor_ = 0;
};

// Sibyl's patching (§5.3): round-robin measurements, but every observed
// change patches the other corpus paths that share the changed subpath. The
// emulation is optimistic, as in the paper: a patch is only applied when it
// matches ground truth, and wrong patches are not penalized.
class SibylStrategy {
 public:
  SibylStrategy(CorpusTracker& tracker, const ProbeBudget& budget)
      : tracker_(tracker), budget_(budget) {}

  void advance(TimePoint now, EmulationStats& stats);

 private:
  void patch_others(std::size_t measured,
                    const std::vector<std::uint64_t>& old_tokens,
                    TimePoint now, EmulationStats& stats);

  CorpusTracker& tracker_;
  ProbeBudget budget_;
  double credit_ = 0.0;
  TimePoint last_{};
  bool started_ = false;
  std::size_t cursor_ = 0;
};

// DTRACK (Cunha et al., SIGCOMM 2011): predicts per-path change likelihood
// (rate estimated from observed changes, NM-style) and allocates
// single-packet TTL probes proportionally; a probe revealing a divergent
// hop triggers a full remap traceroute.
class DtrackStrategy {
 public:
  struct Params {
    double prior_changes = 1.0;     // Laplace prior on the change rate
    double prior_days = 7.0;
    int hops_sampled_per_probe = 1;
  };

  DtrackStrategy(CorpusTracker& tracker, const ProbeBudget& budget,
                 const Params& params, std::uint64_t seed);

  void advance(TimePoint now, EmulationStats& stats);

  double change_rate(std::size_t path) const;

 private:
  void remap(std::size_t path, TimePoint now, EmulationStats& stats);

  CorpusTracker& tracker_;
  ProbeBudget budget_;
  Params params_;
  Rng rng_;
  double credit_ = 0.0;
  TimePoint last_{};
  bool started_ = false;
  std::vector<int> observed_changes_;
  std::vector<TimePoint> monitored_since_;
};

}  // namespace rrr::baselines
