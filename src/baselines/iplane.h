// iPlane path splicing (Appendix D): predict the unmeasured route from s to
// d by finding corpus traceroutes (s, d') and (s', d) that intersect at a
// PoP p, approximating the real path with (s, p, d). Staleness invalidates
// splices — the appendix's experiment prunes traceroutes our signals flag.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "netbase/asn.h"
#include "topology/types.h"
#include "tracemap/processed.h"
#include "traceroute/corpus.h"

namespace rrr::baselines {

// A PoP in iPlane's sense: an ⟨AS, city⟩ tuple; ungeolocated addresses act
// as their own PoP (keyed by address).
struct Pop {
  Asn asn;
  topo::CityId city = topo::kNoCity;
  std::uint32_t solo_ip = 0;  // nonzero for single-address PoPs

  auto operator<=>(const Pop&) const = default;
};

struct SplicedPath {
  tr::PairKey first;   // (s, d') traceroute
  tr::PairKey second;  // (s', d) traceroute
  Pop junction;
};

class IPlane {
 public:
  // Registers a corpus traceroute and its processed view.
  void add(const tr::PairKey& key, const tracemap::ProcessedTrace& trace);
  // Removes a traceroute (e.g. pruned as stale).
  void remove(const tr::PairKey& key);

  // Predicts the path from probe `src` to destination `dst` by splicing;
  // nullopt when no junction exists.
  std::optional<SplicedPath> predict(tr::ProbeId src, Ipv4 dst) const;

  // All splices from `src` to `dst` (for validity-rate evaluation).
  std::vector<SplicedPath> predict_all(tr::ProbeId src, Ipv4 dst,
                                       std::size_t limit = 16) const;

  std::size_t trace_count() const { return pops_of_.size(); }

  // The PoP sequence of a registered traceroute.
  static std::vector<Pop> pops_of(const tracemap::ProcessedTrace& trace);

 private:
  std::map<tr::PairKey, std::vector<Pop>> pops_of_;
  std::map<tr::ProbeId, std::set<tr::PairKey>> by_src_;
  std::map<Ipv4, std::set<tr::PairKey>> by_dst_;
  std::map<Pop, std::set<tr::PairKey>> by_pop_;
};

}  // namespace rrr::baselines
