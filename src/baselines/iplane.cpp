#include "baselines/iplane.h"

namespace rrr::baselines {

std::vector<Pop> IPlane::pops_of(const tracemap::ProcessedTrace& trace) {
  std::vector<Pop> pops;
  for (const tracemap::ProcessedHop& hop : trace.hops) {
    if (!hop.responded()) continue;
    Pop pop;
    if (hop.asn.is_valid() && hop.city) {
      pop = Pop{hop.asn, *hop.city, 0};
    } else if (hop.ip) {
      pop = Pop{Asn(), topo::kNoCity, hop.ip->value()};
    } else {
      continue;
    }
    if (pops.empty() || !(pops.back() == pop)) pops.push_back(pop);
  }
  return pops;
}

void IPlane::add(const tr::PairKey& key,
                 const tracemap::ProcessedTrace& trace) {
  remove(key);
  std::vector<Pop> pops = pops_of(trace);
  by_src_[key.probe].insert(key);
  by_dst_[key.dst].insert(key);
  for (const Pop& pop : pops) by_pop_[pop].insert(key);
  pops_of_[key] = std::move(pops);
}

void IPlane::remove(const tr::PairKey& key) {
  auto it = pops_of_.find(key);
  if (it == pops_of_.end()) return;
  for (const Pop& pop : it->second) {
    auto pit = by_pop_.find(pop);
    if (pit != by_pop_.end()) {
      pit->second.erase(key);
      if (pit->second.empty()) by_pop_.erase(pit);
    }
  }
  by_src_[key.probe].erase(key);
  by_dst_[key.dst].erase(key);
  pops_of_.erase(it);
}

std::vector<SplicedPath> IPlane::predict_all(tr::ProbeId src, Ipv4 dst,
                                             std::size_t limit) const {
  std::vector<SplicedPath> out;
  auto sit = by_src_.find(src);
  auto dit = by_dst_.find(dst);
  if (sit == by_src_.end() || dit == by_dst_.end()) return out;

  for (const tr::PairKey& from_src : sit->second) {
    if (from_src.dst == dst) continue;  // direct measurement, not a splice
    auto pit = pops_of_.find(from_src);
    if (pit == pops_of_.end()) continue;
    for (const Pop& pop : pit->second) {
      auto candidates = by_pop_.find(pop);
      if (candidates == by_pop_.end()) continue;
      for (const tr::PairKey& to_dst : candidates->second) {
        if (to_dst.dst != dst || to_dst == from_src) continue;
        out.push_back(SplicedPath{from_src, to_dst, pop});
        if (out.size() >= limit) return out;
      }
    }
  }
  return out;
}

std::optional<SplicedPath> IPlane::predict(tr::ProbeId src, Ipv4 dst) const {
  auto all = predict_all(src, dst, 1);
  if (all.empty()) return std::nullopt;
  return all.front();
}

}  // namespace rrr::baselines
