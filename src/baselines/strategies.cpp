#include "baselines/strategies.h"

#include <algorithm>

namespace rrr::baselines {

CorpusTracker::CorpusTracker(const PathOracle& oracle, TimePoint t0)
    : oracle_(oracle) {
  stored_.reserve(oracle.path_count());
  for (std::size_t i = 0; i < oracle.path_count(); ++i) {
    stored_.push_back(oracle.border_tokens(i, t0));
  }
}

bool CorpusTracker::remeasure(std::size_t path, TimePoint t) {
  std::vector<std::uint64_t> fresh = oracle_.border_tokens(path, t);
  bool changed = fresh != stored_[path];
  stored_[path] = std::move(fresh);
  if (changed) notify(path, t);
  return changed;
}

namespace {

// Converts elapsed wall time into a measurement allowance.
double accrue(double& credit, TimePoint& last, bool& started, TimePoint now,
              double pps) {
  if (!started) {
    started = true;
    last = now;
    return credit;
  }
  credit += pps * static_cast<double>(now - last);
  last = now;
  return credit;
}

}  // namespace

void RoundRobinStrategy::advance(TimePoint now, EmulationStats& stats) {
  accrue(credit_, last_, started_, now, budget_.packets_per_second);
  std::size_t n = tracker_.oracle().path_count();
  if (n == 0) return;
  while (credit_ >= budget_.traceroute_cost) {
    credit_ -= budget_.traceroute_cost;
    stats.packets_spent += budget_.traceroute_cost;
    ++stats.traceroutes;
    if (tracker_.remeasure(cursor_, now)) ++stats.changes_detected;
    cursor_ = (cursor_ + 1) % n;
  }
}

void SibylStrategy::patch_others(std::size_t measured,
                                 const std::vector<std::uint64_t>& old_tokens,
                                 TimePoint now, EmulationStats& stats) {
  (void)measured;
  std::size_t n = tracker_.oracle().path_count();
  for (std::size_t j = 0; j < n; ++j) {
    if (j == measured) continue;
    const auto& stored = tracker_.stored(j);
    // Sibyl patches traceroutes that traverse the subpath that *was*
    // observed to change: match against the measured path's old tokens.
    bool shares = false;
    for (std::uint64_t token : stored) {
      if (std::find(old_tokens.begin(), old_tokens.end(), token) !=
          old_tokens.end()) {
        shares = true;
        break;
      }
    }
    if (!shares) continue;
    // Optimistic patching: apply only when it matches ground truth.
    std::vector<std::uint64_t> truth =
        tracker_.oracle().border_tokens(j, now);
    if (truth != stored) {
      tracker_.overwrite(j, std::move(truth), now);
      ++stats.changes_detected;  // change captured without a measurement
    }
  }
}

void SibylStrategy::advance(TimePoint now, EmulationStats& stats) {
  accrue(credit_, last_, started_, now, budget_.packets_per_second);
  std::size_t n = tracker_.oracle().path_count();
  if (n == 0) return;
  while (credit_ >= budget_.traceroute_cost) {
    credit_ -= budget_.traceroute_cost;
    stats.packets_spent += budget_.traceroute_cost;
    ++stats.traceroutes;
    std::size_t path = cursor_;
    cursor_ = (cursor_ + 1) % n;
    std::vector<std::uint64_t> old_tokens = tracker_.stored(path);
    if (tracker_.remeasure(path, now)) {
      ++stats.changes_detected;
      patch_others(path, old_tokens, now, stats);
    }
  }
}

DtrackStrategy::DtrackStrategy(CorpusTracker& tracker,
                               const ProbeBudget& budget,
                               const Params& params, std::uint64_t seed)
    : tracker_(tracker),
      budget_(budget),
      params_(params),
      rng_(Rng(seed).fork(0xD7AC)),
      observed_changes_(tracker.oracle().path_count(), 0),
      monitored_since_(tracker.oracle().path_count()) {}

double DtrackStrategy::change_rate(std::size_t path) const {
  double days =
      started_
          ? static_cast<double>(last_ - monitored_since_[path]) /
                double(kSecondsPerDay)
          : 0.0;
  return (params_.prior_changes + observed_changes_[path]) /
         (params_.prior_days + std::max(days, 0.0));
}

void DtrackStrategy::remap(std::size_t path, TimePoint now,
                           EmulationStats& stats) {
  stats.packets_spent += budget_.traceroute_cost;
  ++stats.traceroutes;
  if (tracker_.remeasure(path, now)) {
    ++stats.changes_detected;
    ++observed_changes_[path];
  }
}

void DtrackStrategy::advance(TimePoint now, EmulationStats& stats) {
  bool first = !started_;
  accrue(credit_, last_, started_, now, budget_.packets_per_second);
  std::size_t n = tracker_.oracle().path_count();
  if (n == 0) return;
  if (first) {
    for (std::size_t i = 0; i < n; ++i) monitored_since_[i] = now;
  }
  // Allocate detection probes proportionally to estimated change rates;
  // one distribution per advance keeps sampling cheap.
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) weights[i] = change_rate(i);
  std::discrete_distribution<std::size_t> pick(weights.begin(),
                                               weights.end());
  while (credit_ >= budget_.detection_cost) {
    credit_ -= budget_.detection_cost;
    stats.packets_spent += budget_.detection_cost;
    ++stats.detection_probes;
    std::size_t path = pick(rng_.engine());
    const auto& stored = tracker_.stored(path);
    if (stored.empty()) continue;
    std::size_t hop = rng_.index(stored.size());
    std::uint64_t seen = tracker_.oracle().hop_token(path, hop, now);
    if (seen != stored[hop]) {
      // Divergence detected: spend a full traceroute to remap.
      if (credit_ >= budget_.traceroute_cost) {
        credit_ -= budget_.traceroute_cost;
        remap(path, now, stats);
        weights[path] = change_rate(path);
        pick = std::discrete_distribution<std::size_t>(weights.begin(),
                                                       weights.end());
      } else {
        // Not enough budget now; the next advance will likely re-detect.
        credit_ = 0;
        break;
      }
    }
  }
}

}  // namespace rrr::baselines
