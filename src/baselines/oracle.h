// The trace-driven emulation substrate of §5.3: baselines decide what to
// probe and when, and an oracle (backed by pseudo-ground-truth) answers
// what any measurement would have returned.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/time.h"

namespace rrr::baselines {

class PathOracle {
 public:
  virtual ~PathOracle() = default;

  virtual std::size_t path_count() const = 0;

  // Border-level path of `path` at `t` as opaque hop tokens (one per border
  // crossing). Two calls return equal vectors iff the border-level path is
  // unchanged between them.
  virtual std::vector<std::uint64_t> border_tokens(std::size_t path,
                                                   TimePoint t) const = 0;

  // What a single TTL-limited probe to border hop `index` would reveal
  // (token of the crossing), or 0 when the path is shorter than `index`.
  virtual std::uint64_t hop_token(std::size_t path, std::size_t index,
                                  TimePoint t) const = 0;
};

// Bookkeeping shared by every strategy: packets spent and changes found.
struct ProbeBudget {
  double packets_per_second = 0.0;  // average budget across all paths
  int traceroute_cost = 15;         // packets per full traceroute
  int detection_cost = 1;           // packets per TTL-limited probe
};

struct EmulationStats {
  std::int64_t packets_spent = 0;
  std::int64_t traceroutes = 0;
  std::int64_t detection_probes = 0;
  std::int64_t changes_detected = 0;
};

}  // namespace rrr::baselines
