// Traceroute data model: what a measurement platform records and publishes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/time.h"
#include "topology/types.h"

namespace rrr::tr {

using ProbeId = std::uint32_t;
inline constexpr ProbeId kNoProbe = 0xFFFFFFFFu;

struct Hop {
  // nullopt renders as '*': no reply within the per-hop timeout.
  std::optional<Ipv4> ip;
  double rtt_ms = 0.0;

  bool responded() const { return ip.has_value(); }
};

struct Traceroute {
  std::uint64_t id = 0;
  ProbeId probe = kNoProbe;
  Ipv4 src_ip;
  Ipv4 dst_ip;
  TimePoint time;
  std::uint64_t flow_id = 0;  // Paris-traceroute flow identifier
  // Hops after the source, in order; when the destination replied the last
  // hop is the destination itself.
  std::vector<Hop> hops;
  bool reached = false;

  std::string to_string() const;
};

// A vantage point of the measurement platform. Anchors are better-provisioned
// devices that also serve as the anchoring mesh's targets.
struct Probe {
  ProbeId id = kNoProbe;
  topo::AsIndex as = topo::kNoAs;
  topo::CityId city = topo::kNoCity;
  Ipv4 ip;
  bool is_anchor = false;
  bool active = true;
};

}  // namespace rrr::tr
