#include "traceroute/corpus.h"

namespace rrr::tr {

CorpusEntry& Corpus::upsert(Traceroute trace) {
  PairKey key{trace.probe, trace.dst_ip};
  auto [it, inserted] = entries_.try_emplace(key);
  CorpusEntry& entry = it->second;
  entry.key = key;
  entry.measured = trace.time;
  entry.trace = std::move(trace);
  entry.freshness = Freshness::kFresh;
  if (!inserted) ++entry.refresh_count;
  return entry;
}

CorpusEntry* Corpus::find(const PairKey& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const CorpusEntry* Corpus::find(const PairKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void Corpus::set_freshness(const PairKey& key, Freshness freshness) {
  auto it = entries_.find(key);
  if (it != entries_.end()) it->second.freshness = freshness;
}

std::vector<PairKey> Corpus::keys() const {
  std::vector<PairKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;
}

}  // namespace rrr::tr
