#include "traceroute/platform.h"

#include <cassert>

namespace rrr::tr {

Platform::Platform(routing::ControlPlane& control_plane,
                   const ProberParams& prober, const PlatformParams& params)
    : cp_(control_plane),
      prober_(control_plane, prober),
      params_(params),
      rng_(Rng(params.seed).fork(0x9147F0)),
      churn_clock_(TimePoint(0)) {
  topo::Topology& topology = cp_.topology_mut();

  // Weight ASes for probe placement: Atlas probes are mostly in edge
  // networks, with some in transit providers.
  std::vector<double> weights(topology.as_count());
  for (topo::AsIndex as = 0; as < topology.as_count(); ++as) {
    switch (topology.as_at(as).tier) {
      case topo::AsTier::kTier1:
        weights[as] = 0.5;
        break;
      case topo::AsTier::kTransit:
        weights[as] = 2.0;
        break;
      case topo::AsTier::kStub:
        weights[as] = 1.0;
        break;
    }
  }

  auto place = [&](bool is_anchor) {
    Probe probe;
    probe.id = static_cast<ProbeId>(probes_.size());
    probe.as = static_cast<topo::AsIndex>(rng_.weighted_index(weights));
    const topo::AsNode& node = topology.as_at(probe.as);
    probe.city = node.pops[rng_.index(node.pops.size())];
    probe.ip = topology.allocate_host_ip(probe.as);
    probe.is_anchor = is_anchor;
    (is_anchor ? anchors_ : regular_).push_back(probe.id);
    probes_.push_back(probe);
  };
  for (int i = 0; i < params_.num_anchors; ++i) place(true);
  for (int i = 0; i < params_.num_probes; ++i) place(false);
}

Traceroute Platform::issue(ProbeId probe, Ipv4 dst, TimePoint t,
                           int flow_variant) {
  assert(probe < probes_.size());
  const Probe& p = probes_[probe];
  // Paris traceroute: flow id fully determined by (src, dst, variant).
  std::uint64_t flow = hash_combine(
      hash_combine(p.ip.value(), dst.value()),
      static_cast<std::uint64_t>(flow_variant & 0xF));
  return prober_.measure(p, dst, t, flow);
}

std::vector<ProbeId> Platform::advance_churn(TimePoint t) {
  std::vector<ProbeId> died;
  if (t <= churn_clock_) return died;
  double days =
      static_cast<double>(t - churn_clock_) / double(kSecondsPerDay);
  churn_clock_ = t;
  double p_death = 1.0 - std::pow(1.0 - params_.probe_death_per_day, days);
  for (Probe& probe : probes_) {
    if (probe.is_anchor || !probe.active) continue;
    if (rng_.bernoulli(p_death)) {
      probe.active = false;
      died.push_back(probe.id);
    }
  }
  return died;
}

}  // namespace rrr::tr
