#include "traceroute/prober.h"

#include <sstream>

#include "topology/city.h"

namespace rrr::tr {

std::string Traceroute::to_string() const {
  std::ostringstream out;
  out << "traceroute #" << id << " " << src_ip.to_string() << " -> "
      << dst_ip.to_string() << " @ " << time.to_string() << "\n";
  int ttl = 1;
  for (const Hop& hop : hops) {
    out << "  " << ttl++ << "  ";
    if (hop.responded()) {
      char rtt[32];
      std::snprintf(rtt, sizeof rtt, "%.2f ms", hop.rtt_ms);
      out << hop.ip->to_string() << "  " << rtt;
    } else {
      out << "*";
    }
    out << "\n";
  }
  if (!reached) out << "  (destination unreached)\n";
  return out.str();
}

bool Prober::router_is_silent(topo::RouterId router) const {
  // Deterministic per (router, seed): silent routers stay silent.
  std::uint64_t h = hash_combine(params_.seed, 0x51137ull + router);
  return (h % 10000) < static_cast<std::uint64_t>(
                           params_.silent_router_fraction * 10000);
}

Traceroute Prober::measure(const Probe& probe, Ipv4 dst_ip, TimePoint t,
                           std::uint64_t flow_id) {
  Traceroute trace;
  trace.id = ++issued_;
  trace.probe = probe.id;
  trace.src_ip = probe.ip;
  trace.dst_ip = dst_ip;
  trace.time = t;
  trace.flow_id = flow_id;

  routing::ForwardPath path =
      cp_.resolver().resolve(probe.as, probe.city, dst_ip, flow_id);
  if (!path.reachable) return trace;

  // Per-measurement randomness that does not depend on call order.
  Rng rng(hash_combine(
      hash_combine(params_.seed, probe.id),
      hash_combine(dst_ip.value(),
                   hash_combine(static_cast<std::uint64_t>(t.seconds()),
                                flow_id))));

  const topo::Topology& topology = cp_.topology();
  double cumulative_km = 0.0;
  topo::CityId previous_city = probe.city;
  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    bool is_destination = i + 1 == path.hops.size();
    topo::RouterId router = path.hop_routers[i];
    topo::CityId hop_city =
        router == topo::kNoRouter
            ? topology.as_at(topology.announced_owner_of(dst_ip))
                  .pops.front()
            : topology.router_at(router).city;
    cumulative_km += topo::city_distance_km(previous_city, hop_city);
    previous_city = hop_city;
    // Base propagation RTT plus per-hop queueing jitter; a small floor so
    // that same-city hops still show sub-millisecond latency.
    double base_rtt = 2.0 * cumulative_km / 200.0 + 0.2;
    double rtt =
        base_rtt * (1.0 + params_.rtt_jitter_fraction * rng.uniform());

    Hop hop;
    bool silent = router != topo::kNoRouter && router_is_silent(router);
    bool lost = rng.bernoulli(params_.intermittent_loss_prob);
    bool filtered = is_destination &&
                    rng.bernoulli(params_.unresponsive_destination_prob);
    if (!silent && !lost && !filtered) {
      hop.ip = path.hops[i];
      hop.rtt_ms = rtt;
    }
    trace.hops.push_back(hop);
    if (is_destination) trace.reached = hop.responded();
  }
  return trace;
}

std::optional<Ipv4> Prober::probe_hop(const Probe& probe, Ipv4 dst_ip,
                                      TimePoint t, std::uint64_t flow_id,
                                      int ttl) {
  routing::ForwardPath path =
      cp_.resolver().resolve(probe.as, probe.city, dst_ip, flow_id);
  if (!path.reachable || ttl < 1 ||
      static_cast<std::size_t>(ttl) > path.hops.size()) {
    return std::nullopt;
  }
  topo::RouterId router = path.hop_routers[static_cast<std::size_t>(ttl - 1)];
  if (router != topo::kNoRouter && router_is_silent(router)) {
    return std::nullopt;
  }
  Rng rng(hash_combine(hash_combine(params_.seed, 0x77135ull),
                       hash_combine(static_cast<std::uint64_t>(t.seconds()),
                                    flow_id + ttl)));
  if (rng.bernoulli(params_.intermittent_loss_prob)) return std::nullopt;
  return path.hops[static_cast<std::size_t>(ttl - 1)];
}

}  // namespace rrr::tr
