// Turns resolved forwarding paths into traceroute measurements, including
// the artifacts real traceroutes suffer: unresponsive routers (persistent
// and intermittent), RTT accumulation with jitter, and unreached targets.
#pragma once

#include <cstdint>

#include "netbase/rng.h"
#include "routing/control_plane.h"
#include "traceroute/traceroute.h"

namespace rrr::tr {

struct ProberParams {
  // Fraction of routers that never answer TTL-expired probes.
  double silent_router_fraction = 0.03;
  // Per-probe drop probability on otherwise responsive routers.
  double intermittent_loss_prob = 0.02;
  // Probability the destination host filters probes (unreached trace).
  double unresponsive_destination_prob = 0.02;
  // RTT noise as a fraction of the propagation component.
  double rtt_jitter_fraction = 0.15;
  std::uint64_t seed = 11;
};

class Prober {
 public:
  Prober(routing::ControlPlane& control_plane, const ProberParams& params)
      : cp_(control_plane), params_(params) {}

  // Measures from `probe` toward `dst_ip` at time `t`. `flow_id`
  // determines every load-balancing decision (Paris semantics); the caller
  // varies it across measurements that should explore diamonds.
  Traceroute measure(const Probe& probe, Ipv4 dst_ip, TimePoint t,
                     std::uint64_t flow_id);

  // Single TTL-limited probe toward dst: the IP revealed at `ttl` (1-based
  // over our hop list), or nullopt for '*' / beyond path end. Used by the
  // DTRACK baseline's change-detection probes.
  std::optional<Ipv4> probe_hop(const Probe& probe, Ipv4 dst_ip, TimePoint t,
                                std::uint64_t flow_id, int ttl);

  // Whether a router persistently ignores traceroute probes (deterministic
  // per router; exposed so tests can find silent routers).
  bool router_is_silent(topo::RouterId router) const;

 private:
  routing::ControlPlane& cp_;
  ProberParams params_;
  std::uint64_t issued_ = 0;
};

}  // namespace rrr::tr
