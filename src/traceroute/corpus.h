// The traceroute corpus: the atlas of measurements a system maintains and
// wants to keep fresh (the paper's §3 "corpus of traceroutes").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "traceroute/traceroute.h"

namespace rrr::tr {

// Identifies a monitored (source probe, destination) pair.
struct PairKey {
  ProbeId probe = kNoProbe;
  Ipv4 dst;
  auto operator<=>(const PairKey&) const = default;
};

enum class Freshness : std::uint8_t {
  kFresh,    // no staleness signal since measurement; fully monitored
  kStale,    // at least one staleness prediction signal fired
  kUnknown,  // monitoring cannot see every border of this traceroute
};

struct CorpusEntry {
  PairKey key;
  Traceroute trace;           // latest measurement
  Freshness freshness = Freshness::kFresh;
  TimePoint measured;         // when `trace` was taken
  std::uint32_t refresh_count = 0;
};

class Corpus {
 public:
  // Inserts or replaces the entry for the traceroute's (probe, dst) pair;
  // replacement resets freshness and bumps the refresh counter.
  CorpusEntry& upsert(Traceroute trace);

  CorpusEntry* find(const PairKey& key);
  const CorpusEntry* find(const PairKey& key) const;

  void set_freshness(const PairKey& key, Freshness freshness);

  std::size_t size() const { return entries_.size(); }

  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (const auto& [key, entry] : entries_) visit(entry);
  }
  template <typename Visitor>
  void for_each_mut(Visitor&& visit) {
    for (auto& [key, entry] : entries_) visit(entry);
  }

  std::vector<PairKey> keys() const;

 private:
  std::map<PairKey, CorpusEntry> entries_;
};

}  // namespace rrr::tr
