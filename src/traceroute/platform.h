// The measurement platform: probes, anchors, churn, and credit accounting,
// modeled on RIPE Atlas.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/rng.h"
#include "routing/control_plane.h"
#include "traceroute/prober.h"
#include "traceroute/traceroute.h"

namespace rrr::tr {

struct PlatformParams {
  int num_probes = 400;
  int num_anchors = 60;
  // Daily probe disappearance probability (the paper's "fresh, dead Probe"
  // category in Figure 11 comes from this churn).
  double probe_death_per_day = 0.004;
  // RIPE Atlas credit economics (§6.2): 1M credits/day per user, 10-30
  // credits per traceroute.
  std::int64_t credits_per_day = 1'000'000;
  std::int64_t credits_per_traceroute = 20;
  std::uint64_t seed = 13;
};

class Platform {
 public:
  Platform(routing::ControlPlane& control_plane, const ProberParams& prober,
           const PlatformParams& params);

  const std::vector<Probe>& probes() const { return probes_; }
  const Probe& probe(ProbeId id) const { return probes_[id]; }
  // Ids of anchor probes (also the anchoring mesh's destinations).
  const std::vector<ProbeId>& anchors() const { return anchors_; }
  // Ids of non-anchor probes.
  const std::vector<ProbeId>& regular_probes() const { return regular_; }

  // Issues a traceroute; `flow_variant` selects among the source's Paris
  // flow identifiers (Atlas uses 16).
  Traceroute issue(ProbeId probe, Ipv4 dst, TimePoint t, int flow_variant);

  // Advances probe churn to `t`; returns probes that died in the interval.
  std::vector<ProbeId> advance_churn(TimePoint t);

  Prober& prober() { return prober_; }
  const routing::ControlPlane& control_plane() const { return cp_; }

 private:
  routing::ControlPlane& cp_;
  Prober prober_;
  PlatformParams params_;
  Rng rng_;
  std::vector<Probe> probes_;
  std::vector<ProbeId> anchors_;
  std::vector<ProbeId> regular_;
  TimePoint churn_clock_;
};

// Tracks per-day measurement budgets (credits or probe counts).
class Budget {
 public:
  Budget(std::int64_t per_day, std::int64_t cost_each)
      : per_day_(per_day), cost_each_(cost_each) {}

  // Attempts to spend one measurement at time `t`; false when the day's
  // budget is exhausted.
  bool try_spend(TimePoint t) {
    std::int64_t day = t.seconds() / kSecondsPerDay;
    if (day != current_day_) {
      current_day_ = day;
      spent_today_ = 0;
    }
    if (spent_today_ + cost_each_ > per_day_) return false;
    spent_today_ += cost_each_;
    ++total_spent_;
    return true;
  }

  std::int64_t remaining_today(TimePoint t) const {
    std::int64_t day = t.seconds() / kSecondsPerDay;
    std::int64_t spent = day == current_day_ ? spent_today_ : 0;
    return (per_day_ - spent) / cost_each_;
  }

  std::int64_t total_spent() const { return total_spent_; }

 private:
  std::int64_t per_day_;
  std::int64_t cost_each_;
  std::int64_t current_day_ = -1;
  std::int64_t spent_today_ = 0;
  std::int64_t total_spent_ = 0;
};

}  // namespace rrr::tr
