// StalenessService: the query/serving layer (DESIGN.md §15, docs/API.md).
//
// Turns the batch engine into staleness-as-a-service: at every window
// boundary the driver hands the service the just-closed window's state
// (per-pair verdicts, the window's signals, the table epoch); the service
// folds them into its builder state, materializes an immutable
// ServingSnapshot, and publishes it with one release pointer swap. HTTP
// readers resolve the /v1 route family against whatever snapshot one
// acquire-load returns — they never block a window close, and a window
// close never waits for a reader.
//
//   GET /v1/pairs          corpus-wide verdict listing (+filter/limit)
//   GET /v1/verdict        one pair's verdict
//   GET /v1/signals        one pair's bounded signal history
//   GET /v1/refresh-queue  top-k stale pairs, stalest first
//
// Threading contract: on_window runs on the driver thread only, in the
// serial section between window closes (eval::World calls it right after
// advance_to). handle() and snapshot() are safe from any thread at any
// time. The service holds no pointer into the engine or the world — every
// byte it serves lives in snapshots it built — so it may outlive both.
//
// Determinism: the service only *reads* engine state (pair_states(),
// table epoch) and consumes the already-registered signal stream. It draws
// no randomness and never feeds anything back, so a run with serving
// attached emits a byte-identical semantic stream (pinned by
// tests/serve_test.cpp and the fig_serving_sweep grid).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/http_export.h"
#include "serve/snapshot.h"
#include "signals/signal.h"

namespace rrr::signals {
class ShardedStalenessEngine;
struct PairStateView;
}  // namespace rrr::signals

namespace rrr::serve {

struct ServiceParams {
  // Per-pair signal-history bound: the evidence ring keeps the newest
  // `history_cap` events; older ones only bump the dropped count.
  std::size_t history_cap = 32;
  // /v1/refresh-queue?k default when the query omits k.
  int default_queue_k = 20;
  // Hard ceiling on one /v1/pairs response (limit is clamped to it); the
  // serving layer is an operator hatch, not a bulk-export path.
  std::size_t max_page = 10000;
};

class StalenessService {
 public:
  explicit StalenessService(ServiceParams params = {});

  // --- materialization (driver thread, serial section) ---
  // Engine-facing hook: snapshots the engine's per-pair state and the
  // window's registered signals, publishes a new ServingSnapshot.
  void on_window(const signals::ShardedStalenessEngine& engine,
                 std::int64_t window, TimePoint window_end,
                 const std::vector<signals::StalenessSignal>& window_signals);
  // Core hook the engine variant forwards to; public so tests and other
  // drivers can materialize from handcrafted state.
  void on_window(const std::vector<signals::PairStateView>& states,
                 std::uint64_t table_epoch, std::int64_t window,
                 TimePoint window_end,
                 const std::vector<signals::StalenessSignal>& window_signals);

  // --- readers (any thread) ---
  // Current snapshot: one acquire-load.
  SnapshotPtr snapshot() const { return publisher_.read(); }
  // Routes one request target ("/v1/verdict?src=3&dst=10.0.0.1"). Returns
  // nullopt for paths outside the /v1 family (the HTTP server falls
  // through to its fixed routes); /v1 paths always get a response —
  // 200 with a JSON body, 400 on a malformed query, 404 on unknown
  // pair/route. Plugs into obs::HttpHandlers::api.
  std::optional<obs::HttpResponse> handle(const std::string& target) const;

  std::uint64_t windows_published() const {
    return windows_published_.load(std::memory_order_relaxed);
  }
  const ServiceParams& params() const { return params_; }

 private:
  // Builder state, touched by on_window only (driver thread).
  struct PairTrack {
    std::vector<SignalEvent> history;  // oldest -> newest, bounded
    std::uint64_t total = 0;
    std::int64_t stale_since = -1;  // current stale episode; -1 when not
  };

  obs::HttpResponse verdict_response(const ServingSnapshot& snap,
                                     const tr::PairKey& pair) const;
  obs::HttpResponse signals_response(const ServingSnapshot& snap,
                                     const tr::PairKey& pair,
                                     std::size_t limit) const;
  obs::HttpResponse pairs_response(const ServingSnapshot& snap,
                                   std::optional<tr::Freshness> filter,
                                   std::size_t limit) const;
  obs::HttpResponse queue_response(const ServingSnapshot& snap, int k) const;

  ServiceParams params_;
  SnapshotPublisher publisher_;
  std::map<tr::PairKey, PairTrack> tracks_;
  std::atomic<std::uint64_t> windows_published_{0};
};

}  // namespace rrr::serve
