// Minimal blocking HTTP/1.1 GET client for the loopback serving endpoint.
//
// Exists for the in-tree consumers of src/obs's server — the
// fig_serving_sweep load generator, the serving tests, and the CI probe
// path — so they all speak the same (tiny) dialect the server emits:
// one request per connection, Content-Length framing, Connection: close.
// It is intentionally not a general HTTP client.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace rrr::serve {

struct HttpResult {
  int status = 0;        // parsed from the status line
  std::string body;      // bytes after the blank line
};

// One GET round-trip against 127.0.0.1:`port`. `target` is the full
// request target including any query string ("/v1/pairs?limit=5").
// Returns nullopt on connect/IO failure or an unparseable response;
// HTTP-level errors (400/404/...) come back as a populated HttpResult.
std::optional<HttpResult> http_get(int port, const std::string& target);

}  // namespace rrr::serve
