// ServingSnapshot: the read-optimized, immutable view the staleness query
// service publishes at every window boundary (DESIGN.md §15).
//
// The paper's end goal is operational — tell an operator which traceroutes
// are stale *right now* and what to refresh next — so the serving layer
// materializes exactly three things per closed window:
//
//   * a per-pair verdict (freshness, stale-since window, active signals),
//   * a bounded per-pair signal history (the evidence trail), and
//   * a refresh-priority queue ranking the stale pairs stalest-first.
//
// Publication follows the same release-pointer-swap discipline as
// bgp::EpochTableView: the driver thread builds a fresh snapshot in the
// serial section after a window close and publishes it with one release
// store; HTTP readers take one acquire-load and then work entirely on the
// immutable object. Unlike the epoch table, readers are asynchronous (they
// can hold a snapshot across any number of publications), so the pointer is
// a std::shared_ptr under std::atomic — reclamation happens when the last
// reader drops its reference, and the window close never waits on a reader.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "netbase/time.h"
#include "signals/signal.h"
#include "traceroute/corpus.h"

namespace rrr::serve {

// One signal occurrence retained in a pair's bounded history ring.
struct SignalEvent {
  std::int64_t window = 0;        // base-window index that emitted it
  std::int64_t time_seconds = 0;  // end of the generation window
  signals::Technique technique = signals::Technique::kBgpAsPath;
  // Border index the signal implicates; signals::kWholePath for AS-level
  // claims (rendered as -1 in JSON).
  std::size_t border_index = signals::kWholePath;
  std::int64_t span_seconds = 0;  // generation-window span
};

// Per-pair staleness verdict as of the snapshot's window boundary.
struct PairVerdict {
  tr::PairKey pair;
  tr::Freshness freshness = tr::Freshness::kFresh;
  std::int64_t watched_window = 0;  // window the current measurement joined
  std::uint32_t active_signals = 0; // fired-and-unrevoked signals
  // Window of the first signal of the current stale episode; -1 while the
  // pair is not stale. Drives the refresh-queue ranking.
  std::int64_t stale_since_window = -1;
  std::uint64_t signals_total = 0;  // lifetime count (history is bounded)
  std::vector<SignalEvent> history; // oldest -> newest, at most history_cap
};

// The immutable view. Readers never mutate one; the materializer builds a
// new instance per published window.
struct ServingSnapshot {
  // Publication sequence number: 0 for the pre-first-window empty
  // snapshot, then +1 per published window boundary.
  std::uint64_t version = 0;
  std::int64_t window = -1;        // last closed window; -1 before any
  std::int64_t time_seconds = 0;   // end of that window
  std::uint64_t table_epoch = 0;   // bgp::EpochTableView::epoch() at publish
  std::size_t history_cap = 0;
  std::size_t fresh = 0;
  std::size_t stale = 0;
  std::size_t unknown = 0;
  std::vector<PairVerdict> pairs;  // sorted by pair key
  // Indices into `pairs`, ranked by (stale_since asc, active_signals desc,
  // signals_total desc, pair asc): the refresh-priority queue.
  std::vector<std::uint32_t> refresh_queue;

  // Binary search over the sorted `pairs`; null when absent.
  const PairVerdict* find(const tr::PairKey& pair) const;
};

using SnapshotPtr = std::shared_ptr<const ServingSnapshot>;

// Release-store / acquire-load publication point. Starts out holding an
// empty snapshot (version 0), so readers always get a valid document.
class SnapshotPublisher {
 public:
  SnapshotPublisher();

  // Serial-section only (the driver's window boundary): one release store.
  void publish(SnapshotPtr snapshot);

  // Any thread, any time: one acquire load. The returned snapshot stays
  // valid for as long as the caller holds it, across later publishes.
  SnapshotPtr read() const;

 private:
  std::atomic<SnapshotPtr> current_;
};

// Label slugs shared by the JSON bodies and docs/API.md.
const char* freshness_label(tr::Freshness freshness);

}  // namespace rrr::serve
