#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rrr::serve {
namespace {

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// The server always closes after one response, so read-to-EOF is the
// framing; Content-Length is cross-checked below when present.
bool recv_all(int fd, std::string& out) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

std::optional<HttpResult> http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::string raw;
  const bool io_ok = send_all(fd, request) && recv_all(fd, raw);
  ::close(fd);
  if (!io_ok) return std::nullopt;

  // Status line: "HTTP/1.1 NNN Phrase".
  if (raw.compare(0, 9, "HTTP/1.1 ") != 0 || raw.size() < 12) {
    return std::nullopt;
  }
  HttpResult result;
  result.status = (raw[9] - '0') * 100 + (raw[10] - '0') * 10 + (raw[11] - '0');
  if (result.status < 100 || result.status > 599) return std::nullopt;
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return std::nullopt;
  result.body = raw.substr(head_end + 4);
  return result;
}

}  // namespace rrr::serve
